//! Boolean strategies (mirrors `proptest::bool`).

use crate::strategy::{Strategy, TestRng};

/// The type of [`ANY`].
#[derive(Debug, Clone, Copy)]
pub struct Any;

/// Uniformly random booleans.
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
