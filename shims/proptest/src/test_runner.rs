//! Test-runner configuration and failure type (mirrors
//! `proptest::test_runner`).

use std::fmt;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; the shim runs no shrinking so a
        // leaner default keeps the suite fast while still exploring.
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A failed property case (carries the assertion message).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}
