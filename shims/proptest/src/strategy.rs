//! The [`Strategy`] trait, combinators, and primitive range/tuple
//! strategies.

use std::ops::{Range, RangeInclusive};

/// Deterministic per-case input stream (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A stream for case `case` of the test whose name hashed to `seed`.
    pub fn for_case(seed: u64, case: u32) -> Self {
        Self { state: seed ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[lo, hi)`.
    pub fn below(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo < hi);
        let span = (hi - lo) as u128;
        lo + ((self.next_u64() as u128 * span) >> 64) as i128
    }
}

/// FNV-1a hash of a test name, used as the per-test base seed.
pub fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A recipe for generating values of `Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value from the deterministic stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and draws from
    /// it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.below(self.start as i128, self.end as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                rng.below(lo as i128, hi as i128 + 1) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start + (self.end - self.start) * rng.unit_f64() as $t;
                if v >= self.end { self.start } else { v }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_case() {
        let mut a = TestRng::for_case(fnv1a("t"), 3);
        let mut b = TestRng::for_case(fnv1a("t"), 3);
        let mut c = TestRng::for_case(fnv1a("t"), 4);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn int_ranges_cover_and_respect_bounds() {
        let mut rng = TestRng::for_case(1, 0);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v = (2usize..6).generate(&mut rng);
            assert!((2..6).contains(&v));
            seen[v - 2] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..200 {
            let v = (-3i32..=3).generate(&mut rng);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = TestRng::for_case(2, 0);
        for _ in 0..500 {
            let v = (-1.5f32..2.5).generate(&mut rng);
            assert!((-1.5..2.5).contains(&v));
        }
    }

    #[test]
    fn map_and_just() {
        let mut rng = TestRng::for_case(3, 0);
        let s = (0u32..10).prop_map(|x| x * 2);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
        assert_eq!(Just(41).generate(&mut rng), 41);
    }
}
