//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal property-testing harness with the same surface
//! syntax: the `proptest!` macro, `prop_assert*` macros, `Strategy`
//! with `prop_map`/`prop_flat_map`, range/tuple/collection/bool
//! strategies and `ProptestConfig::with_cases`. Inputs are generated
//! from a deterministic per-test stream; there is **no shrinking** —
//! a failing case reports its generated inputs' case number instead.

pub mod bool;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn name(args in strategies) { body }`
/// becomes a `#[test]` running `ProptestConfig::cases` deterministic
/// cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_case! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_case! {
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __seed = $crate::strategy::fnv1a(stringify!($name));
            for __case in 0..__config.cases {
                let mut __rng = $crate::strategy::TestRng::for_case(__seed, __case);
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(__e) = __outcome {
                    panic!(
                        "proptest '{}' failed at case {}/{}: {}",
                        stringify!($name),
                        __case,
                        __config.cases,
                        __e
                    );
                }
            }
        }
        $crate::__proptest_case! { ($cfg) $($rest)* }
    };
}

/// Fails the surrounding property test when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the surrounding property test when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            __l,
            __r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(__l == __r, $($fmt)+);
    }};
}

/// Fails the surrounding property test when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            __l
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(__l != __r, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 0u64..100, (a, b) in (1usize..5, -1.0f32..1.0)) {
            prop_assert!(x < 100);
            prop_assert!((1..5).contains(&a));
            prop_assert!((-1.0..1.0).contains(&b));
        }

        #[test]
        fn vec_and_map(v in crate::collection::vec(0i32..10, 3..6)) {
            prop_assert!(v.len() >= 3 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| (0..10).contains(&x)));
        }

        #[test]
        fn early_return_ok_is_allowed(flag in crate::bool::ANY) {
            if flag {
                return Ok(());
            }
            prop_assert!(!flag);
        }
    }

    proptest! {
        // Default config (no inner attribute) must also parse.
        #[test]
        fn flat_map_composes(m in (1usize..4).prop_flat_map(|n| crate::collection::vec(0u64..9, n))) {
            prop_assert!(!m.is_empty() && m.len() < 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        #[test]
        #[should_panic(expected = "always_fails")]
        fn always_fails(x in 0u32..10) {
            prop_assert!(x > 100, "x was {}", x);
        }
    }
}
