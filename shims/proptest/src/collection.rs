//! Collection strategies (mirrors `proptest::collection`).

use crate::strategy::{Strategy, TestRng};
use std::ops::{Range, RangeInclusive};

/// Accepted size arguments for [`vec()`]: a fixed length or a length
/// range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi_inclusive: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        Self { lo: r.start, hi_inclusive: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        Self { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

/// A strategy producing `Vec`s of values from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.below(self.size.lo as i128, self.size.hi_inclusive as i128 + 1) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::fnv1a;

    #[test]
    fn fixed_and_ranged_sizes() {
        let mut rng = TestRng::for_case(fnv1a("vec"), 0);
        let fixed = vec(0u8..10, 7).generate(&mut rng);
        assert_eq!(fixed.len(), 7);
        for _ in 0..100 {
            let v = vec(0u8..10, 1..4).generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            let w = vec(0u8..10, 2..=3).generate(&mut rng);
            assert!((2..=3).contains(&w.len()));
        }
    }
}
