//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a lean timing harness with criterion's surface syntax:
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `sample_size`
//! and `black_box`. Each benchmark is timed with `std::time::Instant`
//! and reports its median wall-clock time per iteration; there are no
//! statistical comparisons against saved baselines.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting
/// benchmarked work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Entry point handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size: 30 }
    }
}

/// A named benchmark identifier, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{name}/{parameter}") }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark: `f` receives a [`Bencher`] and calls
    /// [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b);
        b.report(&self.name, &id.into_id());
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b, input);
        b.report(&self.name, &id.id);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

/// Wall-clock budget per benchmark; stops sampling early when a single
/// iteration is slow.
const TIME_BUDGET: Duration = Duration::from_millis(300);

impl Bencher {
    /// Times `routine`, recording up to `sample_size` samples within the
    /// time budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, untimed
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if started.elapsed() > TIME_BUDGET {
                break;
            }
        }
    }

    /// Median nanoseconds per iteration over the recorded samples.
    pub fn median_ns(&self) -> u128 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut ns: Vec<u128> = self.samples.iter().map(|d| d.as_nanos()).collect();
        ns.sort_unstable();
        ns[ns.len() / 2]
    }

    fn report(&self, group: &str, id: &str) {
        println!(
            "bench {group}/{id}: median {} ns/iter ({} samples)",
            self.median_ns(),
            self.samples.len()
        );
    }
}

/// Declares a group function running each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_n", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_and_records() {
        benches();
        let mut b = Bencher { samples: Vec::new(), sample_size: 4 };
        b.iter(|| black_box(1 + 1));
        assert!(!b.samples.is_empty());
        // median_ns is 0 only when no samples were recorded.
        assert!(b.samples.len() <= 4);
    }
}
