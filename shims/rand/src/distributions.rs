//! Distributions: [`Standard`], [`Uniform`] and the [`Distribution`]
//! trait, plus the [`uniform`] sampling machinery behind `gen_range`.

use crate::RngCore;

/// Types that can sample values of `T` from a generator.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution of a type: uniform over `[0, 1)` for
/// floats, uniform over the full domain for integers and `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        crate::unit_f32(rng)
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        crate::unit_f64(rng)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

/// A uniform distribution over a fixed range, reusable across draws.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform<T> {
    low: T,
    high: T,
    inclusive: bool,
}

impl<T: uniform::SampleUniform + PartialOrd + Copy> Uniform<T> {
    /// Uniform over `[low, high)`.
    pub fn new(low: T, high: T) -> Self {
        assert!(low < high, "Uniform::new called with low >= high");
        Self { low, high, inclusive: false }
    }

    /// Uniform over `[low, high]`.
    pub fn new_inclusive(low: T, high: T) -> Self {
        assert!(low <= high, "Uniform::new_inclusive called with low > high");
        Self { low, high, inclusive: true }
    }
}

impl<T: uniform::SampleUniform + Copy> Distribution<T> for Uniform<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.low, self.high, self.inclusive)
    }
}

/// Range-sampling machinery (mirrors `rand::distributions::uniform`).
pub mod uniform {
    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Types `gen_range` can sample.
    pub trait SampleUniform: Sized {
        /// A uniform draw from `[low, high)` (or `[low, high]` when
        /// `inclusive`).
        fn sample_uniform<R: RngCore + ?Sized>(
            rng: &mut R,
            low: Self,
            high: Self,
            inclusive: bool,
        ) -> Self;
    }

    /// Range expressions accepted by `gen_range`.
    pub trait SampleRange<T> {
        /// Draws one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "gen_range: empty range");
            T::sample_uniform(rng, self.start, self.end, false)
        }
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (start, end) = self.into_inner();
            assert!(start <= end, "gen_range: empty inclusive range");
            T::sample_uniform(rng, start, end, true)
        }
    }

    macro_rules! impl_sample_uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_uniform<R: RngCore + ?Sized>(
                    rng: &mut R,
                    low: Self,
                    high: Self,
                    inclusive: bool,
                ) -> Self {
                    let lo = low as i128;
                    let hi = high as i128;
                    let span = (hi - lo + if inclusive { 1 } else { 0 }) as u128;
                    debug_assert!(span > 0);
                    // Widening-multiply range reduction: unbiased enough
                    // for the spans this workspace draws (all << 2^64).
                    let offset = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (lo + offset) as $t
                }
            }
        )*};
    }

    impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleUniform for f32 {
        fn sample_uniform<R: RngCore + ?Sized>(
            rng: &mut R,
            low: Self,
            high: Self,
            inclusive: bool,
        ) -> Self {
            let unit = if inclusive {
                (rng.next_u32() >> 8) as f32 * (1.0 / ((1u32 << 24) - 1) as f32)
            } else {
                crate::unit_f32(rng)
            };
            let v = low + (high - low) * unit;
            // Guard against rounding pushing an exclusive draw onto the
            // upper bound.
            if !inclusive && v >= high {
                low.max(high - (high - low) * f32::EPSILON)
            } else {
                v
            }
        }
    }

    impl SampleUniform for f64 {
        fn sample_uniform<R: RngCore + ?Sized>(
            rng: &mut R,
            low: Self,
            high: Self,
            inclusive: bool,
        ) -> Self {
            let unit = if inclusive {
                (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
            } else {
                crate::unit_f64(rng)
            };
            let v = low + (high - low) * unit;
            if !inclusive && v >= high {
                low.max(high - (high - low) * f64::EPSILON)
            } else {
                v
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn uniform_reuse_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let d = Uniform::new(f32::EPSILON, 1.0f32);
        for _ in 0..1000 {
            let v = d.sample(&mut rng);
            assert!((f32::EPSILON..=1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn uniform_inclusive_hits_bounds_region() {
        let mut rng = StdRng::seed_from_u64(10);
        let d = Uniform::new_inclusive(-0.3f32, 0.3);
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for _ in 0..2000 {
            let v = d.sample(&mut rng);
            assert!((-0.3..=0.3).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < -0.25 && hi > 0.25, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn standard_f32_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v: f32 = Standard.sample(&mut rng);
            assert!((0.0..1.0).contains(&v));
        }
    }
}
