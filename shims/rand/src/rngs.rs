//! Concrete generators: [`StdRng`], [`SmallRng`] and the mock
//! [`mock::StepRng`].

use crate::{RngCore, SeedableRng, SplitMix64};

/// The workspace's standard seeded generator: xoshiro256**.
///
/// Not the same algorithm (or stream) as upstream `rand`'s ChaCha12-based
/// `StdRng`, but deterministic, `Clone`-snapshottable and statistically
/// solid, which is all the workspace requires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // xoshiro's state must not be all-zero; remix through SplitMix64.
        if s == [0; 4] {
            let mut sm = SplitMix64 { state: 0 };
            for slot in &mut s {
                *slot = sm.next();
            }
        }
        Self { s }
    }
}

/// Small fast generator; in this shim it shares the [`StdRng`] engine.
pub type SmallRng = StdRng;

/// Mock generators for tests.
pub mod mock {
    use crate::RngCore;

    /// A deterministic counter "generator": yields `initial`,
    /// `initial + increment`, ... — mirrors `rand::rngs::mock::StepRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StepRng {
        value: u64,
        increment: u64,
    }

    impl StepRng {
        /// A generator counting from `initial` in steps of `increment`.
        pub fn new(initial: u64, increment: u64) -> Self {
            Self { value: initial, increment }
        }
    }

    impl RngCore for StepRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = self.value;
            self.value = self.value.wrapping_add(self.increment);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::mock::StepRng;
    use super::*;

    #[test]
    fn step_rng_counts() {
        let mut r = StepRng::new(7, 13);
        assert_eq!(r.next_u64(), 7);
        assert_eq!(r.next_u64(), 20);
        assert_eq!(r.next_u32(), 33);
    }

    #[test]
    fn zero_seed_is_remixed() {
        let mut r = StdRng::from_seed([0u8; 32]);
        assert_ne!(r.next_u64(), 0);
    }
}
