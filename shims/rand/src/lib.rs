//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, deterministic reimplementation: `StdRng` is
//! xoshiro256** seeded through SplitMix64, `gen_range`/`Uniform` use
//! widening-multiply range reduction for integers and 24/53-bit mantissa
//! scaling for floats. The *sequences* differ from upstream `rand`, but
//! every property the workspace relies on holds: seeded determinism,
//! `Clone` snapshots, uniform-enough sampling, and the 0.8 trait surface
//! (`Rng`, `RngCore`, `SeedableRng`, `SliceRandom`, `Distribution`,
//! `Uniform`, `StepRng`).

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::uniform;

/// Low-level source of randomness (mirrors `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A random value of `T` from the [`distributions::Standard`]
    /// distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// A uniform value in `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: uniform::SampleUniform,
        R: uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p not a probability: {p}");
        crate::unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds (mirrors
/// `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 and builds the
    /// generator from it.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub(crate) struct SplitMix64 {
    pub(crate) state: u64,
}

impl SplitMix64 {
    pub(crate) fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A uniform `f64` in `[0, 1)` from 53 random bits.
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A uniform `f32` in `[0, 1)` from 24 random bits.
pub(crate) fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn clone_snapshots_the_stream() {
        let mut a = StdRng::seed_from_u64(1);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f32 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let y: usize = rng.gen_range(5..8);
            assert!((5..8).contains(&y));
            let z: i32 = rng.gen_range(-4..=4);
            assert!((-4..=4).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_small_integer_ranges() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..3)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_probability_sanity() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..2000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((300..700).contains(&hits), "p=0.25 gave {hits}/2000");
    }

    #[test]
    fn fill_bytes_partial_chunk() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
