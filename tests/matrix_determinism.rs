//! The robustness matrix's reproducibility contract: the ranked report
//! is bit-identical across thread counts and SIMD legs, and any single
//! cell can be reproduced standalone by an [`AttackSession`] seeded from
//! the same stable cell ids.

use colper_repro::attack::{
    apply_adversarial_colors, AttackConfig, AttackPlan, AttackSession, Objective,
};
use colper_repro::defense::{Defense, DefensePipeline};
use colper_repro::matrix::{
    run, stable_seed, AttackEntry, MatrixConfig, ModelSet, Registry, SceneEntry,
};
use colper_repro::metrics::ConfusionMatrix;
use colper_repro::models::CloudTensors;
use colper_repro::runtime::Runtime;
use colper_repro::scene::{IndoorSceneConfig, SceneGenerator};
use colper_repro::tensor::kernels;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A reduced cross-product that still exercises every unit kind: a
/// white-box optimization, a surrogate-optimized transfer replay, the
/// closed-form noise floor, and a defense that actually perturbs.
fn registry() -> Registry {
    let parse = |s: &str| DefensePipeline::parse(s).unwrap();
    Registry {
        attacks: vec![
            AttackEntry::white_box(Objective::NonTargeted),
            AttackEntry::transfer(0.5, "pointnet", "resgcn"),
            AttackEntry::white_box(Objective::NoiseBaseline { l2_sq: 2.0 }),
        ],
        defenses: vec![parse("identity"), parse("quantize(3)")],
        models: vec!["pointnet".to_string(), "resgcn".to_string()],
        scenes: vec![SceneEntry { id: "s0".to_string(), seed: 5, points: 80 }],
    }
}

fn config() -> MatrixConfig {
    MatrixConfig {
        steps: 3,
        points: 80,
        train_points: 64,
        train_rooms_per_area: 1,
        train_epochs: 2,
        ..MatrixConfig::quick()
    }
}

#[test]
fn report_is_bit_identical_across_threads_and_simd_legs() {
    let registry = registry();
    let cfg = config();
    let was = kernels::simd_active();

    kernels::set_simd_enabled(false);
    let scalar_1 = run(&registry, &cfg, &Runtime::new(1)).unwrap().to_json();
    let scalar_4 = run(&registry, &cfg, &Runtime::new(4)).unwrap().to_json();
    assert_eq!(scalar_1, scalar_4, "thread count leaked into the report (scalar leg)");

    if kernels::simd_supported() {
        kernels::set_simd_enabled(true);
        let simd_4 = run(&registry, &cfg, &Runtime::new(4)).unwrap().to_json();
        assert_eq!(scalar_1, simd_4, "SIMD leg diverged from the scalar reference");
    }
    kernels::set_simd_enabled(was);
}

#[test]
fn a_cell_reproduces_from_a_standalone_attack_session() {
    let registry = registry();
    let cfg = config();
    let report = run(&registry, &cfg, &Runtime::new(2)).unwrap();
    let cell = report
        .cells
        .iter()
        .find(|c| c.attack == "non_targeted" && c.defense == "identity" && c.model == "pointnet")
        .expect("the cross-product covers this cell");

    // Rebuild the cell from scratch through the public API, seeding every
    // stream from the same stable cell ids the runner hashes. Nothing
    // here touches the runner: the same numbers must come out of a plain
    // AttackSession plus one defended evaluation.
    let set = ModelSet::train(&["pointnet".to_string()], &cfg);
    let model = set.get("pointnet");
    let scene = &registry.scenes[0];
    let raw =
        SceneGenerator::indoor(IndoorSceneConfig::with_points(scene.points)).generate(scene.seed);
    let view = set.view("pointnet", &raw, &scene.id);
    let tensors = CloudTensors::from_cloud(&view);

    let a_cfg = AttackConfig::non_targeted(cfg.steps);
    let plan = AttackPlan::build(model, &tensors, &a_cfg);
    let mut rng =
        StdRng::seed_from_u64(stable_seed(&["attack", "non_targeted", "pointnet", &scene.id]));
    let result = AttackSession::new(a_cfg)
        .objective(Objective::NonTargeted)
        .plan(&plan)
        .run_with_rng(model, &tensors, &mut rng);
    let adv = apply_adversarial_colors(&view, &result.adversarial_colors);

    let identity = DefensePipeline::parse("identity").unwrap();
    let mut cell_rng = StdRng::seed_from_u64(stable_seed(&[
        "cell",
        "non_targeted",
        "identity",
        "pointnet",
        &scene.id,
    ]));
    let defended = identity.apply(&adv, &mut cell_rng);
    let defended_tensors = CloudTensors::from_cloud(&defended);
    let preds = colper_repro::models::predict(model, &defended_tensors, &mut cell_rng);
    let mut cm = ConfusionMatrix::new(defended_tensors.num_classes);
    cm.update(&preds, &defended_tensors.labels);

    assert_eq!(
        cm.accuracy().to_bits(),
        cell.scene_accuracies[0].to_bits(),
        "standalone replay must be bit-identical to the matrix cell"
    );
}
