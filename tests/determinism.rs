//! Determinism contracts: equal seeds must reproduce scenes, training
//! and attacks bit-for-bit — the property the experiment harness's
//! caching and the paper-protocol splits rely on.

use colper_repro::attack::{AttackConfig, AttackPlan, AttackSession};
use colper_repro::models::{
    train_model, CloudTensors, PointNet2, PointNet2Config, RandLaNet, RandLaNetConfig, TrainConfig,
};
use colper_repro::scene::{normalize, IndoorSceneConfig, SceneGenerator, Semantic3dLikeDataset};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn scenes_are_bitwise_deterministic() {
    let gen = SceneGenerator::indoor(IndoorSceneConfig::with_points(256));
    let a = gen.generate(12345);
    let b = gen.generate(12345);
    assert_eq!(a, b);
    let out = Semantic3dLikeDataset::small();
    assert_eq!(out.scene(3), out.scene(3));
}

#[test]
fn training_is_deterministic_under_fixed_seed() {
    let build = || {
        let mut rng = StdRng::seed_from_u64(99);
        let clouds: Vec<CloudTensors> = (0..3)
            .map(|i| {
                let c = SceneGenerator::indoor(IndoorSceneConfig::with_points(128)).generate(i);
                CloudTensors::from_cloud(&normalize::pointnet_view(&c))
            })
            .collect();
        let mut model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        let report = train_model(
            &mut model,
            &clouds,
            &TrainConfig { epochs: 3, lr: 0.01, target_accuracy: 2.0 },
            &mut rng,
        );
        (report.final_loss, report.accuracy_trace)
    };
    let (loss_a, trace_a) = build();
    let (loss_b, trace_b) = build();
    assert_eq!(loss_a, loss_b);
    assert_eq!(trace_a, trace_b);
}

#[test]
fn attack_is_deterministic_under_fixed_seed() {
    let mut rng = StdRng::seed_from_u64(5);
    let cloud = SceneGenerator::indoor(IndoorSceneConfig::with_points(128)).generate(77);
    let t = CloudTensors::from_cloud(&normalize::pointnet_view(&cloud));
    let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);

    let run = || {
        let mut rng = StdRng::seed_from_u64(123);
        let attack = AttackSession::new(AttackConfig::non_targeted(10));
        attack.run_with_rng(&model, &t, &mut rng)
    };
    let a = run();
    let b = run();
    assert_eq!(a.adversarial_colors, b.adversarial_colors);
    assert_eq!(a.gain_history, b.gain_history);
    assert_eq!(a.predictions, b.predictions);
}

#[test]
fn randlanet_attack_is_deterministic_under_plan_cache() {
    // RandLA-Net keeps its per-pass random downsampling even with a
    // cached geometry plan; the outcome must still be a pure function of
    // the seed, and rebuilding the plan must not change it.
    let mut rng = StdRng::seed_from_u64(6);
    let cloud = SceneGenerator::indoor(IndoorSceneConfig::with_points(128)).generate(78);
    let t = CloudTensors::from_cloud(&normalize::pointnet_view(&cloud));
    let model = RandLaNet::new(RandLaNetConfig::tiny(13), &mut rng);

    let run = || {
        let mut rng = StdRng::seed_from_u64(321);
        let config = AttackConfig::non_targeted(6);
        let plan = AttackPlan::build(&model, &t, &config);
        AttackSession::new(config).plan(&plan).run_with_rng(&model, &t, &mut rng)
    };
    let a = run();
    let b = run();
    assert_eq!(a.adversarial_colors, b.adversarial_colors);
    assert_eq!(a.gain_history, b.gain_history);
    assert_eq!(a.predictions, b.predictions);
}

#[test]
fn different_seeds_differ() {
    let gen = SceneGenerator::indoor(IndoorSceneConfig::with_points(128));
    assert_ne!(gen.generate(1).coords, gen.generate(2).coords);
}
