//! Static-schedule contracts: an attack whose per-step graph is frozen
//! into a `TapeSchedule` and replayed must be bit-identical to the same
//! attack rebuilding the tape dynamically every step — for every victim
//! model, at any thread count, on both kernel dispatch paths. The
//! schedule is an amortization of graph construction, never a different
//! computation; and a pooled seat must carry the compiled schedule to
//! the next key-matching job.

use colper_repro::attack::{AttackConfig, AttackPlan, AttackResult, AttackSession, WarmSeat};
use colper_repro::autodiff::set_schedule_enabled;
use colper_repro::models::{
    CloudTensors, PointNet2, PointNet2Config, RandLaNet, RandLaNetConfig, ResGcn, ResGcnConfig,
    SegmentationModel,
};
use colper_repro::runtime::Runtime;
use colper_repro::scene::{normalize, IndoorSceneConfig, SceneGenerator};
use colper_repro::serve::{ModelKind, SeatPool};
use colper_repro::tensor::kernels::{set_simd_enabled, simd_active};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tensors(points: usize, seed: u64) -> CloudTensors {
    let cloud = SceneGenerator::indoor(IndoorSceneConfig::with_points(points)).generate(seed);
    CloudTensors::from_cloud(&normalize::pointnet_view(&cloud))
}

/// One attack under an explicit schedule-gate setting, restoring the
/// previous setting afterwards. Toggling mid-suite is safe precisely
/// because of the invariant under test: results are bit-identical with
/// the gate on or off.
fn run_gated<M: SegmentationModel>(
    model: &M,
    cloud: &CloudTensors,
    cfg: &AttackConfig,
    rt: &Runtime,
    scheduled: bool,
) -> (AttackResult, StdRng) {
    set_schedule_enabled(scheduled);
    let mut rng = StdRng::seed_from_u64(17);
    let result = AttackSession::new(cfg.clone()).runtime(rt).run_with_rng(model, cloud, &mut rng);
    set_schedule_enabled(true);
    (result, rng)
}

/// Scheduled replay vs dynamic rebuild for one victim across thread
/// counts and both kernel dispatch paths.
fn assert_schedule_invisible<M: SegmentationModel>(model: &M, cloud: &CloudTensors) {
    let cfg = AttackConfig::non_targeted(4);
    let was_simd = simd_active();
    for simd in [false, true] {
        set_simd_enabled(simd);
        for threads in [1usize, 4] {
            let rt = Runtime::new(threads);
            let (dynamic, rng_dyn) = run_gated(model, cloud, &cfg, &rt, false);
            let (scheduled, rng_sched) = run_gated(model, cloud, &cfg, &rt, true);
            assert_eq!(
                scheduled, dynamic,
                "scheduled replay diverged (simd={simd}, threads={threads})"
            );
            // The replay must consume exactly the randomness the dynamic
            // rebuild consumes (none, on the deterministic-eval path).
            assert_eq!(
                rng_sched, rng_dyn,
                "schedule changed RNG consumption (simd={simd}, threads={threads})"
            );
        }
    }
    set_simd_enabled(was_simd);
}

#[test]
fn pointnet2_scheduled_replay_is_bit_identical() {
    let mut rng = StdRng::seed_from_u64(0);
    let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
    assert_schedule_invisible(&model, &tensors(96, 1));
}

#[test]
fn resgcn_scheduled_replay_is_bit_identical() {
    let mut rng = StdRng::seed_from_u64(1);
    let model = ResGcn::new(ResGcnConfig::tiny(13), &mut rng);
    assert_schedule_invisible(&model, &tensors(96, 2));
}

#[test]
fn randlanet_is_never_scheduled_and_unaffected_by_the_gate() {
    // RandLA-Net's random downsampling draws from the RNG every forward
    // pass, so it reports `deterministic_eval() == false` and the attack
    // must never capture a schedule for it — the gate setting is inert.
    let mut rng = StdRng::seed_from_u64(2);
    let model = RandLaNet::new(RandLaNetConfig::tiny(13), &mut rng);
    assert!(!model.deterministic_eval());
    assert_schedule_invisible(&model, &tensors(96, 3));
}

#[test]
fn seat_pool_round_trip_keeps_the_schedule_warm() {
    set_schedule_enabled(true);
    let mut rng = StdRng::seed_from_u64(4);
    let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
    let cloud = tensors(96, 5);
    let cfg = AttackConfig::non_targeted(3);
    // The schedule key pins the plan's interned tensors by address, so
    // adoption across runs requires sharing one plan — exactly how the
    // attack service holds a plan per victim cloud.
    let plan = AttackPlan::build(&model, &cloud, &cfg);
    let session = AttackSession::new(cfg.clone()).plan(&plan);

    let mut rng_fresh = StdRng::seed_from_u64(23);
    let reference = session.run_with_rng(&model, &cloud, &mut rng_fresh);

    let pool = SeatPool::new(2);
    for round in 0..3 {
        let mut seat = pool.checkout(ModelKind::PointNet, cloud.len());
        assert_eq!(
            seat.is_scheduled(),
            round > 0,
            "round {round}: the pooled seat must carry the previous run's schedule"
        );
        let mut rng = StdRng::seed_from_u64(23);
        let seated = session.run_with_rng_seated(&model, &cloud, &mut rng, &mut seat);
        assert_eq!(seated, reference, "pooled round {round} diverged");
        assert_eq!(rng, rng_fresh, "pooled round {round} consumed different randomness");
        pool.checkin(ModelKind::PointNet, cloud.len(), seat);
    }
}

#[test]
fn plan_change_invalidates_the_captured_schedule() {
    set_schedule_enabled(true);
    let mut rng = StdRng::seed_from_u64(6);
    let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
    let cloud = tensors(96, 7);
    let cfg = AttackConfig::non_targeted(2);

    // First run captures under plan A; the second runs the same cloud
    // under a freshly built plan B (new interned tensors, new addresses).
    // The donated schedule must NOT be adopted — and the run must still
    // match a seatless reference exactly.
    let plan_a = AttackPlan::build(&model, &cloud, &cfg);
    let plan_b = AttackPlan::build(&model, &cloud, &cfg);
    let mut seat = WarmSeat::new();
    let _ = AttackSession::new(cfg.clone()).plan(&plan_a).run_with_rng_seated(
        &model,
        &cloud,
        &mut StdRng::seed_from_u64(31),
        &mut seat,
    );
    assert!(seat.is_scheduled(), "the first planned run must donate its schedule");

    let mut rng_fresh = StdRng::seed_from_u64(31);
    let reference =
        AttackSession::new(cfg.clone()).plan(&plan_b).run_with_rng(&model, &cloud, &mut rng_fresh);
    let mut rng_seated = StdRng::seed_from_u64(31);
    let seated = AttackSession::new(cfg).plan(&plan_b).run_with_rng_seated(
        &model,
        &cloud,
        &mut rng_seated,
        &mut seat,
    );
    assert_eq!(seated, reference, "a stale schedule leaked across a plan change");
    assert_eq!(rng_seated, rng_fresh);
    // The run under plan B captured its own schedule and donated it.
    assert!(seat.is_scheduled());
}

#[test]
fn eot_runs_never_capture_a_schedule() {
    set_schedule_enabled(true);
    let mut rng = StdRng::seed_from_u64(8);
    let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
    let cloud = tensors(64, 9);
    let mut cfg = AttackConfig::non_targeted(2);
    cfg.gradient_samples = 2;

    let mut seat = WarmSeat::new();
    let _ = AttackSession::new(cfg).run_with_rng_seated(
        &model,
        &cloud,
        &mut StdRng::seed_from_u64(1),
        &mut seat,
    );
    assert!(!seat.is_warm(), "EoT fan-out must not donate a tape");
    assert!(!seat.is_scheduled(), "EoT fan-out must not capture a schedule");
}
