//! GeometryPlan equivalence contracts: a forward pass with a cached
//! plan must be bit-identical to the plan-free path for every model.
//! The cache is only an amortization — never an approximation.

use colper_repro::models::{
    logits_of, logits_of_planned, CloudTensors, PointNet2, PointNet2Config, RandLaNet,
    RandLaNetConfig, ResGcn, ResGcnConfig, SegmentationModel,
};
use colper_repro::scene::{normalize, IndoorSceneConfig, SceneGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tensors(points: usize, seed: u64) -> CloudTensors {
    let cloud = SceneGenerator::indoor(IndoorSceneConfig::with_points(points)).generate(seed);
    CloudTensors::from_cloud(&normalize::pointnet_view(&cloud))
}

/// Runs both paths with identical rng seeds and demands equal logits.
fn assert_planned_matches_plan_free<M: SegmentationModel>(model: &M, t: &CloudTensors) {
    let plan = model.plan(&t.coords);
    let mut rng_a = StdRng::seed_from_u64(4242);
    let mut rng_b = StdRng::seed_from_u64(4242);
    let plain = logits_of(model, t, &mut rng_a);
    let planned = logits_of_planned(model, t, &plan, &mut rng_b);
    assert_eq!(plain, planned, "planned forward must be bit-identical");
}

#[test]
fn pointnet2_planned_forward_is_bit_identical() {
    let mut rng = StdRng::seed_from_u64(7);
    let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
    let t = tensors(128, 11);
    assert_planned_matches_plan_free(&model, &t);
}

#[test]
fn resgcn_planned_forward_is_bit_identical() {
    let mut rng = StdRng::seed_from_u64(8);
    let model = ResGcn::new(ResGcnConfig::tiny(13), &mut rng);
    let t = tensors(96, 12);
    assert_planned_matches_plan_free(&model, &t);
}

#[test]
fn randlanet_planned_forward_is_bit_identical() {
    let mut rng = StdRng::seed_from_u64(9);
    let model = RandLaNet::new(RandLaNetConfig::tiny(13), &mut rng);
    let t = tensors(128, 13);
    assert_planned_matches_plan_free(&model, &t);
}

#[test]
fn one_plan_serves_repeated_forward_passes() {
    // The attack reuses one plan for hundreds of steps; repeated planned
    // passes must keep agreeing with the plan-free baseline.
    let mut rng = StdRng::seed_from_u64(10);
    let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
    let t = tensors(96, 14);
    let plan = model.plan(&t.coords);
    let mut rng_plain = StdRng::seed_from_u64(1);
    let baseline = logits_of(&model, &t, &mut rng_plain);
    for _ in 0..3 {
        let mut rng_planned = StdRng::seed_from_u64(1);
        let again = logits_of_planned(&model, &t, &plan, &mut rng_planned);
        assert_eq!(baseline, again);
    }
}
