//! Cross-crate API integration: normalization contracts between `scene`
//! and `models`, weight serialization round trips through a model, the
//! L0 attack budget, and the transfer pipeline.

use colper_repro::attack::{
    apply_adversarial_colors, evaluate_cloud, L0Attack, L0AttackConfig, PerturbTarget,
};
use colper_repro::models::{
    logits_of, predict, CloudTensors, PointNet2, PointNet2Config, SegmentationModel,
};
use colper_repro::nn::{load_params, save_params};
use colper_repro::scene::{
    normalize, IndoorSceneConfig, S3disLikeDataset, SceneGenerator, Semantic3dLikeDataset,
};
use colper_repro::tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn every_normalized_view_feeds_every_model_shapewise() {
    let mut rng = StdRng::seed_from_u64(0);
    let cloud = SceneGenerator::indoor(IndoorSceneConfig::with_points(128)).generate(4);
    let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
    for view in [normalize::pointnet_view(&cloud), normalize::resgcn_view(&cloud)] {
        let t = CloudTensors::from_cloud(&view);
        let logits = logits_of(&model, &t, &mut rng);
        assert_eq!(logits.shape(), (128, 13));
        assert!(logits.all_finite());
    }
    let randla = normalize::randla_view(&cloud, 96, &mut rng);
    let t = CloudTensors::from_cloud(&randla);
    assert_eq!(logits_of(&model, &t, &mut rng).rows(), 96);
}

#[test]
fn model_weights_round_trip_through_checkpoint_format() {
    let mut rng = StdRng::seed_from_u64(1);
    let cloud = SceneGenerator::indoor(IndoorSceneConfig::with_points(96)).generate(5);
    let t = CloudTensors::from_cloud(&normalize::pointnet_view(&cloud));

    let mut model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
    let preds_before = predict(&model, &t, &mut rng);

    let mut buf = Vec::new();
    save_params(model.params(), &mut buf).expect("save");
    // Scramble the weights, then restore from the checkpoint.
    let scrambled: Vec<_> = model.params().param_ids().collect();
    for id in scrambled {
        let m = model.params_mut().param_mut(id);
        *m = Matrix::zeros(m.rows(), m.cols());
    }
    *model.params_mut() = load_params(buf.as_slice()).expect("load");
    let preds_after = predict(&model, &t, &mut rng);
    assert_eq!(preds_before, preds_after, "checkpoint must restore behaviour exactly");
}

#[test]
fn l0_attack_respects_budget_on_both_targets() {
    let mut rng = StdRng::seed_from_u64(2);
    let cloud = SceneGenerator::indoor(IndoorSceneConfig::with_points(150)).generate(6);
    let t = CloudTensors::from_cloud(&normalize::resgcn_view(&cloud));
    let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
    for target in [PerturbTarget::Color, PerturbTarget::Coordinate] {
        let mut cfg = L0AttackConfig::new(target);
        cfg.steps_per_round = 4;
        cfg.restore_per_round = 30;
        let result = L0Attack::new(cfg).run(&model, &t, &mut rng);
        assert!(
            result.perturbed_fraction <= 0.101,
            "{target:?}: {:.3} perturbed",
            result.perturbed_fraction
        );
    }
}

#[test]
fn transfer_pipeline_connects_scene_attack_and_models() {
    let mut rng = StdRng::seed_from_u64(3);
    let dataset = S3disLikeDataset::new(IndoorSceneConfig::with_points(96), 2);
    let room = dataset.room(colper_repro::scene::Area(5), 0);
    let rg_view = normalize::resgcn_view(&room);
    // Fake an adversarial color block (gray) and replay via Eq. 10.
    let colors = Matrix::filled(96, 3, 0.5);
    let adv = apply_adversarial_colors(&rg_view, &colors);
    let transferred = normalize::eq10_transform(&adv);
    let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
    let outcome = evaluate_cloud(&model, &transferred, &mut rng);
    assert_eq!(outcome.predictions.len(), 96);
    assert!((0.0..=1.0).contains(&outcome.accuracy));
}

#[test]
fn datasets_expose_paper_protocol() {
    let indoor = S3disLikeDataset::new(IndoorSceneConfig::with_points(64), 2);
    assert_eq!(indoor.train_rooms().len(), 10);
    assert_eq!(indoor.eval_rooms().len(), 2);
    assert_eq!(indoor.office33().num_classes, 13);

    let outdoor = Semantic3dLikeDataset::small();
    assert_eq!(outdoor.len(), 30, "Semantic3D ships 30 point clouds");
    assert_eq!(outdoor.scene(0).num_classes, 8);
}

#[test]
fn facade_reexports_are_usable() {
    // Touch one item from every re-exported crate through the facade.
    let _ = colper_repro::tensor::Matrix::identity(2);
    let mut tape = colper_repro::autodiff::Tape::new();
    let v = tape.leaf(colper_repro::tensor::Matrix::ones(1, 1));
    let s = tape.sum(v);
    tape.backward(s);
    let _ = colper_repro::geom::Point3::new(0.0, 0.0, 0.0);
    let _ = colper_repro::metrics::ConfusionMatrix::new(2);
    let _ = colper_repro::attack::AttackConfig::non_targeted(1);
}
