//! Workspace-level contract for the strided batch-of-clouds GEMM: fusing
//! N same-shape clouds into one `matmul_batched_into` call must reproduce
//! the per-cloud `matmul` loop bit for bit — on both SIMD legs, with the
//! row kernel forced and with the tiled kernel forced, and on a work-
//! stealing pool of any size.

use colper_repro::runtime::Runtime;
use colper_repro::tensor::kernels::{set_simd_enabled, simd_active, simd_supported};
use colper_repro::tensor::{gemm_mode, set_gemm_mode, GemmMode, Matrix};

fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|x| x.to_bits()).collect()
}

/// Batched and looped results for one (leg, mode, runtime) combination;
/// asserts they agree with each other before returning the bit dump.
fn run_both(clouds: &[Matrix], b: &Matrix, rt: &Runtime) -> Vec<Vec<u32>> {
    rt.install(|| {
        let (m, n) = (clouds[0].rows(), b.cols());
        let refs: Vec<&Matrix> = clouds.iter().collect();
        let mut outs = vec![Matrix::zeros(m, n); clouds.len()];
        Matrix::matmul_batched_into(&refs, b, &mut outs).unwrap();
        clouds
            .iter()
            .zip(&outs)
            .map(|(cloud, batched)| {
                let looped = cloud.matmul(b).unwrap();
                assert_eq!(
                    bits(batched),
                    bits(&looped),
                    "batched result diverged from the per-cloud loop"
                );
                bits(batched)
            })
            .collect()
    })
}

/// The shape is chosen so the tiled path actually engages: `m >= 16`,
/// `n >= 16` and `k * n` past the routing threshold, with `m` not a
/// multiple of the band height so the last band is partial.
#[test]
fn batched_gemm_matches_per_cloud_loop_across_threads_and_legs() {
    let (count, m, k, n) = (4, 48, 128, 256);
    let clouds: Vec<Matrix> = (0..count)
        .map(|i| Matrix::from_fn(m, k, |r, c| ((r * 13 + c * 3 + i) as f32 * 0.017).sin()))
        .collect();
    let b = Matrix::from_fn(k, n, |r, c| ((r * 5 + c) as f32 * 0.011).cos());

    let was_simd = simd_active();
    let was_mode = gemm_mode();

    set_simd_enabled(false);
    set_gemm_mode(GemmMode::Row);
    let reference = run_both(&clouds, &b, &Runtime::sequential());

    for simd in [false, true] {
        if simd && !simd_supported() {
            continue;
        }
        set_simd_enabled(simd);
        for mode in [GemmMode::Row, GemmMode::Tiled] {
            set_gemm_mode(mode);
            for threads in [1, 4] {
                let run = run_both(&clouds, &b, &Runtime::new(threads));
                assert_eq!(
                    run, reference,
                    "simd={simd} mode={mode:?} threads={threads} diverged from the \
                     scalar sequential row-kernel reference"
                );
            }
        }
    }

    set_simd_enabled(was_simd);
    set_gemm_mode(was_mode);
}
