//! Observability equivalence contracts: turning tracing on must not
//! change a single bit of any attack trajectory — on every victim
//! architecture and at any thread count — and a trace-off run must
//! record nothing at all. The telemetry hooks only *read* optimizer
//! state; these tests pin that property end to end.

use colper_repro::attack::{AttackConfig, AttackSession, BatchOutcome};
use colper_repro::models::{
    CloudTensors, PointNet2, PointNet2Config, RandLaNet, RandLaNetConfig, ResGcn, ResGcnConfig,
    SegmentationModel,
};
use colper_repro::obs::{self, Observer};
use colper_repro::runtime::Runtime;
use colper_repro::scene::{normalize, IndoorSceneConfig, SceneGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// Tests in this binary flip the process-global trace flag; serialize
/// them so a concurrent test never observes the wrong mode.
static FLAG_LOCK: Mutex<()> = Mutex::new(());

const STEPS: usize = 4;

fn indoor(points: usize, seed: u64) -> colper_repro::scene::PointCloud {
    SceneGenerator::indoor(IndoorSceneConfig::with_points(points)).generate(seed)
}

/// Runs a short multi-sample attack through the session API under the
/// given thread count and observer.
fn attack_on<M: SegmentationModel + ?Sized>(
    model: &M,
    t: &CloudTensors,
    threads: usize,
    observer: &Observer,
) -> BatchOutcome {
    let mut cfg = AttackConfig::non_targeted(STEPS);
    cfg.gradient_samples = 2; // exercise the EoT fan-out
    cfg.convergence_threshold = Some(0.0); // never stop early
    let rt = if threads == 1 { Runtime::sequential() } else { Runtime::new(threads) };
    AttackSession::new(cfg)
        .runtime(&rt)
        .observer(observer)
        .seed(99)
        .run(model, std::slice::from_ref(t))
}

fn assert_trace_invariant<M: SegmentationModel + ?Sized>(model: &M, t: &CloudTensors) {
    let _g = FLAG_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for threads in [1usize, 4] {
        // Trace off: even a live observer handle must hand out no
        // buffers while the global flag is down.
        obs::set_enabled(false);
        let off_observer = Observer::enabled();
        let off = attack_on(model, t, threads, &off_observer);
        assert!(
            off_observer.attack_traces().is_empty(),
            "trace-off run must record nothing ({threads} threads)"
        );

        // Trace on: same seed, same runtime — and telemetry this time.
        obs::set_enabled(true);
        let on_observer = Observer::enabled();
        let on = attack_on(model, t, threads, &on_observer);
        obs::set_enabled(false);

        assert_eq!(off, on, "tracing changed the trajectory at {threads} threads");

        let traces = on_observer.attack_traces();
        assert_eq!(traces.len(), 1, "one trace per cloud");
        assert_eq!(traces[0].cloud, 0);
        assert_eq!(traces[0].dropped, 0, "buffer was pre-sized for every step");
        assert_eq!(traces[0].steps.len(), STEPS, "one record per iteration");
        // The recorded gains are the trajectory the optimizer reported.
        let recorded: Vec<f32> = traces[0].steps.iter().map(|s| s.gain).collect();
        assert_eq!(
            recorded, on.items[0].result.gain_history,
            "telemetry must mirror gain_history bit-for-bit"
        );
        for (i, step) in traces[0].steps.iter().enumerate() {
            assert_eq!(step.step, i);
            assert!(step.gain.is_finite());
            assert!(step.grad_inf_norm >= 0.0);
            assert!(step.flipped_points <= t.len());
            // `gain` is the EoT mean over all samples while the term
            // split is sample 0's, so the decomposition only holds
            // approximately (tight when the forward pass is
            // sample-invariant, looser for RandLA's random sampling).
            let weighted = step.dist + step.weighted_hinge + step.weighted_smooth;
            assert!(
                (weighted - step.gain).abs() <= 5e-2 * step.gain.abs().max(1.0),
                "gain decomposition drifted: {} vs {}",
                weighted,
                step.gain
            );
        }
    }
}

#[test]
fn pointnet_trajectory_is_trace_invariant() {
    let mut rng = StdRng::seed_from_u64(0);
    let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
    let t = CloudTensors::from_cloud(&normalize::pointnet_view(&indoor(128, 7)));
    assert_trace_invariant(&model, &t);
}

#[test]
fn resgcn_trajectory_is_trace_invariant() {
    let mut rng = StdRng::seed_from_u64(1);
    let model = ResGcn::new(ResGcnConfig::tiny(13), &mut rng);
    let t = CloudTensors::from_cloud(&normalize::resgcn_view(&indoor(128, 8)));
    assert_trace_invariant(&model, &t);
}

#[test]
fn randla_trajectory_is_trace_invariant() {
    let mut rng = StdRng::seed_from_u64(2);
    let model = RandLaNet::new(RandLaNetConfig::tiny(13), &mut rng);
    let cloud = indoor(128, 9);
    let mut view_rng = StdRng::seed_from_u64(3);
    let t = CloudTensors::from_cloud(&normalize::randla_view(&cloud, cloud.len(), &mut view_rng));
    assert_trace_invariant(&model, &t);
}

/// A traced batch collects one trace per cloud (input order), matches
/// the untraced batch bit-for-bit, and nests into [`AttackReport`]s.
#[test]
fn batch_traces_cover_every_cloud_and_leave_the_outcome_unchanged() {
    let _g = FLAG_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut rng = StdRng::seed_from_u64(4);
    let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
    let clouds: Vec<CloudTensors> = (0..3)
        .map(|i| CloudTensors::from_cloud(&normalize::pointnet_view(&indoor(96, 20 + i))))
        .collect();
    let cfg = AttackConfig::non_targeted(3);

    obs::set_enabled(false);
    let off =
        AttackSession::new(cfg.clone()).runtime(&Runtime::new(4)).seed(11).run(&model, &clouds);

    obs::set_enabled(true);
    let observer = Observer::enabled();
    let on = AttackSession::new(cfg)
        .runtime(&Runtime::new(4))
        .observer(&observer)
        .seed(11)
        .run(&model, &clouds);
    obs::set_enabled(false);

    assert_eq!(off, on, "tracing changed the batch outcome");
    let traces = observer.attack_traces();
    let order: Vec<usize> = traces.iter().map(|t| t.cloud).collect();
    assert_eq!(order, vec![0, 1, 2], "one trace per cloud, input order");

    let reports = on.reports(&observer);
    assert_eq!(reports.len(), 3);
    for (i, report) in reports.iter().enumerate() {
        assert_eq!(report.cloud, i);
        assert_eq!(report.steps.len(), on.items[i].result.steps_run);
        assert_eq!(
            report.adversarial_accuracy.to_bits(),
            on.items[i].adversarial_accuracy.to_bits()
        );
        assert!(report.to_json().contains("\"steps\":["));
    }
}
