//! End-to-end contracts of `colperd`: intake status codes, backpressure,
//! warm-seat accounting, and the streamed `colper-trace-v1` JSONL.
//! Each test boots an in-process [`Server`] on an ephemeral port and
//! speaks plain HTTP over a [`std::net::TcpStream`].

use colper_repro::serve::client::http_request;
use colper_repro::serve::json::Json;
use colper_repro::serve::{ServeConfig, Server};

fn config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        threads: 1,
        queue_capacity: 4,
        seat_cap: 2,
    }
}

#[test]
fn healthz_stats_and_unknown_endpoints() {
    let server = Server::start(&config()).unwrap();
    let addr = server.local_addr().to_string();

    let (status, body) = http_request(&addr, "GET", "/healthz", "").unwrap();
    assert_eq!(status, 200);
    assert_eq!(Json::parse(&body).unwrap().get("status").and_then(Json::as_str), Some("ok"));

    let (status, body) = http_request(&addr, "GET", "/stats", "").unwrap();
    assert_eq!(status, 200);
    let stats = Json::parse(&body).unwrap();
    assert_eq!(stats.get("completed").and_then(Json::as_u64), Some(0));

    let (status, _) = http_request(&addr, "GET", "/nope", "").unwrap();
    assert_eq!(status, 404);
    let (status, _) = http_request(&addr, "GET", "/attack", "").unwrap();
    assert_eq!(status, 405);

    server.stop();
}

#[test]
fn attack_runs_jobs_and_reports_warm_starts() {
    let server = Server::start(&config()).unwrap();
    let addr = server.local_addr().to_string();
    let body = r#"{"points":64,"steps":2,"seed":3}"#;

    // Two identical jobs: the second lands on the first one's donated
    // seat and must still produce the identical result.
    let mut results = Vec::new();
    for round in 0..2u64 {
        let (status, payload) = http_request(&addr, "POST", "/attack", body).unwrap();
        assert_eq!(status, 200, "round {round}: {payload}");
        let result = Json::parse(&payload).unwrap();
        assert_eq!(result.get("model").and_then(Json::as_str), Some("pointnet"));
        assert_eq!(result.get("points").and_then(Json::as_u64), Some(64));
        assert_eq!(
            result.get("warm_start").and_then(Json::as_bool),
            Some(round == 1),
            "round {round} warmth"
        );
        results.push((
            result.get("steps_run").and_then(Json::as_u64),
            result.get("success_metric").map(|v| format!("{v:?}")),
            result.get("l2_sq").map(|v| format!("{v:?}")),
        ));
    }
    assert_eq!(results[0], results[1], "a warm seat must not change the attack's outcome");

    let (_, stats) = http_request(&addr, "GET", "/stats", "").unwrap();
    let stats = Json::parse(&stats).unwrap();
    assert_eq!(stats.get("completed").and_then(Json::as_u64), Some(2));
    assert_eq!(stats.get("warm_starts").and_then(Json::as_u64), Some(1));

    server.stop();
}

#[test]
fn malformed_and_invalid_requests_get_400_and_422() {
    let server = Server::start(&config()).unwrap();
    let addr = server.local_addr().to_string();

    let (status, _) = http_request(&addr, "POST", "/attack", "not json {").unwrap();
    assert_eq!(status, 400);

    let (status, body) = http_request(&addr, "POST", "/attack", r#"{"model":"bert"}"#).unwrap();
    assert_eq!(status, 422);
    assert!(body.contains("unknown model"));

    // An inline cloud that is shape-valid but value-invalid: the JSON
    // layer cannot express NaN, so out-of-range colors exercise the
    // intake's `validate_clouds` pass.
    let xyz: Vec<String> = (0..16).map(|i| format!("[{i}.0,0.0,0.0]")).collect();
    let mut colors: Vec<String> = (0..16).map(|_| "[0.5,0.5,0.5]".to_string()).collect();
    colors[4] = "[2.5,0.5,0.5]".into();
    let labels: Vec<String> = (0..16).map(|i| format!("{}", i % 13)).collect();
    let body = format!(
        r#"{{"cloud":{{"xyz":[{}],"colors":[{}],"labels":[{}]}}}}"#,
        xyz.join(","),
        colors.join(","),
        labels.join(",")
    );
    let (status, payload) = http_request(&addr, "POST", "/attack", &body).unwrap();
    assert_eq!(status, 422, "{payload}");
    assert!(payload.contains("outside"), "{payload}");

    let (_, stats) = http_request(&addr, "GET", "/stats", "").unwrap();
    let stats = Json::parse(&stats).unwrap();
    assert_eq!(stats.get("rejected_malformed").and_then(Json::as_u64), Some(1));
    assert_eq!(stats.get("rejected_invalid").and_then(Json::as_u64), Some(2));

    server.stop();
}

#[test]
fn objective_ids_run_and_unknown_ones_get_422() {
    let server = Server::start(&config()).unwrap();
    let addr = server.local_addr().to_string();

    // The transfer objective optimizes on the requested model and folds
    // the other zoo architecture in as the penalty network.
    let body = r#"{"points":64,"steps":2,"seed":3,"objective":"transfer(0.5)"}"#;
    let (status, payload) = http_request(&addr, "POST", "/attack", body).unwrap();
    assert_eq!(status, 200, "{payload}");
    let result = Json::parse(&payload).unwrap();
    assert_eq!(result.get("objective").and_then(Json::as_str), Some("transfer(0.5)"));
    assert_eq!(result.get("steps_run").and_then(Json::as_u64), Some(2));

    // The noise baseline short-circuits the optimizer but satisfies the
    // same response contract.
    let body = r#"{"points":64,"steps":2,"seed":3,"objective":"noise(4)"}"#;
    let (status, payload) = http_request(&addr, "POST", "/attack", body).unwrap();
    assert_eq!(status, 200, "{payload}");
    let result = Json::parse(&payload).unwrap();
    assert_eq!(result.get("objective").and_then(Json::as_str), Some("noise(4)"));

    let (status, payload) =
        http_request(&addr, "POST", "/attack", r#"{"objective":"warp(2)"}"#).unwrap();
    assert_eq!(status, 422, "{payload}");
    assert!(payload.contains("warp"));

    let (status, payload) = http_request(
        &addr,
        "POST",
        "/attack",
        r#"{"objective":"non_targeted","goal":"non_targeted"}"#,
    )
    .unwrap();
    assert_eq!(status, 422, "{payload}");
    assert!(payload.contains("not both"));

    server.stop();
}

#[test]
fn full_queue_answers_429_deterministically() {
    // workers: 0 → nothing drains; capacity 2 → the third job bounces.
    let server = Server::start(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 0,
        threads: 1,
        queue_capacity: 2,
        seat_cap: 1,
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    let body = r#"{"points":64,"steps":1}"#;

    // Accepted jobs get no response until a worker runs them; send them
    // from throwaway threads and only check the rejected one.
    let accepted: Vec<_> = (0..2)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                // The connection just queues; reading would block forever.
                let _ = http_request(&addr, "POST", "/attack", r#"{"points":64,"steps":1}"#);
            })
        })
        .collect();
    // Wait until both jobs are queued.
    for _ in 0..200 {
        let (_, stats) = http_request(&addr, "GET", "/stats", "").unwrap();
        if Json::parse(&stats).unwrap().get("accepted").and_then(Json::as_u64) == Some(2) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    let (status, payload) = http_request(&addr, "POST", "/attack", body).unwrap();
    assert_eq!(status, 429, "{payload}");
    assert!(payload.contains("queue full"));

    let (_, stats) = http_request(&addr, "GET", "/stats", "").unwrap();
    let stats = Json::parse(&stats).unwrap();
    assert_eq!(stats.get("accepted").and_then(Json::as_u64), Some(2));
    assert_eq!(stats.get("rejected_full").and_then(Json::as_u64), Some(1));
    assert_eq!(stats.get("queue_interactive").and_then(Json::as_u64), Some(2));

    server.stop();
    for handle in accepted {
        let _ = handle.join();
    }
}

#[test]
fn stream_endpoint_attacks_a_sharded_world_within_budget() {
    let server = Server::start(&config()).unwrap();
    let addr = server.local_addr().to_string();

    // Bad specs get the same intake discipline as /attack.
    let (status, payload) = http_request(&addr, "POST", "/stream", r#"{"tiles":99}"#).unwrap();
    assert_eq!(status, 422, "{payload}");
    assert!(payload.contains("tiles"));
    let (status, _) = http_request(&addr, "POST", "/stream", "not json {").unwrap();
    assert_eq!(status, 400);
    let (status, _) = http_request(&addr, "GET", "/stream", "").unwrap();
    assert_eq!(status, 405);

    let body = r#"{"tiles":2,"points_per_tile":64,"steps":2,"window":64,
                   "windows_per_tile":1,"budget_tiles":2,"seed":9}"#;
    let (status, payload) = http_request(&addr, "POST", "/stream", body).unwrap();
    assert_eq!(status, 200, "{payload}");
    let result = Json::parse(&payload).unwrap();
    assert_eq!(result.get("model").and_then(Json::as_str), Some("pointnet"));
    assert_eq!(result.get("priority").and_then(Json::as_str), Some("batch"));
    assert_eq!(result.get("tiles").and_then(Json::as_u64), Some(4));
    assert_eq!(result.get("windows").and_then(Json::as_u64), Some(4));
    assert_eq!(result.get("points_attacked").and_then(Json::as_u64), Some(256));
    let peak = result.get("peak_resident_bytes").and_then(Json::as_u64).unwrap();
    let budget = result.get("budget_bytes").and_then(Json::as_u64).unwrap();
    assert!(peak > 0 && peak <= budget, "peak {peak} must fit budget {budget}");
    for field in ["clean_accuracy", "adversarial_accuracy", "attack_success", "l2_sq"] {
        assert!(result.get(field).is_some(), "summary missing {field:?}");
    }

    let (_, stats) = http_request(&addr, "GET", "/stats", "").unwrap();
    let stats = Json::parse(&stats).unwrap();
    assert_eq!(stats.get("stream_completed").and_then(Json::as_u64), Some(1));
    assert_eq!(stats.get("completed").and_then(Json::as_u64), Some(1));

    server.stop();
}

#[test]
fn streamed_jobs_emit_colper_trace_v1_jsonl() {
    let server = Server::start(&config()).unwrap();
    let addr = server.local_addr().to_string();
    let body = r#"{"points":64,"steps":3,"stream":true}"#;

    let (status, payload) = http_request(&addr, "POST", "/attack", body).unwrap();
    assert_eq!(status, 200);
    let lines: Vec<&str> = payload.lines().filter(|l| !l.is_empty()).collect();
    assert!(lines.len() >= 3, "expected meta + steps + result, got {lines:?}");

    let meta = Json::parse(lines[0]).unwrap();
    assert_eq!(meta.get("type").and_then(Json::as_str), Some("meta"));
    assert_eq!(meta.get("schema").and_then(Json::as_str), Some("colper-trace-v1"));
    assert_eq!(meta.get("model").and_then(Json::as_str), Some("pointnet"));

    let steps: Vec<Json> =
        lines[1..lines.len() - 1].iter().map(|l| Json::parse(l).unwrap()).collect();
    assert!(!steps.is_empty(), "at least one step line must stream");
    for (i, step) in steps.iter().enumerate() {
        assert_eq!(step.get("type").and_then(Json::as_str), Some("step"));
        assert_eq!(step.get("cloud").and_then(Json::as_u64), Some(0));
        assert_eq!(step.get("step").and_then(Json::as_usize), Some(i));
        for field in
            ["gain", "dist", "cw_hinge", "weighted_hinge", "weighted_smooth", "grad_inf_norm"]
        {
            assert!(step.get(field).is_some(), "step line {i} missing {field:?}");
        }
        assert!(step.get("flipped_points").and_then(Json::as_u64).is_some());
        assert!(step.get("restarted").and_then(Json::as_bool).is_some());
    }

    let result = Json::parse(lines[lines.len() - 1]).unwrap();
    assert_eq!(result.get("type").and_then(Json::as_str), Some("result"));
    assert_eq!(
        result.get("steps_run").and_then(Json::as_usize),
        Some(steps.len()),
        "one streamed line per executed step"
    );

    server.stop();
}
