//! End-to-end integration: synthetic data -> trained victim -> attack ->
//! metrics, spanning every crate of the workspace.

use colper_repro::attack::{AttackConfig, AttackSession, NoiseBaseline};
use colper_repro::metrics::success_rate;
use colper_repro::models::{
    evaluate_on, train_model, CloudTensors, PointNet2, PointNet2Config, SegmentationModel,
    TrainConfig,
};
use colper_repro::scene::{normalize, IndoorClass, IndoorSceneConfig, RoomKind, SceneGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn office_tensors(seed: u64, points: usize) -> CloudTensors {
    let cfg = IndoorSceneConfig {
        room_kind: Some(RoomKind::Office),
        ..IndoorSceneConfig::with_points(points)
    };
    let cloud = SceneGenerator::indoor(cfg).generate(seed);
    CloudTensors::from_cloud(&normalize::pointnet_view(&cloud))
}

fn trained_pointnet(rng: &mut StdRng) -> (PointNet2, Vec<CloudTensors>) {
    let clouds: Vec<CloudTensors> = (0..5).map(|i| office_tensors(500 + i, 192)).collect();
    let mut model = PointNet2::new(PointNet2Config::tiny(13), rng);
    let report = train_model(
        &mut model,
        &clouds,
        &TrainConfig { epochs: 12, lr: 0.01, target_accuracy: 0.93 },
        rng,
    );
    assert!(report.final_accuracy > 0.5, "victim failed to train: {report:?}");
    (model, clouds)
}

#[test]
fn full_pipeline_nontargeted_attack_beats_noise_baseline() {
    let mut rng = StdRng::seed_from_u64(0);
    let (model, clouds) = trained_pointnet(&mut rng);
    let victim = &clouds[0];

    let clean = evaluate_on(&model, victim, &mut rng);
    let attack = AttackSession::new(AttackConfig::non_targeted(60));
    let mask = vec![true; victim.len()];
    let result = attack.run_with_rng(&model, victim, &mut rng);
    let baseline = NoiseBaseline::new(result.l2_sq).run(&model, victim, &mask, &mut rng);

    // The paper's core claim, in miniature: at matched L2, the optimized
    // color perturbation hurts far more than random noise.
    assert!(result.success_metric < clean, "attack should reduce accuracy");
    assert!(
        result.success_metric + 0.15 < baseline.success_metric,
        "COLPER ({:.3}) should clearly beat noise ({:.3}) at L2 {:.2}",
        result.success_metric,
        baseline.success_metric,
        result.l2()
    );
}

#[test]
fn full_pipeline_targeted_attack_confines_damage() {
    let mut rng = StdRng::seed_from_u64(1);
    let (model, clouds) = trained_pointnet(&mut rng);
    // Find a cloud with enough board points.
    let source = IndoorClass::Board.label();
    let target = IndoorClass::Wall.label();
    let extra: Vec<CloudTensors> = (0..10).map(|i| office_tensors(900 + i, 192)).collect();
    let victim = clouds
        .iter()
        .chain(extra.iter())
        .find(|t| t.labels.iter().filter(|&&l| l == source).count() >= 6)
        .expect("an office with a board");
    let mask: Vec<bool> = victim.labels.iter().map(|&l| l == source).collect();

    let clean_preds = colper_repro::models::predict(&model, victim, &mut rng);
    let targets = vec![target; victim.len()];
    let clean_sr = success_rate(&clean_preds, &targets, &mask);

    let attack = AttackSession::new(AttackConfig::targeted(60, target)).mask_source_class(source);
    let result = attack.run_with_rng(&model, victim, &mut rng);

    assert!(result.success_metric >= clean_sr, "SR should not decrease");
    // Out-of-band points keep their original colors byte-exact.
    for (i, &m) in mask.iter().enumerate() {
        if !m {
            for c in 0..3 {
                assert_eq!(result.adversarial_colors[(i, c)], victim.colors[(i, c)]);
            }
        }
    }
}

#[test]
fn attack_works_against_every_model_family() {
    use colper_repro::models::{RandLaNet, RandLaNetConfig, ResGcn, ResGcnConfig};

    let mut rng = StdRng::seed_from_u64(2);
    let clouds: Vec<CloudTensors> = (0..4)
        .map(|i| {
            let cfg = IndoorSceneConfig {
                room_kind: Some(RoomKind::Office),
                ..IndoorSceneConfig::with_points(160)
            };
            let cloud = SceneGenerator::indoor(cfg).generate(800 + i);
            CloudTensors::from_cloud(&normalize::resgcn_view(&cloud))
        })
        .collect();
    let tc = TrainConfig { epochs: 8, lr: 0.01, target_accuracy: 0.9 };

    let mut resgcn = ResGcn::new(ResGcnConfig::tiny(13), &mut rng);
    train_model(&mut resgcn, &clouds, &tc, &mut rng);
    let mut randla = RandLaNet::new(RandLaNetConfig::tiny(13), &mut rng);
    train_model(&mut randla, &clouds, &tc, &mut rng);

    let victim = &clouds[0];
    for (name, model) in [
        ("resgcn", &mut resgcn as &mut dyn SegmentationModel),
        ("randla", &mut randla as &mut dyn SegmentationModel),
    ] {
        let clean = evaluate_on(model, victim, &mut rng);
        let attack = AttackSession::new(AttackConfig::non_targeted(40));
        let result = attack.run_with_rng(model, victim, &mut rng);
        assert!(
            result.success_metric <= clean + 1e-6,
            "{name}: {:.3} should not exceed clean {clean:.3}",
            result.success_metric
        );
        assert!(result.adversarial_colors.all_finite(), "{name}");
    }
}

#[test]
fn attack_survives_degenerate_geometry() {
    use colper_repro::geom::Point3;
    use colper_repro::scene::PointCloud;
    // Coplanar floor-only cloud: the smoothness graph and ball queries
    // get extremely dense neighborhoods.
    let n = 80;
    let cloud = PointCloud::new(
        (0..n).map(|i| Point3::new((i % 10) as f32 * 0.3, (i / 10) as f32 * 0.3, 0.0)).collect(),
        vec![[0.5, 0.45, 0.4]; n],
        vec![1; n], // all floor
        13,
    );
    let t = CloudTensors::from_cloud(&normalize::pointnet_view(&cloud));
    let mut rng = StdRng::seed_from_u64(5);
    let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
    let result =
        AttackSession::new(AttackConfig::non_targeted(5)).run_with_rng(&model, &t, &mut rng);
    assert!(result.adversarial_colors.all_finite());
    assert!(result.gain_history.iter().all(|g| g.is_finite()));
}

#[test]
fn eot_gradient_sampling_runs_against_stochastic_victim() {
    use colper_repro::models::{RandLaNet, RandLaNetConfig};
    let mut rng = StdRng::seed_from_u64(6);
    let cloud = office_tensors(42, 128);
    let model = RandLaNet::new(RandLaNetConfig::tiny(13), &mut rng);
    let mut cfg = AttackConfig::non_targeted(4);
    cfg.gradient_samples = 3;
    cfg.record_trajectory = true;
    let result = AttackSession::new(cfg).run_with_rng(&model, &cloud, &mut rng);
    assert_eq!(result.metric_history.len(), result.steps_run);
    assert!(result.adversarial_colors.all_finite());
}

#[test]
fn attack_converges_with_paper_thresholds_given_enough_steps() {
    let mut rng = StdRng::seed_from_u64(3);
    let (model, clouds) = trained_pointnet(&mut rng);
    let victim = &clouds[1];
    // Generous threshold at 50% — the attack reliably reaches that fast.
    let mut cfg = AttackConfig::non_targeted(80);
    cfg.convergence_threshold = Some(0.5);
    let attack = AttackSession::new(cfg);
    let result = attack.run_with_rng(&model, victim, &mut rng);
    assert!(result.converged, "expected convergence, got {:.3}", result.success_metric);
    assert!(result.steps_run < 80, "early stop expected");
}
