//! Parallel-equivalence contracts for the work-stealing runtime: an
//! attack scheduled on a pool of any size must reproduce the sequential
//! run bit-for-bit — on every victim architecture, and at every layer
//! the pool reaches (tensor kernels, k-NN queries, EoT sample fan-out,
//! per-cloud batch scheduling).

use colper_repro::attack::{AttackConfig, AttackPlan, AttackSession};
use colper_repro::models::{
    CloudTensors, PointNet2, PointNet2Config, RandLaNet, RandLaNetConfig, ResGcn, ResGcnConfig,
    SegmentationModel,
};
use colper_repro::runtime::Runtime;
use colper_repro::scene::{normalize, IndoorSceneConfig, SceneGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn indoor(points: usize, seed: u64) -> colper_repro::scene::PointCloud {
    SceneGenerator::indoor(IndoorSceneConfig::with_points(points)).generate(seed)
}

/// Runs a short multi-sample attack on `model` under `rt` and returns
/// the full result for comparison.
fn attack_on<M: SegmentationModel>(
    model: &M,
    t: &CloudTensors,
    rt: Runtime,
) -> colper_repro::attack::AttackResult {
    let mut cfg = AttackConfig::non_targeted(4);
    cfg.gradient_samples = 2; // exercise the EoT fan-out
    cfg.convergence_threshold = Some(0.0); // never stop early
    let plan = AttackPlan::build(model, t, &cfg);
    let mut rng = StdRng::seed_from_u64(99);
    AttackSession::new(cfg).runtime(&rt).plan(&plan).run_with_rng(model, t, &mut rng)
}

fn assert_thread_count_invariant<M: SegmentationModel>(model: &M, t: &CloudTensors) {
    let seq = attack_on(model, t, Runtime::sequential());
    for threads in [2, 4] {
        let par = attack_on(model, t, Runtime::new(threads));
        assert_eq!(
            seq.adversarial_colors, par.adversarial_colors,
            "colors diverged at {threads} threads"
        );
        assert_eq!(seq.gain_history, par.gain_history, "gains diverged at {threads} threads");
        assert_eq!(seq.predictions, par.predictions, "preds diverged at {threads} threads");
        assert_eq!(seq.l2_sq.to_bits(), par.l2_sq.to_bits());
    }
}

#[test]
fn pointnet_attack_is_thread_count_invariant() {
    let mut rng = StdRng::seed_from_u64(0);
    let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
    let t = CloudTensors::from_cloud(&normalize::pointnet_view(&indoor(128, 7)));
    assert_thread_count_invariant(&model, &t);
}

#[test]
fn resgcn_attack_is_thread_count_invariant() {
    let mut rng = StdRng::seed_from_u64(1);
    let model = ResGcn::new(ResGcnConfig::tiny(13), &mut rng);
    let t = CloudTensors::from_cloud(&normalize::resgcn_view(&indoor(128, 8)));
    assert_thread_count_invariant(&model, &t);
}

#[test]
fn randla_attack_is_thread_count_invariant() {
    let mut rng = StdRng::seed_from_u64(2);
    let model = RandLaNet::new(RandLaNetConfig::tiny(13), &mut rng);
    let cloud = indoor(128, 9);
    let mut view_rng = StdRng::seed_from_u64(3);
    let t = CloudTensors::from_cloud(&normalize::randla_view(&cloud, cloud.len(), &mut view_rng));
    assert_thread_count_invariant(&model, &t);
}

#[test]
fn batch_outcome_is_thread_count_invariant() {
    let mut rng = StdRng::seed_from_u64(4);
    let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
    let clouds: Vec<CloudTensors> = (0..3)
        .map(|i| CloudTensors::from_cloud(&normalize::pointnet_view(&indoor(96, 20 + i))))
        .collect();
    let cfg = AttackConfig::non_targeted(3);
    let seq = AttackSession::new(cfg.clone())
        .seed(11)
        .runtime(&Runtime::sequential())
        .run(&model, &clouds);
    let par = AttackSession::new(cfg).seed(11).runtime(&Runtime::new(4)).run(&model, &clouds);
    assert_eq!(seq.items.len(), par.items.len());
    for (a, b) in seq.items.iter().zip(&par.items) {
        assert_eq!(a.result.adversarial_colors, b.result.adversarial_colors);
        assert_eq!(a.result.gain_history, b.result.gain_history);
        assert_eq!(a.clean_accuracy.to_bits(), b.clean_accuracy.to_bits());
        assert_eq!(a.adversarial_miou.to_bits(), b.adversarial_miou.to_bits());
    }
}

/// A full attack — EoT fan-out, parallel runtime and all — must return
/// the same colors, gains and predictions bit for bit whether the hot
/// kernels dispatched to the AVX2 path or the pinned-order scalar
/// reference. (Vacuous on hosts without AVX2+FMA.)
#[test]
fn attack_result_bit_identical_across_dispatch_paths() {
    use colper_repro::tensor::kernels::{set_simd_enabled, simd_active, simd_supported};
    let mut rng = StdRng::seed_from_u64(6);
    let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
    let t = CloudTensors::from_cloud(&normalize::pointnet_view(&indoor(96, 40)));

    let was = simd_active();
    set_simd_enabled(false);
    let scalar_run = attack_on(&model, &t, Runtime::new(3));
    set_simd_enabled(true);
    let simd_run = attack_on(&model, &t, Runtime::new(3));
    set_simd_enabled(was);

    if simd_supported() {
        assert_eq!(scalar_run.adversarial_colors, simd_run.adversarial_colors);
        assert_eq!(scalar_run.gain_history, simd_run.gain_history);
        assert_eq!(scalar_run.predictions, simd_run.predictions);
        assert_eq!(scalar_run.l2_sq.to_bits(), simd_run.l2_sq.to_bits());
    }
}

#[test]
fn ambient_runtime_is_inherited_by_default_session() {
    // A default `AttackSession` must pick up the runtime the caller
    // installed — and still produce the sequential answer bit-for-bit.
    let mut rng = StdRng::seed_from_u64(5);
    let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
    let t = CloudTensors::from_cloud(&normalize::pointnet_view(&indoor(96, 30)));
    let seq = attack_on(&model, &t, Runtime::sequential());
    let pool = Runtime::new(3);
    let ambient = pool.install(|| attack_on(&model, &t, Runtime::sequential()));
    assert_eq!(seq.adversarial_colors, ambient.adversarial_colors);
    assert_eq!(seq.gain_history, ambient.gain_history);
}
