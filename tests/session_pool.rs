//! Warm-seat contracts: an attack run on a pooled [`WarmSeat`] — cold
//! or resuming another run's donated tape — must be bit-identical to a
//! seatless run, across thread counts and repeated reuse. The seat
//! recycles arenas, never state; warmth is an amortization, not an
//! approximation.

use colper_repro::attack::{AttackConfig, AttackSession, WarmSeat};
use colper_repro::models::{CloudTensors, PointNet2, PointNet2Config};
use colper_repro::runtime::Runtime;
use colper_repro::scene::{normalize, IndoorSceneConfig, SceneGenerator};
use colper_repro::serve::{ModelKind, SeatPool};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tensors(points: usize, seed: u64) -> CloudTensors {
    let cloud = SceneGenerator::indoor(IndoorSceneConfig::with_points(points)).generate(seed);
    CloudTensors::from_cloud(&normalize::pointnet_view(&cloud))
}

#[test]
fn seated_runs_are_bit_identical_to_fresh_runs_across_threads() {
    let mut rng = StdRng::seed_from_u64(0);
    let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
    let cloud = tensors(96, 1);
    let cfg = AttackConfig::non_targeted(3);

    let mut rng_fresh = StdRng::seed_from_u64(5);
    let reference = AttackSession::new(cfg.clone()).run_with_rng(&model, &cloud, &mut rng_fresh);

    for threads in [1usize, 4] {
        let rt = Runtime::new(threads);
        let mut seat = WarmSeat::new();
        // Three consecutive runs on the same seat: the first is cold,
        // the rest resume the donated tape.
        for run in 0..3u64 {
            let mut rng_seated = StdRng::seed_from_u64(5);
            let seated = AttackSession::new(cfg.clone()).runtime(&rt).run_with_rng_seated(
                &model,
                &cloud,
                &mut rng_seated,
                &mut seat,
            );
            assert_eq!(
                seated, reference,
                "seated run {run} on {threads} threads diverged from the fresh run"
            );
            assert_eq!(rng_seated, rng_fresh, "seated runs must consume the same randomness");
        }
        assert_eq!(seat.runs(), 3);
        assert_eq!(seat.warm_starts(), 2, "all but the first run must start warm");
        assert!(seat.is_warm(), "the seat holds the donated tape after a run");
    }
}

#[test]
fn seat_pool_round_trip_matches_and_reports_warmth() {
    let mut rng = StdRng::seed_from_u64(2);
    let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
    let cloud = tensors(96, 3);
    let cfg = AttackConfig::non_targeted(2);

    let mut rng_fresh = StdRng::seed_from_u64(9);
    let reference = AttackSession::new(cfg.clone()).run_with_rng(&model, &cloud, &mut rng_fresh);

    let pool = SeatPool::new(2);
    for round in 0..2 {
        let mut seat = pool.checkout(ModelKind::PointNet, cloud.len());
        assert_eq!(seat.is_warm(), round > 0, "round {round}: warmth follows pool reuse");
        let mut rng = StdRng::seed_from_u64(9);
        let seated = AttackSession::new(cfg.clone())
            .run_with_rng_seated(&model, &cloud, &mut rng, &mut seat);
        assert_eq!(seated, reference, "pooled round {round} diverged");
        pool.checkin(ModelKind::PointNet, cloud.len(), seat);
    }
    assert_eq!(pool.idle(), 1);
}

#[test]
fn multi_sample_attacks_leave_the_seat_untouched() {
    // EoT attacks (gradient_samples > 1) take the fresh-session path;
    // the seat must pass through unused rather than donate a stale tape.
    let mut rng = StdRng::seed_from_u64(4);
    let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
    let cloud = tensors(64, 7);
    let mut cfg = AttackConfig::non_targeted(2);
    cfg.gradient_samples = 2;

    let mut seat = WarmSeat::new();
    let mut rng_run = StdRng::seed_from_u64(1);
    let _ = AttackSession::new(cfg).run_with_rng_seated(&model, &cloud, &mut rng_run, &mut seat);
    assert!(!seat.is_warm(), "EoT runs must not donate a tape");
    assert_eq!(seat.warm_starts(), 0);
}
