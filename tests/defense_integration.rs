//! Integration of the defense crate with the attack pipeline: the full
//! attack → defend → re-evaluate loop, plus detector behavior on real
//! COLPER samples.

use colper_repro::attack::{apply_adversarial_colors, AttackConfig, AttackSession};
use colper_repro::defense::{
    adversarial_training, AdvTrainConfig, Defense, Smooth, SmoothnessDetector,
};
use colper_repro::models::{
    evaluate_on, train_model, CloudTensors, PointNet2, PointNet2Config, TrainConfig,
};
use colper_repro::scene::{normalize, IndoorSceneConfig, PointCloud, RoomKind, SceneGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn office_cloud(seed: u64, points: usize) -> PointCloud {
    let cfg = IndoorSceneConfig {
        room_kind: Some(RoomKind::Office),
        ..IndoorSceneConfig::with_points(points)
    };
    normalize::pointnet_view(&SceneGenerator::indoor(cfg).generate(seed))
}

fn trained_victim(rng: &mut StdRng) -> (PointNet2, Vec<PointCloud>) {
    let clouds: Vec<PointCloud> = (0..5).map(|i| office_cloud(6000 + i, 176)).collect();
    let tensors: Vec<CloudTensors> = clouds.iter().map(CloudTensors::from_cloud).collect();
    let mut model = PointNet2::new(PointNet2Config::tiny(13), rng);
    train_model(
        &mut model,
        &tensors,
        &TrainConfig { epochs: 10, lr: 0.01, target_accuracy: 0.92 },
        rng,
    );
    (model, clouds)
}

#[test]
fn transform_defenses_partially_restore_accuracy() {
    let mut rng = StdRng::seed_from_u64(0);
    let (model, clouds) = trained_victim(&mut rng);
    let victim_cloud = &clouds[0];
    let t = CloudTensors::from_cloud(victim_cloud);

    let attack = AttackSession::new(AttackConfig::non_targeted(90));
    let result = attack.run_with_rng(&model, &t, &mut rng);
    let adv_cloud = apply_adversarial_colors(victim_cloud, &result.adversarial_colors);
    let attacked_acc = evaluate_on(&model, &CloudTensors::from_cloud(&adv_cloud), &mut rng);

    // Color smoothing must never make the attacked result worse, and when
    // the attack truly bit (accuracy below 45%) it should claw back a
    // meaningful share: the attack's fine-grained color pattern is what
    // smoothing removes.
    let defended = Smooth::new(8).apply(&adv_cloud, &mut rng);
    let defended_acc = evaluate_on(&model, &CloudTensors::from_cloud(&defended), &mut rng);
    assert!(
        defended_acc + 0.03 >= attacked_acc,
        "smoothing should not hurt: {attacked_acc} -> {defended_acc}"
    );
    if attacked_acc < 0.45 {
        assert!(
            defended_acc > attacked_acc + 0.05,
            "smoothing should help a strong attack: {attacked_acc} -> {defended_acc}"
        );
    }
}

#[test]
fn detector_calibrated_on_clean_rooms_accepts_clean_rooms() {
    // Small synthetic rooms have wide roughness variance, so calibrate
    // on more clouds with a generous z (the harness's operating point).
    let clouds: Vec<PointCloud> = (0..10).map(|i| office_cloud(7000 + i, 192)).collect();
    let detector = SmoothnessDetector::calibrate(&clouds[..8], 6, 4.0);
    assert!(!detector.is_adversarial(&clouds[8]));
    assert!(!detector.is_adversarial(&clouds[9]));
}

#[test]
fn smoothness_penalty_reduces_detectability() {
    // The cross-experiment claim from results/defenses.txt, as a test:
    // λ2=0 attacks score rougher than λ2=1 attacks.
    let mut rng = StdRng::seed_from_u64(1);
    let (model, clouds) = trained_victim(&mut rng);
    let victim_cloud = &clouds[1];
    let t = CloudTensors::from_cloud(victim_cloud);

    let smooth_cfg = AttackConfig::non_targeted(40);
    let smooth_result = AttackSession::new(smooth_cfg.clone()).run_with_rng(&model, &t, &mut rng);
    let mut rough_cfg = smooth_cfg;
    rough_cfg.lambda2 = 0.0;
    let rough_result = AttackSession::new(rough_cfg).run_with_rng(&model, &t, &mut rng);

    let calib: Vec<PointCloud> = (0..4).map(|i| office_cloud(8000 + i, 176)).collect();
    let detector = SmoothnessDetector::calibrate(&calib, 6, 3.0);
    let smooth_score =
        detector.score(&apply_adversarial_colors(victim_cloud, &smooth_result.adversarial_colors));
    let rough_score =
        detector.score(&apply_adversarial_colors(victim_cloud, &rough_result.adversarial_colors));
    assert!(
        rough_score >= smooth_score,
        "λ2=0 should look rougher: {rough_score} vs {smooth_score}"
    );
}

#[test]
fn adversarial_training_pipeline_runs_end_to_end() {
    let mut rng = StdRng::seed_from_u64(2);
    let clouds: Vec<CloudTensors> =
        (0..3).map(|i| CloudTensors::from_cloud(&office_cloud(9000 + i, 128))).collect();
    let mut model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
    let cfg = AdvTrainConfig { epochs: 2, attack_steps: 4, ..Default::default() };
    let report = adversarial_training(&mut model, &clouds, &cfg, &mut rng);
    assert_eq!(report.adversarial_updates + report.clean_updates, 6);
    assert!(report.total_seconds > 0.0);
    assert!((0.0..=1.0).contains(&report.final_clean_accuracy));
}
