//! Tape-reuse equivalence contracts: a session whose tape is recycled
//! with [`Forward::reset`] between attack-style steps must produce
//! values and gradients bit-identical to a fresh tape per step, and must
//! stop taking new buffers from the pool once steady state is reached.
//! Reuse is only an amortization — never an approximation.

use colper_repro::models::{
    bind_input_planned, CloudTensors, ColorBinding, GeometryPlan, PointNet2, PointNet2Config,
    RandLaNet, RandLaNetConfig, ResGcn, ResGcnConfig, SegmentationModel,
};
use colper_repro::nn::Forward;
use colper_repro::runtime::Runtime;
use colper_repro::scene::{normalize, IndoorSceneConfig, SceneGenerator};
use colper_repro::tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

const STEPS: usize = 4;

fn tensors(points: usize, seed: u64) -> CloudTensors {
    let cloud = SceneGenerator::indoor(IndoorSceneConfig::with_points(points)).generate(seed);
    CloudTensors::from_cloud(&normalize::pointnet_view(&cloud))
}

/// The cloud with its colors nudged, standing in for one attack update.
fn step_tensors(base: &CloudTensors, step: usize) -> CloudTensors {
    let delta = 0.01 * step as f32;
    let mut t = base.clone();
    t.colors = t.colors.map(|v| (v + delta).clamp(0.0, 1.0));
    t
}

/// Logits, color gradient, loss, and (hits, misses) pool stats per step.
type StepRecord = (Matrix, Matrix, f32, (u64, u64));

/// Runs `STEPS` forward+backward passes. With `reuse` the same session is
/// reset between steps; without it every step gets a fresh session.
fn trajectory<M: SegmentationModel>(
    model: &M,
    base: &CloudTensors,
    plan: &GeometryPlan,
    reuse: bool,
) -> Vec<StepRecord> {
    let mut session = Forward::new(model.params(), false);
    let mut out = Vec::with_capacity(STEPS);
    for step in 0..STEPS {
        if reuse {
            session.reset();
        } else {
            session = Forward::new(model.params(), false);
        }
        let t = step_tensors(base, step);
        let input = bind_input_planned(&mut session.tape, &t, ColorBinding::Leaf, plan);
        let color = input.color;
        let mut rng = StdRng::seed_from_u64(900 + step as u64);
        let logits = model.forward(&mut session, &input, &mut rng);
        let loss = session.tape.softmax_cross_entropy(logits, &t.labels);
        session.tape.backward(loss);
        out.push((
            session.tape.value(logits).clone(),
            session.tape.grad(color).expect("color must receive a gradient").clone(),
            session.tape.value(loss)[(0, 0)],
            session.tape.pool_stats(),
        ));
    }
    out
}

fn assert_reuse_is_bit_identical<M: SegmentationModel>(model: &M, base: &CloudTensors) {
    let plan = model.plan(&base.coords);
    let mut reference: Option<Vec<(Matrix, Matrix, f32)>> = None;
    for threads in [1usize, 4] {
        let rt = Runtime::new(threads);
        let (fresh, reused) = rt.install(|| {
            (trajectory(model, base, &plan, false), trajectory(model, base, &plan, true))
        });
        for (step, (f, r)) in fresh.iter().zip(&reused).enumerate() {
            assert_eq!(f.0, r.0, "logits diverge at step {step} with {threads} threads");
            assert_eq!(f.1, r.1, "color grad diverges at step {step} with {threads} threads");
            assert_eq!(
                f.2.to_bits(),
                r.2.to_bits(),
                "loss diverges at step {step} with {threads} threads"
            );
        }
        // Steady state: once every buffer shape has been seen, further
        // steps must be answered entirely from the pool.
        let (_, misses_step2) = reused[2].3;
        let (_, misses_step3) = reused[3].3;
        assert_eq!(
            misses_step2, misses_step3,
            "pool misses grew after steady state with {threads} threads"
        );
        // The reused trajectory must also agree across thread counts.
        let slim: Vec<_> = reused.into_iter().map(|(l, g, v, _)| (l, g, v)).collect();
        match &reference {
            None => reference = Some(slim),
            Some(r) => assert_eq!(r, &slim, "trajectory changed with {threads} threads"),
        }
    }
}

/// The kernel dispatch path (pinned-order scalar vs AVX2) must be
/// invisible: a full forward+backward trajectory run entirely on the
/// scalar reference must match the SIMD path bit for bit — values,
/// gradients and losses. (On hosts without AVX2+FMA both runs take the
/// scalar path and the assertion is vacuous.)
#[test]
fn gradients_bit_identical_across_dispatch_paths() {
    use colper_repro::tensor::kernels::{set_simd_enabled, simd_active, simd_supported};
    let mut rng = StdRng::seed_from_u64(24);
    let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
    let t = tensors(96, 34);
    let plan = model.plan(&t.coords);

    let was = simd_active();
    set_simd_enabled(false);
    let scalar_run = trajectory(&model, &t, &plan, true);
    set_simd_enabled(true);
    let simd_run = trajectory(&model, &t, &plan, true);
    set_simd_enabled(was);

    if simd_supported() {
        for (step, (s, v)) in scalar_run.iter().zip(&simd_run).enumerate() {
            assert_eq!(s.0, v.0, "logits diverge across dispatch paths at step {step}");
            assert_eq!(s.1, v.1, "color grad diverges across dispatch paths at step {step}");
            assert_eq!(s.2.to_bits(), v.2.to_bits(), "loss diverges across dispatch paths");
        }
    }
}

#[test]
fn pointnet2_reused_tape_matches_fresh_tapes() {
    let mut rng = StdRng::seed_from_u64(21);
    let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
    let t = tensors(96, 31);
    assert_reuse_is_bit_identical(&model, &t);
}

#[test]
fn resgcn_reused_tape_matches_fresh_tapes() {
    let mut rng = StdRng::seed_from_u64(22);
    let model = ResGcn::new(ResGcnConfig::tiny(13), &mut rng);
    let t = tensors(80, 32);
    assert_reuse_is_bit_identical(&model, &t);
}

#[test]
fn randlanet_reused_tape_matches_fresh_tapes() {
    let mut rng = StdRng::seed_from_u64(23);
    let model = RandLaNet::new(RandLaNetConfig::tiny(13), &mut rng);
    let t = tensors(96, 33);
    assert_reuse_is_bit_identical(&model, &t);
}
