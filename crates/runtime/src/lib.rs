//! Work-stealing compute runtime for the COLPER reproduction.
//!
//! This crate provides [`Runtime`], a handle to a persistent pool of worker
//! threads with per-worker work-stealing deques. It exists because the build
//! environment is fully offline (no rayon), and because COLPER's determinism
//! guarantees require tighter control over reduction order than a generic
//! pool gives us.
//!
//! # Design
//!
//! * **One pool, many handles.** [`Runtime`] is a cheap [`Clone`] wrapper
//!   around an `Arc`'d pool. [`Runtime::sequential`] carries no pool at all
//!   and runs every primitive inline, which keeps tests and single-threaded
//!   CLI runs on the exact same code path as parallel runs.
//! * **Work stealing.** Parallel calls split work into chunks and distribute
//!   them round-robin over per-worker deques. Workers pop from the front of
//!   their own deque and steal from the back of others, so a pathologically
//!   skewed workload (one huge item among many tiny ones) no longer idles
//!   whole threads the way static `chunks()` scheduling did. The submitting
//!   thread participates in the work instead of blocking.
//! * **Determinism.** Every primitive produces results that are bit-identical
//!   to sequential execution. [`Runtime::par_for`], [`Runtime::par_map`] and
//!   [`Runtime::par_chunks_mut`] write to disjoint output slots, so
//!   scheduling cannot affect values. [`Runtime::par_reduce`] fixes its chunk
//!   boundaries as a function of `(n, grain)` only — never of the thread
//!   count — folds within each chunk in index order, and folds the partials
//!   in chunk order. The sequential path executes the *same* chunked
//!   reduction, so `Runtime::sequential()` and `Runtime::new(n)` agree to
//!   the last bit for any `n`.
//! * **Nested use runs inline.** Code executing inside a pool task that calls
//!   another `par_*` primitive runs it sequentially on the current thread.
//!   This cannot deadlock, never oversubscribes the machine, and keeps the
//!   outer level of parallelism (the widest loop) saturated.
//! * **Panic safety.** Panics inside parallel closures are caught on the
//!   executing thread, the first payload is stored, every task still
//!   completes its latch, and the payload is resumed on the submitting
//!   thread once the parallel region has fully quiesced. The pool survives
//!   and stays usable.
//!
//! # Safety
//!
//! This is the only crate in the workspace that contains `unsafe` code (all
//! other crates `#![forbid(unsafe_code)]`). The unsafe surface is small and
//! fully encapsulated:
//!
//! * Task closures are lifetime-erased raw pointers into the submitting
//!   thread's stack frame. Soundness comes from the latch protocol: the
//!   submitting call does not return (or unwind) until the completion latch
//!   reports that every task has finished executing, so the closure strictly
//!   outlives every dereference. The latch itself is `Arc`'d and owned by
//!   each task, so late latch operations never touch freed memory.
//! * [`Runtime::par_map`] writes into `MaybeUninit` slots through a shared
//!   pointer; disjointness is guaranteed because each index is produced by
//!   exactly one chunk. If a closure panics the partially-initialised buffer
//!   is leaked rather than dropped (values produced before the panic are not
//!   destructed); the panic itself still propagates.
//! * [`Runtime::par_chunks_mut`] re-slices one exclusive borrow into
//!   provably disjoint sub-slices, one per chunk index.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt;
use std::mem::{ManuallyDrop, MaybeUninit};
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

thread_local! {
    /// True while this thread is executing a pool task (workers permanently,
    /// submitters while participating). Any `par_*` call made in that state
    /// runs inline.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
    /// Ambient runtime installed by [`Runtime::install`]; sequential by
    /// default. Deep layers (tensor ops, geometry queries) consult this
    /// instead of threading a handle through every signature.
    static AMBIENT: RefCell<Runtime> = RefCell::new(Runtime::sequential());
}

/// Locks a mutex, ignoring poisoning: the pool catches every panic before it
/// can unwind through a held lock, and the guarded state stays consistent
/// even when a recorded panic is later resumed on the submitting thread.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn in_pool() -> bool {
    IN_POOL.with(Cell::get)
}

/// Restores the previous `IN_POOL` state on drop so panics unwind cleanly.
struct PoolGuard {
    prev: bool,
}

impl PoolGuard {
    fn enter() -> Self {
        let prev = IN_POOL.with(|f| f.replace(true));
        PoolGuard { prev }
    }
}

impl Drop for PoolGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_POOL.with(|f| f.set(prev));
    }
}

/// Completion latch shared by the submitting thread and every task of one
/// parallel region. `Arc`'d so a worker finishing the final task can signal
/// completion even if the submitter has already been woken spuriously.
struct Latch {
    remaining: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    done: Mutex<bool>,
    cv: Condvar,
}

impl Latch {
    fn new(count: usize) -> Arc<Self> {
        Arc::new(Latch {
            remaining: AtomicUsize::new(count),
            panic: Mutex::new(None),
            done: Mutex::new(false),
            cv: Condvar::new(),
        })
    }

    /// Records the first panic payload; later ones are dropped.
    fn record_panic(&self, payload: Box<dyn Any + Send>) {
        lock(&self.panic).get_or_insert(payload);
    }

    fn complete_one(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let mut done = lock(&self.done);
            *done = true;
            self.cv.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        self.remaining.load(Ordering::Acquire) == 0
    }

    fn wait(&self) {
        let mut done = lock(&self.done);
        while !*done {
            done = self.cv.wait(done).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        lock(&self.panic).take()
    }
}

/// One schedulable chunk of a parallel region.
///
/// `job` is a lifetime-erased pointer to the chunk closure living on the
/// submitting thread's stack; see the module-level safety notes.
struct Task {
    job: *const (dyn Fn(usize) + Sync),
    latch: Arc<Latch>,
    index: usize,
}

// SAFETY: the raw closure pointer is only dereferenced while the submitting
// stack frame is pinned by the latch protocol, and the closure itself is
// required to be `Sync` (shared across threads) at submission time.
unsafe impl Send for Task {}

fn execute(task: Task) {
    // SAFETY: the submitting call waits on `task.latch` before returning, so
    // the closure behind `job` is alive for the duration of this call.
    let job = unsafe { &*task.job };
    if let Err(payload) = catch_unwind(AssertUnwindSafe(|| job(task.index))) {
        task.latch.record_panic(payload);
    }
    task.latch.complete_one();
}

/// State shared between the pool handle and its worker threads.
struct Shared {
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Submission epoch: bumped (under the lock) after tasks are pushed, so
    /// a worker that scanned the deques before the push cannot sleep through
    /// the wake-up (it re-scans whenever the epoch moved).
    epoch: Mutex<u64>,
    wake: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    /// Worker-side scan: own deque front first (cache-friendly FIFO), then
    /// steal from the back of the other deques.
    fn find_task(&self, own: usize) -> Option<Task> {
        let n = self.deques.len();
        if let Some(t) = lock(&self.deques[own]).pop_front() {
            colper_obs::worker_task(own);
            return Some(t);
        }
        for off in 1..n {
            if let Some(t) = lock(&self.deques[(own + off) % n]).pop_back() {
                colper_obs::worker_task(own);
                colper_obs::counters::RUNTIME_STEALS.incr();
                return Some(t);
            }
        }
        None
    }

    /// Submitter-side scan: steal from any deque while waiting on a latch.
    fn steal_any(&self) -> Option<Task> {
        for deque in &self.deques {
            if let Some(t) = lock(deque).pop_back() {
                return Some(t);
            }
        }
        None
    }
}

fn worker_loop(shared: Arc<Shared>) {
    IN_POOL.with(|f| f.set(true));
    // Every worker scans every deque, so a single index-0 start would do;
    // staggering by thread id just spreads initial contention.
    let own = std::thread::current()
        .name()
        .and_then(|n| n.rsplit('-').next())
        .and_then(|n| n.parse::<usize>().ok())
        .unwrap_or(0);
    let mut seen_epoch = 0u64;
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if let Some(task) = shared.find_task(own) {
            execute(task);
            continue;
        }
        let mut epoch = lock(&shared.epoch);
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if *epoch == seen_epoch {
            // No submission since our (empty) scan: park until one arrives.
            epoch = shared.wake.wait(epoch).unwrap_or_else(PoisonError::into_inner);
        }
        seen_epoch = *epoch;
    }
}

/// The worker pool proper. Dropping it shuts the workers down and joins them.
struct Pool {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Total parallelism including the submitting thread (= workers + 1).
    threads: usize,
}

impl Pool {
    fn new(threads: usize) -> Pool {
        debug_assert!(threads >= 2);
        let workers = threads - 1;
        let shared = Arc::new(Shared {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            epoch: Mutex::new(0),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("colper-runtime-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("colper-runtime: failed to spawn worker thread")
            })
            .collect();
        Pool { shared, handles: Mutex::new(handles), threads }
    }

    /// Runs `job(chunk_index)` for every `chunk_index in 0..chunks` across
    /// the pool, participating from the calling thread, and propagates the
    /// first panic after all chunks have quiesced.
    ///
    /// `max_tasks` bounds how many pool tasks the region may occupy at
    /// once: task `t` executes chunks `t, t + tasks, t + 2·tasks, …` in
    /// increasing chunk order. The chunk ranges themselves never change,
    /// so a budgeted run computes bit-identical results — the cap only
    /// limits how many workers the region can draw from the shared pool.
    fn run_chunks(&self, chunks: usize, max_tasks: usize, job: &(dyn Fn(usize) + Sync)) {
        let tasks = chunks.min(max_tasks).max(1);
        let run_strided = move |t: usize| {
            let mut c = t;
            while c < chunks {
                job(c);
                c += tasks;
            }
        };
        let latch = Latch::new(tasks);
        // SAFETY: erases the closure's borrow lifetime. The latch wait below
        // guarantees this frame outlives every dereference of the pointer.
        let job: *const (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(
                &run_strided,
            )
        };
        let workers = self.shared.deques.len();
        for t in 0..tasks {
            let task = Task { job, latch: Arc::clone(&latch), index: t };
            lock(&self.shared.deques[t % workers]).push_back(task);
        }
        {
            let mut epoch = lock(&self.shared.epoch);
            *epoch = epoch.wrapping_add(1);
        }
        self.shared.wake.notify_all();
        // Participate: drain whatever is runnable (our chunks first and
        // foremost), then sleep on the latch once the deques are empty —
        // at that point every outstanding chunk is held by a worker.
        {
            let _guard = PoolGuard::enter();
            while !latch.is_done() {
                match self.shared.steal_any() {
                    Some(task) => {
                        colper_obs::counters::RUNTIME_SUBMITTER_TASKS.incr();
                        execute(task)
                    }
                    None => {
                        latch.wait();
                        break;
                    }
                }
            }
        }
        latch.wait();
        if let Some(payload) = latch.take_panic() {
            resume_unwind(payload);
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let mut epoch = lock(&self.shared.epoch);
            *epoch = epoch.wrapping_add(1);
        }
        self.shared.wake.notify_all();
        for handle in lock(&self.handles).drain(..) {
            let _ = handle.join();
        }
    }
}

/// Raw pointer wrapper that lets `Fn` closures shared across pool threads
/// write to disjoint slots of one buffer.
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

// SAFETY: pointer-sized value; the runtime only ever writes through it at
// indices partitioned disjointly across tasks.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Handle to the compute runtime: either a shared work-stealing pool or the
/// inline sequential executor. Cheap to clone and safe to share.
///
/// All primitives are bit-deterministic: for identical inputs they produce
/// results identical to [`Runtime::sequential`] regardless of thread count
/// or scheduling. See the module docs for the contract details.
#[derive(Clone, Default)]
pub struct Runtime {
    pool: Option<Arc<Pool>>,
    /// Upper bound on pool tasks one parallel region may occupy (`None`
    /// = the whole pool). Lets many jobs share a pool without any one
    /// of them saturating it; see [`Runtime::with_budget`].
    budget: Option<usize>,
}

impl fmt::Debug for Runtime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Runtime").field("threads", &self.threads()).finish()
    }
}

impl Runtime {
    /// Creates a runtime with `threads` total threads of parallelism (the
    /// calling thread participates, so `threads - 1` workers are spawned).
    /// `threads <= 1` yields the sequential runtime.
    pub fn new(threads: usize) -> Runtime {
        if threads <= 1 {
            Runtime::sequential()
        } else {
            Runtime { pool: Some(Arc::new(Pool::new(threads))), budget: None }
        }
    }

    /// The inline executor: every primitive runs on the calling thread, in
    /// index order. This is the reference behaviour all parallel execution
    /// is required to reproduce bit-identically.
    pub fn sequential() -> Runtime {
        Runtime { pool: None, budget: None }
    }

    /// A handle onto the same pool whose parallel regions may occupy at
    /// most `max_tasks` pool tasks at a time (clamped to at least 1).
    ///
    /// This is how a job scheduler carves per-job thread budgets out of
    /// one shared pool: every job gets a budgeted clone, the pool itself
    /// is sized once for the machine, and no single job can starve the
    /// others. Results are bit-identical to the unbudgeted handle —
    /// chunk boundaries never depend on the budget, only the number of
    /// concurrently scheduled tasks does.
    #[must_use]
    pub fn with_budget(mut self, max_tasks: usize) -> Runtime {
        self.budget = Some(max_tasks.max(1));
        self
    }

    /// Builds a runtime from the environment: `COLPER_THREADS` if set (and
    /// a positive integer), otherwise the machine's available parallelism.
    pub fn from_env() -> Runtime {
        let threads = std::env::var("COLPER_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&t| t >= 1)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        Runtime::new(threads)
    }

    /// Total parallelism of this runtime (1 for the sequential runtime),
    /// after applying any task budget ([`Runtime::with_budget`]).
    pub fn threads(&self) -> usize {
        let pool = self.pool.as_ref().map_or(1, |p| p.threads);
        pool.min(self.budget.unwrap_or(usize::MAX))
    }

    /// True when this handle has no worker pool and runs everything inline.
    pub fn is_sequential(&self) -> bool {
        self.pool.is_none()
    }

    /// Installs this runtime as the ambient runtime (see [`current`]) for
    /// the duration of `f` on the current thread, restoring the previous
    /// ambient runtime afterwards (also on panic).
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore {
            prev: Option<Runtime>,
        }
        impl Drop for Restore {
            fn drop(&mut self) {
                if let Some(prev) = self.prev.take() {
                    AMBIENT.with(|a| *a.borrow_mut() = prev);
                }
            }
        }
        let prev = AMBIENT.with(|a| std::mem::replace(&mut *a.borrow_mut(), self.clone()));
        let _restore = Restore { prev: Some(prev) };
        f()
    }

    /// Should this call run inline? (No pool, nested inside a pool task,
    /// not enough chunks to be worth scheduling, or a budget of 1.)
    fn pool_for(&self, chunks: usize) -> Option<&Pool> {
        if chunks < 2 || in_pool() || self.threads() < 2 {
            return None;
        }
        self.pool.as_deref()
    }

    /// Runs `f` over `0..n` split into chunks of `grain` indices (the last
    /// chunk may be shorter). Chunk boundaries depend only on `(n, grain)`;
    /// the sequential path visits the same chunks in index order.
    ///
    /// # Panics
    ///
    /// Panics when `grain == 0`. Panics from `f` are propagated after the
    /// whole region has quiesced.
    pub fn par_for_chunks(&self, n: usize, grain: usize, f: impl Fn(Range<usize>) + Sync) {
        assert!(grain >= 1, "par_for_chunks: grain must be at least 1");
        if n == 0 {
            return;
        }
        let chunks = n.div_ceil(grain);
        let chunk_range = |c: usize| c * grain..n.min((c + 1) * grain);
        match self.pool_for(chunks) {
            None => {
                for c in 0..chunks {
                    f(chunk_range(c));
                }
            }
            Some(pool) => {
                pool.run_chunks(chunks, self.budget.unwrap_or(usize::MAX), &|c| f(chunk_range(c)))
            }
        }
    }

    /// Runs `f(i)` for every `i in 0..n` with an automatically chosen grain.
    /// `f` must tolerate any execution order; use output slots, not shared
    /// accumulators, for deterministic results.
    pub fn par_for(&self, n: usize, f: impl Fn(usize) + Sync) {
        let grain = n.div_ceil(4 * self.threads()).max(1);
        self.par_for_chunks(n, grain, |range| {
            for i in range {
                f(i);
            }
        });
    }

    /// Maps `0..n` through `f`, preserving index order in the result.
    /// Equivalent to `(0..n).map(f).collect()` but parallel.
    pub fn par_map<T: Send>(&self, n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
        self.par_map_grained(n, n.div_ceil(4 * self.threads()).max(1), f)
    }

    /// [`Runtime::par_map`] with an explicit grain: each pool task maps
    /// `grain` consecutive indices. Pass `grain = 1` when the items are few
    /// and individually heavy (whole attack runs, per-cloud geometry plans)
    /// so an idle thread can steal single items instead of waiting out a
    /// skewed chunk.
    ///
    /// # Panics
    ///
    /// Panics when `grain == 0`.
    pub fn par_map_grained<T: Send>(
        &self,
        n: usize,
        grain: usize,
        f: impl Fn(usize) -> T + Sync,
    ) -> Vec<T> {
        let mut out: Vec<MaybeUninit<T>> = (0..n).map(|_| MaybeUninit::uninit()).collect();
        let ptr = SendPtr(out.as_mut_ptr());
        self.par_for_chunks(n, grain, |range| {
            for i in range {
                // SAFETY: each index is written exactly once, by the single
                // chunk that owns it; `out` is not touched until quiescence.
                unsafe { (*ptr.get().add(i)).write(f(i)) };
            }
        });
        // Reaching here means no closure panicked, so all n slots are
        // initialised. On panic the buffer leaks instead (see module docs).
        let mut out = ManuallyDrop::new(out);
        // SAFETY: Vec<MaybeUninit<T>> and Vec<T> have identical layout and
        // every element is initialised.
        unsafe { Vec::from_raw_parts(out.as_mut_ptr().cast::<T>(), out.len(), out.capacity()) }
    }

    /// Deterministic parallel reduction: maps every `i in 0..n` and folds in
    /// a fixed order. `0..n` is split into chunks of `grain` (boundaries are
    /// a function of `(n, grain)` only — never of the thread count); each
    /// chunk folds its mapped values in index order, and the per-chunk
    /// partials are folded in chunk order on the calling thread. For a given
    /// `(n, grain, map, fold)` the result is bit-identical on any runtime,
    /// including [`Runtime::sequential`]. Returns `None` when `n == 0`.
    ///
    /// # Panics
    ///
    /// Panics when `grain == 0`.
    pub fn par_reduce<T: Send>(
        &self,
        n: usize,
        grain: usize,
        map: impl Fn(usize) -> T + Sync,
        fold: impl Fn(T, T) -> T + Sync,
    ) -> Option<T> {
        assert!(grain >= 1, "par_reduce: grain must be at least 1");
        if n == 0 {
            return None;
        }
        let chunks = n.div_ceil(grain);
        let partials = self.par_map(chunks, |c| {
            let start = c * grain;
            let end = n.min(start + grain);
            let mut acc = map(start);
            for i in start + 1..end {
                acc = fold(acc, map(i));
            }
            acc
        });
        partials.into_iter().reduce(&fold)
    }

    /// Splits `data` into consecutive chunks of `chunk` elements (the last
    /// may be shorter) and runs `f(chunk_index, chunk_slice)` for each, in
    /// parallel. The chunks are disjoint, so this is the building block for
    /// writing different regions of one buffer from different threads.
    ///
    /// # Panics
    ///
    /// Panics when `chunk == 0`.
    pub fn par_chunks_mut<T: Send>(
        &self,
        data: &mut [T],
        chunk: usize,
        f: impl Fn(usize, &mut [T]) + Sync,
    ) {
        assert!(chunk >= 1, "par_chunks_mut: chunk must be at least 1");
        let n = data.len();
        let ptr = SendPtr(data.as_mut_ptr());
        self.par_for_chunks(n, chunk, |range| {
            let c = range.start / chunk;
            // SAFETY: ranges produced by par_for_chunks partition 0..n, so
            // the sub-slices are disjoint views of the exclusive borrow.
            let sub =
                unsafe { std::slice::from_raw_parts_mut(ptr.get().add(range.start), range.len()) };
            f(c, sub);
        });
    }
}

/// The ambient runtime for the current thread: whatever [`Runtime::install`]
/// put in scope, or the sequential runtime by default. Deep compute layers
/// (tensor matmuls, k-NN queries) consult this so parallelism reaches them
/// without threading a handle through every call signature.
pub fn current() -> Runtime {
    AMBIENT.with(|a| a.borrow().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn sequential_runtime_reports_one_thread() {
        let rt = Runtime::sequential();
        assert_eq!(rt.threads(), 1);
        assert!(rt.is_sequential());
        assert!(Runtime::new(0).is_sequential());
        assert!(Runtime::new(1).is_sequential());
        assert_eq!(Runtime::new(3).threads(), 3);
    }

    #[test]
    fn par_for_covers_every_index_exactly_once() {
        let rt = Runtime::new(4);
        let n = 1000;
        let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        rt.par_for(n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_map_preserves_index_order() {
        let rt = Runtime::new(4);
        let got = rt.par_map(997, |i| i * 3 + 1);
        let want: Vec<usize> = (0..997).map(|i| i * 3 + 1).collect();
        assert_eq!(got, want);
        // Heap-owning payloads survive the slot-transmute too.
        let strings = rt.par_map(64, |i| format!("item-{i}"));
        assert!(strings.iter().enumerate().all(|(i, s)| s == &format!("item-{i}")));
    }

    #[test]
    fn work_stealing_survives_pathologically_skewed_load() {
        // One item carries ~all the work; static chunking would serialise
        // the heavy chunk behind its deque owner, stealing lets everyone
        // finish the tail. Correctness assert only (the host may have one
        // core): full coverage, no duplicates, order-preserving output.
        let rt = Runtime::new(4);
        let n = 256;
        let out = rt.par_map(n, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            i as u64 * 7
        });
        assert_eq!(out, (0..n as u64).map(|i| i * 7).collect::<Vec<_>>());
    }

    #[test]
    fn par_reduce_is_bit_identical_across_thread_counts() {
        // Mixed magnitudes make float summation order-sensitive, so any
        // scheduling leak into reduction order would change the bits.
        let vals: Vec<f32> =
            (0..10_000).map(|i| ((i * 2654435761_usize) % 1000) as f32 * 1e-3 + 1e4).collect();
        let grain = 128;
        let sum = |rt: &Runtime| {
            rt.par_reduce(vals.len(), grain, |i| vals[i], |a, b| a + b).unwrap().to_bits()
        };
        let seq = sum(&Runtime::sequential());
        assert_eq!(seq, sum(&Runtime::new(2)));
        assert_eq!(seq, sum(&Runtime::new(5)));
    }

    #[test]
    fn par_reduce_empty_and_single() {
        let rt = Runtime::new(3);
        assert_eq!(rt.par_reduce(0, 4, |i| i, |a, b| a + b), None);
        assert_eq!(rt.par_reduce(1, 4, |i| i + 41, |a, b| a + b), Some(41));
    }

    #[test]
    fn par_chunks_mut_writes_disjoint_regions() {
        let rt = Runtime::new(4);
        let mut data = vec![0u32; 1003];
        rt.par_chunks_mut(&mut data, 64, |c, sub| {
            for (off, v) in sub.iter_mut().enumerate() {
                *v = (c * 64 + off) as u32;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u32));
    }

    #[test]
    fn nested_calls_run_inline_without_deadlock() {
        let rt = Runtime::new(4);
        let outer = rt.par_map(16, |i| {
            // Nested par_map inside a pool task must run inline.
            let inner = current().par_map(8, |j| i * 8 + j);
            let nested = rt.par_map(4, |j| j).iter().sum::<usize>();
            inner.iter().sum::<usize>() + nested
        });
        let want: Vec<usize> =
            (0..16).map(|i| (0..8).map(|j| i * 8 + j).sum::<usize>() + 6).collect();
        assert_eq!(outer, want);
    }

    #[test]
    fn panic_propagates_and_pool_stays_usable() {
        let rt = Runtime::new(4);
        let res = catch_unwind(AssertUnwindSafe(|| {
            rt.par_for(100, |i| {
                if i == 37 {
                    panic!("boom at {i}");
                }
            });
        }));
        assert!(res.is_err());
        // The pool must have fully quiesced and remain usable.
        let after = rt.par_map(50, |i| i + 1);
        assert_eq!(after, (1..=50).collect::<Vec<_>>());
    }

    #[test]
    fn nested_panic_propagates_through_outer_region() {
        let rt = Runtime::new(4);
        let res = catch_unwind(AssertUnwindSafe(|| {
            rt.par_for(8, |i| {
                rt.par_for(8, |j| {
                    if i == 3 && j == 5 {
                        panic!("nested boom");
                    }
                });
            });
        }));
        assert!(res.is_err());
        assert_eq!(rt.par_map(4, |i| i), vec![0, 1, 2, 3]);
    }

    #[test]
    fn install_scopes_the_ambient_runtime() {
        assert!(current().is_sequential());
        let rt = Runtime::new(2);
        rt.install(|| {
            assert_eq!(current().threads(), 2);
            Runtime::sequential().install(|| assert!(current().is_sequential()));
            assert_eq!(current().threads(), 2);
        });
        assert!(current().is_sequential());
        // Restored even when the scope unwinds.
        let res = catch_unwind(AssertUnwindSafe(|| rt.install(|| panic!("scoped"))));
        assert!(res.is_err());
        assert!(current().is_sequential());
    }

    #[test]
    fn par_for_chunks_boundaries_are_fixed() {
        for rt in [Runtime::sequential(), Runtime::new(3)] {
            let ranges = Mutex::new(Vec::new());
            rt.par_for_chunks(10, 4, |r| ranges.lock().unwrap().push((r.start, r.end)));
            let mut got = ranges.into_inner().unwrap();
            got.sort_unstable();
            assert_eq!(got, vec![(0, 4), (4, 8), (8, 10)]);
        }
    }

    #[test]
    fn budgeted_runtime_caps_concurrency_and_keeps_results() {
        let rt = Runtime::new(4).with_budget(2);
        assert_eq!(rt.threads(), 2);
        assert!(!rt.is_sequential());
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let out = rt.par_map_grained(64, 1, |i| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_micros(200));
            live.fetch_sub(1, Ordering::SeqCst);
            i * 2
        });
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
        let peak = peak.load(Ordering::SeqCst);
        assert!(peak <= 2, "budget 2 exceeded: {peak} chunks ran concurrently");
    }

    #[test]
    fn budget_of_one_runs_inline() {
        let rt = Runtime::new(4).with_budget(1);
        assert_eq!(rt.threads(), 1);
        let submitter = std::thread::current().id();
        rt.par_for(32, |_| assert_eq!(std::thread::current().id(), submitter));
    }

    #[test]
    fn budgeted_reduce_is_bit_identical() {
        let vals: Vec<f32> =
            (0..5_000).map(|i| ((i * 2654435761_usize) % 997) as f32 * 1e-3 + 3e3).collect();
        let sum = |rt: &Runtime| {
            rt.par_reduce(vals.len(), 64, |i| vals[i], |a, b| a + b).unwrap().to_bits()
        };
        let seq = sum(&Runtime::sequential());
        for budget in 1..=5 {
            assert_eq!(seq, sum(&Runtime::new(4).with_budget(budget)), "budget {budget}");
        }
    }

    #[test]
    fn dropping_the_runtime_joins_workers() {
        let rt = Runtime::new(4);
        let sum = rt.par_reduce(100, 10, |i| i as u64, |a, b| a + b);
        assert_eq!(sum, Some(4950));
        drop(rt); // must not hang
    }
}
