//! Fixed-bin histograms, used to regenerate the paper's distribution
//! figures (L2 distance, accuracy and aIoU across samples).

use std::fmt;

/// A histogram with equal-width bins over `[lo, hi]`; samples outside
/// the range are clamped into the first/last bin.
///
/// # Example
///
/// ```
/// use colper_metrics::Histogram;
///
/// let mut h = Histogram::new(0.0, 1.0, 4);
/// h.add_all(&[0.1, 0.9, 0.95, 0.4]);
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.bin_counts()[3], 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f32,
    hi: f32,
    bins: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics when `bins == 0` or `lo >= hi`.
    pub fn new(lo: f32, hi: f32, bins: usize) -> Self {
        assert!(bins > 0, "Histogram: needs at least one bin");
        assert!(lo < hi, "Histogram: lo must be below hi");
        Self { lo, hi, bins: vec![0; bins], count: 0, sum: 0.0 }
    }

    /// Adds one sample.
    pub fn add(&mut self, v: f32) {
        let width = (self.hi - self.lo) / self.bins.len() as f32;
        let idx = (((v - self.lo) / width) as isize).clamp(0, self.bins.len() as isize - 1);
        self.bins[idx as usize] += 1;
        self.count += 1;
        self.sum += f64::from(v);
    }

    /// Adds many samples.
    pub fn add_all(&mut self, values: &[f32]) {
        for &v in values {
            self.add(v);
        }
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the added samples (`0.0` when empty).
    pub fn mean(&self) -> f32 {
        if self.count == 0 {
            0.0
        } else {
            (self.sum / self.count as f64) as f32
        }
    }

    /// Per-bin counts.
    pub fn bin_counts(&self) -> &[u64] {
        &self.bins
    }

    /// The `[start, end)` range of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn bin_range(&self, i: usize) -> (f32, f32) {
        assert!(i < self.bins.len(), "bin index out of range");
        let width = (self.hi - self.lo) / self.bins.len() as f32;
        (self.lo + i as f32 * width, self.lo + (i + 1) as f32 * width)
    }

    /// Renders an ASCII bar chart (one line per bin), the textual
    /// stand-in for the paper's figures.
    pub fn render(&self, width: usize) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.bins.iter().enumerate() {
            let (a, b) = self.bin_range(i);
            let bar_len = (c as usize * width) / max as usize;
            let bar = "#".repeat(bar_len);
            out.push_str(&format!("[{a:>8.3}, {b:>8.3}) |{bar:<width$}| {c}\n"));
        }
        out
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(40))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_partition_range() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.add_all(&[0.5, 2.5, 4.5, 6.5, 8.5]);
        assert_eq!(h.bin_counts(), &[1, 1, 1, 1, 1]);
        assert_eq!(h.bin_range(0), (0.0, 2.0));
        assert_eq!(h.bin_range(4), (8.0, 10.0));
    }

    #[test]
    fn out_of_range_clamps() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(-5.0);
        h.add(5.0);
        assert_eq!(h.bin_counts(), &[1, 1]);
    }

    #[test]
    fn mean_tracks_samples() {
        let mut h = Histogram::new(0.0, 10.0, 2);
        h.add_all(&[2.0, 4.0]);
        assert!((h.mean() - 3.0).abs() < 1e-6);
        assert_eq!(Histogram::new(0.0, 1.0, 1).mean(), 0.0);
    }

    #[test]
    fn render_contains_all_bins() {
        let mut h = Histogram::new(0.0, 1.0, 3);
        h.add_all(&[0.1, 0.5, 0.9, 0.9]);
        let s = h.render(20);
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains('#'));
    }

    #[test]
    #[should_panic(expected = "lo must be below hi")]
    fn range_validated() {
        let _ = Histogram::new(1.0, 1.0, 3);
    }
}
