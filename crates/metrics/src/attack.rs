//! Attack-specific metrics: success rate (SR) and out-of-band (OOB)
//! segmentation quality.

use crate::ConfusionMatrix;

/// Success rate of a targeted attack: the fraction of attacked points
/// (where `mask` is true) whose prediction equals the per-point target
/// label.
///
/// Returns `0.0` when no point is attacked.
///
/// # Panics
///
/// Panics when slice lengths differ.
pub fn success_rate(predictions: &[usize], targets: &[usize], mask: &[bool]) -> f32 {
    assert_eq!(predictions.len(), targets.len(), "predictions/targets length mismatch");
    assert_eq!(predictions.len(), mask.len(), "predictions/mask length mismatch");
    let mut attacked = 0u64;
    let mut fooled = 0u64;
    for i in 0..predictions.len() {
        if mask[i] {
            attacked += 1;
            if predictions[i] == targets[i] {
                fooled += 1;
            }
        }
    }
    if attacked == 0 {
        0.0
    } else {
        fooled as f32 / attacked as f32
    }
}

/// Accuracy and aIoU of the points outside / inside an attack mask.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackPointStats {
    /// Accuracy over points *outside* the attacked set (the paper's OOB
    /// accuracy).
    pub oob_accuracy: f32,
    /// aIoU over points outside the attacked set.
    pub oob_miou: f32,
    /// Accuracy over all points.
    pub accuracy: f32,
    /// aIoU over all points.
    pub miou: f32,
    /// Number of attacked points.
    pub attacked_points: usize,
}

/// Computes overall and out-of-band segmentation quality after an
/// attack. `mask` marks the attacked points `X_t`.
///
/// # Panics
///
/// Panics when slice lengths differ or a class index is out of range.
pub fn oob_metrics(
    predictions: &[usize],
    labels: &[usize],
    mask: &[bool],
    classes: usize,
) -> AttackPointStats {
    assert_eq!(predictions.len(), labels.len(), "predictions/labels length mismatch");
    assert_eq!(predictions.len(), mask.len(), "predictions/mask length mismatch");
    let mut all = ConfusionMatrix::new(classes);
    all.update(predictions, labels);
    let mut oob = ConfusionMatrix::new(classes);
    for i in 0..predictions.len() {
        if !mask[i] {
            oob.update(&[predictions[i]], &[labels[i]]);
        }
    }
    AttackPointStats {
        oob_accuracy: oob.accuracy(),
        oob_miou: oob.mean_iou(),
        accuracy: all.accuracy(),
        miou: all.mean_iou(),
        attacked_points: mask.iter().filter(|&&m| m).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_rate_counts_only_masked() {
        let preds = [2, 2, 0, 2];
        let targets = [2, 2, 2, 2];
        let mask = [true, true, true, false];
        // Of the 3 attacked points, 2 hit the target.
        assert!((success_rate(&preds, &targets, &mask) - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn success_rate_empty_mask_is_zero() {
        assert_eq!(success_rate(&[0, 1], &[1, 0], &[false, false]), 0.0);
    }

    #[test]
    fn oob_metrics_split() {
        // 4 points; points 0,1 attacked (and misclassified), 2,3 clean.
        let preds = [1, 1, 0, 1];
        let labels = [0, 0, 0, 1];
        let mask = [true, true, false, false];
        let stats = oob_metrics(&preds, &labels, &mask, 2);
        assert_eq!(stats.attacked_points, 2);
        assert_eq!(stats.oob_accuracy, 1.0);
        assert_eq!(stats.accuracy, 0.5);
        assert!(stats.oob_miou > stats.miou);
    }

    #[test]
    fn oob_all_attacked_leaves_empty_oob() {
        let stats = oob_metrics(&[0, 1], &[0, 1], &[true, true], 2);
        assert_eq!(stats.oob_accuracy, 0.0); // empty confusion matrix
        assert_eq!(stats.accuracy, 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_validation() {
        let _ = success_rate(&[0], &[0, 1], &[true]);
    }
}
