//! Per-class segmentation reports — the presentation layer for the
//! paper's per-class analysis ("some classes are easier to manipulate").

use crate::ConfusionMatrix;
use std::fmt;

/// One class's row in a [`ClassReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClassRow {
    /// Class index.
    pub class: usize,
    /// Class name (index rendered as text when unnamed).
    pub name: String,
    /// Ground-truth point count.
    pub support: u64,
    /// `TP / (TP + FP)`; `None` when the class was never predicted.
    pub precision: Option<f32>,
    /// `TP / (TP + FN)`; `None` when the class never occurs.
    pub recall: Option<f32>,
    /// Intersection-over-union; `None` when the class is absent on both
    /// sides.
    pub iou: Option<f32>,
}

/// A per-class precision / recall / IoU table derived from a
/// [`ConfusionMatrix`].
///
/// # Example
///
/// ```
/// use colper_metrics::{ClassReport, ConfusionMatrix};
///
/// let mut cm = ConfusionMatrix::new(2);
/// cm.update(&[0, 1, 1], &[0, 0, 1]);
/// let report = ClassReport::from_confusion(&cm, None);
/// assert_eq!(report.rows().len(), 2);
/// assert_eq!(report.rows()[0].support, 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClassReport {
    rows: Vec<ClassRow>,
    accuracy: f32,
    mean_iou: f32,
}

impl ClassReport {
    /// Builds the report; `names` (when given) must have one entry per
    /// class.
    ///
    /// # Panics
    ///
    /// Panics when `names` is provided with the wrong length.
    pub fn from_confusion(cm: &ConfusionMatrix, names: Option<&[&str]>) -> Self {
        if let Some(names) = names {
            assert_eq!(names.len(), cm.classes(), "names length must equal class count");
        }
        let rows = (0..cm.classes())
            .map(|c| {
                let tp = cm.count(c, c);
                let fp: u64 = (0..cm.classes()).filter(|&l| l != c).map(|l| cm.count(l, c)).sum();
                let fn_: u64 = (0..cm.classes()).filter(|&p| p != c).map(|p| cm.count(c, p)).sum();
                let support = tp + fn_;
                ClassRow {
                    class: c,
                    name: names.map_or_else(|| format!("class {c}"), |n| n[c].to_string()),
                    support,
                    precision: (tp + fp > 0).then(|| tp as f32 / (tp + fp) as f32),
                    recall: (support > 0).then(|| tp as f32 / support as f32),
                    iou: cm.iou(c),
                }
            })
            .collect();
        Self { rows, accuracy: cm.accuracy(), mean_iou: cm.mean_iou() }
    }

    /// The per-class rows in label order.
    pub fn rows(&self) -> &[ClassRow] {
        &self.rows
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f32 {
        self.accuracy
    }

    /// aIoU over present classes.
    pub fn mean_iou(&self) -> f32 {
        self.mean_iou
    }

    /// Rows sorted by ascending IoU (most-damaged classes first) —
    /// useful for post-attack reports. Absent classes sort last.
    pub fn by_vulnerability(&self) -> Vec<&ClassRow> {
        let mut rows: Vec<&ClassRow> = self.rows.iter().collect();
        // `total_cmp` + class tie-break: a NaN IoU (degenerate confusion
        // matrix) must not make the ordering depend on the input permutation.
        // Under `total_cmp` NaN sorts after +inf, so broken classes land
        // after absent ones at the very end of the table.
        rows.sort_by(|a, b| {
            let ka = a.iou.unwrap_or(f32::INFINITY);
            let kb = b.iou.unwrap_or(f32::INFINITY);
            ka.total_cmp(&kb).then_with(|| a.class.cmp(&b.class))
        });
        rows
    }
}

impl fmt::Display for ClassReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<18} {:>8} {:>10} {:>8} {:>8}",
            "class", "support", "precision", "recall", "IoU"
        )?;
        let pct = |v: Option<f32>| match v {
            Some(v) => format!("{:.1}%", v * 100.0),
            None => "-".to_string(),
        };
        for row in &self.rows {
            writeln!(
                f,
                "{:<18} {:>8} {:>10} {:>8} {:>8}",
                row.name,
                row.support,
                pct(row.precision),
                pct(row.recall),
                pct(row.iou)
            )?;
        }
        writeln!(
            f,
            "overall: accuracy {:.1}%, aIoU {:.1}%",
            self.accuracy * 100.0,
            self.mean_iou * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cm() -> ConfusionMatrix {
        let mut cm = ConfusionMatrix::new(3);
        // class 0: 3 right, 1 predicted as 1; class 1: 2 right; class 2 absent.
        cm.update(&[0, 0, 0, 1, 1, 1], &[0, 0, 0, 0, 1, 1]);
        cm
    }

    #[test]
    fn rows_carry_correct_counts() {
        let report = ClassReport::from_confusion(&sample_cm(), None);
        let r0 = &report.rows()[0];
        assert_eq!(r0.support, 4);
        assert!((r0.recall.unwrap() - 0.75).abs() < 1e-6);
        assert!((r0.precision.unwrap() - 1.0).abs() < 1e-6);
        let r2 = &report.rows()[2];
        assert_eq!(r2.support, 0);
        assert_eq!(r2.iou, None);
        assert_eq!(r2.recall, None);
    }

    #[test]
    fn names_replace_indices() {
        let report = ClassReport::from_confusion(&sample_cm(), Some(&["wall", "board", "chair"]));
        assert_eq!(report.rows()[1].name, "board");
        let text = report.to_string();
        assert!(text.contains("wall"));
        assert!(text.contains("overall"));
    }

    #[test]
    fn vulnerability_sorts_lowest_iou_first() {
        let report = ClassReport::from_confusion(&sample_cm(), None);
        let sorted = report.by_vulnerability();
        // class 1 has FP -> lower IoU than class 0's.
        assert_eq!(sorted[0].class, 1);
        // Absent class 2 sorts last.
        assert_eq!(sorted[2].class, 2);
    }

    #[test]
    fn vulnerability_order_is_total_under_nan_iou() {
        // Hand-built rows: NaN IoU must sort last (after absent classes),
        // ties break on class index, and the order must not depend on the
        // row permutation the sort happens to receive.
        let row = |class: usize, iou: Option<f32>| ClassRow {
            class,
            name: format!("class {class}"),
            support: 1,
            precision: None,
            recall: None,
            iou,
        };
        let rows = vec![
            row(0, Some(f32::NAN)),
            row(1, Some(0.5)),
            row(2, None),
            row(3, Some(0.5)),
            row(4, Some(f32::NEG_INFINITY)),
        ];
        let report = ClassReport { rows, accuracy: 0.0, mean_iou: 0.0 };
        let order: Vec<usize> = report.by_vulnerability().iter().map(|r| r.class).collect();
        assert_eq!(order, vec![4, 1, 3, 2, 0]);

        let mut reversed = report.clone();
        reversed.rows.reverse();
        let order_rev: Vec<usize> = reversed.by_vulnerability().iter().map(|r| r.class).collect();
        assert_eq!(order_rev, order, "vulnerability order depends on row permutation");
    }

    #[test]
    #[should_panic(expected = "names length")]
    fn names_length_checked() {
        let _ = ClassReport::from_confusion(&sample_cm(), Some(&["a"]));
    }
}
