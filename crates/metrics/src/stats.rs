//! The best / average / worst summaries used in the paper's Tables 1
//! and 3.

/// Best, average and worst of a series — "best" meaning the value most
/// favorable to the attacker (lowest post-attack accuracy), so summaries
/// are taken with an explicit orientation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// The minimum observed value.
    pub min: f32,
    /// The arithmetic mean.
    pub mean: f32,
    /// The maximum observed value.
    pub max: f32,
    /// Number of samples summarized.
    pub count: usize,
}

impl Summary {
    /// Summarizes a value series. Returns an all-zero summary for an
    /// empty slice.
    pub fn of(values: &[f32]) -> Self {
        if values.is_empty() {
            return Self { min: 0.0, mean: 0.0, max: 0.0, count: 0 };
        }
        let mut min = f32::INFINITY;
        let mut max = f32::NEG_INFINITY;
        let mut sum = 0.0f64;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
            sum += f64::from(v);
        }
        Self { min, mean: (sum / values.len() as f64) as f32, max, count: values.len() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_series() {
        let s = Summary::of(&[3.0, 1.0, 2.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.mean - 2.0).abs() < 1e-6);
        assert_eq!(s.count, 3);
    }

    #[test]
    fn summary_of_empty() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn summary_of_single() {
        let s = Summary::of(&[5.0]);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 5.0);
    }
}
