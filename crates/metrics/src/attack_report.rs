//! The unified [`AttackReport`]: one schema for attack outcomes across
//! the CLI, the bench bins and the `colper-obs` trace sinks.
//!
//! Historically the workspace had two report types: the attack crate's
//! matrix-carrying result and this crate's per-class table. The heavy
//! tensors stay with the attack crate ([`ClassReport`](crate::ClassReport)
//! remains the per-class presentation layer); `AttackReport` is the
//! plain-data summary every sink serializes — with the per-step
//! telemetry of `colper-obs` nested directly into it, so a traced run's
//! JSON carries its whole trajectory in the same object.

use colper_obs::{jf, StepRecord};

/// Plain-data summary of one cloud's attack run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AttackReport {
    /// Input-order index of the cloud within its run (0 for single-cloud
    /// sessions).
    pub cloud: usize,
    /// The L2 (not squared) perturbation norm, as in the paper's tables.
    pub l2: f32,
    /// Iterations actually run (early stop on convergence).
    pub steps_run: usize,
    /// Whether the attacker's criterion was met before the step budget.
    pub converged: bool,
    /// The attacker's metric on the best sample: accuracy over attacked
    /// points (non-targeted, lower is better) or SR (targeted, higher).
    pub success_metric: f32,
    /// Number of attacked points (`|X_t|`).
    pub attacked_points: usize,
    /// Plateau noise restarts performed.
    pub restarts: usize,
    /// Clean (pre-attack) accuracy on this cloud.
    pub clean_accuracy: f32,
    /// Post-attack accuracy over all points.
    pub adversarial_accuracy: f32,
    /// Post-attack aIoU over all points.
    pub adversarial_miou: f32,
    /// Per-step telemetry (empty unless the run was traced).
    pub steps: Vec<StepRecord>,
}

impl AttackReport {
    /// The report as one JSON object. The `steps` array elements use the
    /// [`StepRecord::to_json`] schema — the same one the `colper-obs`
    /// JSONL sink emits per step.
    pub fn to_json(&self) -> String {
        let steps: Vec<String> = self.steps.iter().map(StepRecord::to_json).collect();
        format!(
            concat!(
                "{{\"cloud\":{},\"l2\":{},\"steps_run\":{},\"converged\":{},",
                "\"success_metric\":{},\"attacked_points\":{},\"restarts\":{},",
                "\"clean_accuracy\":{},\"adversarial_accuracy\":{},",
                "\"adversarial_miou\":{},\"steps\":[{}]}}"
            ),
            self.cloud,
            jf(self.l2),
            self.steps_run,
            self.converged,
            jf(self.success_metric),
            self.attacked_points,
            self.restarts,
            jf(self.clean_accuracy),
            jf(self.adversarial_accuracy),
            jf(self.adversarial_miou),
            steps.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_has_every_field_and_nested_steps() {
        let report = AttackReport {
            cloud: 2,
            l2: 1.5,
            steps_run: 3,
            converged: true,
            success_metric: 0.25,
            attacked_points: 96,
            restarts: 1,
            clean_accuracy: 0.9,
            adversarial_accuracy: 0.3,
            adversarial_miou: 0.2,
            steps: vec![
                StepRecord { step: 0, gain: 5.0, ..StepRecord::default() },
                StepRecord { step: 1, gain: 4.0, ..StepRecord::default() },
            ],
        };
        let json = report.to_json();
        for key in [
            "\"cloud\":2",
            "\"l2\":1.5",
            "\"steps_run\":3",
            "\"converged\":true",
            "\"success_metric\":0.25",
            "\"attacked_points\":96",
            "\"restarts\":1",
            "\"clean_accuracy\":0.9",
            "\"adversarial_accuracy\":0.3",
            "\"adversarial_miou\":0.2",
            "\"steps\":[{",
            "\"step\":1",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn untraced_report_has_empty_steps_array() {
        let json = AttackReport::default().to_json();
        assert!(json.contains("\"steps\":[]"), "{json}");
    }
}
