//! The [`ConfusionMatrix`] and the metrics derived from it.

/// A `classes x classes` confusion matrix; rows are ground truth, columns
/// are predictions.
///
/// # Example
///
/// ```
/// use colper_metrics::ConfusionMatrix;
///
/// let mut cm = ConfusionMatrix::new(2);
/// cm.update(&[0, 0, 1, 1], &[0, 1, 1, 1]);
/// assert_eq!(cm.total(), 4);
/// assert!((cm.accuracy() - 0.75).abs() < 1e-6);
/// // Class 0: TP 1, FN 1, FP 0 -> IoU 0.5. Class 1: TP 2, FN 0, FP 1 -> 2/3.
/// assert!((cm.iou(0).unwrap() - 0.5).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix for `classes` classes.
    ///
    /// # Panics
    ///
    /// Panics when `classes == 0`.
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "ConfusionMatrix: needs at least one class");
        Self { classes, counts: vec![0; classes * classes] }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Accumulates `(prediction, label)` pairs.
    ///
    /// # Panics
    ///
    /// Panics when slices have different lengths or contain out-of-range
    /// classes.
    pub fn update(&mut self, predictions: &[usize], labels: &[usize]) {
        assert_eq!(predictions.len(), labels.len(), "predictions/labels length mismatch");
        for (&p, &l) in predictions.iter().zip(labels) {
            assert!(p < self.classes && l < self.classes, "class out of range");
            self.counts[l * self.classes + p] += 1;
        }
    }

    /// Merges another matrix of the same class count.
    ///
    /// # Panics
    ///
    /// Panics when the class counts differ.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(self.classes, other.classes, "class count mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// The count of points with label `l` predicted as `p`.
    pub fn count(&self, l: usize, p: usize) -> u64 {
        self.counts[l * self.classes + p]
    }

    /// Total number of accumulated points.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall point accuracy; `0.0` when empty.
    pub fn accuracy(&self) -> f32 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.classes).map(|c| self.count(c, c)).sum();
        correct as f32 / total as f32
    }

    /// Intersection-over-union of class `c`
    /// (`TP / (TP + FP + FN)`), or `None` when the class never appears in
    /// either labels or predictions.
    pub fn iou(&self, c: usize) -> Option<f32> {
        let tp = self.count(c, c);
        let fp: u64 = (0..self.classes).filter(|&l| l != c).map(|l| self.count(l, c)).sum();
        let fn_: u64 = (0..self.classes).filter(|&p| p != c).map(|p| self.count(c, p)).sum();
        let union = tp + fp + fn_;
        if union == 0 {
            None
        } else {
            Some(tp as f32 / union as f32)
        }
    }

    /// Average IoU over the classes that appear (the paper's aIoU).
    pub fn mean_iou(&self) -> f32 {
        let ious: Vec<f32> = (0..self.classes).filter_map(|c| self.iou(c)).collect();
        if ious.is_empty() {
            0.0
        } else {
            ious.iter().sum::<f32>() / ious.len() as f32
        }
    }

    /// Per-class IoU vector (`None` entries for absent classes).
    pub fn per_class_iou(&self) -> Vec<Option<f32>> {
        (0..self.classes).map(|c| self.iou(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let mut cm = ConfusionMatrix::new(3);
        cm.update(&[0, 1, 2], &[0, 1, 2]);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.mean_iou(), 1.0);
    }

    #[test]
    fn all_wrong() {
        let mut cm = ConfusionMatrix::new(2);
        cm.update(&[1, 0], &[0, 1]);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.mean_iou(), 0.0);
    }

    #[test]
    fn iou_known_values() {
        let mut cm = ConfusionMatrix::new(2);
        // label 0 predicted 0 twice; label 0 predicted 1 once; label 1 predicted 1 once.
        cm.update(&[0, 0, 1, 1], &[0, 0, 0, 1]);
        // class 0: TP 2, FN 1, FP 0 -> 2/3
        assert!((cm.iou(0).unwrap() - 2.0 / 3.0).abs() < 1e-6);
        // class 1: TP 1, FN 0, FP 1 -> 1/2
        assert!((cm.iou(1).unwrap() - 0.5).abs() < 1e-6);
        assert!((cm.mean_iou() - (2.0 / 3.0 + 0.5) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn absent_class_excluded_from_mean() {
        let mut cm = ConfusionMatrix::new(3);
        cm.update(&[0, 0], &[0, 0]);
        assert_eq!(cm.iou(2), None);
        assert_eq!(cm.mean_iou(), 1.0);
        assert_eq!(cm.per_class_iou(), vec![Some(1.0), None, None]);
    }

    #[test]
    fn empty_matrix() {
        let cm = ConfusionMatrix::new(4);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.mean_iou(), 0.0);
        assert_eq!(cm.total(), 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ConfusionMatrix::new(2);
        a.update(&[0], &[0]);
        let mut b = ConfusionMatrix::new(2);
        b.update(&[1], &[0]);
        a.merge(&b);
        assert_eq!(a.total(), 2);
        assert_eq!(a.count(0, 1), 1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn update_length_checked() {
        let mut cm = ConfusionMatrix::new(2);
        cm.update(&[0], &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn update_range_checked() {
        let mut cm = ConfusionMatrix::new(2);
        cm.update(&[2], &[0]);
    }
}
