//! Segmentation and attack-evaluation metrics for the COLPER
//! reproduction.
//!
//! The paper reports four families of numbers, all implemented here:
//!
//! * **accuracy** and **aIoU** (average intersection-over-union across
//!   classes) — segmentation quality, via [`ConfusionMatrix`];
//! * **SR** (success rate) — targeted-attack effectiveness: the fraction
//!   of attacked points that flipped to the target class;
//! * **OOB** (out-of-band) accuracy/aIoU — collateral damage on the
//!   points outside the attacked set;
//! * **SSR** (sample success rate) — the fraction of samples whose
//!   attack met the L0 budget, used in the coordinate-vs-color
//!   comparison.
//!
//! [`Histogram`] supports regenerating the distribution figures
//! (Figures 3–5).
//!
//! # Example
//!
//! ```
//! use colper_metrics::ConfusionMatrix;
//!
//! let mut cm = ConfusionMatrix::new(3);
//! cm.update(&[0, 1, 2, 2], &[0, 1, 2, 1]);
//! assert!((cm.accuracy() - 0.75).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attack;
mod attack_report;
mod confusion;
mod histogram;
mod report;
mod stats;

pub use attack::{oob_metrics, success_rate, AttackPointStats};
pub use attack_report::AttackReport;
pub use confusion::ConfusionMatrix;
pub use histogram::Histogram;
pub use report::{ClassReport, ClassRow};
pub use stats::Summary;
