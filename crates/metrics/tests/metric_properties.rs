//! Property-based tests for the metric definitions.

use colper_metrics::{oob_metrics, success_rate, ConfusionMatrix, Histogram, Summary};
use proptest::prelude::*;

fn arb_labels(n: usize, classes: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0..classes, n)
}

proptest! {
    #[test]
    fn accuracy_and_iou_are_bounded(
        preds in arb_labels(64, 5),
        labels in arb_labels(64, 5),
    ) {
        let mut cm = ConfusionMatrix::new(5);
        cm.update(&preds, &labels);
        prop_assert!((0.0..=1.0).contains(&cm.accuracy()));
        prop_assert!((0.0..=1.0).contains(&cm.mean_iou()));
        for c in 0..5 {
            if let Some(iou) = cm.iou(c) {
                prop_assert!((0.0..=1.0).contains(&iou));
            }
        }
    }

    #[test]
    fn perfect_predictions_score_one(labels in arb_labels(32, 4)) {
        let mut cm = ConfusionMatrix::new(4);
        cm.update(&labels, &labels);
        prop_assert_eq!(cm.accuracy(), 1.0);
        prop_assert_eq!(cm.mean_iou(), 1.0);
    }

    #[test]
    fn iou_never_exceeds_accuracy_of_class(
        preds in arb_labels(50, 3),
        labels in arb_labels(50, 3),
    ) {
        // IoU(c) <= recall(c) because the union includes all FN.
        let mut cm = ConfusionMatrix::new(3);
        cm.update(&preds, &labels);
        for c in 0..3 {
            let tp = cm.count(c, c) as f32;
            let label_total: u64 = (0..3).map(|p| cm.count(c, p)).sum();
            if label_total > 0 {
                let recall = tp / label_total as f32;
                if let Some(iou) = cm.iou(c) {
                    prop_assert!(iou <= recall + 1e-6);
                }
            }
        }
    }

    #[test]
    fn merge_equals_bulk_update(
        a_preds in arb_labels(20, 3),
        a_labels in arb_labels(20, 3),
        b_preds in arb_labels(20, 3),
        b_labels in arb_labels(20, 3),
    ) {
        let mut merged = ConfusionMatrix::new(3);
        merged.update(&a_preds, &a_labels);
        let mut other = ConfusionMatrix::new(3);
        other.update(&b_preds, &b_labels);
        merged.merge(&other);

        let mut bulk = ConfusionMatrix::new(3);
        bulk.update(&a_preds, &a_labels);
        bulk.update(&b_preds, &b_labels);
        prop_assert_eq!(merged, bulk);
    }

    #[test]
    fn success_rate_bounds_and_monotonicity(
        preds in arb_labels(40, 4),
        mask in proptest::collection::vec(proptest::bool::ANY, 40),
    ) {
        let targets = vec![2usize; 40];
        let sr = success_rate(&preds, &targets, &mask);
        prop_assert!((0.0..=1.0).contains(&sr));
        // Forcing every masked prediction to the target makes SR 1 (when
        // any point is masked).
        let forced: Vec<usize> = preds
            .iter()
            .zip(&mask)
            .map(|(&p, &m)| if m { 2 } else { p })
            .collect();
        let sr_forced = success_rate(&forced, &targets, &mask);
        if mask.iter().any(|&m| m) {
            prop_assert_eq!(sr_forced, 1.0);
        }
        prop_assert!(sr_forced >= sr);
    }

    #[test]
    fn oob_metrics_partition(
        preds in arb_labels(30, 3),
        labels in arb_labels(30, 3),
        mask in proptest::collection::vec(proptest::bool::ANY, 30),
    ) {
        let stats = oob_metrics(&preds, &labels, &mask, 3);
        prop_assert!((0.0..=1.0).contains(&stats.oob_accuracy));
        prop_assert!((0.0..=1.0).contains(&stats.accuracy));
        prop_assert_eq!(stats.attacked_points, mask.iter().filter(|&&m| m).count());
        // Overall accuracy is a convex combination of in-band and
        // out-of-band accuracies; with an empty OOB set it equals in-band.
        if mask.iter().all(|&m| !m) {
            prop_assert!((stats.accuracy - stats.oob_accuracy).abs() < 1e-6);
        }
    }

    #[test]
    fn histogram_conserves_mass(values in proptest::collection::vec(-10.0f32..10.0, 1..200)) {
        let mut h = Histogram::new(-10.0, 10.0, 7);
        h.add_all(&values);
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.bin_counts().iter().sum::<u64>(), values.len() as u64);
        let manual_mean = values.iter().sum::<f32>() / values.len() as f32;
        prop_assert!((h.mean() - manual_mean).abs() < 1e-3);
    }

    #[test]
    fn summary_orders_min_mean_max(values in proptest::collection::vec(-100.0f32..100.0, 1..100)) {
        let s = Summary::of(&values);
        prop_assert!(s.min <= s.mean + 1e-4);
        prop_assert!(s.mean <= s.max + 1e-4);
        prop_assert_eq!(s.count, values.len());
    }
}
