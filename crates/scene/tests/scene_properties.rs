//! Property-based tests for the scene generators and normalization
//! pipelines.

use colper_scene::{
    normalize, IndoorSceneConfig, OutdoorSceneConfig, PointCloud, SceneGenerator,
    INDOOR_CLASS_COUNT, OUTDOOR_CLASS_COUNT,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn indoor_clouds_satisfy_invariants(seed in 0u64..10_000, points in 32usize..512) {
        let cloud = SceneGenerator::indoor(IndoorSceneConfig::with_points(points)).generate(seed);
        prop_assert_eq!(cloud.len(), points);
        prop_assert_eq!(cloud.num_classes, INDOOR_CLASS_COUNT);
        prop_assert!(cloud.labels.iter().all(|&l| l < INDOOR_CLASS_COUNT));
        prop_assert!(cloud.colors.iter().flatten().all(|&v| (0.0..=1.0).contains(&v)));
        prop_assert!(cloud.coords.iter().all(|p| p.is_finite()));
        prop_assert_eq!(cloud.class_histogram().iter().sum::<usize>(), points);
    }

    #[test]
    fn outdoor_clouds_satisfy_invariants(seed in 0u64..10_000, points in 32usize..512) {
        let cloud = SceneGenerator::outdoor(OutdoorSceneConfig::with_points(points)).generate(seed);
        prop_assert_eq!(cloud.len(), points);
        prop_assert_eq!(cloud.num_classes, OUTDOOR_CLASS_COUNT);
        prop_assert!(cloud.labels.iter().all(|&l| l < OUTDOOR_CLASS_COUNT));
        // Everything sits above ground level (small epsilon for floats).
        prop_assert!(cloud.coords.iter().all(|p| p.z >= -1e-3));
    }

    #[test]
    fn normalization_ranges(seed in 0u64..5_000) {
        let cloud = SceneGenerator::indoor(IndoorSceneConfig::with_points(128)).generate(seed);
        let check = |c: &PointCloud, lo: f32, hi: f32| {
            let b = c.bounds().unwrap();
            let min = b.min.x.min(b.min.y).min(b.min.z);
            let max = b.max.x.max(b.max.y).max(b.max.z);
            min >= lo - 1e-3 && max <= hi + 1e-3
        };
        prop_assert!(check(&normalize::pointnet_view(&cloud), 0.0, 3.0));
        prop_assert!(check(&normalize::resgcn_view(&cloud), -1.0, 1.0));
        let mut rng = StdRng::seed_from_u64(seed);
        prop_assert!(check(&normalize::randla_view(&cloud, 128, &mut rng), 0.0, 1.0));
    }

    #[test]
    fn normalization_preserves_label_multiset(seed in 0u64..5_000) {
        let cloud = SceneGenerator::indoor(IndoorSceneConfig::with_points(96)).generate(seed);
        let view = normalize::resgcn_view(&cloud);
        prop_assert_eq!(view.labels, cloud.labels);
        prop_assert_eq!(view.colors, cloud.colors);
    }

    #[test]
    fn resample_invariants(seed in 0u64..5_000, n in 1usize..400) {
        let cloud = SceneGenerator::indoor(IndoorSceneConfig::with_points(128)).generate(seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let r = cloud.resample(n, &mut rng);
        prop_assert_eq!(r.len(), n);
        // Every resampled point exists in the source.
        for (p, l) in r.coords.iter().zip(&r.labels) {
            let found = cloud
                .coords
                .iter()
                .zip(&cloud.labels)
                .any(|(q, ql)| q == p && ql == l);
            prop_assert!(found, "resampled point not in source");
        }
    }

    #[test]
    fn eq10_is_affine(seed in 0u64..5_000) {
        // Affine maps preserve midpoints; verify on real clouds.
        let cloud = SceneGenerator::indoor(IndoorSceneConfig::with_points(64)).generate(seed);
        let view = normalize::resgcn_view(&cloud);
        let t = normalize::eq10_transform(&view);
        for (orig, mapped) in view.coords.iter().zip(&t.coords) {
            prop_assert!((mapped.x - 2.0 * orig.x).abs() < 1e-5);
            prop_assert!((mapped.y - 2.0 * orig.y).abs() < 1e-5);
            prop_assert!((mapped.z - (1.5 * orig.z + 1.5)).abs() < 1e-5);
        }
    }

    #[test]
    fn select_then_histogram_consistent(seed in 0u64..5_000, class in 0usize..13) {
        let cloud = SceneGenerator::indoor(IndoorSceneConfig::with_points(256)).generate(seed);
        let idx = cloud.indices_of_class(class);
        prop_assert_eq!(idx.len(), cloud.class_histogram()[class]);
        if !idx.is_empty() {
            let sub = cloud.select(&idx);
            prop_assert!(sub.labels.iter().all(|&l| l == class));
        }
    }
}
