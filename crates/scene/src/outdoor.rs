//! Procedural Semantic3D-like outdoor scenes.
//!
//! A scene is a square ground patch (z up) split between man-made terrain
//! (a road strip and plaza) and natural terrain (a rolling heightfield).
//! On top sit buildings (big boxes), hard scape (low walls, planters),
//! high vegetation (trunk + canopy trees), low vegetation (ground-hugging
//! bushes), cars (two stacked boxes parked along the road) and scanning
//! artefacts (sparse outlier streaks) — the eight Semantic3D classes.

use crate::{mix_seed, ColorModel, OutdoorClass, PointCloud, OUTDOOR_CLASS_COUNT};
use colper_geom::Point3;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the outdoor generator.
#[derive(Debug, Clone)]
pub struct OutdoorSceneConfig {
    /// Exact number of points in the generated cloud.
    pub n_points: usize,
    /// Side length of the square scene in meters.
    pub extent: f32,
    /// Class-conditional color sampler.
    pub color_model: ColorModel,
    /// Half-width of the per-scene lighting multiplier around 1.0.
    pub lighting_jitter: f32,
    /// Ground sampling density in points per square meter (before the
    /// final resample).
    pub density: f32,
    /// Guarantee at least one car (the Table 4 experiments need one).
    pub ensure_car: bool,
}

impl Default for OutdoorSceneConfig {
    fn default() -> Self {
        Self {
            n_points: 4096,
            extent: 30.0,
            color_model: ColorModel::outdoor_default(),
            lighting_jitter: 0.15,
            density: 4.0,
            ensure_car: true,
        }
    }
}

impl OutdoorSceneConfig {
    /// A config with a custom point budget.
    pub fn with_points(n_points: usize) -> Self {
        Self { n_points, ..Self::default() }
    }
}

struct Surfel {
    pos: Point3,
    class: OutdoorClass,
}

/// Smooth two-octave value noise used for the natural-terrain height.
fn terrain_height(x: f32, y: f32, phase: f32) -> f32 {
    0.6 * ((x * 0.25 + phase).sin() * (y * 0.2 + phase * 0.7).cos())
        + 0.25 * ((x * 0.7 - phase).cos() * (y * 0.8 + phase).sin())
}

/// Scene-level parameters shared by every object emitter.
#[derive(Clone, Copy)]
struct SceneParams {
    extent: f32,
    phase: f32,
    road_y0: f32,
    road_y1: f32,
    lighting: f32,
}

/// One independently-emittable piece of the scene. All placement and
/// dimension randomness is drawn up front (sequentially) into these
/// descriptors; the per-point surfel streams are derived per descriptor,
/// so descriptors can be emitted in parallel in any order and still
/// produce the exact surfels a sequential pass would.
enum ObjectDesc {
    /// A batch of ground samples (road strip + natural heightfield).
    GroundPatch {
        n: usize,
    },
    Building {
        min: Point3,
        max: Point3,
    },
    HardScape {
        min: Point3,
        max: Point3,
    },
    Tree {
        x: f32,
        y: f32,
        trunk_h: f32,
        canopy_r: f32,
    },
    Bush {
        x: f32,
        y: f32,
        r: f32,
    },
    Car {
        x: f32,
        y: f32,
        w: f32,
        d: f32,
    },
    Artefacts {
        n: usize,
    },
}

/// Ground samples per [`ObjectDesc::GroundPatch`]: small enough that a
/// tile-sized scene splits into many stealable patches, large enough
/// that per-patch RNG setup is noise.
const GROUND_PATCH: usize = 4096;

pub(crate) fn generate_scene<R: Rng + ?Sized>(cfg: &OutdoorSceneConfig, rng: &mut R) -> PointCloud {
    let e = cfg.extent;
    let phase: f32 = rng.gen_range(0.0..100.0);
    let road_y0 = rng.gen_range(0.25 * e..0.45 * e);
    let road_y1 = road_y0 + rng.gen_range(4.0..7.0);
    let mut objects: Vec<ObjectDesc> = Vec::new();

    // Ground: road strip = man-made, rest = natural heightfield, split
    // into fixed-size patches so the emit pass can parallelize.
    let ground_n = ((e * e * cfg.density) as usize).max(1);
    let mut remaining = ground_n;
    while remaining > 0 {
        let n = remaining.min(GROUND_PATCH);
        objects.push(ObjectDesc::GroundPatch { n });
        remaining -= n;
    }

    // Buildings along the far side of the road.
    let n_buildings = rng.gen_range(1..=3);
    for _ in 0..n_buildings {
        let bw = rng.gen_range(5.0..10.0);
        let bd = rng.gen_range(4.0..8.0);
        let bh = rng.gen_range(5.0..12.0);
        let bx = rng.gen_range(0.0..(e - bw).max(0.1));
        let by = (road_y1 + rng.gen_range(1.0..4.0)).min(e - bd - 0.1).max(0.0);
        objects.push(ObjectDesc::Building {
            min: Point3::new(bx, by, 0.0),
            max: Point3::new(bx + bw, by + bd, bh),
        });
    }

    // Hard scape: low walls and planters near the road.
    let n_hard = rng.gen_range(2..=5);
    for _ in 0..n_hard {
        let hw = rng.gen_range(1.0..4.0);
        let hx = rng.gen_range(0.0..(e - hw).max(0.1));
        let hy = (road_y0 - rng.gen_range(0.5..3.0)).max(0.0);
        let hh = rng.gen_range(0.5..1.2);
        objects.push(ObjectDesc::HardScape {
            min: Point3::new(hx, hy, 0.0),
            max: Point3::new(hx + hw, hy + 0.4, hh),
        });
    }

    // High vegetation: trees (trunk cylinder + canopy ellipsoid).
    let n_trees = rng.gen_range(3..=7);
    for _ in 0..n_trees {
        let tx = rng.gen_range(1.0..e - 1.0);
        let ty = if rng.gen_bool(0.7) {
            // Keep trees off the road.
            if rng.gen_bool(0.5) {
                rng.gen_range(0.0..road_y0.max(0.5))
            } else {
                rng.gen_range(road_y1.min(e - 0.5)..e)
            }
        } else {
            rng.gen_range(0.0..e)
        };
        let trunk_h = rng.gen_range(2.0..4.0);
        let canopy_r = rng.gen_range(1.2..2.5);
        objects.push(ObjectDesc::Tree { x: tx, y: ty, trunk_h, canopy_r });
    }

    // Low vegetation: bushes hugging the natural terrain.
    let n_bushes = rng.gen_range(4..=9);
    for _ in 0..n_bushes {
        let bx = rng.gen_range(0.0..e);
        let by = if rng.gen_bool(0.5) {
            rng.gen_range(0.0..road_y0.max(0.5))
        } else {
            rng.gen_range(road_y1.min(e - 0.5)..e)
        };
        let br = rng.gen_range(0.3..0.9);
        objects.push(ObjectDesc::Bush { x: bx, y: by, r: br });
    }

    // Cars: parked on the road.
    let n_cars = if cfg.ensure_car { rng.gen_range(1..=3) } else { rng.gen_range(0..=3) };
    for _ in 0..n_cars {
        let cw = rng.gen_range(3.8..4.8); // length
        let cd = rng.gen_range(1.7..2.0); // width
        let cx = rng.gen_range(0.0..(e - cw).max(0.1));
        let cy = rng.gen_range(road_y0..(road_y1 - cd).max(road_y0 + 0.01));
        objects.push(ObjectDesc::Car { x: cx, y: cy, w: cw, d: cd });
    }

    // Scanning artefacts: sparse outlier streaks.
    objects.push(ObjectDesc::Artefacts { n: rng.gen_range(20..60) });

    let lighting = 1.0 + rng.gen_range(-cfg.lighting_jitter..=cfg.lighting_jitter);
    let params = SceneParams { extent: e, phase, road_y0, road_y1, lighting };

    // Per-object surfel streams are seeded from one draw off the caller's
    // RNG, so emitting objects in parallel (in any schedule) produces
    // bytes identical to a sequential pass over the same descriptors.
    let stream_base: u64 = rng.gen();
    let runtime = colper_runtime::current();
    let parts: Vec<(Vec<Surfel>, Vec<[f32; 3]>)> = runtime.par_map_grained(objects.len(), 1, |i| {
        let mut orng = StdRng::seed_from_u64(mix_seed(stream_base, i as u64, 0));
        emit_object(&objects[i], &params, cfg, &mut orng)
    });

    let total: usize = parts.iter().map(|(s, _)| s.len()).sum();
    let mut coords = Vec::with_capacity(total);
    let mut labels = Vec::with_capacity(total);
    let mut colors = Vec::with_capacity(total);
    for (surfels, part_colors) in parts {
        for s in &surfels {
            coords.push(s.pos);
            labels.push(s.class.label());
        }
        colors.extend(part_colors);
    }
    let cloud = PointCloud::new(coords, colors, labels, OUTDOOR_CLASS_COUNT);
    cloud.resample(cfg.n_points, &mut StdRng::seed_from_u64(mix_seed(stream_base, u64::MAX, 1)))
}

/// Emits one descriptor's surfels and colors from its own derived RNG.
fn emit_object(
    desc: &ObjectDesc,
    p: &SceneParams,
    cfg: &OutdoorSceneConfig,
    rng: &mut StdRng,
) -> (Vec<Surfel>, Vec<[f32; 3]>) {
    let e = p.extent;
    let mut surfels: Vec<Surfel> = Vec::new();
    match *desc {
        ObjectDesc::GroundPatch { n } => {
            for _ in 0..n {
                let x = rng.gen_range(0.0..e);
                let y = rng.gen_range(0.0..e);
                if y >= p.road_y0 && y <= p.road_y1 {
                    surfels.push(Surfel {
                        pos: Point3::new(x, y, 0.02),
                        class: OutdoorClass::ManMadeTerrain,
                    });
                } else {
                    let z = terrain_height(x, y, p.phase).max(0.0);
                    surfels.push(Surfel {
                        pos: Point3::new(x, y, z),
                        class: OutdoorClass::NaturalTerrain,
                    });
                }
            }
        }
        ObjectDesc::Building { min, max } => {
            sample_box_faces(
                &mut surfels,
                min,
                max,
                OutdoorClass::Building,
                cfg.density * 2.0,
                rng,
            );
        }
        ObjectDesc::HardScape { min, max } => {
            sample_box_faces(
                &mut surfels,
                min,
                max,
                OutdoorClass::HardScape,
                cfg.density * 3.0,
                rng,
            );
        }
        ObjectDesc::Tree { x: tx, y: ty, trunk_h, canopy_r } => {
            let n_trunk = (trunk_h * cfg.density * 6.0) as usize;
            for _ in 0..n_trunk.max(4) {
                let a = rng.gen_range(0.0..std::f32::consts::TAU);
                let r = 0.15;
                surfels.push(Surfel {
                    pos: Point3::new(
                        tx + r * a.cos(),
                        ty + r * a.sin(),
                        rng.gen_range(0.0..trunk_h),
                    ),
                    class: OutdoorClass::HighVegetation,
                });
            }
            let n_canopy = (canopy_r * canopy_r * cfg.density * 16.0) as usize;
            for _ in 0..n_canopy.max(8) {
                // Random point on the canopy ellipsoid surface.
                let u: f32 = rng.gen_range(-1.0..1.0);
                let a = rng.gen_range(0.0..std::f32::consts::TAU);
                let s = (1.0 - u * u).sqrt();
                surfels.push(Surfel {
                    pos: Point3::new(
                        tx + canopy_r * s * a.cos(),
                        ty + canopy_r * s * a.sin(),
                        trunk_h + canopy_r * 0.8 * (u + 1.0),
                    ),
                    class: OutdoorClass::HighVegetation,
                });
            }
        }
        ObjectDesc::Bush { x: bx, y: by, r: br } => {
            let base = terrain_height(bx, by, p.phase).max(0.0);
            let n = ((br * br * cfg.density * 20.0) as usize).max(6);
            for _ in 0..n {
                let dx = rng.gen_range(-br..br);
                let dy = rng.gen_range(-br..br);
                surfels.push(Surfel {
                    pos: Point3::new(bx + dx, by + dy, base + rng.gen_range(0.0..br * 0.8)),
                    class: OutdoorClass::LowVegetation,
                });
            }
        }
        ObjectDesc::Car { x: cx, y: cy, w: cw, d: cd } => {
            // Body.
            sample_box_faces(
                &mut surfels,
                Point3::new(cx, cy, 0.25),
                Point3::new(cx + cw, cy + cd, 1.0),
                OutdoorClass::Car,
                cfg.density * 8.0,
                rng,
            );
            // Cabin.
            sample_box_faces(
                &mut surfels,
                Point3::new(cx + cw * 0.25, cy + 0.1, 1.0),
                Point3::new(cx + cw * 0.75, cy + cd - 0.1, 1.5),
                OutdoorClass::Car,
                cfg.density * 8.0,
                rng,
            );
        }
        ObjectDesc::Artefacts { n } => {
            for _ in 0..n {
                surfels.push(Surfel {
                    pos: Point3::new(
                        rng.gen_range(0.0..e),
                        rng.gen_range(0.0..e),
                        rng.gen_range(0.0..8.0),
                    ),
                    class: OutdoorClass::ScanningArtefact,
                });
            }
        }
    }
    let colors =
        surfels.iter().map(|s| cfg.color_model.sample(s.class.label(), p.lighting, rng)).collect();
    (surfels, colors)
}

fn sample_box_faces<R: Rng + ?Sized>(
    out: &mut Vec<Surfel>,
    min: Point3,
    max: Point3,
    class: OutdoorClass,
    density: f32,
    rng: &mut R,
) {
    let size = max - min;
    let faces: [(f32, usize); 3] =
        [(size.y * size.z, 0), (size.x * size.z, 1), (size.x * size.y, 2)];
    for (area, axis) in faces {
        let n = ((area * density) as usize).max(1);
        for _ in 0..n {
            for &at_max in &[false, true] {
                let mut p = Point3::new(
                    rng.gen_range(min.x..=max.x.max(min.x + 1e-4)),
                    rng.gen_range(min.y..=max.y.max(min.y + 1e-4)),
                    rng.gen_range(min.z..=max.z.max(min.z + 1e-4)),
                );
                match axis {
                    0 => p.x = if at_max { max.x } else { min.x },
                    1 => p.y = if at_max { max.y } else { min.y },
                    _ => p.z = if at_max { max.z } else { min.z },
                }
                out.push(Surfel { pos: p, class });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gen(seed: u64) -> PointCloud {
        generate_scene(&OutdoorSceneConfig::default(), &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn exact_point_budget_and_class_space() {
        let cloud = gen(0);
        assert_eq!(cloud.len(), 4096);
        assert_eq!(cloud.num_classes, OUTDOOR_CLASS_COUNT);
    }

    #[test]
    fn car_always_present_when_ensured() {
        for seed in 0..6 {
            let cloud = gen(seed);
            assert!(
                cloud.class_histogram()[OutdoorClass::Car.label()] > 0,
                "seed {seed} has no car"
            );
        }
    }

    #[test]
    fn terrain_classes_dominate() {
        let cloud = gen(1);
        let hist = cloud.class_histogram();
        let terrain =
            hist[OutdoorClass::ManMadeTerrain.label()] + hist[OutdoorClass::NaturalTerrain.label()];
        assert!(terrain > cloud.len() / 6, "terrain mass too small: {hist:?}");
    }

    #[test]
    fn most_classes_appear() {
        let cloud = gen(2);
        let present = cloud.class_histogram().iter().filter(|&&c| c > 0).count();
        assert!(present >= 6, "only {present} classes present");
    }

    #[test]
    fn vegetation_is_green_cars_are_not() {
        let cloud = gen(3);
        let mean_color = |class: OutdoorClass| -> [f32; 3] {
            let idx = cloud.indices_of_class(class.label());
            let mut m = [0.0f32; 3];
            for &i in &idx {
                for (c, v) in m.iter_mut().enumerate() {
                    *v += cloud.colors[i][c] / idx.len() as f32;
                }
            }
            m
        };
        let veg = mean_color(OutdoorClass::HighVegetation);
        assert!(veg[1] > veg[0], "vegetation {veg:?}");
        let car = mean_color(OutdoorClass::Car);
        assert!(car[0] > car[1], "car {car:?}");
    }

    #[test]
    fn buildings_are_tall() {
        let cloud = gen(4);
        let idx = cloud.indices_of_class(OutdoorClass::Building.label());
        assert!(!idx.is_empty());
        let max_z = idx.iter().map(|&i| cloud.coords[i].z).fold(0.0f32, f32::max);
        assert!(max_z > 3.0, "building max z {max_z}");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(gen(9), gen(9));
        assert_ne!(gen(9).coords, gen(10).coords);
    }

    #[test]
    fn parallel_emit_bit_identical_to_sequential() {
        use colper_runtime::Runtime;
        for seed in [0, 7, 42] {
            let seq = Runtime::sequential().install(|| gen(seed));
            let par = Runtime::new(4).install(|| gen(seed));
            assert_eq!(seq, par, "seed {seed} diverged across runtimes");
        }
    }

    #[test]
    fn custom_point_budget() {
        let cfg = OutdoorSceneConfig::with_points(1024);
        let cloud = generate_scene(&cfg, &mut StdRng::seed_from_u64(0));
        assert_eq!(cloud.len(), 1024);
    }
}
