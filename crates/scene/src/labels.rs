//! Class inventories matching the two datasets of the paper.

use std::fmt;

/// Number of indoor (S3DIS) classes.
pub const INDOOR_CLASS_COUNT: usize = 13;

/// Number of outdoor (Semantic3D) classes.
pub const OUTDOOR_CLASS_COUNT: usize = 8;

/// The 13 S3DIS classes, with the same integer labels the paper uses
/// (window = 5, door = 6, table = 7, chair = 8, bookcase = 10,
/// board = 11, wall = 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(usize)]
#[allow(missing_docs)]
pub enum IndoorClass {
    Ceiling = 0,
    Floor = 1,
    Wall = 2,
    Beam = 3,
    Column = 4,
    Window = 5,
    Door = 6,
    Table = 7,
    Chair = 8,
    Sofa = 9,
    Bookcase = 10,
    Board = 11,
    Clutter = 12,
}

impl IndoorClass {
    /// All classes in label order.
    pub const ALL: [IndoorClass; INDOOR_CLASS_COUNT] = [
        IndoorClass::Ceiling,
        IndoorClass::Floor,
        IndoorClass::Wall,
        IndoorClass::Beam,
        IndoorClass::Column,
        IndoorClass::Window,
        IndoorClass::Door,
        IndoorClass::Table,
        IndoorClass::Chair,
        IndoorClass::Sofa,
        IndoorClass::Bookcase,
        IndoorClass::Board,
        IndoorClass::Clutter,
    ];

    /// The integer label (same numbering as the paper).
    pub fn label(self) -> usize {
        self as usize
    }

    /// The class for an integer label.
    ///
    /// # Panics
    ///
    /// Panics when `label >= 13`.
    pub fn from_label(label: usize) -> Self {
        Self::ALL[label]
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            IndoorClass::Ceiling => "ceiling",
            IndoorClass::Floor => "floor",
            IndoorClass::Wall => "wall",
            IndoorClass::Beam => "beam",
            IndoorClass::Column => "column",
            IndoorClass::Window => "window",
            IndoorClass::Door => "door",
            IndoorClass::Table => "table",
            IndoorClass::Chair => "chair",
            IndoorClass::Sofa => "sofa",
            IndoorClass::Bookcase => "bookcase",
            IndoorClass::Board => "board",
            IndoorClass::Clutter => "clutter",
        }
    }

    /// The six source classes of the paper's targeted-attack experiment
    /// (Tables 2 and 6).
    pub fn targeted_attack_sources() -> [IndoorClass; 6] {
        [
            IndoorClass::Window,
            IndoorClass::Door,
            IndoorClass::Table,
            IndoorClass::Chair,
            IndoorClass::Bookcase,
            IndoorClass::Board,
        ]
    }
}

impl fmt::Display for IndoorClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The 8 Semantic3D classes. The paper numbers them 1–8 (car = 8,
/// man-made terrain = 1, …); we store them zero-based and expose the
/// paper's numbering via [`OutdoorClass::paper_label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(usize)]
#[allow(missing_docs)]
pub enum OutdoorClass {
    ManMadeTerrain = 0,
    NaturalTerrain = 1,
    HighVegetation = 2,
    LowVegetation = 3,
    Building = 4,
    HardScape = 5,
    ScanningArtefact = 6,
    Car = 7,
}

impl OutdoorClass {
    /// All classes in label order.
    pub const ALL: [OutdoorClass; OUTDOOR_CLASS_COUNT] = [
        OutdoorClass::ManMadeTerrain,
        OutdoorClass::NaturalTerrain,
        OutdoorClass::HighVegetation,
        OutdoorClass::LowVegetation,
        OutdoorClass::Building,
        OutdoorClass::HardScape,
        OutdoorClass::ScanningArtefact,
        OutdoorClass::Car,
    ];

    /// The zero-based label used throughout this workspace.
    pub fn label(self) -> usize {
        self as usize
    }

    /// The 1-based numbering used in the paper's tables.
    pub fn paper_label(self) -> usize {
        self as usize + 1
    }

    /// The class for a zero-based label.
    ///
    /// # Panics
    ///
    /// Panics when `label >= 8`.
    pub fn from_label(label: usize) -> Self {
        Self::ALL[label]
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            OutdoorClass::ManMadeTerrain => "man-made terrain",
            OutdoorClass::NaturalTerrain => "natural terrain",
            OutdoorClass::HighVegetation => "high vegetation",
            OutdoorClass::LowVegetation => "low vegetation",
            OutdoorClass::Building => "building",
            OutdoorClass::HardScape => "hard scape",
            OutdoorClass::ScanningArtefact => "scanning artefact",
            OutdoorClass::Car => "car",
        }
    }

    /// The four target classes of the paper's outdoor targeted attack
    /// (Table 4): terrain and vegetation classes a car is driven toward.
    pub fn targeted_attack_targets() -> [OutdoorClass; 4] {
        [
            OutdoorClass::ManMadeTerrain,
            OutdoorClass::NaturalTerrain,
            OutdoorClass::HighVegetation,
            OutdoorClass::LowVegetation,
        ]
    }
}

impl fmt::Display for OutdoorClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indoor_labels_match_paper() {
        assert_eq!(IndoorClass::Wall.label(), 2);
        assert_eq!(IndoorClass::Window.label(), 5);
        assert_eq!(IndoorClass::Door.label(), 6);
        assert_eq!(IndoorClass::Table.label(), 7);
        assert_eq!(IndoorClass::Chair.label(), 8);
        assert_eq!(IndoorClass::Bookcase.label(), 10);
        assert_eq!(IndoorClass::Board.label(), 11);
    }

    #[test]
    fn indoor_label_round_trip() {
        for c in IndoorClass::ALL {
            assert_eq!(IndoorClass::from_label(c.label()), c);
        }
    }

    #[test]
    fn outdoor_paper_labels() {
        assert_eq!(OutdoorClass::Car.paper_label(), 8);
        assert_eq!(OutdoorClass::ManMadeTerrain.paper_label(), 1);
        assert_eq!(OutdoorClass::HighVegetation.paper_label(), 3);
    }

    #[test]
    fn outdoor_label_round_trip() {
        for c in OutdoorClass::ALL {
            assert_eq!(OutdoorClass::from_label(c.label()), c);
        }
    }

    #[test]
    fn display_names_are_lowercase() {
        for c in IndoorClass::ALL {
            assert_eq!(c.to_string(), c.to_string().to_lowercase());
        }
        for c in OutdoorClass::ALL {
            assert_eq!(c.to_string(), c.to_string().to_lowercase());
        }
    }

    #[test]
    fn targeted_sources_match_paper_tables() {
        let s = IndoorClass::targeted_attack_sources();
        assert_eq!(s.map(IndoorClass::label), [5, 6, 7, 8, 10, 11]);
        let t = OutdoorClass::targeted_attack_targets();
        assert_eq!(t.map(|c| c.paper_label()), [1, 2, 3, 4]);
    }
}
