//! Class-conditional color models.
//!
//! Color must be *informative but not trivially separable*: if every class
//! had a unique flat color, a segmentation model would be a lookup table
//! and the attack result would be meaningless; if color carried no signal,
//! a color-only attack could not work at all. The models below give each
//! class a base palette with per-point jitter and a per-scene lighting
//! multiplier, and deliberately overlap some pairs (wall/ceiling,
//! door/table, terrain classes) so geometry still matters.

use crate::{IndoorClass, OutdoorClass};
use rand::Rng;

/// A class-conditional color sampler.
///
/// # Example
///
/// ```
/// use colper_scene::{ColorModel, IndoorClass};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let model = ColorModel::indoor_default();
/// let mut rng = StdRng::seed_from_u64(0);
/// let rgb = model.sample(IndoorClass::Wall.label(), 1.0, &mut rng);
/// assert!(rgb.iter().all(|&v| (0.0..=1.0).contains(&v)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ColorModel {
    /// Base RGB per class.
    base: Vec<[f32; 3]>,
    /// Per-point jitter half-width per class.
    jitter: Vec<f32>,
}

impl ColorModel {
    /// Builds a model from per-class base colors and jitter widths.
    ///
    /// # Panics
    ///
    /// Panics when the two slices have different lengths or are empty.
    pub fn new(base: Vec<[f32; 3]>, jitter: Vec<f32>) -> Self {
        assert_eq!(base.len(), jitter.len(), "base/jitter length mismatch");
        assert!(!base.is_empty(), "color model needs at least one class");
        Self { base, jitter }
    }

    /// The default indoor (S3DIS-like) palette.
    pub fn indoor_default() -> Self {
        let mut base = vec![[0.5, 0.5, 0.5]; 13];
        let mut jitter = vec![0.06f32; 13];
        base[IndoorClass::Ceiling.label()] = [0.92, 0.92, 0.90];
        base[IndoorClass::Floor.label()] = [0.55, 0.48, 0.40];
        base[IndoorClass::Wall.label()] = [0.85, 0.84, 0.80]; // close to ceiling
        base[IndoorClass::Beam.label()] = [0.70, 0.70, 0.72];
        base[IndoorClass::Column.label()] = [0.78, 0.78, 0.76];
        base[IndoorClass::Window.label()] = [0.55, 0.70, 0.85];
        base[IndoorClass::Door.label()] = [0.50, 0.32, 0.18];
        base[IndoorClass::Table.label()] = [0.60, 0.42, 0.25]; // close to door
        base[IndoorClass::Chair.label()] = [0.25, 0.25, 0.35];
        base[IndoorClass::Sofa.label()] = [0.45, 0.15, 0.15];
        base[IndoorClass::Bookcase.label()] = [0.42, 0.28, 0.18];
        base[IndoorClass::Board.label()] = [0.88, 0.88, 0.86]; // close to wall
        base[IndoorClass::Clutter.label()] = [0.50, 0.50, 0.50];
        jitter[IndoorClass::Clutter.label()] = 0.25; // clutter is colorful
        jitter[IndoorClass::Window.label()] = 0.10; // glass reflections
        Self::new(base, jitter)
    }

    /// The default outdoor (Semantic3D-like) palette.
    pub fn outdoor_default() -> Self {
        let mut base = vec![[0.5, 0.5, 0.5]; 8];
        let mut jitter = vec![0.07f32; 8];
        base[OutdoorClass::ManMadeTerrain.label()] = [0.52, 0.52, 0.52]; // asphalt
        base[OutdoorClass::NaturalTerrain.label()] = [0.45, 0.52, 0.30]; // grass/dirt
        base[OutdoorClass::HighVegetation.label()] = [0.20, 0.42, 0.18];
        base[OutdoorClass::LowVegetation.label()] = [0.32, 0.52, 0.24]; // close to natural terrain
        base[OutdoorClass::Building.label()] = [0.72, 0.65, 0.58];
        base[OutdoorClass::HardScape.label()] = [0.60, 0.58, 0.55]; // close to man-made terrain
        base[OutdoorClass::ScanningArtefact.label()] = [0.50, 0.50, 0.50];
        base[OutdoorClass::Car.label()] = [0.62, 0.10, 0.12]; // distinctly painted
        jitter[OutdoorClass::ScanningArtefact.label()] = 0.30;
        jitter[OutdoorClass::Car.label()] = 0.12;
        Self::new(base, jitter)
    }

    /// Number of classes in the palette.
    pub fn num_classes(&self) -> usize {
        self.base.len()
    }

    /// The base color of a class.
    ///
    /// # Panics
    ///
    /// Panics when `class` is out of range.
    pub fn base(&self, class: usize) -> [f32; 3] {
        self.base[class]
    }

    /// Samples a color for `class` under a scene-wide `lighting`
    /// multiplier (1.0 = neutral), clamped to `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics when `class` is out of range.
    pub fn sample<R: Rng + ?Sized>(&self, class: usize, lighting: f32, rng: &mut R) -> [f32; 3] {
        let base = self.base[class];
        let j = self.jitter[class];
        // A shared luminance jitter keeps channels correlated (real
        // surfaces get lighter/darker together) plus small per-channel
        // noise.
        let lum = rng.gen_range(-j..=j);
        let mut out = [0.0f32; 3];
        for (c, o) in out.iter_mut().enumerate() {
            let chan = rng.gen_range(-j * 0.5..=j * 0.5);
            *o = ((base[c] + lum + chan) * lighting).clamp(0.0, 1.0);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn palettes_cover_all_classes() {
        assert_eq!(ColorModel::indoor_default().num_classes(), 13);
        assert_eq!(ColorModel::outdoor_default().num_classes(), 8);
    }

    #[test]
    fn samples_stay_in_unit_range() {
        let m = ColorModel::indoor_default();
        let mut rng = StdRng::seed_from_u64(1);
        for class in 0..13 {
            for lighting in [0.5f32, 1.0, 1.5] {
                let c = m.sample(class, lighting, &mut rng);
                assert!(c.iter().all(|&v| (0.0..=1.0).contains(&v)), "{c:?}");
            }
        }
    }

    #[test]
    fn samples_cluster_around_base() {
        let m = ColorModel::indoor_default();
        let mut rng = StdRng::seed_from_u64(2);
        let class = IndoorClass::Door.label();
        let base = m.base(class);
        let mut mean = [0.0f32; 3];
        const N: usize = 2000;
        for _ in 0..N {
            let c = m.sample(class, 1.0, &mut rng);
            for i in 0..3 {
                mean[i] += c[i] / N as f32;
            }
        }
        for i in 0..3 {
            assert!((mean[i] - base[i]).abs() < 0.02, "channel {i}: {} vs {}", mean[i], base[i]);
        }
    }

    #[test]
    fn classes_are_statistically_distinguishable() {
        // The vegetation green and the car red must not overlap.
        let m = ColorModel::outdoor_default();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let veg = m.sample(OutdoorClass::HighVegetation.label(), 1.0, &mut rng);
            let car = m.sample(OutdoorClass::Car.label(), 1.0, &mut rng);
            assert!(veg[1] > veg[0], "vegetation should be green-dominant: {veg:?}");
            assert!(car[0] > car[1], "car should be red-dominant: {car:?}");
        }
    }

    #[test]
    fn lighting_scales_brightness() {
        let m = ColorModel::indoor_default();
        let mut rng = StdRng::seed_from_u64(4);
        let dark = m.sample(IndoorClass::Wall.label(), 0.5, &mut rng);
        let bright = m.sample(IndoorClass::Wall.label(), 1.2, &mut rng);
        let lum = |c: [f32; 3]| c.iter().sum::<f32>();
        assert!(lum(bright) > lum(dark));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn new_validates_lengths() {
        let _ = ColorModel::new(vec![[0.0; 3]; 2], vec![0.1]);
    }
}
