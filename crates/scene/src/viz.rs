//! Terminal visualization: a top-down ASCII map of a labeled cloud.
//!
//! Each grid cell shows the dominant class among the points whose (x, y)
//! fall into it, rendered as that class's letter — a quick sanity view of
//! scene structure and of segmentation results without leaving the
//! terminal.

use crate::PointCloud;

/// Characters for up to 16 classes (wraps beyond that). Index `i` is
/// class `i`.
const GLYPHS: &[u8] = b"CFWBKNDTHSOAXYZQ";

/// Renders a `width x height` top-down map of `labels` (pass the cloud's
/// ground truth or a prediction vector).
///
/// Empty cells render as `.`; each occupied cell shows the dominant
/// class glyph.
///
/// # Panics
///
/// Panics when dimensions are zero, the cloud is empty, or
/// `labels.len() != cloud.len()`.
pub fn top_down_map(cloud: &PointCloud, labels: &[usize], width: usize, height: usize) -> String {
    assert!(width > 0 && height > 0, "top_down_map: dimensions must be positive");
    assert!(!cloud.is_empty(), "top_down_map: empty cloud");
    assert_eq!(labels.len(), cloud.len(), "top_down_map: labels length mismatch");
    let bounds = cloud.bounds().expect("non-empty");
    let size = bounds.size();
    let sx = if size.x > f32::EPSILON { size.x } else { 1.0 };
    let sy = if size.y > f32::EPSILON { size.y } else { 1.0 };

    // Per-cell class histogram.
    let classes = cloud.num_classes;
    let mut counts = vec![0u32; width * height * classes];
    for (p, &l) in cloud.coords.iter().zip(labels) {
        let cx = (((p.x - bounds.min.x) / sx) * width as f32) as usize;
        let cy = (((p.y - bounds.min.y) / sy) * height as f32) as usize;
        let cx = cx.min(width - 1);
        let cy = cy.min(height - 1);
        counts[(cy * width + cx) * classes + l] += 1;
    }

    let mut out = String::with_capacity((width + 1) * height);
    // Render north-up: highest y first.
    for row in (0..height).rev() {
        for col in 0..width {
            let cell = &counts[(row * width + col) * classes..(row * width + col + 1) * classes];
            let (best, count) =
                cell.iter().enumerate().max_by_key(|(_, &c)| c).expect("non-empty class space");
            out.push(if *count == 0 { '.' } else { GLYPHS[best % GLYPHS.len()] as char });
        }
        out.push('\n');
    }
    out
}

/// The glyph legend for a class count (one `glyph = index` pair per
/// line), to print beside a map.
pub fn legend(class_names: &[&str]) -> String {
    class_names
        .iter()
        .enumerate()
        .map(|(i, name)| format!("{} = {name}", GLYPHS[i % GLYPHS.len()] as char))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IndoorClass, IndoorSceneConfig, SceneGenerator};
    use colper_geom::Point3;

    #[test]
    fn map_has_requested_shape() {
        let cloud = SceneGenerator::indoor(IndoorSceneConfig::with_points(512)).generate(0);
        let map = top_down_map(&cloud, &cloud.labels, 40, 16);
        let lines: Vec<&str> = map.lines().collect();
        assert_eq!(lines.len(), 16);
        assert!(lines.iter().all(|l| l.chars().count() == 40));
    }

    #[test]
    fn dominant_class_wins_cell() {
        let cloud = PointCloud::new(
            vec![
                Point3::new(0.1, 0.1, 0.0),
                Point3::new(0.2, 0.2, 0.0),
                Point3::new(0.15, 0.15, 0.0),
                Point3::new(0.9, 0.9, 0.0),
            ],
            vec![[0.5; 3]; 4],
            vec![2, 2, 0, 1],
            13,
        );
        let map = top_down_map(&cloud, &cloud.labels, 2, 2);
        let lines: Vec<&str> = map.lines().collect();
        // Bottom-left cell: two wall (2 = 'W') beat one ceiling.
        assert_eq!(lines[1].as_bytes()[0] as char, 'W');
        // Top-right cell: the floor point (1 = 'F').
        assert_eq!(lines[0].as_bytes()[1] as char, 'F');
    }

    #[test]
    fn empty_cells_are_dots() {
        let cloud = PointCloud::new(
            vec![Point3::new(0.0, 0.0, 0.0), Point3::new(1.0, 1.0, 0.0)],
            vec![[0.5; 3]; 2],
            vec![0, 0],
            13,
        );
        let map = top_down_map(&cloud, &cloud.labels, 3, 3);
        assert!(map.contains('.'));
    }

    #[test]
    fn prediction_override_changes_map() {
        let cloud = SceneGenerator::indoor(IndoorSceneConfig::with_points(256)).generate(1);
        let truth_map = top_down_map(&cloud, &cloud.labels, 30, 12);
        let all_wall = vec![IndoorClass::Wall.label(); cloud.len()];
        let wall_map = top_down_map(&cloud, &all_wall, 30, 12);
        assert_ne!(truth_map, wall_map);
        assert!(wall_map.chars().all(|c| c == 'W' || c == '.' || c == '\n'));
    }

    #[test]
    fn legend_pairs_glyphs_with_names() {
        let names: Vec<&str> = IndoorClass::ALL.iter().map(|c| c.name()).collect();
        let l = legend(&names);
        assert!(l.contains("C = ceiling"));
        assert!(l.contains("W = wall"));
        assert_eq!(l.lines().count(), 13);
    }

    #[test]
    #[should_panic(expected = "labels length")]
    fn labels_length_checked() {
        let cloud = SceneGenerator::indoor(IndoorSceneConfig::with_points(64)).generate(0);
        let _ = top_down_map(&cloud, &[0], 4, 4);
    }
}
