//! Point-cloud export: ASCII PLY, viewable in MeshLab / CloudCompare.
//!
//! Two flavors: [`write_ply`] exports the cloud's RGB colors (what a
//! scanner would see — useful for before/after attack comparisons), and
//! [`write_label_ply`] colors each point by its class label (the
//! "segmentation result" views of the paper's figures).

use crate::PointCloud;
use std::io::{self, Write};

/// Writes the cloud with its RGB colors as ASCII PLY.
///
/// A `&mut` reference can be passed for any writer.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_ply<W: Write>(cloud: &PointCloud, mut w: W) -> io::Result<()> {
    write_header(&mut w, cloud.len())?;
    for (p, c) in cloud.coords.iter().zip(&cloud.colors) {
        writeln!(
            w,
            "{} {} {} {} {} {}",
            p.x,
            p.y,
            p.z,
            (c[0] * 255.0).round() as u8,
            (c[1] * 255.0).round() as u8,
            (c[2] * 255.0).round() as u8
        )?;
    }
    Ok(())
}

/// Writes the cloud colored by *label* (or by a prediction vector when
/// `labels` is provided), using a fixed qualitative palette.
///
/// # Errors
///
/// Returns any underlying I/O error.
///
/// # Panics
///
/// Panics when `labels` is `Some` and its length differs from the cloud.
pub fn write_label_ply<W: Write>(
    cloud: &PointCloud,
    labels: Option<&[usize]>,
    mut w: W,
) -> io::Result<()> {
    let labels = match labels {
        Some(l) => {
            assert_eq!(l.len(), cloud.len(), "label override length mismatch");
            l
        }
        None => &cloud.labels,
    };
    write_header(&mut w, cloud.len())?;
    for (p, &l) in cloud.coords.iter().zip(labels) {
        let [r, g, b] = palette(l);
        writeln!(w, "{} {} {} {r} {g} {b}", p.x, p.y, p.z)?;
    }
    Ok(())
}

fn write_header<W: Write>(w: &mut W, n: usize) -> io::Result<()> {
    writeln!(w, "ply")?;
    writeln!(w, "format ascii 1.0")?;
    writeln!(w, "comment COLPER reproduction export")?;
    writeln!(w, "element vertex {n}")?;
    for prop in ["x", "y", "z"] {
        writeln!(w, "property float {prop}")?;
    }
    for prop in ["red", "green", "blue"] {
        writeln!(w, "property uchar {prop}")?;
    }
    writeln!(w, "end_header")
}

/// A 16-entry qualitative palette (wraps for larger label spaces).
fn palette(label: usize) -> [u8; 3] {
    const COLORS: [[u8; 3]; 16] = [
        [230, 25, 75],
        [60, 180, 75],
        [255, 225, 25],
        [0, 130, 200],
        [245, 130, 48],
        [145, 30, 180],
        [70, 240, 240],
        [240, 50, 230],
        [210, 245, 60],
        [250, 190, 212],
        [0, 128, 128],
        [220, 190, 255],
        [170, 110, 40],
        [128, 0, 0],
        [128, 128, 0],
        [0, 0, 128],
    ];
    COLORS[label % COLORS.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IndoorSceneConfig, SceneGenerator};

    fn sample() -> PointCloud {
        SceneGenerator::indoor(IndoorSceneConfig::with_points(32)).generate(0)
    }

    #[test]
    fn ply_header_and_row_count() {
        let cloud = sample();
        let mut buf = Vec::new();
        write_ply(&cloud, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("ply\nformat ascii 1.0\n"));
        assert!(text.contains("element vertex 32"));
        let data_lines = text.lines().skip_while(|l| *l != "end_header").skip(1).count();
        assert_eq!(data_lines, 32);
    }

    #[test]
    fn ply_colors_are_bytes() {
        let cloud = sample();
        let mut buf = Vec::new();
        write_ply(&cloud, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let first = text.lines().skip_while(|l| *l != "end_header").nth(1).unwrap();
        let fields: Vec<&str> = first.split_whitespace().collect();
        assert_eq!(fields.len(), 6);
        for f in &fields[3..] {
            let v: u32 = f.parse().unwrap();
            assert!(v <= 255);
        }
    }

    #[test]
    fn label_ply_uses_palette() {
        let cloud = sample();
        let mut buf = Vec::new();
        write_label_ply(&cloud, None, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // Every wall point (label 2) has the same palette color.
        let wall_color = "255 225 25";
        let wall_lines: Vec<&str> = text
            .lines()
            .skip_while(|l| *l != "end_header")
            .skip(1)
            .zip(&cloud.labels)
            .filter(|(_, &l)| l == 2)
            .map(|(line, _)| line)
            .collect();
        for line in wall_lines {
            assert!(line.ends_with(wall_color), "{line}");
        }
    }

    #[test]
    fn label_override_replaces_ground_truth() {
        let cloud = sample();
        let preds = vec![0usize; cloud.len()];
        let mut buf = Vec::new();
        write_label_ply(&cloud, Some(&preds), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let class0 = "230 25 75";
        for line in text.lines().skip_while(|l| *l != "end_header").skip(1) {
            assert!(line.ends_with(class0));
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn label_override_length_checked() {
        let cloud = sample();
        let _ = write_label_ply(&cloud, Some(&[0]), Vec::new());
    }
}
