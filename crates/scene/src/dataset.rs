//! Dataset facades mirroring the paper's experimental protocol: six
//! indoor "areas" with Area 5 held out, an "Office 33" fixture, and a set
//! of outdoor scenes.

use crate::{IndoorSceneConfig, OutdoorSceneConfig, PointCloud, RoomKind, SceneGenerator};

/// One of the six S3DIS building areas (1-based, as in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Area(pub usize);

impl Area {
    /// All six areas.
    pub const ALL: [Area; 6] = [Area(1), Area(2), Area(3), Area(4), Area(5), Area(6)];

    /// The held-out evaluation area used throughout the paper.
    pub const EVAL: Area = Area(5);
}

/// Deterministic seed mixing: hashes `(base, a, b)` into an independent
/// RNG seed with a splitmix-style finalizer.
///
/// Every derived-stream site in the workspace uses this one function —
/// `(area, room)` rooms, outdoor scene indices, per-object surfel
/// streams, and [`crate::tiled`]'s per-tile world seeds — so any tile,
/// room, or object regenerates bit-identically in isolation.
pub fn mix_seed(base: u64, a: u64, b: u64) -> u64 {
    let mut x = base
        .wrapping_add(a.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// An S3DIS-like dataset: six areas of seeded rooms with the paper's
/// train/test protocol (train on areas 1–4 and 6, evaluate on Area 5).
///
/// # Example
///
/// ```
/// use colper_scene::{Area, S3disLikeDataset};
///
/// let ds = S3disLikeDataset::small();
/// let room = ds.room(Area(5), 0);
/// assert_eq!(room.num_classes, 13);
/// let fixture = ds.office33();
/// assert!(fixture.class_histogram()[7] > 0); // tables present
/// ```
#[derive(Debug, Clone)]
pub struct S3disLikeDataset {
    config: IndoorSceneConfig,
    rooms_per_area: usize,
    base_seed: u64,
}

impl S3disLikeDataset {
    /// Creates a dataset with `rooms_per_area` rooms in each of the six
    /// areas.
    pub fn new(config: IndoorSceneConfig, rooms_per_area: usize) -> Self {
        Self { config, rooms_per_area, base_seed: 0x5353_4449_5321 }
    }

    /// A small CPU-friendly instance (1024-point rooms, 12 rooms/area).
    pub fn small() -> Self {
        Self::new(IndoorSceneConfig::with_points(1024), 12)
    }

    /// The generation configuration.
    pub fn config(&self) -> &IndoorSceneConfig {
        &self.config
    }

    /// Rooms per area.
    pub fn rooms_per_area(&self) -> usize {
        self.rooms_per_area
    }

    /// Generates room `index` of `area` (deterministic).
    ///
    /// # Panics
    ///
    /// Panics when `area` is not 1–6 or `index >= rooms_per_area`.
    pub fn room(&self, area: Area, index: usize) -> PointCloud {
        assert!((1..=6).contains(&area.0), "area must be 1-6");
        assert!(index < self.rooms_per_area, "room index out of range");
        let seed = mix_seed(self.base_seed, area.0 as u64, index as u64);
        // Cycle the room kinds so every area has a mix, with offices
        // over-represented as in the real dataset.
        let kind = match index % 6 {
            0..=2 => RoomKind::Office,
            3 => RoomKind::ConferenceRoom,
            4 => RoomKind::Hallway,
            _ => RoomKind::Lobby,
        };
        let cfg = IndoorSceneConfig { room_kind: Some(kind), ..self.config.clone() };
        SceneGenerator::indoor(cfg).generate(seed)
    }

    /// All rooms of one area.
    pub fn area_rooms(&self, area: Area) -> Vec<PointCloud> {
        (0..self.rooms_per_area).map(|i| self.room(area, i)).collect()
    }

    /// Training rooms: areas 1–4 and 6 (Area 5 held out, as in the
    /// paper).
    pub fn train_rooms(&self) -> Vec<PointCloud> {
        Area::ALL.iter().filter(|a| **a != Area::EVAL).flat_map(|&a| self.area_rooms(a)).collect()
    }

    /// Evaluation rooms: Area 5.
    pub fn eval_rooms(&self) -> Vec<PointCloud> {
        self.area_rooms(Area::EVAL)
    }

    /// The "Office 33 of Area 5" fixture: a fixed-seed office room used
    /// by the paper's targeted experiments and visualizations.
    pub fn office33(&self) -> PointCloud {
        let seed = mix_seed(self.base_seed, 5, 33);
        let cfg = IndoorSceneConfig { room_kind: Some(RoomKind::Office), ..self.config.clone() };
        SceneGenerator::indoor(cfg).generate(seed)
    }

    /// `n` office-room point clouds from Area 5, standing in for "the 100
    /// point clouds in Office 33" (per-block sampling of one big room in
    /// the original dataset).
    pub fn office33_blocks(&self, n: usize) -> Vec<PointCloud> {
        (0..n)
            .map(|i| {
                let seed = mix_seed(self.base_seed, 5_000 + 33, i as u64);
                let cfg =
                    IndoorSceneConfig { room_kind: Some(RoomKind::Office), ..self.config.clone() };
                SceneGenerator::indoor(cfg).generate(seed)
            })
            .collect()
    }
}

/// A Semantic3D-like dataset of seeded outdoor scenes.
///
/// # Example
///
/// ```
/// use colper_scene::Semantic3dLikeDataset;
///
/// let ds = Semantic3dLikeDataset::small();
/// assert_eq!(ds.scene(0).num_classes, 8);
/// ```
#[derive(Debug, Clone)]
pub struct Semantic3dLikeDataset {
    config: OutdoorSceneConfig,
    scene_count: usize,
    base_seed: u64,
}

impl Semantic3dLikeDataset {
    /// Creates a dataset with `scene_count` scenes.
    pub fn new(config: OutdoorSceneConfig, scene_count: usize) -> Self {
        Self { config, scene_count, base_seed: 0x5345_4D33_4421 }
    }

    /// A small CPU-friendly instance (1024-point scenes, 30 scenes —
    /// Semantic3D also ships 30 point clouds).
    pub fn small() -> Self {
        Self::new(OutdoorSceneConfig::with_points(1024), 30)
    }

    /// The generation configuration.
    pub fn config(&self) -> &OutdoorSceneConfig {
        &self.config
    }

    /// Number of scenes.
    pub fn len(&self) -> usize {
        self.scene_count
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.scene_count == 0
    }

    /// Generates scene `index` (deterministic).
    ///
    /// # Panics
    ///
    /// Panics when `index >= len()`.
    pub fn scene(&self, index: usize) -> PointCloud {
        assert!(index < self.scene_count, "scene index out of range");
        let seed = mix_seed(self.base_seed, 0, index as u64);
        SceneGenerator::outdoor(self.config.clone()).generate(seed)
    }

    /// The first 60% of scenes (training split).
    pub fn train_scenes(&self) -> Vec<PointCloud> {
        (0..self.scene_count * 6 / 10).map(|i| self.scene(i)).collect()
    }

    /// The last 40% of scenes (evaluation split).
    pub fn eval_scenes(&self) -> Vec<PointCloud> {
        (self.scene_count * 6 / 10..self.scene_count).map(|i| self.scene(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IndoorClass;

    #[test]
    fn rooms_are_deterministic_and_distinct() {
        let ds = S3disLikeDataset::small();
        assert_eq!(ds.room(Area(1), 0), ds.room(Area(1), 0));
        assert_ne!(ds.room(Area(1), 0).coords, ds.room(Area(1), 1).coords);
        assert_ne!(ds.room(Area(1), 0).coords, ds.room(Area(2), 0).coords);
    }

    #[test]
    fn train_eval_split_sizes() {
        let ds = S3disLikeDataset::new(IndoorSceneConfig::with_points(256), 4);
        assert_eq!(ds.train_rooms().len(), 20); // 5 areas x 4 rooms
        assert_eq!(ds.eval_rooms().len(), 4);
    }

    #[test]
    fn office33_has_all_targeted_sources() {
        let ds = S3disLikeDataset::small();
        let fixture = ds.office33();
        let hist = fixture.class_histogram();
        for class in IndoorClass::targeted_attack_sources() {
            assert!(hist[class.label()] > 0, "missing {class}: {hist:?}");
        }
    }

    #[test]
    fn office33_blocks_are_offices() {
        let ds = S3disLikeDataset::small();
        let blocks = ds.office33_blocks(3);
        assert_eq!(blocks.len(), 3);
        for b in &blocks {
            assert!(b.class_histogram()[IndoorClass::Table.label()] > 0);
        }
    }

    #[test]
    fn outdoor_dataset_splits() {
        let ds = Semantic3dLikeDataset::new(OutdoorSceneConfig::with_points(256), 10);
        assert_eq!(ds.train_scenes().len(), 6);
        assert_eq!(ds.eval_scenes().len(), 4);
        assert_eq!(ds.len(), 10);
    }

    #[test]
    #[should_panic(expected = "area must be 1-6")]
    fn area_bounds_checked() {
        let ds = S3disLikeDataset::small();
        let _ = ds.room(Area(0), 0);
    }

    #[test]
    fn seed_mixing_spreads() {
        // Nearby (area, room) pairs should produce unrelated seeds.
        let a = mix_seed(1, 1, 1);
        let b = mix_seed(1, 1, 2);
        let c = mix_seed(1, 2, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }
}
