//! Per-model preprocessing pipelines, matching the paper's description of
//! how each pre-trained network normalizes its input:
//!
//! * **PointNet++**: coordinates min-max scaled to `[0, 3]`, colors in
//!   `[0, 1]`;
//! * **ResGCN-28**: coordinates scaled to `[-1, 1]`, colors in `[0, 1]`;
//! * **RandLA-Net**: the cloud is randomly re-sampled (duplicate/select)
//!   to a fixed point budget, coordinates scaled to `[0, 1]`;
//! * **Eq. 10**: the coordinate transform the paper applies when
//!   transferring ResGCN adversarial samples to PointNet++.

use crate::PointCloud;
use colper_geom::Point3;
use colper_tensor::Matrix;
use rand::Rng;

/// Min-max rescales each coordinate axis of `cloud` to `[lo, hi]`.
///
/// Degenerate axes (zero extent) map to the midpoint of the range.
pub fn minmax_to_range(cloud: &PointCloud, lo: f32, hi: f32) -> PointCloud {
    let Some(bounds) = cloud.bounds() else {
        return cloud.clone();
    };
    let size = bounds.size();
    let mid = (lo + hi) * 0.5;
    let coords = cloud
        .coords
        .iter()
        .map(|&p| {
            let map_axis = |v: f32, minv: f32, ext: f32| {
                if ext <= f32::EPSILON {
                    mid
                } else {
                    lo + (v - minv) / ext * (hi - lo)
                }
            };
            Point3::new(
                map_axis(p.x, bounds.min.x, size.x),
                map_axis(p.y, bounds.min.y, size.y),
                map_axis(p.z, bounds.min.z, size.z),
            )
        })
        .collect();
    PointCloud::new(coords, cloud.colors.clone(), cloud.labels.clone(), cloud.num_classes)
}

/// PointNet++ preprocessing: coordinates to `[0, 3]`.
pub fn pointnet_view(cloud: &PointCloud) -> PointCloud {
    minmax_to_range(cloud, 0.0, 3.0)
}

/// ResGCN preprocessing: coordinates to `[-1, 1]`.
pub fn resgcn_view(cloud: &PointCloud) -> PointCloud {
    minmax_to_range(cloud, -1.0, 1.0)
}

/// RandLA-Net preprocessing: random duplicate/select re-sampling to
/// `budget` points, then coordinates to `[0, 1]`.
///
/// # Panics
///
/// Panics when the cloud is empty or `budget == 0`.
pub fn randla_view<R: Rng + ?Sized>(cloud: &PointCloud, budget: usize, rng: &mut R) -> PointCloud {
    minmax_to_range(&cloud.resample(budget, rng), 0.0, 1.0)
}

/// The paper's Eq. 10, verbatim: the coordinate transform used to feed
/// ResGCN-normalized (`[-1, 1]`) adversarial samples into PointNet++
/// (`[0, 3]`):
///
/// `x' = 2x, y' = 2y, z' = 1.5 z + 1.5`.
///
/// Colors and labels are unchanged. Note the paper's x/y mapping lands in
/// `[-2, 2]`; [`resgcn_to_pointnet`] provides the range-exact variant,
/// and the transferability harness reports both.
pub fn eq10_transform(cloud: &PointCloud) -> PointCloud {
    let coords =
        cloud.coords.iter().map(|&p| Point3::new(2.0 * p.x, 2.0 * p.y, 1.5 * p.z + 1.5)).collect();
    PointCloud::new(coords, cloud.colors.clone(), cloud.labels.clone(), cloud.num_classes)
}

/// Range-exact ResGCN→PointNet++ coordinate transform: affinely maps
/// every axis from `[-1, 1]` to `[0, 3]` (`v' = 1.5 (v + 1)`).
pub fn resgcn_to_pointnet(cloud: &PointCloud) -> PointCloud {
    let coords = cloud
        .coords
        .iter()
        .map(|&p| Point3::new(1.5 * (p.x + 1.0), 1.5 * (p.y + 1.0), 1.5 * (p.z + 1.0)))
        .collect();
    PointCloud::new(coords, cloud.colors.clone(), cloud.labels.clone(), cloud.num_classes)
}

/// Normalized location features in `[0, 1]` relative to the cloud's
/// bounding box — the last three of S3DIS's nine per-point features.
///
/// Returns an `[N, 3]` matrix; degenerate axes yield `0.5`.
pub fn location01(cloud: &PointCloud) -> Matrix {
    let view = minmax_to_range(cloud, 0.0, 1.0);
    view.coords_matrix()
}

/// Voxel-grid subsampling view: one representative point per occupied
/// `cell`-sized voxel — the deterministic preprocessing large-scale
/// pipelines apply before learning.
///
/// # Panics
///
/// Panics when `cell` is not positive or the cloud is empty.
pub fn grid_view(cloud: &PointCloud, cell: f32) -> PointCloud {
    assert!(!cloud.is_empty(), "grid_view: empty cloud");
    let keep = colper_geom::voxel_downsample(&cloud.coords, cell);
    cloud.select(&keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IndoorSceneConfig, SceneGenerator};

    fn sample() -> PointCloud {
        SceneGenerator::indoor(IndoorSceneConfig::with_points(512)).generate(1)
    }

    fn coord_range(cloud: &PointCloud) -> (f32, f32) {
        let b = cloud.bounds().unwrap();
        let lo = b.min.x.min(b.min.y).min(b.min.z);
        let hi = b.max.x.max(b.max.y).max(b.max.z);
        (lo, hi)
    }

    #[test]
    fn pointnet_view_range() {
        let v = pointnet_view(&sample());
        let (lo, hi) = coord_range(&v);
        assert!(lo >= -1e-4 && hi <= 3.0 + 1e-4, "range [{lo}, {hi}]");
        assert!(hi > 2.9, "max should touch the top of the range");
    }

    #[test]
    fn resgcn_view_range() {
        let v = resgcn_view(&sample());
        let (lo, hi) = coord_range(&v);
        assert!(lo >= -1.0 - 1e-4 && hi <= 1.0 + 1e-4, "range [{lo}, {hi}]");
    }

    #[test]
    fn randla_view_resamples_and_scales() {
        let mut rng = rand::rngs::mock::StepRng::new(7, 13);
        let v = randla_view(&sample(), 2048, &mut rng);
        assert_eq!(v.len(), 2048);
        let (lo, hi) = coord_range(&v);
        assert!(lo >= -1e-4 && hi <= 1.0 + 1e-4);
    }

    #[test]
    fn normalization_preserves_colors_and_labels() {
        let cloud = sample();
        let v = pointnet_view(&cloud);
        assert_eq!(v.colors, cloud.colors);
        assert_eq!(v.labels, cloud.labels);
    }

    #[test]
    fn eq10_matches_paper_formula() {
        let cloud = PointCloud::new(vec![Point3::new(-1.0, 1.0, 0.0)], vec![[0.5; 3]], vec![0], 13);
        let t = eq10_transform(&cloud);
        assert_eq!(t.coords[0], Point3::new(-2.0, 2.0, 1.5));
    }

    #[test]
    fn range_exact_transform_lands_in_pointnet_range() {
        let v = resgcn_view(&sample());
        let t = resgcn_to_pointnet(&v);
        let (lo, hi) = coord_range(&t);
        assert!(lo >= -1e-4 && hi <= 3.0 + 1e-3, "range [{lo}, {hi}]");
    }

    #[test]
    fn location01_in_unit_cube() {
        let m = location01(&sample());
        assert!(m.min().unwrap() >= -1e-5);
        assert!(m.max().unwrap() <= 1.0 + 1e-5);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    fn grid_view_reduces_and_preserves_invariants() {
        let cloud = sample();
        let g = grid_view(&cloud, 0.5);
        assert!(g.len() < cloud.len(), "coarse grid should reduce the cloud");
        assert!(g.len() > 10, "but not collapse it");
        // Every kept point exists in the source with its label.
        for (p, l) in g.coords.iter().zip(&g.labels) {
            assert!(cloud.coords.iter().zip(&cloud.labels).any(|(q, ql)| q == p && ql == l));
        }
        // Finer grid keeps more points.
        let fine = grid_view(&cloud, 0.1);
        assert!(fine.len() >= g.len());
    }

    #[test]
    fn degenerate_axis_maps_to_midpoint() {
        // All points share z = 0 -> z should map to the mid of the range.
        let cloud = PointCloud::new(
            vec![Point3::new(0.0, 0.0, 0.0), Point3::new(1.0, 2.0, 0.0)],
            vec![[0.1; 3]; 2],
            vec![0, 0],
            13,
        );
        let v = minmax_to_range(&cloud, 0.0, 3.0);
        assert!((v.coords[0].z - 1.5).abs() < 1e-6);
        assert!((v.coords[1].z - 1.5).abs() < 1e-6);
    }
}
