//! Read-only file mappings for shard payloads.
//!
//! The workspace carries no `libc`/`memmap` dependency, so on Linux
//! (x86_64 / aarch64) the mapping is a raw `mmap(2)` system call issued
//! with inline assembly; everywhere else [`ShardMap::open`] falls back
//! to reading the file onto the heap with identical semantics. Either
//! way the bytes are immutable for the life of the map and
//! [`ShardMap::is_mapped`] reports which path was taken.
//!
//! This module is the crate's single `#[allow(unsafe_code)]` island
//! (see the crate-root `deny`): the unsafety is confined to the syscall
//! shims and the `&[u8]` reconstruction below, with the safety argument
//! spelled out at each site.

use std::fs::File;
use std::path::Path;

/// An immutable byte view over one shard file.
///
/// The view includes the header bytes; callers slice past
/// [`super::shard::HEADER_LEN`] for the payload.
pub struct ShardMap {
    backing: Backing,
}

enum Backing {
    /// Kernel mapping: pointer + length, unmapped on drop.
    #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
    Mapped { ptr: *const u8, len: usize },
    /// Portable fallback (and the empty-file case): owned bytes.
    Heap(Vec<u8>),
}

// SAFETY: the mapping is PROT_READ + MAP_PRIVATE — the kernel never
// mutates it underneath us and neither do we, so shared references to
// the bytes are sound from any thread.
#[allow(unsafe_code)]
unsafe impl Send for ShardMap {}
#[allow(unsafe_code)]
unsafe impl Sync for ShardMap {}

impl ShardMap {
    /// Maps (or, off-Linux, reads) `path` read-only.
    pub fn open(path: &Path) -> std::io::Result<ShardMap> {
        let file = File::open(path)?;
        let len = file.metadata()?.len() as usize;
        if len == 0 {
            return Ok(ShardMap { backing: Backing::Heap(Vec::new()) });
        }
        Self::open_inner(file, len)
    }

    #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
    fn open_inner(file: File, len: usize) -> std::io::Result<ShardMap> {
        use std::os::fd::AsRawFd;
        match sys::mmap_read(file.as_raw_fd(), len) {
            Ok(ptr) => Ok(ShardMap { backing: Backing::Mapped { ptr, len } }),
            Err(errno) => Err(std::io::Error::from_raw_os_error(errno)),
        }
        // `file` closes here; the mapping outlives the descriptor.
    }

    #[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
    fn open_inner(mut file: File, len: usize) -> std::io::Result<ShardMap> {
        use std::io::Read;
        let mut buf = Vec::with_capacity(len);
        file.read_to_end(&mut buf)?;
        Ok(ShardMap { backing: Backing::Heap(buf) })
    }

    /// The mapped (or read) bytes, header included.
    pub fn bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
            // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
            // bytes, valid until `munmap` in Drop; no mutable aliases
            // exist anywhere.
            #[allow(unsafe_code)]
            Backing::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Backing::Heap(v) => v,
        }
    }

    /// Total length in bytes.
    pub fn len(&self) -> usize {
        match &self.backing {
            #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
            Backing::Mapped { len, .. } => *len,
            Backing::Heap(v) => v.len(),
        }
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` when backed by a kernel mapping, `false` on the heap
    /// fallback — surfaced in residency stats so benches can tell the
    /// legs apart.
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
            Backing::Mapped { .. } => true,
            Backing::Heap(_) => false,
        }
    }
}

impl Drop for ShardMap {
    fn drop(&mut self) {
        #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
        if let Backing::Mapped { ptr, len } = self.backing {
            // SAFETY: exactly the region returned by mmap_read, unmapped
            // once; `bytes()` borrows end before Drop runs.
            #[allow(unsafe_code)]
            unsafe {
                sys::munmap(ptr, len)
            };
        }
    }
}

/// Raw Linux syscall shims (no libc in the dependency tree).
#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
#[allow(unsafe_code)]
mod sys {
    use std::arch::asm;

    const PROT_READ: usize = 1;
    const MAP_PRIVATE: usize = 2;

    /// `mmap(NULL, len, PROT_READ, MAP_PRIVATE, fd, 0)`.
    ///
    /// Returns the mapping address or the positive errno.
    pub fn mmap_read(fd: i32, len: usize) -> Result<*const u8, i32> {
        let ret: isize;
        #[cfg(target_arch = "x86_64")]
        // SAFETY: registers are loaded per the x86_64 syscall ABI for
        // mmap (nr 9); rcx/r11 are declared clobbered. The kernel
        // validates every argument.
        unsafe {
            asm!(
                "syscall",
                inlateout("rax") 9usize as isize => ret,
                in("rdi") 0usize,
                in("rsi") len,
                in("rdx") PROT_READ,
                in("r10") MAP_PRIVATE,
                in("r8") fd as isize,
                in("r9") 0usize,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack)
            );
        }
        #[cfg(target_arch = "aarch64")]
        // SAFETY: registers are loaded per the aarch64 syscall ABI for
        // mmap (nr 222). The kernel validates every argument.
        unsafe {
            asm!(
                "svc 0",
                in("x8") 222usize,
                inlateout("x0") 0usize as isize => ret,
                in("x1") len,
                in("x2") PROT_READ,
                in("x3") MAP_PRIVATE,
                in("x4") fd as isize,
                in("x5") 0usize,
                options(nostack)
            );
        }
        // Linux returns -errno in [-4095, -1] on failure.
        if (-4095..0).contains(&ret) {
            Err(-ret as i32)
        } else {
            Ok(ret as *const u8)
        }
    }

    /// `munmap(ptr, len)`.
    ///
    /// # Safety
    ///
    /// `ptr`/`len` must denote a live mapping returned by
    /// [`mmap_read`], not unmapped before, with no outstanding borrows.
    pub unsafe fn munmap(ptr: *const u8, len: usize) {
        let _ret: isize;
        #[cfg(target_arch = "x86_64")]
        asm!(
            "syscall",
            inlateout("rax") 11usize as isize => _ret,
            in("rdi") ptr,
            in("rsi") len,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
        #[cfg(target_arch = "aarch64")]
        asm!(
            "svc 0",
            in("x8") 215usize,
            inlateout("x0") ptr => _ret,
            in("x1") len,
            options(nostack)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_file_bytes_exactly() {
        let dir = std::env::temp_dir().join(format!("colper-mmap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("probe.bin");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::write(&path, &payload).unwrap();
        let map = ShardMap::open(&path).unwrap();
        assert_eq!(map.len(), payload.len());
        assert_eq!(map.bytes(), &payload[..]);
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        assert!(map.is_mapped());
        drop(map);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_file_maps_empty() {
        let dir = std::env::temp_dir().join(format!("colper-mmap-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.bin");
        std::fs::write(&path, b"").unwrap();
        let map = ShardMap::open(&path).unwrap();
        assert!(map.is_empty());
        assert!(!map.is_mapped());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_errors() {
        assert!(ShardMap::open(Path::new("/nonexistent/colper.shard")).is_err());
    }
}
