//! Out-of-core tiled outdoor worlds at Semantic3D scale.
//!
//! A [`TiledWorld`] materializes the procedural outdoor scene as a
//! `tiles_x x tiles_y` grid. Each tile is an independent outdoor scene
//! whose seed derives from the world seed via [`crate::mix_seed`], so
//! any tile regenerates bit-identically on demand without touching its
//! neighbors; its points are stored as fixed-width column shards
//! ([`shard`]) that are memory-mapped back in ([`mmap`]) under an LRU
//! residency cache with a hard byte budget ([`residency`]).
//!
//! The [`TileStore`] trait abstracts the storage backend so the
//! streaming attack driver runs unchanged over shard-backed worlds
//! ([`ShardStore`]) and fully-resident ones ([`MemStore`]) — which is
//! also how streaming ≡ in-core bit-identity is tested.

pub mod mmap;
pub mod residency;
pub mod shard;

pub use residency::{ResidencyCache, ResidencyStats};
pub use shard::{Column, ShardError, ShardHeader};

use crate::{mix_seed, outdoor, OutdoorSceneConfig, PointCloud, OUTDOOR_CLASS_COUNT};
use colper_geom::Point3;
use mmap::ShardMap;
use rand::rngs::StdRng;
use rand::SeedableRng;
use shard::HEADER_LEN;
use std::fmt;
use std::fs::File;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Grid coordinates of one tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TileId {
    /// Column index, `0..tiles_x`.
    pub x: u32,
    /// Row index, `0..tiles_y`.
    pub y: u32,
}

/// Tiled-world failures: shard IO/structure errors plus residency
/// budget violations.
#[derive(Debug)]
pub enum TiledError {
    /// A shard could not be read, parsed, or written.
    Shard(ShardError),
    /// A tile load would push resident bytes past the hard budget.
    BudgetExceeded {
        /// Bytes that would have been resident.
        needed: usize,
        /// The configured budget.
        budget: usize,
    },
}

impl fmt::Display for TiledError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TiledError::Shard(e) => write!(f, "{e}"),
            TiledError::BudgetExceeded { needed, budget } => {
                write!(f, "tile residency budget exceeded: {needed} bytes needed, budget {budget}")
            }
        }
    }
}

impl std::error::Error for TiledError {}

impl From<ShardError> for TiledError {
    fn from(e: ShardError) -> Self {
        TiledError::Shard(e)
    }
}

impl From<std::io::Error> for TiledError {
    fn from(e: std::io::Error) -> Self {
        TiledError::Shard(ShardError::Io(e))
    }
}

/// Configuration for materializing a tiled world.
#[derive(Debug, Clone, PartialEq)]
pub struct TiledWorldConfig {
    /// Tiles along x.
    pub tiles_x: u32,
    /// Tiles along y.
    pub tiles_y: u32,
    /// Exact points per tile.
    pub points_per_tile: usize,
    /// Side length of each square tile in meters.
    pub tile_extent: f32,
    /// World seed; tile `(x, y)` generates from
    /// `mix_seed(world_seed, x, y)`.
    pub world_seed: u64,
    /// Ground sampling density passed to the outdoor generator.
    pub density: f32,
    /// Lighting jitter passed to the outdoor generator.
    pub lighting_jitter: f32,
    /// Guarantee a car per tile.
    pub ensure_car: bool,
}

impl Default for TiledWorldConfig {
    fn default() -> Self {
        Self {
            tiles_x: 4,
            tiles_y: 4,
            points_per_tile: 4096,
            tile_extent: 30.0,
            world_seed: 0x5354_5245_414D,
            density: 4.0,
            lighting_jitter: 0.15,
            ensure_car: true,
        }
    }
}

impl TiledWorldConfig {
    /// A `tiles x tiles` world with `points_per_tile` points each.
    pub fn grid(tiles: u32, points_per_tile: usize) -> Self {
        Self { tiles_x: tiles, tiles_y: tiles, points_per_tile, ..Self::default() }
    }

    /// Total points in the world.
    pub fn total_points(&self) -> u64 {
        self.tiles_x as u64 * self.tiles_y as u64 * self.points_per_tile as u64
    }

    /// On-disk bytes per tile (all five column shards, headers included).
    pub fn tile_bytes(&self) -> usize {
        let per_point: usize = Column::ALL.iter().map(|c| c.record_width()).sum();
        self.points_per_tile * per_point + Column::ALL.len() * HEADER_LEN
    }

    /// The per-tile scene configuration.
    fn scene_config(&self) -> OutdoorSceneConfig {
        OutdoorSceneConfig {
            n_points: self.points_per_tile,
            extent: self.tile_extent,
            density: self.density,
            lighting_jitter: self.lighting_jitter,
            ensure_car: self.ensure_car,
            ..OutdoorSceneConfig::default()
        }
    }
}

const META_MAGIC: [u8; 4] = *b"CWLD";
const META_VERSION: u16 = 1;
const META_LEN: usize = 45;
const META_FILE: &str = "world.meta";

/// A tiled world rooted at a directory of column shards.
pub struct TiledWorld {
    dir: PathBuf,
    cfg: TiledWorldConfig,
}

impl TiledWorld {
    /// Generates every tile of `cfg` under `dir` (created if absent) and
    /// returns the opened world. Tiles generate in parallel on the
    /// ambient [`colper_runtime`] runtime; because each tile's stream
    /// derives only from `mix_seed(world_seed, x, y)`, the shard bytes
    /// are identical for any thread count.
    pub fn create(dir: &Path, cfg: &TiledWorldConfig) -> Result<TiledWorld, TiledError> {
        std::fs::create_dir_all(dir)?;
        let world = TiledWorld { dir: dir.to_path_buf(), cfg: cfg.clone() };
        world.write_meta()?;
        let ids = world.tile_ids();
        let runtime = colper_runtime::current();
        let results: Vec<Result<(), TiledError>> = runtime.par_map_grained(ids.len(), 1, |i| {
            let id = ids[i];
            let cloud = world.generate_tile(id);
            world.write_tile(id, &cloud)
        });
        for r in results {
            r?;
        }
        Ok(world)
    }

    /// Opens an existing world from its `world.meta`.
    pub fn open(dir: &Path) -> Result<TiledWorld, TiledError> {
        let path = dir.join(META_FILE);
        let mut bytes = Vec::new();
        File::open(&path)?.read_to_end(&mut bytes)?;
        let cfg = decode_meta(&path, &bytes)?;
        Ok(TiledWorld { dir: dir.to_path_buf(), cfg })
    }

    /// The world's configuration.
    pub fn config(&self) -> &TiledWorldConfig {
        &self.cfg
    }

    /// The root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// All tile ids in row-major order (the canonical reduction order).
    pub fn tile_ids(&self) -> Vec<TileId> {
        let mut ids = Vec::with_capacity((self.cfg.tiles_x * self.cfg.tiles_y) as usize);
        for y in 0..self.cfg.tiles_y {
            for x in 0..self.cfg.tiles_x {
                ids.push(TileId { x, y });
            }
        }
        ids
    }

    /// The deterministic seed tile `id` generates from.
    pub fn tile_seed(&self, id: TileId) -> u64 {
        mix_seed(self.cfg.world_seed, id.x as u64, id.y as u64)
    }

    /// World-space origin (min corner) of tile `id`.
    pub fn tile_origin(&self, id: TileId) -> (f32, f32) {
        (id.x as f32 * self.cfg.tile_extent, id.y as f32 * self.cfg.tile_extent)
    }

    /// Regenerates tile `id` from its seed — bit-identical to the cloud
    /// that was sharded at [`TiledWorld::create`] time.
    pub fn generate_tile(&self, id: TileId) -> PointCloud {
        let mut rng = StdRng::seed_from_u64(self.tile_seed(id));
        let mut cloud = outdoor::generate_scene(&self.cfg.scene_config(), &mut rng);
        let (ox, oy) = self.tile_origin(id);
        for p in &mut cloud.coords {
            p.x += ox;
            p.y += oy;
        }
        cloud
    }

    fn tile_dir(&self, id: TileId) -> PathBuf {
        self.dir.join("tiles").join(format!("{:04}_{:04}", id.x, id.y))
    }

    fn header_for(&self, id: TileId, column: Column, count: usize) -> ShardHeader {
        ShardHeader {
            column,
            record_count: count as u64,
            tile_x: id.x,
            tile_y: id.y,
            world_seed: self.cfg.world_seed,
            num_classes: OUTDOOR_CLASS_COUNT as u16,
        }
    }

    /// Writes all five column shards for `cloud` under tile `id`.
    pub fn write_tile(&self, id: TileId, cloud: &PointCloud) -> Result<(), TiledError> {
        let dir = self.tile_dir(id);
        std::fs::create_dir_all(&dir)?;
        let n = cloud.len();
        let mut x = Vec::with_capacity(n * 4);
        let mut y = Vec::with_capacity(n * 4);
        let mut z = Vec::with_capacity(n * 4);
        for p in &cloud.coords {
            x.extend_from_slice(&p.x.to_le_bytes());
            y.extend_from_slice(&p.y.to_le_bytes());
            z.extend_from_slice(&p.z.to_le_bytes());
        }
        let mut rgb = Vec::with_capacity(n * 12);
        for c in &cloud.colors {
            for ch in c {
                rgb.extend_from_slice(&ch.to_le_bytes());
            }
        }
        let labels: Vec<u8> = cloud.labels.iter().map(|&l| l as u8).collect();
        for (column, payload) in [
            (Column::X, &x),
            (Column::Y, &y),
            (Column::Z, &z),
            (Column::Rgb, &rgb),
            (Column::Label, &labels),
        ] {
            shard::write_shard(
                &dir.join(column.file_name()),
                &self.header_for(id, column, n),
                payload,
            )?;
        }
        Ok(())
    }

    /// Maps tile `id`'s shards into a [`TileData`].
    pub fn map_tile(&self, id: TileId) -> Result<TileData, TiledError> {
        TileData::open(&self.tile_dir(id), id)
    }

    /// Reads tile `id` fully into a [`PointCloud`] (through the mapped
    /// shards, then decoded).
    pub fn read_tile(&self, id: TileId) -> Result<PointCloud, TiledError> {
        Ok(self.map_tile(id)?.to_cloud())
    }

    /// Rewrites tile `id`'s rgb column shard with `colors` (the
    /// streaming attack's write-back path).
    pub fn write_colors(&self, id: TileId, colors: &[[f32; 3]]) -> Result<(), TiledError> {
        let mut rgb = Vec::with_capacity(colors.len() * 12);
        for c in colors {
            for ch in c {
                rgb.extend_from_slice(&ch.to_le_bytes());
            }
        }
        shard::write_shard(
            &self.tile_dir(id).join(Column::Rgb.file_name()),
            &self.header_for(id, Column::Rgb, colors.len()),
            &rgb,
        )?;
        Ok(())
    }

    fn write_meta(&self) -> Result<(), TiledError> {
        let c = &self.cfg;
        let mut m = Vec::with_capacity(META_LEN);
        m.extend_from_slice(&META_MAGIC);
        m.extend_from_slice(&META_VERSION.to_le_bytes());
        m.extend_from_slice(&c.tiles_x.to_le_bytes());
        m.extend_from_slice(&c.tiles_y.to_le_bytes());
        m.extend_from_slice(&(c.points_per_tile as u64).to_le_bytes());
        m.extend_from_slice(&c.tile_extent.to_le_bytes());
        m.extend_from_slice(&c.world_seed.to_le_bytes());
        m.extend_from_slice(&(OUTDOOR_CLASS_COUNT as u16).to_le_bytes());
        m.extend_from_slice(&c.density.to_le_bytes());
        m.extend_from_slice(&c.lighting_jitter.to_le_bytes());
        m.push(c.ensure_car as u8);
        debug_assert_eq!(m.len(), META_LEN);
        let mut file = File::create(self.dir.join(META_FILE))?;
        file.write_all(&m)?;
        Ok(())
    }
}

fn decode_meta(path: &Path, bytes: &[u8]) -> Result<TiledWorldConfig, TiledError> {
    if bytes.len() != META_LEN {
        return Err(ShardError::Truncated {
            path: path.to_path_buf(),
            expected: META_LEN as u64,
            actual: bytes.len() as u64,
        }
        .into());
    }
    if bytes[0..4] != META_MAGIC {
        return Err(ShardError::BadMagic { path: path.to_path_buf() }.into());
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != META_VERSION {
        return Err(ShardError::BadVersion { path: path.to_path_buf(), found: version }.into());
    }
    let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().expect("4 bytes"));
    let f32_at = |o: usize| f32::from_le_bytes(bytes[o..o + 4].try_into().expect("4 bytes"));
    let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().expect("8 bytes"));
    Ok(TiledWorldConfig {
        tiles_x: u32_at(6),
        tiles_y: u32_at(10),
        points_per_tile: u64_at(14) as usize,
        tile_extent: f32_at(22),
        world_seed: u64_at(26),
        density: f32_at(36),
        lighting_jitter: f32_at(40),
        ensure_car: bytes[44] != 0,
    })
}

/// Zero-copy accessors over one tile's five mapped column shards.
pub struct TileData {
    x: ShardMap,
    y: ShardMap,
    z: ShardMap,
    rgb: ShardMap,
    label: ShardMap,
    len: usize,
}

impl fmt::Debug for TileData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TileData")
            .field("len", &self.len)
            .field("bytes", &self.byte_len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

impl TileData {
    /// Maps and validates all five shards of the tile at `dir`.
    pub fn open(dir: &Path, id: TileId) -> Result<TileData, TiledError> {
        let mut maps = Vec::with_capacity(5);
        let mut count: Option<u64> = None;
        for column in Column::ALL {
            let path = dir.join(column.file_name());
            let map = ShardMap::open(&path).map_err(ShardError::Io)?;
            let header = ShardHeader::decode(&path, map.bytes(), map.len() as u64)?;
            if header.column != column {
                return Err(ShardError::WrongColumn {
                    path,
                    expected: column,
                    found: header.column,
                }
                .into());
            }
            if header.tile_x != id.x || header.tile_y != id.y {
                return Err(ShardError::CorruptHeader {
                    path,
                    reason: format!(
                        "tile coords ({}, {}) do not match directory ({}, {})",
                        header.tile_x, header.tile_y, id.x, id.y
                    ),
                }
                .into());
            }
            match count {
                None => count = Some(header.record_count),
                Some(c) if c != header.record_count => {
                    return Err(ShardError::CorruptHeader {
                        path,
                        reason: format!(
                            "record count {} disagrees with sibling columns ({c})",
                            header.record_count
                        ),
                    }
                    .into());
                }
                Some(_) => {}
            }
            maps.push(map);
        }
        let len = count.unwrap_or(0) as usize;
        let mut it = maps.into_iter();
        Ok(TileData {
            x: it.next().expect("x map"),
            y: it.next().expect("y map"),
            z: it.next().expect("z map"),
            rgb: it.next().expect("rgb map"),
            label: it.next().expect("label map"),
            len,
        })
    }

    /// Total mapped bytes across the five shards (the residency unit).
    pub fn byte_len(&self) -> usize {
        self.x.len() + self.y.len() + self.z.len() + self.rgb.len() + self.label.len()
    }

    /// Whether the coordinate shards are kernel mappings (vs heap reads).
    pub fn is_mapped(&self) -> bool {
        self.x.is_mapped()
    }

    fn f32_at(map: &ShardMap, offset: usize) -> f32 {
        let b = &map.bytes()[HEADER_LEN + offset..HEADER_LEN + offset + 4];
        f32::from_le_bytes(b.try_into().expect("4 bytes"))
    }

    /// Decodes the whole tile into a [`PointCloud`].
    pub fn to_cloud(&self) -> PointCloud {
        let coords: Vec<Point3> = (0..self.len).map(|i| self.point(i)).collect();
        let colors: Vec<[f32; 3]> = (0..self.len).map(|i| self.color(i)).collect();
        let labels: Vec<usize> = (0..self.len).map(|i| self.label(i)).collect();
        PointCloud::new(coords, colors, labels, OUTDOOR_CLASS_COUNT)
    }
}

/// Random access to one tile's points, independent of backing storage.
pub trait TileAccess: Send + Sync {
    /// Points in the tile.
    fn len(&self) -> usize;
    /// Whether the tile is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// World-space coordinates of point `i`.
    fn point(&self, i: usize) -> Point3;
    /// Color of point `i`.
    fn color(&self, i: usize) -> [f32; 3];
    /// Label of point `i`.
    fn label(&self, i: usize) -> usize;
}

impl TileAccess for TileData {
    fn len(&self) -> usize {
        self.len
    }

    fn point(&self, i: usize) -> Point3 {
        debug_assert!(i < self.len);
        Point3::new(
            Self::f32_at(&self.x, i * 4),
            Self::f32_at(&self.y, i * 4),
            Self::f32_at(&self.z, i * 4),
        )
    }

    fn color(&self, i: usize) -> [f32; 3] {
        debug_assert!(i < self.len);
        [
            Self::f32_at(&self.rgb, i * 12),
            Self::f32_at(&self.rgb, i * 12 + 4),
            Self::f32_at(&self.rgb, i * 12 + 8),
        ]
    }

    fn label(&self, i: usize) -> usize {
        debug_assert!(i < self.len);
        self.label.bytes()[HEADER_LEN + i] as usize
    }
}

/// Storage backend the streaming attack drives: a grid of tiles with
/// snapshot reads and whole-column color write-back.
///
/// Loads hand out [`Arc`] snapshots so window workers can read a tile
/// concurrently; write-back takes `&mut self` and happens between tiles
/// on the driving thread, which is what makes the streaming result
/// independent of the worker schedule.
pub trait TileStore {
    /// Tiles along x.
    fn tiles_x(&self) -> u32;
    /// Tiles along y.
    fn tiles_y(&self) -> u32;
    /// Tile side length in meters.
    fn tile_extent(&self) -> f32;
    /// Label space size.
    fn num_classes(&self) -> usize;
    /// World-space origin (min corner) of tile `id`.
    fn tile_origin(&self, id: TileId) -> (f32, f32) {
        (id.x as f32 * self.tile_extent(), id.y as f32 * self.tile_extent())
    }
    /// All tile ids in row-major order.
    fn tile_ids(&self) -> Vec<TileId> {
        let mut ids = Vec::with_capacity((self.tiles_x() * self.tiles_y()) as usize);
        for y in 0..self.tiles_y() {
            for x in 0..self.tiles_x() {
                ids.push(TileId { x, y });
            }
        }
        ids
    }
    /// Checks out a read snapshot of tile `id`.
    fn load(&self, id: TileId) -> Result<Arc<dyn TileAccess>, TiledError>;
    /// Replaces tile `id`'s color column.
    fn write_colors(&mut self, id: TileId, colors: &[[f32; 3]]) -> Result<(), TiledError>;
    /// Residency occupancy/traffic counters.
    fn resident_stats(&self) -> ResidencyStats;
}

/// Shard-backed store: a [`TiledWorld`] behind a [`ResidencyCache`].
pub struct ShardStore {
    world: TiledWorld,
    cache: ResidencyCache,
}

impl ShardStore {
    /// Wraps `world` with a hard residency budget in bytes.
    pub fn new(world: TiledWorld, budget_bytes: usize) -> ShardStore {
        ShardStore { world, cache: ResidencyCache::new(budget_bytes) }
    }

    /// The underlying world.
    pub fn world(&self) -> &TiledWorld {
        &self.world
    }
}

impl TileStore for ShardStore {
    fn tiles_x(&self) -> u32 {
        self.world.cfg.tiles_x
    }

    fn tiles_y(&self) -> u32 {
        self.world.cfg.tiles_y
    }

    fn tile_extent(&self) -> f32 {
        self.world.cfg.tile_extent
    }

    fn num_classes(&self) -> usize {
        OUTDOOR_CLASS_COUNT
    }

    fn load(&self, id: TileId) -> Result<Arc<dyn TileAccess>, TiledError> {
        let data = self.cache.get_or_load(id, || self.world.map_tile(id))?;
        Ok(data as Arc<dyn TileAccess>)
    }

    fn write_colors(&mut self, id: TileId, colors: &[[f32; 3]]) -> Result<(), TiledError> {
        self.world.write_colors(id, colors)?;
        self.cache.invalidate(id);
        Ok(())
    }

    fn resident_stats(&self) -> ResidencyStats {
        self.cache.stats()
    }
}

/// Fully-resident tile.
struct MemTile {
    coords: Vec<Point3>,
    colors: Vec<[f32; 3]>,
    labels: Vec<usize>,
}

impl TileAccess for MemTile {
    fn len(&self) -> usize {
        self.coords.len()
    }

    fn point(&self, i: usize) -> Point3 {
        self.coords[i]
    }

    fn color(&self, i: usize) -> [f32; 3] {
        self.colors[i]
    }

    fn label(&self, i: usize) -> usize {
        self.labels[i]
    }
}

/// In-core store: the whole world resident as plain vectors. The
/// reference backend for streaming ≡ in-core equivalence tests.
pub struct MemStore {
    cfg: TiledWorldConfig,
    tiles: Vec<Arc<MemTile>>,
    bytes: usize,
}

impl MemStore {
    /// Generates every tile of `cfg` in memory, bit-identical to the
    /// clouds a [`TiledWorld::create`] of the same config shards out.
    pub fn generate(cfg: &TiledWorldConfig) -> MemStore {
        // Reuse the exact TiledWorld generation path without a directory.
        let world = TiledWorld { dir: PathBuf::new(), cfg: cfg.clone() };
        let ids = world.tile_ids();
        let runtime = colper_runtime::current();
        let tiles: Vec<Arc<MemTile>> = runtime.par_map_grained(ids.len(), 1, |i| {
            let cloud = world.generate_tile(ids[i]);
            Arc::new(MemTile { coords: cloud.coords, colors: cloud.colors, labels: cloud.labels })
        });
        let bytes = tiles
            .iter()
            .map(|t| t.len() * (std::mem::size_of::<Point3>() + 12 + std::mem::size_of::<usize>()))
            .sum();
        MemStore { cfg: cfg.clone(), tiles, bytes }
    }

    fn index(&self, id: TileId) -> usize {
        (id.y * self.cfg.tiles_x + id.x) as usize
    }

    /// The final colors of tile `id` (test hook).
    pub fn colors_of(&self, id: TileId) -> Vec<[f32; 3]> {
        self.tiles[self.index(id)].colors.clone()
    }
}

impl TileStore for MemStore {
    fn tiles_x(&self) -> u32 {
        self.cfg.tiles_x
    }

    fn tiles_y(&self) -> u32 {
        self.cfg.tiles_y
    }

    fn tile_extent(&self) -> f32 {
        self.cfg.tile_extent
    }

    fn num_classes(&self) -> usize {
        OUTDOOR_CLASS_COUNT
    }

    fn load(&self, id: TileId) -> Result<Arc<dyn TileAccess>, TiledError> {
        let i = self.index(id);
        Ok(Arc::clone(&self.tiles[i]) as Arc<dyn TileAccess>)
    }

    fn write_colors(&mut self, id: TileId, colors: &[[f32; 3]]) -> Result<(), TiledError> {
        let i = self.index(id);
        let old = &self.tiles[i];
        self.tiles[i] = Arc::new(MemTile {
            coords: old.coords.clone(),
            colors: colors.to_vec(),
            labels: old.labels.clone(),
        });
        Ok(())
    }

    fn resident_stats(&self) -> ResidencyStats {
        // Everything is resident, always: report the world size as both
        // the budget and the peak.
        ResidencyStats {
            budget_bytes: self.bytes,
            current_bytes: self.bytes,
            peak_bytes: self.bytes,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("colper-tiled-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn small_cfg() -> TiledWorldConfig {
        TiledWorldConfig {
            tiles_x: 2,
            tiles_y: 2,
            points_per_tile: 256,
            tile_extent: 20.0,
            world_seed: 7,
            ..TiledWorldConfig::default()
        }
    }

    #[test]
    fn write_read_round_trip_is_bit_identical() {
        let dir = temp_dir("roundtrip");
        let world = TiledWorld::create(&dir, &small_cfg()).unwrap();
        for id in world.tile_ids() {
            let generated = world.generate_tile(id);
            let read = world.read_tile(id).unwrap();
            assert_eq!(generated.coords, read.coords, "tile {id:?} coords");
            assert_eq!(generated.colors, read.colors, "tile {id:?} colors");
            assert_eq!(generated.labels, read.labels, "tile {id:?} labels");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_recovers_config_and_regenerates_identically() {
        let dir = temp_dir("reopen");
        let cfg = small_cfg();
        {
            TiledWorld::create(&dir, &cfg).unwrap();
        }
        let world = TiledWorld::open(&dir).unwrap();
        assert_eq!(world.config().tiles_x, cfg.tiles_x);
        assert_eq!(world.config().world_seed, cfg.world_seed);
        assert_eq!(world.config().points_per_tile, cfg.points_per_tile);
        let id = TileId { x: 1, y: 0 };
        // Regenerate-from-seed must equal read-from-shard.
        assert_eq!(world.generate_tile(id), world.read_tile(id).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tile_seeds_are_distinct_and_tiles_differ() {
        let dir = temp_dir("seeds");
        let world = TiledWorld::create(&dir, &small_cfg()).unwrap();
        let a = TileId { x: 0, y: 0 };
        let b = TileId { x: 1, y: 0 };
        assert_ne!(world.tile_seed(a), world.tile_seed(b));
        assert_ne!(world.read_tile(a).unwrap().colors, world.read_tile(b).unwrap().colors);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_shard_rejected_with_typed_error() {
        let dir = temp_dir("truncate");
        let world = TiledWorld::create(&dir, &small_cfg()).unwrap();
        let id = TileId { x: 0, y: 0 };
        let path = world.tile_dir(id).join(Column::Rgb.file_name());
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        match world.map_tile(id) {
            Err(TiledError::Shard(ShardError::Truncated { .. })) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_magic_rejected_with_typed_error() {
        let dir = temp_dir("magic");
        let world = TiledWorld::create(&dir, &small_cfg()).unwrap();
        let id = TileId { x: 0, y: 1 };
        let path = world.tile_dir(id).join(Column::X.file_name());
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[1] = b'?';
        std::fs::write(&path, &bytes).unwrap();
        match world.map_tile(id) {
            Err(TiledError::Shard(ShardError::BadMagic { .. })) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn swapped_column_rejected_with_typed_error() {
        let dir = temp_dir("swap");
        let world = TiledWorld::create(&dir, &small_cfg()).unwrap();
        let id = TileId { x: 1, y: 1 };
        let tdir = world.tile_dir(id);
        // Serve the y column under the x file name.
        std::fs::copy(tdir.join(Column::Y.file_name()), tdir.join(Column::X.file_name())).unwrap();
        match world.map_tile(id) {
            Err(TiledError::Shard(ShardError::WrongColumn { expected, found, .. })) => {
                assert_eq!(expected, Column::X);
                assert_eq!(found, Column::Y);
            }
            other => panic!("expected WrongColumn, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn color_write_back_round_trips() {
        let dir = temp_dir("writeback");
        let world = TiledWorld::create(&dir, &small_cfg()).unwrap();
        let id = TileId { x: 0, y: 0 };
        let before = world.read_tile(id).unwrap();
        let mut colors = before.colors.clone();
        for c in &mut colors {
            c[0] = (c[0] * 0.5).clamp(0.0, 1.0);
        }
        world.write_colors(id, &colors).unwrap();
        let after = world.read_tile(id).unwrap();
        assert_eq!(after.colors, colors);
        assert_eq!(after.coords, before.coords);
        assert_eq!(after.labels, before.labels);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn residency_budget_enforced_with_lru_eviction() {
        let dir = temp_dir("residency");
        let cfg = small_cfg();
        let world = TiledWorld::create(&dir, &cfg).unwrap();
        let tile_bytes = world.map_tile(TileId { x: 0, y: 0 }).unwrap().byte_len();
        // Room for exactly two tiles.
        let store = ShardStore::new(world, 2 * tile_bytes);
        let ids = store.world().tile_ids();
        for &id in &ids {
            let view = store.load(id).unwrap();
            assert!(!view.is_empty());
            drop(view);
            let stats = store.resident_stats();
            assert!(
                stats.peak_bytes <= 2 * tile_bytes,
                "peak {} exceeds budget {}",
                stats.peak_bytes,
                2 * tile_bytes
            );
        }
        let stats = store.resident_stats();
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.evictions, 2);
        // Re-touch the most recent tile: a hit, no new load.
        store.load(ids[3]).unwrap();
        assert_eq!(store.resident_stats().hits, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn budget_smaller_than_one_tile_is_a_typed_error() {
        let dir = temp_dir("budget");
        let world = TiledWorld::create(&dir, &small_cfg()).unwrap();
        let store = ShardStore::new(world, 64);
        match store.load(TileId { x: 0, y: 0 }) {
            Err(TiledError::BudgetExceeded { budget: 64, .. }) => {}
            other => panic!("expected BudgetExceeded, got {:?}", other.map(|v| v.len())),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mem_store_matches_shard_store_content() {
        let dir = temp_dir("memmatch");
        let cfg = small_cfg();
        let world = TiledWorld::create(&dir, &cfg).unwrap();
        let mem = MemStore::generate(&cfg);
        let shard = ShardStore::new(world, usize::MAX);
        for id in mem.tile_ids() {
            let m = mem.load(id).unwrap();
            let s = shard.load(id).unwrap();
            assert_eq!(m.len(), s.len());
            for i in 0..m.len() {
                assert_eq!(m.point(i), s.point(i), "tile {id:?} point {i}");
                assert_eq!(m.color(i), s.color(i), "tile {id:?} color {i}");
                assert_eq!(m.label(i), s.label(i), "tile {id:?} label {i}");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
