//! Fixed-width column shards: one file per column (`x`/`y`/`z`/`rgb`/
//! `label`) per tile, with a hand-rolled 36-byte binary header — no
//! serde, mirroring the workspace's hand-rolled JSON convention.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     4  magic "CSHD"
//!      4     2  format version (currently 1)
//!      6     1  column tag (0=x 1=y 2=z 3=rgb 4=label)
//!      7     1  record width in bytes (4 / 12 / 1)
//!      8     2  class count
//!     10     2  reserved (zero)
//!     12     4  tile x index
//!     16     4  tile y index
//!     20     8  world seed
//!     28     8  record count
//!     36     …  payload: record_count fixed-width records
//! ```
//!
//! A shard is valid iff the magic, version, column tag, and record width
//! all match and the file length is exactly `36 + count * width`; every
//! violation maps to a distinct [`ShardError`] variant so callers (and
//! tests) can tell truncation from corruption.

use std::fmt;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Shard file magic.
pub const SHARD_MAGIC: [u8; 4] = *b"CSHD";
/// Current shard format version.
pub const SHARD_VERSION: u16 = 1;
/// Header length in bytes.
pub const HEADER_LEN: usize = 36;

/// The five columns a tile is decomposed into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Column {
    /// X coordinates, one `f32` per record.
    X,
    /// Y coordinates, one `f32` per record.
    Y,
    /// Z coordinates, one `f32` per record.
    Z,
    /// Colors, three `f32` (r, g, b in `[0, 1]`) per record.
    Rgb,
    /// Class labels, one `u8` per record.
    Label,
}

impl Column {
    /// All columns in canonical order.
    pub const ALL: [Column; 5] = [Column::X, Column::Y, Column::Z, Column::Rgb, Column::Label];

    /// The header tag byte.
    pub fn tag(self) -> u8 {
        match self {
            Column::X => 0,
            Column::Y => 1,
            Column::Z => 2,
            Column::Rgb => 3,
            Column::Label => 4,
        }
    }

    /// Fixed record width in bytes.
    pub fn record_width(self) -> usize {
        match self {
            Column::X | Column::Y | Column::Z => 4,
            Column::Rgb => 12,
            Column::Label => 1,
        }
    }

    /// Shard file name for this column.
    pub fn file_name(self) -> &'static str {
        match self {
            Column::X => "x.shard",
            Column::Y => "y.shard",
            Column::Z => "z.shard",
            Column::Rgb => "rgb.shard",
            Column::Label => "label.shard",
        }
    }

    fn from_tag(tag: u8) -> Option<Column> {
        Column::ALL.into_iter().find(|c| c.tag() == tag)
    }
}

/// Parsed shard header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardHeader {
    /// Which column the payload encodes.
    pub column: Column,
    /// Number of fixed-width records in the payload.
    pub record_count: u64,
    /// Tile grid x index.
    pub tile_x: u32,
    /// Tile grid y index.
    pub tile_y: u32,
    /// World seed the tile derives from.
    pub world_seed: u64,
    /// Label space size.
    pub num_classes: u16,
}

impl ShardHeader {
    /// Serializes the header into its 36-byte wire form.
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let mut h = [0u8; HEADER_LEN];
        h[0..4].copy_from_slice(&SHARD_MAGIC);
        h[4..6].copy_from_slice(&SHARD_VERSION.to_le_bytes());
        h[6] = self.column.tag();
        h[7] = self.column.record_width() as u8;
        h[8..10].copy_from_slice(&self.num_classes.to_le_bytes());
        h[12..16].copy_from_slice(&self.tile_x.to_le_bytes());
        h[16..20].copy_from_slice(&self.tile_y.to_le_bytes());
        h[20..28].copy_from_slice(&self.world_seed.to_le_bytes());
        h[28..36].copy_from_slice(&self.record_count.to_le_bytes());
        h
    }

    /// Parses and validates a header from the first bytes of a shard
    /// file; `len` is the total file length, checked against the record
    /// count so truncated payloads are rejected up front.
    pub fn decode(path: &Path, bytes: &[u8], len: u64) -> Result<ShardHeader, ShardError> {
        if bytes.len() < HEADER_LEN {
            return Err(ShardError::Truncated {
                path: path.to_path_buf(),
                expected: HEADER_LEN as u64,
                actual: bytes.len() as u64,
            });
        }
        if bytes[0..4] != SHARD_MAGIC {
            return Err(ShardError::BadMagic { path: path.to_path_buf() });
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != SHARD_VERSION {
            return Err(ShardError::BadVersion { path: path.to_path_buf(), found: version });
        }
        let column = Column::from_tag(bytes[6]).ok_or_else(|| ShardError::CorruptHeader {
            path: path.to_path_buf(),
            reason: format!("unknown column tag {}", bytes[6]),
        })?;
        if bytes[7] as usize != column.record_width() {
            return Err(ShardError::CorruptHeader {
                path: path.to_path_buf(),
                reason: format!(
                    "column {:?} claims record width {} (expected {})",
                    column,
                    bytes[7],
                    column.record_width()
                ),
            });
        }
        let num_classes = u16::from_le_bytes([bytes[8], bytes[9]]);
        let tile_x = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
        let tile_y = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes"));
        let world_seed = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes"));
        let record_count = u64::from_le_bytes(bytes[28..36].try_into().expect("8 bytes"));
        let expected = HEADER_LEN as u64 + record_count * column.record_width() as u64;
        if len != expected {
            return Err(ShardError::Truncated { path: path.to_path_buf(), expected, actual: len });
        }
        Ok(ShardHeader { column, record_count, tile_x, tile_y, world_seed, num_classes })
    }
}

/// Typed shard IO failures: IO errors pass through, every structural
/// violation gets its own variant.
#[derive(Debug)]
pub enum ShardError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// File does not start with `CSHD`.
    BadMagic {
        /// Offending file.
        path: PathBuf,
    },
    /// Unsupported format version.
    BadVersion {
        /// Offending file.
        path: PathBuf,
        /// Version found on disk.
        found: u16,
    },
    /// File shorter (or longer) than the header's record count implies.
    Truncated {
        /// Offending file.
        path: PathBuf,
        /// Required length in bytes.
        expected: u64,
        /// Actual length in bytes.
        actual: u64,
    },
    /// Header fields are internally inconsistent.
    CorruptHeader {
        /// Offending file.
        path: PathBuf,
        /// Human-readable diagnosis.
        reason: String,
    },
    /// The shard belongs to a different column than the caller asked for.
    WrongColumn {
        /// Offending file.
        path: PathBuf,
        /// Column the caller expected.
        expected: Column,
        /// Column recorded in the header.
        found: Column,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Io(e) => write!(f, "shard io error: {e}"),
            ShardError::BadMagic { path } => {
                write!(f, "{}: not a shard file (bad magic)", path.display())
            }
            ShardError::BadVersion { path, found } => {
                write!(f, "{}: unsupported shard version {found}", path.display())
            }
            ShardError::Truncated { path, expected, actual } => write!(
                f,
                "{}: truncated shard ({actual} bytes, expected {expected})",
                path.display()
            ),
            ShardError::CorruptHeader { path, reason } => {
                write!(f, "{}: corrupt shard header: {reason}", path.display())
            }
            ShardError::WrongColumn { path, expected, found } => write!(
                f,
                "{}: wrong column (expected {expected:?}, found {found:?})",
                path.display()
            ),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<std::io::Error> for ShardError {
    fn from(e: std::io::Error) -> Self {
        ShardError::Io(e)
    }
}

/// Writes one shard file: header followed by the fixed-width payload.
///
/// `payload.len()` must equal `record_count * record_width`.
pub fn write_shard(path: &Path, header: &ShardHeader, payload: &[u8]) -> Result<(), ShardError> {
    debug_assert_eq!(
        payload.len() as u64,
        header.record_count * header.column.record_width() as u64,
        "payload length does not match header record count"
    );
    let mut file = File::create(path)?;
    file.write_all(&header.encode())?;
    file.write_all(payload)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> ShardHeader {
        ShardHeader {
            column: Column::Rgb,
            record_count: 3,
            tile_x: 1,
            tile_y: 2,
            world_seed: 99,
            num_classes: 8,
        }
    }

    #[test]
    fn header_round_trips() {
        let h = header();
        let bytes = h.encode();
        let len = HEADER_LEN as u64 + 3 * 12;
        let parsed = ShardHeader::decode(Path::new("t"), &bytes, len).unwrap();
        assert_eq!(parsed, h);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = header().encode();
        bytes[0] = b'X';
        let err = ShardHeader::decode(Path::new("t"), &bytes, HEADER_LEN as u64 + 36).unwrap_err();
        assert!(matches!(err, ShardError::BadMagic { .. }), "{err}");
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = header().encode();
        bytes[4] = 0xFF;
        let err = ShardHeader::decode(Path::new("t"), &bytes, HEADER_LEN as u64 + 36).unwrap_err();
        assert!(matches!(err, ShardError::BadVersion { found: 0xFF, .. }), "{err}");
    }

    #[test]
    fn truncated_payload_rejected() {
        let bytes = header().encode();
        // Header says 3 rgb records (36 bytes) but the file is 1 short.
        let err = ShardHeader::decode(Path::new("t"), &bytes, HEADER_LEN as u64 + 35).unwrap_err();
        match err {
            ShardError::Truncated { expected, actual, .. } => {
                assert_eq!(expected, HEADER_LEN as u64 + 36);
                assert_eq!(actual, HEADER_LEN as u64 + 35);
            }
            other => panic!("expected Truncated, got {other}"),
        }
    }

    #[test]
    fn record_width_mismatch_rejected() {
        let mut bytes = header().encode();
        bytes[7] = 5;
        let err = ShardHeader::decode(Path::new("t"), &bytes, HEADER_LEN as u64 + 36).unwrap_err();
        assert!(matches!(err, ShardError::CorruptHeader { .. }), "{err}");
    }

    #[test]
    fn unknown_column_tag_rejected() {
        let mut bytes = header().encode();
        bytes[6] = 9;
        let err = ShardHeader::decode(Path::new("t"), &bytes, HEADER_LEN as u64 + 36).unwrap_err();
        assert!(matches!(err, ShardError::CorruptHeader { .. }), "{err}");
    }
}
