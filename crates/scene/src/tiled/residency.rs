//! LRU tile-residency cache with a hard byte budget.
//!
//! The streaming attack keeps at most a couple of tiles resident at a
//! time (the core tile plus one neighbor while halo strips are copied
//! out); this cache enforces that discipline mechanically. Every
//! checkout either hits a resident mapping or loads one, evicting
//! least-recently-used *unpinned* tiles (pinned = an [`Arc`] still held
//! by a caller) until the new total fits. A load that cannot fit —
//! budget smaller than the tile, or everything else pinned — fails with
//! [`super::TiledError::BudgetExceeded`] rather than silently
//! overshooting, which is what lets CI assert `peak <= budget`.

use super::{TileData, TileId, TiledError};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Snapshot of cache occupancy and traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResidencyStats {
    /// Hard byte budget.
    pub budget_bytes: usize,
    /// Bytes resident right now.
    pub current_bytes: usize,
    /// High-water mark of resident bytes.
    pub peak_bytes: usize,
    /// Checkouts served from a resident mapping.
    pub hits: u64,
    /// Checkouts that had to load from disk.
    pub misses: u64,
    /// Tiles evicted to make room.
    pub evictions: u64,
}

struct Entry {
    data: Arc<TileData>,
    bytes: usize,
    last_used: u64,
}

#[derive(Default)]
struct State {
    entries: HashMap<TileId, Entry>,
    clock: u64,
    current: usize,
    peak: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// The cache itself. Interior-mutable so loads can share `&self`.
pub struct ResidencyCache {
    budget: usize,
    state: Mutex<State>,
}

impl ResidencyCache {
    /// A cache that will never hold more than `budget_bytes` of mapped
    /// shard bytes at once.
    pub fn new(budget_bytes: usize) -> ResidencyCache {
        ResidencyCache { budget: budget_bytes, state: Mutex::new(State::default()) }
    }

    /// The configured budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget
    }

    /// Returns the resident mapping for `id`, loading it with `load` on
    /// a miss and evicting LRU unpinned tiles until the result fits.
    pub fn get_or_load(
        &self,
        id: TileId,
        load: impl FnOnce() -> Result<TileData, TiledError>,
    ) -> Result<Arc<TileData>, TiledError> {
        let mut st = self.state.lock().expect("residency lock");
        st.clock += 1;
        let now = st.clock;
        if let Some(entry) = st.entries.get_mut(&id) {
            entry.last_used = now;
            let data = Arc::clone(&entry.data);
            st.hits += 1;
            return Ok(data);
        }
        st.misses += 1;
        let data = Arc::new(load()?);
        let bytes = data.byte_len();
        // Evict strictly-LRU among unpinned entries until the load fits.
        while st.current + bytes > self.budget {
            let victim = st
                .entries
                .iter()
                .filter(|(_, e)| Arc::strong_count(&e.data) == 1)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&vid, _)| vid);
            match victim {
                Some(vid) => {
                    let evicted = st.entries.remove(&vid).expect("victim present");
                    st.current -= evicted.bytes;
                    st.evictions += 1;
                }
                None => {
                    return Err(TiledError::BudgetExceeded {
                        needed: st.current + bytes,
                        budget: self.budget,
                    });
                }
            }
        }
        st.current += bytes;
        st.peak = st.peak.max(st.current);
        st.entries.insert(id, Entry { data: Arc::clone(&data), bytes, last_used: now });
        Ok(data)
    }

    /// Drops `id`'s resident mapping (e.g. after its rgb column was
    /// rewritten on disk). Callers must have released their `Arc`s
    /// first; a pinned invalidation would leave the mapping alive but
    /// unaccounted.
    pub fn invalidate(&self, id: TileId) {
        let mut st = self.state.lock().expect("residency lock");
        if let Some(entry) = st.entries.remove(&id) {
            debug_assert_eq!(
                Arc::strong_count(&entry.data),
                1,
                "invalidating tile {id:?} while still pinned"
            );
            st.current -= entry.bytes;
        }
    }

    /// Current occupancy and traffic counters.
    pub fn stats(&self) -> ResidencyStats {
        let st = self.state.lock().expect("residency lock");
        ResidencyStats {
            budget_bytes: self.budget,
            current_bytes: st.current,
            peak_bytes: st.peak,
            hits: st.hits,
            misses: st.misses,
            evictions: st.evictions,
        }
    }
}
