//! Synthetic S3DIS-like and Semantic3D-like labeled point-cloud scenes.
//!
//! The COLPER paper evaluates on two licensed datasets this reproduction
//! cannot ship: **S3DIS** (indoor rooms, 13 classes, RGB, 4096-point
//! blocks, six building "areas") and **Semantic3D** (outdoor terrestrial
//! scans, 8 classes). This crate substitutes *procedural generators* that
//! preserve the properties the attack depends on:
//!
//! * every point carries coordinates **and RGB color**, and color is a
//!   genuinely informative (but not trivially sufficient) feature, so
//!   trained models rely on it — the attack surface of the paper;
//! * the class inventories match the papers' label sets, including the
//!   source/target classes of the targeted experiments (board → wall,
//!   car → vegetation, …);
//! * scenes are seeded and deterministic, with a held-out "Area 5" split
//!   and an "Office 33" fixture mirroring the paper's protocol;
//! * per-model preprocessing (PointNet++ `[0,3]` coordinates, ResGCN
//!   `[-1,1]`, RandLA-Net random re-sampling) is implemented in
//!   [`normalize`].
//!
//! # Example
//!
//! ```
//! use colper_scene::{IndoorSceneConfig, SceneGenerator};
//!
//! let gen = SceneGenerator::indoor(IndoorSceneConfig::default());
//! let cloud = gen.generate(7);
//! assert_eq!(cloud.len(), 4096);
//! assert_eq!(cloud.num_classes, 13);
//! ```

// `unsafe` is denied crate-wide and allowed back in exactly one place:
// the raw `mmap(2)` shard mapping in [`tiled::mmap`], which carries its
// own safety argument and a portable heap-read fallback.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod cloud;
mod color;
mod dataset;
mod indoor;
pub mod io;
mod labels;
pub mod normalize;
mod outdoor;
pub mod tiled;
pub mod viz;

pub use cloud::PointCloud;
pub use color::ColorModel;
pub use dataset::{mix_seed, Area, S3disLikeDataset, Semantic3dLikeDataset};
pub use indoor::{IndoorSceneConfig, RoomKind};
pub use labels::{IndoorClass, OutdoorClass, INDOOR_CLASS_COUNT, OUTDOOR_CLASS_COUNT};
pub use outdoor::OutdoorSceneConfig;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A facade over the indoor and outdoor generators.
///
/// Construct with [`SceneGenerator::indoor`] or
/// [`SceneGenerator::outdoor`], then call [`SceneGenerator::generate`]
/// with a seed; equal seeds produce identical clouds.
#[derive(Debug, Clone)]
pub enum SceneGenerator {
    /// S3DIS-like indoor rooms.
    Indoor(IndoorSceneConfig),
    /// Semantic3D-like outdoor scans.
    Outdoor(OutdoorSceneConfig),
}

impl SceneGenerator {
    /// A generator for S3DIS-like indoor rooms.
    pub fn indoor(config: IndoorSceneConfig) -> Self {
        SceneGenerator::Indoor(config)
    }

    /// A generator for Semantic3D-like outdoor scenes.
    pub fn outdoor(config: OutdoorSceneConfig) -> Self {
        SceneGenerator::Outdoor(config)
    }

    /// Generates one labeled point cloud from `seed`.
    pub fn generate(&self, seed: u64) -> PointCloud {
        let mut rng = StdRng::seed_from_u64(seed);
        match self {
            SceneGenerator::Indoor(cfg) => indoor::generate_room(cfg, &mut rng),
            SceneGenerator::Outdoor(cfg) => outdoor::generate_scene(cfg, &mut rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_is_deterministic() {
        let g = SceneGenerator::indoor(IndoorSceneConfig::default());
        let a = g.generate(3);
        let b = g.generate(3);
        assert_eq!(a.coords, b.coords);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn indoor_and_outdoor_have_expected_class_counts() {
        let i = SceneGenerator::indoor(IndoorSceneConfig::default()).generate(0);
        assert_eq!(i.num_classes, INDOOR_CLASS_COUNT);
        let o = SceneGenerator::outdoor(OutdoorSceneConfig::default()).generate(0);
        assert_eq!(o.num_classes, OUTDOOR_CLASS_COUNT);
    }
}
