//! Procedural S3DIS-like indoor rooms.
//!
//! A room is an axis-aligned box (z up): floor at `z = 0`, ceiling at
//! `z = height`, four walls. Windows, doors and boards are flush
//! rectangular regions *relabeled* out of the walls (as in real scans,
//! where they are coplanar with the wall). Furniture (tables, chairs,
//! sofas, bookcases), structural elements (beams, columns) and clutter
//! blobs are sampled as boxes. Surfaces are sampled with uniform areal
//! density and the result is resampled to exactly `n_points`, mirroring
//! S3DIS's fixed-size blocks.

use crate::{ColorModel, IndoorClass, PointCloud, INDOOR_CLASS_COUNT};
use colper_geom::Point3;
use rand::Rng;

/// Which kind of room to generate; affects dimensions and furniture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoomKind {
    /// Small room: desk(s), chairs, bookcase, board — the fixture kind of
    /// the paper's targeted experiments ("Office 33").
    Office,
    /// Larger room with a big table, many chairs and boards.
    ConferenceRoom,
    /// Long narrow space with doors and little furniture.
    Hallway,
    /// Wide open space with sofas and columns.
    Lobby,
}

impl RoomKind {
    /// All room kinds.
    pub const ALL: [RoomKind; 4] =
        [RoomKind::Office, RoomKind::ConferenceRoom, RoomKind::Hallway, RoomKind::Lobby];
}

/// Configuration for the indoor generator.
#[derive(Debug, Clone)]
pub struct IndoorSceneConfig {
    /// Exact number of points in the generated cloud (S3DIS uses 4096).
    pub n_points: usize,
    /// Fix the room kind, or `None` to pick one at random per scene.
    pub room_kind: Option<RoomKind>,
    /// Class-conditional color sampler.
    pub color_model: ColorModel,
    /// Half-width of the per-scene lighting multiplier around 1.0.
    pub lighting_jitter: f32,
    /// Surface sampling density in points per square meter (before the
    /// final resample to `n_points`).
    pub density: f32,
}

impl Default for IndoorSceneConfig {
    fn default() -> Self {
        Self {
            n_points: 4096,
            room_kind: None,
            color_model: ColorModel::indoor_default(),
            lighting_jitter: 0.12,
            density: 90.0,
        }
    }
}

impl IndoorSceneConfig {
    /// A config fixed to one room kind.
    pub fn with_kind(kind: RoomKind) -> Self {
        Self { room_kind: Some(kind), ..Self::default() }
    }

    /// A config with a custom point budget.
    pub fn with_points(n_points: usize) -> Self {
        Self { n_points, ..Self::default() }
    }
}

/// A labeled surfel before coloring.
struct Surfel {
    pos: Point3,
    class: IndoorClass,
}

/// A wall-flush rectangle that relabels the wall points inside it
/// (windows, doors, boards).
struct WallPatch {
    /// 0/1: wall along x at y = 0 / y = depth; 2/3: wall along y at x = 0 / x = width.
    wall: usize,
    /// Start along the wall's horizontal run.
    u0: f32,
    /// End along the wall's horizontal run.
    u1: f32,
    /// Bottom height.
    z0: f32,
    /// Top height.
    z1: f32,
    class: IndoorClass,
}

impl WallPatch {
    fn contains(&self, wall: usize, u: f32, z: f32) -> bool {
        self.wall == wall && u >= self.u0 && u <= self.u1 && z >= self.z0 && z <= self.z1
    }
}

pub(crate) fn generate_room<R: Rng + ?Sized>(cfg: &IndoorSceneConfig, rng: &mut R) -> PointCloud {
    let kind =
        cfg.room_kind.unwrap_or_else(|| RoomKind::ALL[rng.gen_range(0..RoomKind::ALL.len())]);
    let (w, d, h) = room_dims(kind, rng);
    let mut surfels: Vec<Surfel> = Vec::new();

    // Floor and ceiling.
    sample_horizontal_rect(&mut surfels, 0.0, w, 0.0, d, 0.0, IndoorClass::Floor, cfg.density, rng);
    sample_horizontal_rect(&mut surfels, 0.0, w, 0.0, d, h, IndoorClass::Ceiling, cfg.density, rng);

    // Wall patches: doors, windows, boards.
    let patches = plan_wall_patches(kind, w, d, h, rng);

    // Walls (with patch relabeling).
    sample_walls(&mut surfels, w, d, h, &patches, cfg.density, rng);

    // Structural: beams and columns.
    if matches!(kind, RoomKind::Lobby | RoomKind::Hallway) || rng.gen_bool(0.35) {
        let n_beams = rng.gen_range(1..=2);
        for _ in 0..n_beams {
            let y = rng.gen_range(0.2 * d..0.8 * d);
            sample_box(
                &mut surfels,
                Point3::new(0.0, y - 0.15, h - 0.3),
                Point3::new(w, y + 0.15, h),
                IndoorClass::Beam,
                cfg.density,
                rng,
            );
        }
    }
    if matches!(kind, RoomKind::Lobby) || rng.gen_bool(0.3) {
        let n_cols = rng.gen_range(1..=3);
        for _ in 0..n_cols {
            let x = rng.gen_range(0.15 * w..0.85 * w);
            let y = rng.gen_range(0.15 * d..0.85 * d);
            sample_box(
                &mut surfels,
                Point3::new(x - 0.15, y - 0.15, 0.0),
                Point3::new(x + 0.15, y + 0.15, h),
                IndoorClass::Column,
                cfg.density,
                rng,
            );
        }
    }

    // Furniture.
    place_furniture(&mut surfels, kind, w, d, cfg.density, rng);

    // Clutter blobs on the floor and in the air near surfaces.
    let n_clutter = rng.gen_range(3..=8);
    for _ in 0..n_clutter {
        let cx = rng.gen_range(0.1 * w..0.9 * w);
        let cy = rng.gen_range(0.1 * d..0.9 * d);
        let cz = rng.gen_range(0.0..1.2);
        let s = rng.gen_range(0.08..0.35);
        sample_box(
            &mut surfels,
            Point3::new(cx - s, cy - s, cz),
            Point3::new(cx + s, cy + s, cz + s * rng.gen_range(0.5..2.0)),
            IndoorClass::Clutter,
            cfg.density,
            rng,
        );
    }

    finalize(surfels, cfg, rng)
}

fn room_dims<R: Rng + ?Sized>(kind: RoomKind, rng: &mut R) -> (f32, f32, f32) {
    match kind {
        RoomKind::Office => {
            (rng.gen_range(3.0..5.0), rng.gen_range(3.0..5.0), rng.gen_range(2.6..3.2))
        }
        RoomKind::ConferenceRoom => {
            (rng.gen_range(5.0..8.0), rng.gen_range(4.0..6.0), rng.gen_range(2.8..3.4))
        }
        RoomKind::Hallway => {
            (rng.gen_range(8.0..14.0), rng.gen_range(1.8..2.6), rng.gen_range(2.6..3.0))
        }
        RoomKind::Lobby => {
            (rng.gen_range(7.0..11.0), rng.gen_range(6.0..9.0), rng.gen_range(3.0..4.2))
        }
    }
}

fn plan_wall_patches<R: Rng + ?Sized>(
    kind: RoomKind,
    w: f32,
    d: f32,
    h: f32,
    rng: &mut R,
) -> Vec<WallPatch> {
    let mut patches = Vec::new();
    let wall_run = |wall: usize| if wall < 2 { w } else { d };
    let mut add = |rng: &mut R, class: IndoorClass, width: f32, z0: f32, z1: f32| {
        // Retry across walls: a narrow wall may not fit the patch, and the
        // office fixtures must reliably contain every targeted source
        // class.
        for attempt in 0..12 {
            let wall = rng.gen_range(0..4);
            let run = wall_run(wall);
            let width = if attempt < 6 { width } else { width * 0.6 };
            if run <= width + 0.4 {
                continue;
            }
            let u0 = rng.gen_range(0.2..run - width - 0.2);
            let candidate = WallPatch { wall, u0, u1: u0 + width, z0, z1, class };
            // Reject overlaps: patches occlude each other (first match
            // wins when relabeling), which could erase a class entirely.
            let overlaps = patches.iter().any(|p: &WallPatch| {
                p.wall == wall
                    && p.u0 < candidate.u1
                    && candidate.u0 < p.u1
                    && p.z0 < candidate.z1
                    && candidate.z0 < p.z1
            });
            if overlaps {
                if attempt < 11 {
                    continue;
                }
                // Last resort: give the new patch relabeling priority so
                // its class still appears.
                patches.insert(0, candidate);
            } else {
                patches.push(candidate);
            }
            return;
        }
    };
    // Every room has at least one door.
    let n_doors = match kind {
        RoomKind::Hallway => rng.gen_range(2..=4),
        _ => rng.gen_range(1..=2),
    };
    for _ in 0..n_doors {
        let width = rng.gen_range(0.8..1.1);
        let top = rng.gen_range(1.9f32..2.1).min(h - 0.3);
        add(rng, IndoorClass::Door, width, 0.0, top);
    }
    // Windows: offices and conference rooms get at least one.
    let n_windows = match kind {
        RoomKind::Office | RoomKind::ConferenceRoom => rng.gen_range(1..=3),
        _ => rng.gen_range(0..=2),
    };
    for _ in 0..n_windows {
        let width = rng.gen_range(1.0..1.8);
        let sill = rng.gen_range(0.8..1.1);
        add(rng, IndoorClass::Window, width, sill, (h - 0.4).max(1.6));
    }
    // Boards: offices and conference rooms.
    let n_boards = match kind {
        RoomKind::Office => rng.gen_range(1..=2),
        RoomKind::ConferenceRoom => rng.gen_range(1..=2),
        _ => 0,
    };
    for _ in 0..n_boards {
        let width = rng.gen_range(1.2..2.2);
        let bottom = rng.gen_range(0.9..1.2);
        let top = rng.gen_range(1.8f32..2.1).min(h - 0.2);
        add(rng, IndoorClass::Board, width, bottom, top);
    }
    patches
}

fn place_furniture<R: Rng + ?Sized>(
    out: &mut Vec<Surfel>,
    kind: RoomKind,
    w: f32,
    d: f32,
    density: f32,
    rng: &mut R,
) {
    match kind {
        RoomKind::Office => {
            let n_tables = rng.gen_range(1..=2);
            for _ in 0..n_tables {
                place_table(out, w, d, density, rng);
            }
            let n_chairs = rng.gen_range(2..=5);
            for _ in 0..n_chairs {
                place_chair(out, w, d, density, rng);
            }
            let n_book = rng.gen_range(1..=2);
            for _ in 0..n_book {
                place_bookcase(out, w, d, density, rng);
            }
            if rng.gen_bool(0.2) {
                place_sofa(out, w, d, density, rng);
            }
        }
        RoomKind::ConferenceRoom => {
            place_big_table(out, w, d, density, rng);
            let n_chairs = rng.gen_range(6..=10);
            for _ in 0..n_chairs {
                place_chair(out, w, d, density, rng);
            }
            if rng.gen_bool(0.5) {
                place_bookcase(out, w, d, density, rng);
            }
        }
        RoomKind::Hallway => {
            if rng.gen_bool(0.3) {
                place_bookcase(out, w, d, density, rng);
            }
        }
        RoomKind::Lobby => {
            let n_sofas = rng.gen_range(2..=4);
            for _ in 0..n_sofas {
                place_sofa(out, w, d, density, rng);
            }
            if rng.gen_bool(0.6) {
                place_table(out, w, d, density, rng);
            }
            let n_chairs = rng.gen_range(0..=4);
            for _ in 0..n_chairs {
                place_chair(out, w, d, density, rng);
            }
        }
    }
}

fn place_table<R: Rng + ?Sized>(out: &mut Vec<Surfel>, w: f32, d: f32, density: f32, rng: &mut R) {
    let tw = rng.gen_range(1.0..1.8);
    let td = rng.gen_range(0.6..0.9);
    let th = rng.gen_range(0.70..0.78);
    let (x, y) = free_spot(w, d, tw, td, rng);
    // Top slab.
    sample_box(
        out,
        Point3::new(x, y, th - 0.04),
        Point3::new(x + tw, y + td, th),
        IndoorClass::Table,
        density * 1.5,
        rng,
    );
    // Four legs.
    for (lx, ly) in [(x, y), (x + tw - 0.05, y), (x, y + td - 0.05), (x + tw - 0.05, y + td - 0.05)]
    {
        sample_box(
            out,
            Point3::new(lx, ly, 0.0),
            Point3::new(lx + 0.05, ly + 0.05, th - 0.04),
            IndoorClass::Table,
            density,
            rng,
        );
    }
}

fn place_big_table<R: Rng + ?Sized>(
    out: &mut Vec<Surfel>,
    w: f32,
    d: f32,
    density: f32,
    rng: &mut R,
) {
    let tw = (w * 0.5).clamp(1.5, 4.0);
    let td = (d * 0.35).clamp(1.0, 2.0);
    let th = 0.75;
    let x = (w - tw) / 2.0;
    let y = (d - td) / 2.0;
    sample_box(
        out,
        Point3::new(x, y, th - 0.05),
        Point3::new(x + tw, y + td, th),
        IndoorClass::Table,
        density * 1.5,
        rng,
    );
    sample_box(
        out,
        Point3::new(x + tw * 0.45, y + td * 0.45, 0.0),
        Point3::new(x + tw * 0.55, y + td * 0.55, th - 0.05),
        IndoorClass::Table,
        density,
        rng,
    );
}

fn place_chair<R: Rng + ?Sized>(out: &mut Vec<Surfel>, w: f32, d: f32, density: f32, rng: &mut R) {
    let s = rng.gen_range(0.40..0.52);
    let seat_h = rng.gen_range(0.42..0.48);
    let back_h = seat_h + rng.gen_range(0.35..0.50);
    let (x, y) = free_spot(w, d, s, s, rng);
    // Seat.
    sample_box(
        out,
        Point3::new(x, y, seat_h - 0.05),
        Point3::new(x + s, y + s, seat_h),
        IndoorClass::Chair,
        density * 1.5,
        rng,
    );
    // Back (one side).
    sample_box(
        out,
        Point3::new(x, y, seat_h),
        Point3::new(x + s, y + 0.06, back_h),
        IndoorClass::Chair,
        density * 1.5,
        rng,
    );
    // Legs.
    sample_box(
        out,
        Point3::new(x + s * 0.4, y + s * 0.4, 0.0),
        Point3::new(x + s * 0.6, y + s * 0.6, seat_h - 0.05),
        IndoorClass::Chair,
        density,
        rng,
    );
}

fn place_sofa<R: Rng + ?Sized>(out: &mut Vec<Surfel>, w: f32, d: f32, density: f32, rng: &mut R) {
    let sw = rng.gen_range(1.6..2.4);
    let sd = rng.gen_range(0.8..1.0);
    let (x, y) = free_spot(w, d, sw, sd, rng);
    // Base.
    sample_box(
        out,
        Point3::new(x, y, 0.0),
        Point3::new(x + sw, y + sd, 0.45),
        IndoorClass::Sofa,
        density,
        rng,
    );
    // Back.
    sample_box(
        out,
        Point3::new(x, y, 0.45),
        Point3::new(x + sw, y + 0.2, 0.95),
        IndoorClass::Sofa,
        density,
        rng,
    );
    // Armrests.
    for ax in [x, x + sw - 0.2] {
        sample_box(
            out,
            Point3::new(ax, y, 0.45),
            Point3::new(ax + 0.2, y + sd, 0.65),
            IndoorClass::Sofa,
            density,
            rng,
        );
    }
}

fn place_bookcase<R: Rng + ?Sized>(
    out: &mut Vec<Surfel>,
    w: f32,
    d: f32,
    density: f32,
    rng: &mut R,
) {
    let bw = rng.gen_range(0.8..1.8);
    let bd = 0.35;
    let bh = rng.gen_range(1.6..2.2);
    // Against a random wall.
    let against_x = rng.gen_bool(0.5);
    let (x, y) = if against_x {
        (
            rng.gen_range(0.2..(w - bw - 0.2).max(0.25)),
            if rng.gen_bool(0.5) { 0.05 } else { d - bd - 0.05 },
        )
    } else {
        (
            if rng.gen_bool(0.5) { 0.05 } else { w - bd - 0.05 },
            rng.gen_range(0.2..(d - bw - 0.2).max(0.25)),
        )
    };
    let (bx, by) = if against_x { (bw, bd) } else { (bd, bw) };
    // Carcass.
    sample_box(
        out,
        Point3::new(x, y, 0.0),
        Point3::new(x + bx, y + by, bh),
        IndoorClass::Bookcase,
        density,
        rng,
    );
    // Shelves: horizontal slabs inside give the front a layered look.
    let n_shelves = (bh / 0.4) as usize;
    for s in 1..n_shelves {
        let z = s as f32 * 0.4;
        sample_horizontal_rect(
            out,
            x,
            x + bx,
            y,
            y + by,
            z,
            IndoorClass::Bookcase,
            density * 1.2,
            rng,
        );
    }
}

/// Picks a random placement for a `fw x fd` footprint inside the room,
/// keeping a margin from the walls.
fn free_spot<R: Rng + ?Sized>(w: f32, d: f32, fw: f32, fd: f32, rng: &mut R) -> (f32, f32) {
    let x_max = (w - fw - 0.3).max(0.31);
    let y_max = (d - fd - 0.3).max(0.31);
    (rng.gen_range(0.3..x_max), rng.gen_range(0.3..y_max))
}

/// Samples a horizontal rectangle at height `z`.
#[allow(clippy::too_many_arguments)]
fn sample_horizontal_rect<R: Rng + ?Sized>(
    out: &mut Vec<Surfel>,
    x0: f32,
    x1: f32,
    y0: f32,
    y1: f32,
    z: f32,
    class: IndoorClass,
    density: f32,
    rng: &mut R,
) {
    let area = (x1 - x0).max(0.0) * (y1 - y0).max(0.0);
    let n = ((area * density) as usize).max(1);
    for _ in 0..n {
        out.push(Surfel {
            pos: Point3::new(rng.gen_range(x0..=x1), rng.gen_range(y0..=y1), z),
            class,
        });
    }
}

/// Samples the four walls of the room, relabeling points inside patches.
fn sample_walls<R: Rng + ?Sized>(
    out: &mut Vec<Surfel>,
    w: f32,
    d: f32,
    h: f32,
    patches: &[WallPatch],
    density: f32,
    rng: &mut R,
) {
    for wall in 0..4 {
        let run = if wall < 2 { w } else { d };
        let n = ((run * h * density) as usize).max(1);
        for _ in 0..n {
            let u = rng.gen_range(0.0..=run);
            let z = rng.gen_range(0.0..=h);
            let class = patches
                .iter()
                .find(|p| p.contains(wall, u, z))
                .map_or(IndoorClass::Wall, |p| p.class);
            let pos = match wall {
                0 => Point3::new(u, 0.0, z),
                1 => Point3::new(u, d, z),
                2 => Point3::new(0.0, u, z),
                _ => Point3::new(w, u, z),
            };
            out.push(Surfel { pos, class });
        }
    }
}

/// Samples the six faces of an axis-aligned box.
fn sample_box<R: Rng + ?Sized>(
    out: &mut Vec<Surfel>,
    min: Point3,
    max: Point3,
    class: IndoorClass,
    density: f32,
    rng: &mut R,
) {
    let size = max - min;
    let faces: [(f32, usize); 3] = [
        (size.y * size.z, 0), // +-x faces
        (size.x * size.z, 1), // +-y faces
        (size.x * size.y, 2), // +-z faces
    ];
    for (area, axis) in faces {
        let n = ((area * density) as usize).max(1);
        for _ in 0..n {
            for &at_max in &[false, true] {
                let mut p = Point3::new(
                    rng.gen_range(min.x..=max.x.max(min.x + 1e-4)),
                    rng.gen_range(min.y..=max.y.max(min.y + 1e-4)),
                    rng.gen_range(min.z..=max.z.max(min.z + 1e-4)),
                );
                match axis {
                    0 => p.x = if at_max { max.x } else { min.x },
                    1 => p.y = if at_max { max.y } else { min.y },
                    _ => p.z = if at_max { max.z } else { min.z },
                }
                out.push(Surfel { pos: p, class });
            }
        }
    }
}

/// Colors the surfels and resamples to the configured point budget.
fn finalize<R: Rng + ?Sized>(
    surfels: Vec<Surfel>,
    cfg: &IndoorSceneConfig,
    rng: &mut R,
) -> PointCloud {
    let lighting = 1.0 + rng.gen_range(-cfg.lighting_jitter..=cfg.lighting_jitter);
    let coords: Vec<Point3> = surfels.iter().map(|s| s.pos).collect();
    let labels: Vec<usize> = surfels.iter().map(|s| s.class.label()).collect();
    let colors: Vec<[f32; 3]> =
        labels.iter().map(|&l| cfg.color_model.sample(l, lighting, rng)).collect();
    let cloud = PointCloud::new(coords, colors, labels, INDOOR_CLASS_COUNT);
    cloud.resample(cfg.n_points, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gen(kind: RoomKind, seed: u64) -> PointCloud {
        let cfg = IndoorSceneConfig::with_kind(kind);
        generate_room(&cfg, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn office_contains_all_targeted_source_classes() {
        // The targeted-attack experiment needs window, door, table, chair,
        // bookcase and board points; offices must reliably provide them.
        for seed in 0..5 {
            let cloud = gen(RoomKind::Office, seed);
            let hist = cloud.class_histogram();
            for class in IndoorClass::targeted_attack_sources() {
                assert!(hist[class.label()] > 0, "office seed {seed} missing {class}: {hist:?}");
            }
            assert!(hist[IndoorClass::Wall.label()] > 0);
        }
    }

    #[test]
    fn exact_point_budget() {
        for kind in RoomKind::ALL {
            let cloud = gen(kind, 1);
            assert_eq!(cloud.len(), 4096, "{kind:?}");
        }
    }

    #[test]
    fn structural_classes_dominate() {
        // Ceiling + floor + wall should be the biggest mass, as in S3DIS.
        let cloud = gen(RoomKind::Office, 2);
        let hist = cloud.class_histogram();
        let structural: usize = [IndoorClass::Ceiling, IndoorClass::Floor, IndoorClass::Wall]
            .iter()
            .map(|c| hist[c.label()])
            .sum();
        assert!(structural > cloud.len() / 3, "structural mass too small: {hist:?}");
    }

    #[test]
    fn coordinates_inside_room_bounds() {
        let cloud = gen(RoomKind::ConferenceRoom, 3);
        let b = cloud.bounds().unwrap();
        assert!(b.min.z >= -1e-4);
        assert!(b.size().x > 2.0 && b.size().y > 2.0 && b.size().z > 2.0);
    }

    #[test]
    fn hallway_is_elongated() {
        let cloud = gen(RoomKind::Hallway, 4);
        let s = cloud.bounds().unwrap().size();
        assert!(s.x / s.y > 2.5, "hallway aspect {s:?}");
    }

    #[test]
    fn lobby_has_sofas_office_usually_not() {
        let lobby = gen(RoomKind::Lobby, 5);
        assert!(lobby.class_histogram()[IndoorClass::Sofa.label()] > 0);
    }

    #[test]
    fn colors_match_palette_statistics() {
        let cloud = gen(RoomKind::Office, 6);
        // Average ceiling color should be bright.
        let idx = cloud.indices_of_class(IndoorClass::Ceiling.label());
        assert!(!idx.is_empty());
        let mean_lum: f32 =
            idx.iter().map(|&i| cloud.colors[i].iter().sum::<f32>() / 3.0).sum::<f32>()
                / idx.len() as f32;
        assert!(mean_lum > 0.6, "ceiling luminance {mean_lum}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = gen(RoomKind::Office, 9);
        let b = gen(RoomKind::Office, 9);
        assert_eq!(a, b);
        let c = gen(RoomKind::Office, 10);
        assert_ne!(a.coords, c.coords);
    }

    #[test]
    fn boards_sit_on_walls() {
        // Board points must be coplanar with one of the four wall planes.
        for seed in 0..4 {
            let cloud = gen(RoomKind::Office, seed);
            let b = cloud.bounds().unwrap();
            for &i in &cloud.indices_of_class(IndoorClass::Board.label()) {
                let p = cloud.coords[i];
                let on_wall = (p.y - 0.0).abs() < 1e-3
                    || (p.y - b.max.y).abs() < 1e-3
                    || (p.x - 0.0).abs() < 1e-3
                    || (p.x - b.max.x).abs() < 1e-3;
                assert!(on_wall, "board point {p} not on a wall");
            }
        }
    }
}
