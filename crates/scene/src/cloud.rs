//! The [`PointCloud`] container: coordinates, RGB colors and per-point
//! labels.

use colper_geom::{Aabb, Point3};
use colper_tensor::Matrix;
use rand::Rng;

/// A labeled, colored point cloud.
///
/// This is the unit the whole pipeline operates on: scene generators
/// produce it, normalization pipelines rewrite it, models consume its
/// coordinate/color matrices, and the attack perturbs its color block.
///
/// Invariant: `coords`, `colors` and `labels` always have equal length,
/// every color channel lies in `[0, 1]`, and every label is
/// `< num_classes`. Constructors validate this.
///
/// # Example
///
/// ```
/// use colper_geom::Point3;
/// use colper_scene::PointCloud;
///
/// let cloud = PointCloud::new(
///     vec![Point3::new(0.0, 0.0, 0.0)],
///     vec![[0.5, 0.5, 0.5]],
///     vec![0],
///     13,
/// );
/// assert_eq!(cloud.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PointCloud {
    /// Point positions.
    pub coords: Vec<Point3>,
    /// RGB colors, each channel normalized to `[0, 1]`.
    pub colors: Vec<[f32; 3]>,
    /// Ground-truth class label per point.
    pub labels: Vec<usize>,
    /// Number of classes in the label space.
    pub num_classes: usize,
}

impl PointCloud {
    /// Creates a cloud, validating the container invariant.
    ///
    /// # Panics
    ///
    /// Panics when lengths disagree, a label is out of range, or a color
    /// channel leaves `[0, 1]`.
    pub fn new(
        coords: Vec<Point3>,
        colors: Vec<[f32; 3]>,
        labels: Vec<usize>,
        num_classes: usize,
    ) -> Self {
        assert_eq!(coords.len(), colors.len(), "coords/colors length mismatch");
        assert_eq!(coords.len(), labels.len(), "coords/labels length mismatch");
        assert!(labels.iter().all(|&l| l < num_classes), "label out of range");
        assert!(
            colors.iter().all(|c| c.iter().all(|&v| (0.0..=1.0).contains(&v))),
            "color channel outside [0, 1]"
        );
        Self { coords, colors, labels, num_classes }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// Whether the cloud has no points.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// The coordinates as an `[N, 3]` matrix.
    pub fn coords_matrix(&self) -> Matrix {
        Matrix::from_fn(self.len(), 3, |r, c| self.coords[r].axis(c))
    }

    /// The colors as an `[N, 3]` matrix.
    pub fn colors_matrix(&self) -> Matrix {
        Matrix::from_fn(self.len(), 3, |r, c| self.colors[r][c])
    }

    /// Replaces the colors from an `[N, 3]` matrix, clamping to `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics when the matrix shape is not `[len, 3]`.
    pub fn set_colors_from_matrix(&mut self, m: &Matrix) {
        assert_eq!(m.shape(), (self.len(), 3), "color matrix shape mismatch");
        for (i, color) in self.colors.iter_mut().enumerate() {
            for c in 0..3 {
                color[c] = m[(i, c)].clamp(0.0, 1.0);
            }
        }
    }

    /// The bounding box of the coordinates, or `None` when empty.
    pub fn bounds(&self) -> Option<Aabb> {
        Aabb::from_points(&self.coords)
    }

    /// Per-class point counts (`len == num_classes`).
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.num_classes];
        for &l in &self.labels {
            h[l] += 1;
        }
        h
    }

    /// Indices of the points whose label is `class`.
    pub fn indices_of_class(&self, class: usize) -> Vec<usize> {
        self.labels.iter().enumerate().filter(|&(_, &l)| l == class).map(|(i, _)| i).collect()
    }

    /// A boolean mask selecting points of `class`.
    pub fn mask_of_class(&self, class: usize) -> Vec<bool> {
        self.labels.iter().map(|&l| l == class).collect()
    }

    /// A sub-cloud holding the selected point indices (order preserved,
    /// repetition allowed).
    ///
    /// # Panics
    ///
    /// Panics when an index is out of bounds.
    pub fn select(&self, indices: &[usize]) -> PointCloud {
        PointCloud::new(
            indices.iter().map(|&i| self.coords[i]).collect(),
            indices.iter().map(|&i| self.colors[i]).collect(),
            indices.iter().map(|&i| self.labels[i]).collect(),
            self.num_classes,
        )
    }

    /// Resamples the cloud to exactly `n` points: a random subset when the
    /// cloud is larger, random duplication when smaller (the "nodes
    /// copying" preprocessing the paper mentions for RandLA-Net).
    ///
    /// # Panics
    ///
    /// Panics when the cloud is empty or `n == 0`.
    pub fn resample<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> PointCloud {
        assert!(!self.is_empty(), "resample: empty cloud");
        assert!(n > 0, "resample: n must be positive");
        let indices: Vec<usize> = if n <= self.len() {
            colper_geom::random_sample(self.len(), n, rng)
        } else {
            let mut idx: Vec<usize> = (0..self.len()).collect();
            while idx.len() < n {
                idx.push(rng.gen_range(0..self.len()));
            }
            idx
        };
        self.select(&indices)
    }

    /// Squared L2 distance between this cloud's colors and another's
    /// (the paper's perturbation magnitude, Eq. 4).
    ///
    /// # Panics
    ///
    /// Panics when the clouds have different sizes.
    pub fn color_l2_sq(&self, other: &PointCloud) -> f32 {
        assert_eq!(self.len(), other.len(), "color_l2_sq: size mismatch");
        self.colors
            .iter()
            .zip(&other.colors)
            .map(|(a, b)| (0..3).map(|c| (a[c] - b[c]) * (a[c] - b[c])).sum::<f32>())
            .sum()
    }

    /// Number of points whose color differs from `other` by more than
    /// `tol` in any channel (the L0 distance of the paper's
    /// coordinate-comparison experiment).
    ///
    /// # Panics
    ///
    /// Panics when the clouds have different sizes.
    pub fn color_l0(&self, other: &PointCloud, tol: f32) -> usize {
        assert_eq!(self.len(), other.len(), "color_l0: size mismatch");
        self.colors
            .iter()
            .zip(&other.colors)
            .filter(|(a, b)| (0..3).any(|c| (a[c] - b[c]).abs() > tol))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_cloud() -> PointCloud {
        PointCloud::new(
            vec![
                Point3::new(0.0, 0.0, 0.0),
                Point3::new(1.0, 0.0, 0.0),
                Point3::new(0.0, 1.0, 0.0),
                Point3::new(1.0, 1.0, 1.0),
            ],
            vec![[0.1, 0.2, 0.3], [0.4, 0.5, 0.6], [0.7, 0.8, 0.9], [1.0, 0.0, 0.5]],
            vec![0, 1, 1, 2],
            3,
        )
    }

    #[test]
    fn matrices_round_trip() {
        let cloud = sample_cloud();
        let cm = cloud.coords_matrix();
        assert_eq!(cm.shape(), (4, 3));
        assert_eq!(cm[(3, 2)], 1.0);
        let col = cloud.colors_matrix();
        assert_eq!(col[(1, 1)], 0.5);
    }

    #[test]
    fn set_colors_clamps() {
        let mut cloud = sample_cloud();
        let m = Matrix::filled(4, 3, 2.0);
        cloud.set_colors_from_matrix(&m);
        assert!(cloud.colors.iter().all(|c| c.iter().all(|&v| v == 1.0)));
    }

    #[test]
    fn histogram_and_class_queries() {
        let cloud = sample_cloud();
        assert_eq!(cloud.class_histogram(), vec![1, 2, 1]);
        assert_eq!(cloud.indices_of_class(1), vec![1, 2]);
        assert_eq!(cloud.mask_of_class(2), vec![false, false, false, true]);
    }

    #[test]
    fn select_preserves_order_and_allows_repeats() {
        let cloud = sample_cloud();
        let s = cloud.select(&[3, 0, 3]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.labels, vec![2, 0, 2]);
    }

    #[test]
    fn resample_down_and_up() {
        let cloud = sample_cloud();
        let mut rng = StdRng::seed_from_u64(0);
        let small = cloud.resample(2, &mut rng);
        assert_eq!(small.len(), 2);
        let big = cloud.resample(10, &mut rng);
        assert_eq!(big.len(), 10);
        // Upsampling keeps every original point at least once.
        for p in &cloud.coords {
            assert!(big.coords.contains(p));
        }
    }

    #[test]
    fn color_distances() {
        let a = sample_cloud();
        let mut b = a.clone();
        b.colors[0] = [0.2, 0.2, 0.3]; // delta (0.1, 0, 0)
        assert!((a.color_l2_sq(&b) - 0.01).abs() < 1e-6);
        assert_eq!(a.color_l0(&b, 1e-6), 1);
        assert_eq!(a.color_l0(&b, 0.5), 0);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn new_rejects_bad_label() {
        let _ = PointCloud::new(vec![Point3::ORIGIN], vec![[0.0; 3]], vec![5], 3);
    }

    #[test]
    #[should_panic(expected = "color channel")]
    fn new_rejects_bad_color() {
        let _ = PointCloud::new(vec![Point3::ORIGIN], vec![[1.5, 0.0, 0.0]], vec![0], 3);
    }

    #[test]
    fn bounds_cover_all_points() {
        let cloud = sample_cloud();
        let b = cloud.bounds().unwrap();
        for &p in &cloud.coords {
            assert!(b.contains(p));
        }
    }
}
