//! Trace sinks: snapshotting the global aggregates plus an observer's
//! step telemetry into a [`TraceReport`], and rendering it as JSONL, an
//! aggregated JSON summary, or a human-readable table.
//!
//! JSON is emitted by hand — the workspace is offline and carries no
//! serde. The formats:
//!
//! * **JSONL** ([`TraceReport::to_jsonl`]): one object per line, each
//!   tagged with a `"type"` — `meta`, `span`, `counter`, `gauge`,
//!   `worker`, then one `step` line per attack iteration.
//! * **Summary** ([`TraceReport::summary_json`]): a single object with
//!   the same aggregates keyed by name, for dashboards and CI checks.
//! * **Table** ([`TraceReport::table`]): the end-of-run text the CLI
//!   prints under `--trace`.

use crate::record::AttackTrace;
use crate::Observer;
use std::path::{Path, PathBuf};

/// Formats an `f32` as a JSON value (non-finite values become `null`,
/// which no aggregate should ever produce but a malformed trace line is
/// worse than a null).
pub fn jf(v: f32) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A point-in-time copy of everything the instrumentation recorded:
/// span aggregates, counters, gauges, per-worker task counts, and the
/// step telemetry collected by an [`Observer`].
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// `(name, count, total_ns, max_ns)` per span, inventory order.
    pub spans: Vec<(&'static str, u64, u64, u64)>,
    /// `(name, value)` per counter, inventory order.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, last, max, samples)` per gauge, inventory order.
    pub gauges: Vec<(&'static str, u64, u64, u64)>,
    /// `(worker_index, tasks)` for pool workers that ran tasks.
    pub worker_tasks: Vec<(usize, u64)>,
    /// Per-run step telemetry, sorted by cloud index.
    pub attacks: Vec<AttackTrace>,
}

impl TraceReport {
    /// Snapshots the global aggregates and `observer`'s collected runs.
    pub fn capture(observer: &Observer) -> Self {
        Self {
            spans: crate::spans::all()
                .into_iter()
                .map(|s| {
                    let (count, total, max) = s.snapshot();
                    (s.name(), count, total, max)
                })
                .collect(),
            counters: crate::counters::all().into_iter().map(|c| (c.name(), c.get())).collect(),
            gauges: crate::gauges::all()
                .into_iter()
                .map(|g| {
                    let (last, max, samples) = g.snapshot();
                    (g.name(), last, max, samples)
                })
                .collect(),
            worker_tasks: crate::worker_task_counts(),
            attacks: observer.attack_traces(),
        }
    }

    /// The trace as JSONL (one JSON object per line, trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let total_steps: usize = self.attacks.iter().map(|a| a.steps.len()).sum();
        out.push_str(&format!(
            "{{\"type\":\"meta\",\"schema\":\"colper-trace-v1\",\"attacks\":{},\"steps\":{}}}\n",
            self.attacks.len(),
            total_steps
        ));
        for &(name, count, total_ns, max_ns) in &self.spans {
            if count == 0 {
                continue;
            }
            out.push_str(&format!(
                "{{\"type\":\"span\",\"name\":\"{name}\",\"count\":{count},\
                 \"total_ns\":{total_ns},\"max_ns\":{max_ns}}}\n"
            ));
        }
        for &(name, value) in &self.counters {
            out.push_str(&format!(
                "{{\"type\":\"counter\",\"name\":\"{name}\",\"value\":{value}}}\n"
            ));
        }
        for &(name, last, max, samples) in &self.gauges {
            out.push_str(&format!(
                "{{\"type\":\"gauge\",\"name\":\"{name}\",\"last\":{last},\
                 \"max\":{max},\"samples\":{samples}}}\n"
            ));
        }
        for &(worker, tasks) in &self.worker_tasks {
            out.push_str(&format!(
                "{{\"type\":\"worker\",\"index\":{worker},\"tasks\":{tasks}}}\n"
            ));
        }
        for attack in &self.attacks {
            for step in &attack.steps {
                let body = step.to_json();
                // Splice the cloud index into the step object.
                out.push_str(&format!(
                    "{{\"type\":\"step\",\"cloud\":{},{}\n",
                    attack.cloud,
                    &body[1..]
                ));
            }
        }
        out
    }

    /// The aggregated summary as one JSON object.
    pub fn summary_json(&self) -> String {
        let mut spans = Vec::new();
        for &(name, count, total_ns, max_ns) in &self.spans {
            if count == 0 {
                continue;
            }
            let mean_ns = total_ns / count;
            spans.push(format!(
                "\"{name}\":{{\"count\":{count},\"total_ns\":{total_ns},\
                 \"mean_ns\":{mean_ns},\"max_ns\":{max_ns}}}"
            ));
        }
        let counters: Vec<String> =
            self.counters.iter().map(|&(name, v)| format!("\"{name}\":{v}")).collect();
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|&(name, last, max, samples)| {
                format!("\"{name}\":{{\"last\":{last},\"max\":{max},\"samples\":{samples}}}")
            })
            .collect();
        let workers: Vec<String> =
            self.worker_tasks.iter().map(|&(i, t)| format!("\"{i}\":{t}")).collect();
        let attacks: Vec<String> = self
            .attacks
            .iter()
            .map(|a| {
                let last_gain = a.steps.last().map_or("null".to_string(), |s| jf(s.gain));
                let restarts = a.steps.iter().filter(|s| s.restarted).count();
                format!(
                    "{{\"cloud\":{},\"steps\":{},\"dropped\":{},\
                     \"final_gain\":{last_gain},\"restarts\":{restarts}}}",
                    a.cloud,
                    a.steps.len(),
                    a.dropped
                )
            })
            .collect();
        format!(
            "{{\n  \"schema\": \"colper-trace-v1\",\n  \"spans\": {{{}}},\n  \"counters\": {{{}}},\n  \
             \"gauges\": {{{}}},\n  \"worker_tasks\": {{{}}},\n  \"attacks\": [{}]\n}}\n",
            spans.join(","),
            counters.join(","),
            gauges.join(","),
            workers.join(","),
            attacks.join(",")
        )
    }

    /// The human-readable end-of-run table (what the CLI prints under
    /// `--trace`).
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>9} {:>12} {:>10} {:>10}\n",
            "span", "count", "total ms", "mean us", "max us"
        ));
        for &(name, count, total_ns, max_ns) in &self.spans {
            if count == 0 {
                continue;
            }
            out.push_str(&format!(
                "{:<28} {:>9} {:>12.2} {:>10.1} {:>10.1}\n",
                name,
                count,
                total_ns as f64 / 1e6,
                total_ns as f64 / count as f64 / 1e3,
                max_ns as f64 / 1e3
            ));
        }
        out.push_str(&format!("\n{:<28} {:>9}\n", "counter", "value"));
        for &(name, value) in &self.counters {
            if value == 0 {
                continue;
            }
            out.push_str(&format!("{:<28} {:>9}\n", name, value));
        }
        for &(name, last, max, _) in &self.gauges {
            if max == 0 {
                continue;
            }
            out.push_str(&format!("{:<28} last {last}, max {max}\n", name));
        }
        if !self.worker_tasks.is_empty() {
            let tasks: Vec<String> =
                self.worker_tasks.iter().map(|&(i, t)| format!("w{i}:{t}")).collect();
            out.push_str(&format!("{:<28} {}\n", "runtime.worker_tasks", tasks.join(" ")));
        }
        for attack in &self.attacks {
            let restarts = attack.steps.iter().filter(|s| s.restarted).count();
            let gain = attack.steps.last().map_or(f32::NAN, |s| s.gain);
            out.push_str(&format!(
                "attack cloud {}: {} steps traced, final gain {:.4}, {} restarts\n",
                attack.cloud,
                attack.steps.len(),
                gain,
                restarts
            ));
        }
        out
    }

    /// Writes `<stem>.jsonl` and `<stem>_summary.json` under `dir`
    /// (creating it), returning the two paths.
    pub fn write(&self, dir: &Path, stem: &str) -> std::io::Result<(PathBuf, PathBuf)> {
        std::fs::create_dir_all(dir)?;
        let jsonl = dir.join(format!("{stem}.jsonl"));
        std::fs::write(&jsonl, self.to_jsonl())?;
        let summary = dir.join(format!("{stem}_summary.json"));
        std::fs::write(&summary, self.summary_json())?;
        Ok((jsonl, summary))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::StepRecord;
    use crate::TEST_LOCK;

    fn sample_report() -> TraceReport {
        crate::set_enabled(true);
        crate::reset();
        {
            let _s = crate::span!(ATTACK_STEP);
            crate::counters::POOL_HIT.add(3);
            crate::gauges::TAPE_NODES.record(17);
            crate::worker_task(0);
        }
        let obs = Observer::enabled();
        let mut buf = obs.begin_attack(0, 4).expect("recording on");
        buf.push(StepRecord { step: 0, gain: 2.5, ..StepRecord::default() });
        buf.push(StepRecord { step: 1, gain: 2.0, restarted: true, ..StepRecord::default() });
        obs.finish_attack(buf);
        let report = TraceReport::capture(&obs);
        crate::set_enabled(false);
        crate::reset();
        report
    }

    #[test]
    fn jsonl_lines_carry_types_and_steps() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let report = sample_report();
        let jsonl = report.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert!(lines[0].contains("\"type\":\"meta\""));
        assert!(lines[0].contains("\"schema\":\"colper-trace-v1\""));
        assert!(jsonl.contains("\"type\":\"span\",\"name\":\"attack.step\""));
        assert!(jsonl.contains("\"type\":\"counter\",\"name\":\"tensor.pool.hit\",\"value\":3"));
        assert!(jsonl.contains("\"type\":\"gauge\",\"name\":\"tape.nodes_live\""));
        assert!(jsonl.contains("\"type\":\"worker\",\"index\":0,\"tasks\":1"));
        let steps: Vec<&&str> = lines.iter().filter(|l| l.contains("\"type\":\"step\"")).collect();
        assert_eq!(steps.len(), 2);
        assert!(steps[0].contains("\"cloud\":0"));
        assert!(steps[1].contains("\"restarted\":true"));
        // Every line is one object: crude but serde-free validation.
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "bad line {line}");
        }
    }

    #[test]
    fn summary_aggregates_runs() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let report = sample_report();
        let summary = report.summary_json();
        assert!(summary.contains("\"schema\": \"colper-trace-v1\""));
        assert!(summary.contains("\"attack.step\":{\"count\":1"));
        assert!(summary.contains("\"tensor.pool.hit\":3"));
        assert!(summary.contains("\"final_gain\":2"));
        assert!(summary.contains("\"restarts\":1"));
    }

    #[test]
    fn table_renders_without_zero_rows() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let report = sample_report();
        let table = report.table();
        assert!(table.contains("attack.step"));
        assert!(!table.contains("forward.resgcn"), "zero spans must be elided:\n{table}");
        assert!(table.contains("attack cloud 0: 2 steps traced"));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(jf(f32::NAN), "null");
        assert_eq!(jf(f32::INFINITY), "null");
        assert_eq!(jf(1.25), "1.25");
    }
}
