//! Observability for the COLPER reproduction: hierarchical timing spans,
//! monotonic counters and gauges, and per-attack-step telemetry — all
//! zero-cost when disabled.
//!
//! The stack underneath (work-stealing runtime, zero-alloc tape reuse,
//! SIMD kernel dispatch) was built for throughput, which makes it opaque:
//! a regression in BufferPool reuse or a dispatch falling back to the
//! scalar path changes wall-clock without changing results. This crate
//! gives every hot layer a cheap way to report what it is doing:
//!
//! * **Spans** ([`SpanStat`]) — wall-clock aggregates of named phases
//!   (`attack.step`, `forward.pointnet2.sa_level`, `tape.backward`).
//!   Hierarchy is encoded in dotted names; the inventory lives in
//!   [`spans`].
//! * **Counters / gauges** ([`Counter`], [`Gauge`]) — monotonic event
//!   counts (kernel dispatch path, BufferPool hits, Runtime steals,
//!   per-worker task counts) and level samples (tape nodes live). The
//!   inventory lives in [`counters`] and [`gauges`].
//! * **Step telemetry** ([`StepRecord`]) — one record per attack
//!   iteration: the gain's λ1/λ2 loss-term split, the CW hinge value,
//!   the gradient ∞-norm, flipped-point count and plateau state.
//!   Collected through an [`Observer`] handle into pre-sized buffers.
//!
//! # The overhead contract
//!
//! Recording is off unless `COLPER_TRACE` is set (or [`set_enabled`] is
//! called, e.g. by the CLI's `--trace`). Every instrumentation hook
//! checks [`enabled`] first — one relaxed atomic load and a predictable
//! branch — so the disabled path performs **no allocation, no syscall,
//! no clock read**, and the steady-state 0-alloc budget of the attack
//! loop holds. The enabled path allocates only at setup: step buffers
//! are pre-sized to the step budget ([`Observer::begin_attack`]) and
//! span/counter storage is `static`.
//!
//! Instrumentation must never perturb results: hooks only *read* program
//! state, never touch any RNG, and never reorder floating-point work —
//! attack trajectories are bit-identical with tracing on and off (see
//! `tests/obs_equivalence.rs` at the workspace root).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod record;
mod sink;

pub use record::{AttackTrace, Observer, StepRecord, StepSink, StepTraceBuffer};
pub use sink::{jf, TraceReport};

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::Instant;

const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);

fn detect() -> u8 {
    match std::env::var("COLPER_TRACE") {
        Ok(v) if !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("off") => STATE_ON,
        _ => STATE_OFF,
    }
}

/// Whether recording is active. The first call probes `COLPER_TRACE`;
/// afterwards this is a single relaxed atomic load — the only cost every
/// instrumentation hook pays on the disabled path.
#[inline]
pub fn enabled() -> bool {
    let s = STATE.load(Ordering::Relaxed);
    if s != STATE_UNINIT {
        return s == STATE_ON;
    }
    let d = detect();
    STATE.store(d, Ordering::Relaxed);
    d == STATE_ON
}

/// Turns recording on or off, overriding the `COLPER_TRACE` probe.
/// Flipping this changes what gets *recorded*, never what gets
/// *computed* — results are bit-identical either way.
pub fn set_enabled(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// Wall-clock aggregate of one named phase: how often it ran and for how
/// long. Statics in [`spans`] are the span taxonomy; enter one with
/// [`SpanStat::enter`] or the [`span!`] macro.
#[derive(Debug)]
pub struct SpanStat {
    name: &'static str,
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl SpanStat {
    /// A zeroed span aggregate (used by the [`spans`] inventory).
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// The span's dotted name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Starts timing this span; the elapsed time is recorded when the
    /// returned guard drops. When recording is disabled the guard is
    /// inert and no clock is read.
    #[inline]
    pub fn enter(&'static self) -> SpanGuard {
        SpanGuard { inner: enabled().then(|| (self, Instant::now())) }
    }

    fn record(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// `(count, total_ns, max_ns)` recorded so far.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.count.load(Ordering::Relaxed),
            self.total_ns.load(Ordering::Relaxed),
            self.max_ns.load(Ordering::Relaxed),
        )
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
    }
}

/// RAII guard returned by [`SpanStat::enter`]; records the elapsed time
/// on drop (nothing when recording was disabled at entry).
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<(&'static SpanStat, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((stat, start)) = self.inner.take() {
            stat.record(start.elapsed().as_nanos() as u64);
        }
    }
}

/// Enters a span from the [`spans`] inventory by identifier:
/// `let _s = colper_obs::span!(ATTACK_STEP);`.
#[macro_export]
macro_rules! span {
    ($name:ident) => {
        $crate::spans::$name.enter()
    };
}

/// A monotonic event counter. Incrementing is a no-op while recording is
/// disabled, so hot paths can call [`Counter::incr`] unconditionally.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// A zeroed counter (used by the [`counters`] inventory).
    pub const fn new(name: &'static str) -> Self {
        Self { name, value: AtomicU64::new(0) }
    }

    /// The counter's dotted name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` when recording is enabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one when recording is enabled.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The count recorded so far.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A sampled level: remembers the last and the maximum recorded value
/// (e.g. live tape nodes at backward time).
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    last: AtomicU64,
    max: AtomicU64,
    samples: AtomicU64,
}

impl Gauge {
    /// A zeroed gauge (used by the [`gauges`] inventory).
    pub const fn new(name: &'static str) -> Self {
        Self { name, last: AtomicU64::new(0), max: AtomicU64::new(0), samples: AtomicU64::new(0) }
    }

    /// The gauge's dotted name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records a sample when recording is enabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if enabled() {
            self.last.store(v, Ordering::Relaxed);
            self.max.fetch_max(v, Ordering::Relaxed);
            self.samples.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// `(last, max, samples)` recorded so far.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.last.load(Ordering::Relaxed),
            self.max.load(Ordering::Relaxed),
            self.samples.load(Ordering::Relaxed),
        )
    }

    fn reset(&self) {
        self.last.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        self.samples.store(0, Ordering::Relaxed);
    }
}

/// The span taxonomy. Dotted names encode the hierarchy:
/// `attack.step` contains `attack.step.build` (graph record + forward +
/// backward) and `attack.step.adam`; the model spans nest inside the
/// build phase; `batch.cloud` wraps one cloud's whole attack.
pub mod spans {
    use super::SpanStat;

    /// One full attack iteration (forward, backward, metric, Adam).
    pub static ATTACK_STEP: SpanStat = SpanStat::new("attack.step");
    /// Graph recording + forward + backward of one gradient sample.
    pub static ATTACK_BUILD: SpanStat = SpanStat::new("attack.step.build");
    /// The Adam parameter update of one iteration.
    pub static ATTACK_ADAM: SpanStat = SpanStat::new("attack.step.adam");
    /// One cloud's complete attack inside a batch run.
    pub static BATCH_CLOUD: SpanStat = SpanStat::new("batch.cloud");
    /// One PointNet++ forward pass.
    pub static FORWARD_POINTNET2: SpanStat = SpanStat::new("forward.pointnet2");
    /// One PointNet++ set-abstraction level.
    pub static FORWARD_POINTNET2_SA: SpanStat = SpanStat::new("forward.pointnet2.sa_level");
    /// One PointNet++ feature-propagation level.
    pub static FORWARD_POINTNET2_FP: SpanStat = SpanStat::new("forward.pointnet2.fp_level");
    /// One RandLA-Net forward pass.
    pub static FORWARD_RANDLA: SpanStat = SpanStat::new("forward.randla");
    /// One RandLA-Net encoder stage (aggregate + downsample).
    pub static FORWARD_RANDLA_STAGE: SpanStat = SpanStat::new("forward.randla.stage");
    /// One RandLA-Net decoder level (upsample + skip).
    pub static FORWARD_RANDLA_DECODER: SpanStat = SpanStat::new("forward.randla.decoder");
    /// One ResGCN forward pass.
    pub static FORWARD_RESGCN: SpanStat = SpanStat::new("forward.resgcn");
    /// One ResGCN edge-conv residual block.
    pub static FORWARD_RESGCN_BLOCK: SpanStat = SpanStat::new("forward.resgcn.block");
    /// One reverse pass over the tape.
    pub static TAPE_BACKWARD: SpanStat = SpanStat::new("tape.backward");

    /// Every span in the taxonomy, for snapshotting and reset.
    pub fn all() -> [&'static SpanStat; 13] {
        [
            &ATTACK_STEP,
            &ATTACK_BUILD,
            &ATTACK_ADAM,
            &BATCH_CLOUD,
            &FORWARD_POINTNET2,
            &FORWARD_POINTNET2_SA,
            &FORWARD_POINTNET2_FP,
            &FORWARD_RANDLA,
            &FORWARD_RANDLA_STAGE,
            &FORWARD_RANDLA_DECODER,
            &FORWARD_RESGCN,
            &FORWARD_RESGCN_BLOCK,
            &TAPE_BACKWARD,
        ]
    }
}

/// The counter inventory.
pub mod counters {
    use super::Counter;

    /// Kernel calls dispatched to the AVX2+FMA path.
    pub static KERNEL_DISPATCH_SIMD: Counter = Counter::new("kernel.dispatch.simd");
    /// Kernel calls dispatched to the pinned-order scalar reference.
    pub static KERNEL_DISPATCH_SCALAR: Counter = Counter::new("kernel.dispatch.scalar");
    /// BufferPool requests served from a shelf.
    pub static POOL_HIT: Counter = Counter::new("tensor.pool.hit");
    /// BufferPool requests that had to allocate.
    pub static POOL_MISS: Counter = Counter::new("tensor.pool.miss");
    /// Tasks a worker popped from another deque (or the submitting
    /// thread stole while waiting) — the work-stealing traffic.
    pub static RUNTIME_STEALS: Counter = Counter::new("runtime.steals");
    /// Tasks executed by the submitting thread itself.
    pub static RUNTIME_SUBMITTER_TASKS: Counter = Counter::new("runtime.submitter_tasks");
    /// Graph resets of a reused forward session.
    pub static TAPE_RESETS: Counter = Counter::new("tape.resets");
    /// Reverse passes run.
    pub static TAPE_BACKWARDS: Counter = Counter::new("tape.backwards");
    /// Clouds scheduled by the batch attack loop.
    pub static BATCH_CLOUDS: Counter = Counter::new("attack.batch.clouds");
    /// Plateau noise restarts injected by the attack loop.
    pub static ATTACK_RESTARTS: Counter = Counter::new("attack.restarts");
    /// Seated attacks that started on a donated warm tape.
    pub static SEAT_WARM: Counter = Counter::new("attack.seat.warm");
    /// Attack graphs captured into a static `TapeSchedule`.
    pub static SCHED_CAPTURES: Counter = Counter::new("schedule.captures");
    /// Steps replayed from a static schedule instead of rebuilding the
    /// graph.
    pub static SCHED_REPLAYS: Counter = Counter::new("schedule.replays");
    /// Peephole-fused step groups baked into compiled schedules
    /// (matmul+bias+activation, gather+sub).
    pub static SCHED_FUSED_OPS: Counter = Counter::new("schedule.fused_ops");
    /// Micro-tile kernel invocations scheduled by the tiled GEMM driver.
    pub static GEMM_TILE_TASKS: Counter = Counter::new("gemm.tile.tasks");
    /// GEMM packing-panel requests served from a pack pool shelf.
    pub static GEMM_PACK_HIT: Counter = Counter::new("gemm.pack.hit");
    /// GEMM packing-panel requests that had to allocate.
    pub static GEMM_PACK_MISS: Counter = Counter::new("gemm.pack.miss");
    /// Batched matmul calls executed as one fused shared-B GEMM.
    pub static GEMM_BATCH_FUSED: Counter = Counter::new("gemm.batch.fused");
    /// Batched matmul calls that fell back to the per-cloud loop.
    pub static GEMM_BATCH_LOOPED: Counter = Counter::new("gemm.batch.looped");
    /// Matmul nodes anchored into batched groups by compiled schedules.
    pub static SCHED_BATCHED_MMS: Counter = Counter::new("schedule.batched_mms");
    /// Attack optimizations executed by the robustness matrix runner.
    pub static MATRIX_ATTACK_RUNS: Counter = Counter::new("matrix.attack_runs");
    /// Matrix cells (attack × defense × model) evaluated.
    pub static MATRIX_CELLS: Counter = Counter::new("matrix.cells");

    /// Every counter in the inventory, for snapshotting and reset.
    pub fn all() -> [&'static Counter; 22] {
        [
            &KERNEL_DISPATCH_SIMD,
            &KERNEL_DISPATCH_SCALAR,
            &POOL_HIT,
            &POOL_MISS,
            &RUNTIME_STEALS,
            &RUNTIME_SUBMITTER_TASKS,
            &TAPE_RESETS,
            &TAPE_BACKWARDS,
            &BATCH_CLOUDS,
            &ATTACK_RESTARTS,
            &SEAT_WARM,
            &SCHED_CAPTURES,
            &SCHED_REPLAYS,
            &SCHED_FUSED_OPS,
            &GEMM_TILE_TASKS,
            &GEMM_PACK_HIT,
            &GEMM_PACK_MISS,
            &GEMM_BATCH_FUSED,
            &GEMM_BATCH_LOOPED,
            &SCHED_BATCHED_MMS,
            &MATRIX_ATTACK_RUNS,
            &MATRIX_CELLS,
        ]
    }
}

/// The gauge inventory.
pub mod gauges {
    use super::Gauge;

    /// Live tape nodes observed at backward time.
    pub static TAPE_NODES: Gauge = Gauge::new("tape.nodes_live");
    /// Bytes of tape arena a compiled schedule replays over (dynamic-node
    /// value buffers after fusion stole what it could).
    pub static SCHED_ARENA_BYTES: Gauge = Gauge::new("schedule.arena_bytes");

    /// Every gauge in the inventory, for snapshotting and reset.
    pub fn all() -> [&'static Gauge; 2] {
        [&TAPE_NODES, &SCHED_ARENA_BYTES]
    }
}

/// Upper bound on distinguishable worker slots in the per-worker task
/// table; workers past the last slot fold into it.
pub const MAX_WORKER_SLOTS: usize = 32;

static WORKER_TASKS: [AtomicU64; MAX_WORKER_SLOTS] =
    [const { AtomicU64::new(0) }; MAX_WORKER_SLOTS];

/// Records one task executed by pool worker `worker` (no-op while
/// recording is disabled).
#[inline]
pub fn worker_task(worker: usize) {
    if enabled() {
        WORKER_TASKS[worker.min(MAX_WORKER_SLOTS - 1)].fetch_add(1, Ordering::Relaxed);
    }
}

/// Per-worker task counts, `(worker_index, tasks)` for workers that ran
/// at least one task.
pub fn worker_task_counts() -> Vec<(usize, u64)> {
    WORKER_TASKS
        .iter()
        .enumerate()
        .filter_map(|(i, c)| {
            let v = c.load(Ordering::Relaxed);
            (v > 0).then_some((i, v))
        })
        .collect()
}

/// Zeroes every span, counter, gauge and per-worker slot. Used by tests
/// and by the CLI to scope a trace to one command.
pub fn reset() {
    for s in spans::all() {
        s.reset();
    }
    for c in counters::all() {
        c.reset();
    }
    for g in gauges::all() {
        g.reset();
    }
    for w in &WORKER_TASKS {
        w.store(0, Ordering::Relaxed);
    }
}

// The enable flag and the aggregates are process-global; unit tests
// that flip or read them serialize on this lock.
#[cfg(test)]
pub(crate) static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    use super::TEST_LOCK as LOCK;

    #[test]
    fn disabled_paths_record_nothing() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(false);
        reset();
        {
            let _s = span!(ATTACK_STEP);
            counters::POOL_HIT.incr();
            gauges::TAPE_NODES.record(42);
            worker_task(0);
        }
        assert_eq!(spans::ATTACK_STEP.snapshot(), (0, 0, 0));
        assert_eq!(counters::POOL_HIT.get(), 0);
        assert_eq!(gauges::TAPE_NODES.snapshot(), (0, 0, 0));
        assert!(worker_task_counts().is_empty());
    }

    #[test]
    fn enabled_paths_aggregate() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        reset();
        for _ in 0..3 {
            let _s = span!(TAPE_BACKWARD);
        }
        counters::RUNTIME_STEALS.add(5);
        gauges::TAPE_NODES.record(7);
        gauges::TAPE_NODES.record(3);
        worker_task(1);
        worker_task(1);
        worker_task(MAX_WORKER_SLOTS + 10); // clamps into the last slot

        let (count, total, max) = spans::TAPE_BACKWARD.snapshot();
        assert_eq!(count, 3);
        assert!(total >= max);
        assert_eq!(counters::RUNTIME_STEALS.get(), 5);
        assert_eq!(gauges::TAPE_NODES.snapshot(), (3, 7, 2));
        let workers = worker_task_counts();
        assert!(workers.contains(&(1, 2)));
        assert!(workers.contains(&(MAX_WORKER_SLOTS - 1, 1)));
        set_enabled(false);
        reset();
    }

    #[test]
    fn guard_outside_recording_survives_midway_enable() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(false);
        reset();
        let guard = span!(ATTACK_ADAM);
        // Turning recording on after the guard was created must not make
        // the inert guard record on drop.
        set_enabled(true);
        drop(guard);
        assert_eq!(spans::ATTACK_ADAM.snapshot(), (0, 0, 0));
        set_enabled(false);
    }
}
