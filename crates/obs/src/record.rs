//! Per-attack-step telemetry: the [`StepRecord`] schema, the pre-sized
//! per-run buffer, and the [`Observer`] that collects finished runs.

use crate::sink::jf;
use std::fmt;
use std::sync::{Arc, Mutex};

/// One attack iteration's telemetry. Every field is *read* from the
/// optimizer state after the step's arithmetic is done; producing a
/// record never changes the trajectory.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StepRecord {
    /// Iteration index (0-based).
    pub step: usize,
    /// The composite objective `gain = D + λ1·L + λ2·S` (averaged over
    /// EoT samples when `gradient_samples > 1`).
    pub gain: f32,
    /// The squared-L2 distance term `D` (sample 0).
    pub dist: f32,
    /// The raw CW hinge value `L` before the λ1 weight — the margin the
    /// optimizer is pushing on (sample 0).
    pub cw_hinge: f32,
    /// The raw smoothness penalty `S` before the λ2 weight (sample 0).
    pub smooth: f32,
    /// `λ1·L`: the adversarial term's contribution to the gain.
    pub weighted_hinge: f32,
    /// `λ2·S`: the smoothness term's contribution to the gain.
    pub weighted_smooth: f32,
    /// ∞-norm of the gradient w.r.t. the reparameterized color variable.
    pub grad_inf_norm: f32,
    /// Attacked points whose prediction differs from the ground-truth
    /// label on this iterate.
    pub flipped_points: usize,
    /// The attacker's metric on this iterate (masked accuracy for
    /// non-targeted goals, success rate for targeted ones).
    pub metric: f32,
    /// The plateau tracker's reference gain (the last checkpoint).
    pub plateau_checkpoint_gain: f32,
    /// Whether this step ended in a plateau noise restart.
    pub restarted: bool,
}

impl StepRecord {
    /// The record as one JSON object (no trailing newline). This is the
    /// `"step"` line schema of the JSONL sink and the element schema of
    /// `AttackReport.steps`.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"step\":{},\"gain\":{},\"dist\":{},\"cw_hinge\":{},\"smooth\":{},",
                "\"weighted_hinge\":{},\"weighted_smooth\":{},\"grad_inf_norm\":{},",
                "\"flipped_points\":{},\"metric\":{},\"plateau_checkpoint_gain\":{},",
                "\"restarted\":{}}}"
            ),
            self.step,
            jf(self.gain),
            jf(self.dist),
            jf(self.cw_hinge),
            jf(self.smooth),
            jf(self.weighted_hinge),
            jf(self.weighted_smooth),
            jf(self.grad_inf_norm),
            self.flipped_points,
            jf(self.metric),
            jf(self.plateau_checkpoint_gain),
            self.restarted
        )
    }
}

/// A live consumer of step telemetry: every record pushed into a
/// [`StepTraceBuffer`] is also handed to the observer's sink, *while the
/// attack is still running*. This is how a service streams per-step
/// progress to a client instead of waiting for the finished trace.
///
/// Implementations must be cheap and non-blocking relative to an attack
/// step (enqueue onto a channel, write to a buffered socket); a slow
/// sink stalls the optimization loop it observes.
pub trait StepSink: Send + Sync {
    /// Called once per attack iteration with the freshly produced record.
    fn on_step(&self, cloud: usize, record: &StepRecord);

    /// Called when the run on `cloud` finishes, after the last
    /// [`StepSink::on_step`]. `steps` is the number of records produced,
    /// `dropped` how many exceeded the buffer capacity (still streamed).
    fn on_finish(&self, cloud: usize, steps: usize, dropped: u64) {
        let _ = (cloud, steps, dropped);
    }
}

/// A fixed-capacity step buffer for one attack run. Allocated once at
/// setup ([`Observer::begin_attack`]); pushes past the capacity are
/// counted as dropped instead of reallocating, so the hot loop never
/// touches the allocator.
pub struct StepTraceBuffer {
    cloud: usize,
    records: Vec<StepRecord>,
    dropped: u64,
    sink: Option<Arc<dyn StepSink>>,
    produced: usize,
}

impl fmt::Debug for StepTraceBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StepTraceBuffer")
            .field("cloud", &self.cloud)
            .field("records", &self.records.len())
            .field("dropped", &self.dropped)
            .field("streaming", &self.sink.is_some())
            .finish()
    }
}

impl StepTraceBuffer {
    /// Appends a record, dropping (and counting) it when the buffer is
    /// at capacity. A streaming sink sees every record either way.
    #[inline]
    pub fn push(&mut self, record: StepRecord) {
        self.produced += 1;
        if let Some(sink) = &self.sink {
            sink.on_step(self.cloud, &record);
        }
        if self.records.len() < self.records.capacity() {
            self.records.push(record);
        } else {
            self.dropped += 1;
        }
    }

    /// Records accumulated so far.
    pub fn records(&self) -> &[StepRecord] {
        &self.records
    }
}

/// One finished attack run's telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackTrace {
    /// Input-order index of the cloud within the run (0 for single-cloud
    /// sessions).
    pub cloud: usize,
    /// Per-step records in iteration order.
    pub steps: Vec<StepRecord>,
    /// Records dropped because the buffer capacity was exhausted (0
    /// unless a caller under-sized the buffer).
    pub dropped: u64,
}

/// Collects [`StepRecord`]s from attack runs. Cheap to clone and share;
/// a [`Observer::disabled`] handle (also the `Default`) makes every
/// collection call a no-op, which is what keeps the trace-off attack
/// loop allocation-free.
///
/// The intended flow: the attack loop asks [`Observer::begin_attack`]
/// for a pre-sized buffer *outside* the hot loop, pushes one record per
/// step, and hands the buffer back via [`Observer::finish_attack`] when
/// the run ends. Batch runs do this once per cloud, concurrently — the
/// shared list is locked only at run boundaries, never per step.
#[derive(Clone, Default)]
pub struct Observer {
    inner: Option<Arc<Mutex<Vec<AttackTrace>>>>,
    sink: Option<Arc<dyn StepSink>>,
}

impl fmt::Debug for Observer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Observer")
            .field("collecting", &self.inner.is_some())
            .field("streaming", &self.sink.is_some())
            .finish()
    }
}

impl Observer {
    /// An observer that records nothing (every call is a no-op).
    pub fn disabled() -> Self {
        Self { inner: None, sink: None }
    }

    /// An observer that collects step telemetry (when global recording
    /// is also on — see [`crate::enabled`]).
    pub fn enabled() -> Self {
        Self { inner: Some(Arc::new(Mutex::new(Vec::new()))), sink: None }
    }

    /// An observer that both collects step telemetry *and* streams every
    /// record to `sink` as it is produced. Unlike [`Observer::enabled`],
    /// a sinking observer is active regardless of the global recording
    /// flag: the sink was attached explicitly for this run (a service
    /// job asked to stream), not ambiently via `COLPER_TRACE`.
    pub fn with_sink(sink: Arc<dyn StepSink>) -> Self {
        Self { inner: Some(Arc::new(Mutex::new(Vec::new()))), sink: Some(sink) }
    }

    /// [`Observer::enabled`] when `COLPER_TRACE` turned recording on,
    /// otherwise [`Observer::disabled`].
    pub fn from_env() -> Self {
        if crate::enabled() {
            Self::enabled()
        } else {
            Self::disabled()
        }
    }

    /// Whether this observer currently records: a collecting handle plus
    /// either the global flag or an attached streaming sink.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.inner.is_some() && (crate::enabled() || self.sink.is_some())
    }

    /// Starts a run on cloud `cloud` with room for `steps` records.
    /// Returns `None` — and allocates nothing — when not recording.
    pub fn begin_attack(&self, cloud: usize, steps: usize) -> Option<StepTraceBuffer> {
        self.is_active().then(|| StepTraceBuffer {
            cloud,
            records: Vec::with_capacity(steps),
            dropped: 0,
            sink: self.sink.clone(),
            produced: 0,
        })
    }

    /// Files a finished run's buffer, notifying the streaming sink (if
    /// any) that the run is over.
    pub fn finish_attack(&self, buf: StepTraceBuffer) {
        if let Some(sink) = &buf.sink {
            sink.on_finish(buf.cloud, buf.produced, buf.dropped);
        }
        if let Some(inner) = &self.inner {
            let mut traces = inner.lock().unwrap_or_else(|e| e.into_inner());
            traces.push(AttackTrace { cloud: buf.cloud, steps: buf.records, dropped: buf.dropped });
        }
    }

    /// All finished runs so far, sorted by cloud index (batch workers
    /// finish in pool order, not input order).
    pub fn attack_traces(&self) -> Vec<AttackTrace> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => {
                let mut traces = inner.lock().unwrap_or_else(|e| e.into_inner()).clone();
                traces.sort_by_key(|t| t.cloud);
                traces
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TEST_LOCK;

    #[test]
    fn disabled_observer_hands_out_no_buffers() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::set_enabled(true);
        let obs = Observer::disabled();
        assert!(!obs.is_active());
        assert!(obs.begin_attack(0, 100).is_none());
        assert!(obs.attack_traces().is_empty());
        crate::set_enabled(false);
    }

    #[test]
    fn enabled_observer_needs_the_global_flag() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::set_enabled(false);
        let obs = Observer::enabled();
        assert!(!obs.is_active());
        assert!(obs.begin_attack(0, 10).is_none());
    }

    #[test]
    fn buffer_is_presized_and_never_grows() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::set_enabled(true);
        let obs = Observer::enabled();
        let mut buf = obs.begin_attack(3, 2).expect("recording is on");
        let cap = buf.records.capacity();
        for step in 0..5 {
            buf.push(StepRecord { step, ..StepRecord::default() });
        }
        assert_eq!(buf.records.capacity(), cap, "push must not reallocate");
        assert_eq!(buf.records().len(), 2);
        obs.finish_attack(buf);
        let traces = obs.attack_traces();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].cloud, 3);
        assert_eq!(traces[0].dropped, 3);
        crate::set_enabled(false);
    }

    #[test]
    fn traces_sort_by_cloud_index() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::set_enabled(true);
        let obs = Observer::enabled();
        for cloud in [2usize, 0, 1] {
            let buf = obs.begin_attack(cloud, 1).expect("recording is on");
            obs.finish_attack(buf);
        }
        let order: Vec<usize> = obs.attack_traces().iter().map(|t| t.cloud).collect();
        assert_eq!(order, vec![0, 1, 2]);
        crate::set_enabled(false);
    }

    #[test]
    fn sink_streams_every_record_and_ignores_the_global_flag() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::set_enabled(false); // streaming must work without COLPER_TRACE
        #[derive(Default)]
        struct Recorder {
            steps: Mutex<Vec<(usize, usize)>>,
            finished: Mutex<Option<(usize, usize, u64)>>,
        }
        impl StepSink for Recorder {
            fn on_step(&self, cloud: usize, record: &StepRecord) {
                self.steps.lock().unwrap().push((cloud, record.step));
            }
            fn on_finish(&self, cloud: usize, steps: usize, dropped: u64) {
                *self.finished.lock().unwrap() = Some((cloud, steps, dropped));
            }
        }
        let recorder = Arc::new(Recorder::default());
        let obs = Observer::with_sink(recorder.clone());
        assert!(obs.is_active(), "a sinking observer is active without the global flag");
        // Capacity 2, 3 pushes: the third drops from the buffer but still
        // streams to the sink.
        let mut buf = obs.begin_attack(7, 2).expect("sinking observer hands out buffers");
        for step in 0..3 {
            buf.push(StepRecord { step, ..StepRecord::default() });
        }
        obs.finish_attack(buf);
        assert_eq!(*recorder.steps.lock().unwrap(), vec![(7, 0), (7, 1), (7, 2)]);
        assert_eq!(*recorder.finished.lock().unwrap(), Some((7, 3, 1)));
        let traces = obs.attack_traces();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].steps.len(), 2);
        assert_eq!(traces[0].dropped, 1);
    }

    #[test]
    fn step_record_json_has_every_field() {
        let r = StepRecord { step: 4, gain: 1.5, restarted: true, ..StepRecord::default() };
        let json = r.to_json();
        for key in [
            "\"step\":4",
            "\"gain\":1.5",
            "\"dist\":",
            "\"cw_hinge\":",
            "\"smooth\":",
            "\"weighted_hinge\":",
            "\"weighted_smooth\":",
            "\"grad_inf_norm\":",
            "\"flipped_points\":",
            "\"metric\":",
            "\"plateau_checkpoint_gain\":",
            "\"restarted\":true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
