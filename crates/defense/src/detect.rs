//! Statistical anomaly detection of adversarial color perturbations.
//!
//! The detector exploits the attack's own tension: to move logits, the
//! perturbation must create color patterns unlike natural surfaces, and
//! the smoothness penalty (Eq. 6) can only partially hide them. We
//! measure per-cloud *local color roughness* — the mean color distance
//! between each point and its k nearest spatial neighbors — calibrate a
//! threshold on clean clouds (mean + `z` standard deviations), and flag
//! clouds above it.

use colper_geom::knn_graph;
use colper_scene::PointCloud;

/// A calibrated roughness detector.
///
/// # Example
///
/// ```
/// use colper_defense::SmoothnessDetector;
/// use colper_scene::{IndoorSceneConfig, SceneGenerator};
///
/// let gen = SceneGenerator::indoor(IndoorSceneConfig::with_points(128));
/// let clean: Vec<_> = (0..4).map(|i| gen.generate(i)).collect();
/// let detector = SmoothnessDetector::calibrate(&clean, 6, 3.0);
/// assert!(!detector.is_adversarial(&clean[0]));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SmoothnessDetector {
    k: usize,
    threshold: f32,
    clean_mean: f32,
    clean_std: f32,
}

/// Per-batch detection statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorReport {
    /// Fraction of adversarial clouds flagged (true positive rate).
    pub detection_rate: f32,
    /// Fraction of clean clouds flagged (false positive rate).
    pub false_positive_rate: f32,
    /// The calibrated roughness threshold.
    pub threshold: f32,
}

impl SmoothnessDetector {
    /// Calibrates on clean clouds: the flag threshold is
    /// `mean + z * std` of their roughness scores.
    ///
    /// # Panics
    ///
    /// Panics when `clean` is empty or `k == 0`.
    pub fn calibrate(clean: &[PointCloud], k: usize, z: f32) -> Self {
        assert!(!clean.is_empty(), "SmoothnessDetector: no calibration clouds");
        assert!(k > 0, "SmoothnessDetector: k must be positive");
        let scores: Vec<f32> = clean.iter().map(|c| color_roughness(c, k)).collect();
        let mean = scores.iter().sum::<f32>() / scores.len() as f32;
        let var = scores.iter().map(|s| (s - mean) * (s - mean)).sum::<f32>() / scores.len() as f32;
        let std = var.sqrt();
        Self { k, threshold: mean + z * std.max(1e-6), clean_mean: mean, clean_std: std }
    }

    /// The calibrated threshold.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Mean roughness of the calibration clouds.
    pub fn clean_mean(&self) -> f32 {
        self.clean_mean
    }

    /// The roughness score of one cloud.
    pub fn score(&self, cloud: &PointCloud) -> f32 {
        color_roughness(cloud, self.k)
    }

    /// Whether a cloud's roughness exceeds the calibrated threshold.
    pub fn is_adversarial(&self, cloud: &PointCloud) -> bool {
        self.score(cloud) > self.threshold
    }

    /// Evaluates the detector on labeled batches.
    pub fn evaluate(&self, clean: &[PointCloud], adversarial: &[PointCloud]) -> DetectorReport {
        let fp = clean.iter().filter(|c| self.is_adversarial(c)).count();
        let tp = adversarial.iter().filter(|c| self.is_adversarial(c)).count();
        DetectorReport {
            detection_rate: tp as f32 / adversarial.len().max(1) as f32,
            false_positive_rate: fp as f32 / clean.len().max(1) as f32,
            threshold: self.threshold,
        }
    }
}

/// Mean color distance from each point to its `k` nearest spatial
/// neighbors.
fn color_roughness(cloud: &PointCloud, k: usize) -> f32 {
    if cloud.is_empty() {
        return 0.0;
    }
    let k = k.min(cloud.len());
    let graph = knn_graph(&cloud.coords, k);
    let mut total = 0.0f32;
    for i in 0..cloud.len() {
        for j in 0..k {
            let nb = graph[i * k + j];
            let mut d2 = 0.0f32;
            for c in 0..3 {
                let d = cloud.colors[i][c] - cloud.colors[nb][c];
                d2 += d * d;
            }
            total += d2.sqrt();
        }
    }
    total / (cloud.len() * k) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use colper_scene::{IndoorSceneConfig, SceneGenerator};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn clean_clouds(n: u64) -> Vec<PointCloud> {
        let gen = SceneGenerator::indoor(IndoorSceneConfig::with_points(160));
        (0..n).map(|i| gen.generate(i)).collect()
    }

    /// A crude adversarial stand-in: strong independent per-point noise,
    /// the roughness signature an unconstrained color attack leaves.
    fn noisy(cloud: &PointCloud, sigma: f32, seed: u64) -> PointCloud {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = cloud.clone();
        for c in &mut out.colors {
            for v in c {
                *v = (*v + rng.gen_range(-sigma..=sigma)).clamp(0.0, 1.0);
            }
        }
        out
    }

    #[test]
    fn clean_clouds_pass() {
        let clouds = clean_clouds(6);
        let detector = SmoothnessDetector::calibrate(&clouds[..4], 6, 3.0);
        // Held-out clean clouds also pass.
        assert!(!detector.is_adversarial(&clouds[4]));
        assert!(!detector.is_adversarial(&clouds[5]));
    }

    #[test]
    fn heavy_noise_is_flagged() {
        let clouds = clean_clouds(5);
        let detector = SmoothnessDetector::calibrate(&clouds[..4], 6, 3.0);
        let adv = noisy(&clouds[4], 0.4, 1);
        assert!(detector.score(&adv) > detector.clean_mean());
        assert!(detector.is_adversarial(&adv));
    }

    #[test]
    fn evaluate_reports_rates() {
        let clouds = clean_clouds(6);
        let detector = SmoothnessDetector::calibrate(&clouds[..3], 6, 3.0);
        let adv: Vec<PointCloud> =
            clouds[3..].iter().enumerate().map(|(i, c)| noisy(c, 0.4, i as u64)).collect();
        let report = detector.evaluate(&clouds[3..], &adv);
        assert!(report.detection_rate >= report.false_positive_rate);
        assert!(report.detection_rate > 0.5, "{report:?}");
    }

    #[test]
    fn roughness_zero_for_uniform_colors() {
        let mut cloud = clean_clouds(1).remove(0);
        for c in &mut cloud.colors {
            *c = [0.5, 0.5, 0.5];
        }
        assert_eq!(color_roughness(&cloud, 4), 0.0);
    }

    #[test]
    #[should_panic(expected = "no calibration clouds")]
    fn calibration_needs_data() {
        let _ = SmoothnessDetector::calibrate(&[], 4, 3.0);
    }
}
