//! The composable [`Defense`] trait and the built-in defense stages.
//!
//! Every input-side defense is a value with a **stable string id** (the
//! registry key used by the robustness matrix and `colperd`) and an
//! `apply` that rewrites a cloud before the model sees it. Stages are
//! chainable through [`crate::DefensePipeline`]; randomized stages draw
//! from a caller-supplied `StdRng` so the whole chain is deterministic
//! under a fixed seed.
//!
//! The id grammar doubles as the parse grammar: `Defense::id()` of any
//! built-in stage round-trips through [`parse_defense`].
//!
//! | id | stage | family |
//! |----|-------|--------|
//! | `identity` | [`Identity`] | reference (no defense) |
//! | `quantize(BITS)` | [`Quantize`] | bit-depth reduction (1901.03006) |
//! | `smooth(K)` | [`Smooth`] | k-NN color denoising (DUP-Net idea) |
//! | `jitter(SIGMA)` | [`Jitter`] | uniform color noise |
//! | `grayscale` | [`Grayscale`] | chroma removal |
//! | `gauss(SIGMA)` | [`GaussianNoise`] | Gaussian preprocessing (1902.10899) |
//! | `sor(K,MULT)` | [`OutlierRemoval`] | statistical outlier removal (1901.03006) |
//! | `drop(RATIO)` | [`RandomDrop`] | random point dropping (1901.03006) |

use colper_geom::knn_graph;
use colper_scene::PointCloud;
use rand::rngs::StdRng;
use rand::Rng;

/// An input-side defense: a named, reusable transform applied to a cloud
/// before inference.
///
/// Implementations must be pure given `(cloud, rng)`: the same cloud and
/// the same RNG state produce a bit-identical output cloud. Deterministic
/// stages simply ignore `rng` (and must not draw from it, so pipelines
/// stay reproducible when stages are reordered).
pub trait Defense: Send + Sync {
    /// Stable registry id, e.g. `"quantize(3)"`. Round-trips through
    /// [`parse_defense`] for every built-in stage.
    fn id(&self) -> String;

    /// Applies the defense, returning the defended cloud.
    fn apply(&self, cloud: &PointCloud, rng: &mut StdRng) -> PointCloud;

    /// Whether the stage consumes randomness (randomized defenses give
    /// different outputs under different seeds).
    fn is_randomized(&self) -> bool {
        false
    }
}

/// The identity defense: returns the cloud unchanged. The undefended
/// reference column of every robustness matrix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Identity;

impl Defense for Identity {
    fn id(&self) -> String {
        "identity".to_string()
    }

    fn apply(&self, cloud: &PointCloud, _rng: &mut StdRng) -> PointCloud {
        cloud.clone()
    }
}

/// Quantizes every color channel to `bits` of depth (bit-depth
/// reduction, the feature-squeezing defense of 1901.03006).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quantize {
    /// Bits per channel (1–8).
    pub bits: u32,
}

impl Quantize {
    /// Creates the stage.
    ///
    /// # Panics
    ///
    /// Panics when `bits` is 0 or above 8.
    pub fn new(bits: u32) -> Self {
        assert!((1..=8).contains(&bits), "Quantize: bits must be 1-8");
        Self { bits }
    }
}

impl Defense for Quantize {
    fn id(&self) -> String {
        format!("quantize({})", self.bits)
    }

    fn apply(&self, cloud: &PointCloud, _rng: &mut StdRng) -> PointCloud {
        quantize_impl(cloud, self.bits)
    }
}

/// Replaces each color by the mean over the point's `k` nearest spatial
/// neighbors (self included) — a color-channel denoiser, the DUP-Net
/// idea restricted to the color block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Smooth {
    /// Neighborhood size.
    pub k: usize,
}

impl Smooth {
    /// Creates the stage.
    ///
    /// # Panics
    ///
    /// Panics when `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "Smooth: k must be positive");
        Self { k }
    }
}

impl Defense for Smooth {
    fn id(&self) -> String {
        format!("smooth({})", self.k)
    }

    fn apply(&self, cloud: &PointCloud, _rng: &mut StdRng) -> PointCloud {
        smooth_impl(cloud, self.k)
    }
}

/// Adds uniform noise of half-width `sigma` to every channel, clamped to
/// `[0, 1]` (a randomized-smoothing style defense).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Jitter {
    /// Noise half-width.
    pub sigma: f32,
}

impl Jitter {
    /// Creates the stage.
    pub fn new(sigma: f32) -> Self {
        assert!(sigma >= 0.0, "Jitter: sigma must be non-negative");
        Self { sigma }
    }
}

impl Defense for Jitter {
    fn id(&self) -> String {
        format!("jitter({})", self.sigma)
    }

    fn apply(&self, cloud: &PointCloud, rng: &mut StdRng) -> PointCloud {
        jitter_impl(cloud, self.sigma, rng)
    }

    fn is_randomized(&self) -> bool {
        true
    }
}

/// Projects every color onto its luma (Rec. 601 weights), removing the
/// chroma channels an attacker manipulates most freely.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Grayscale;

impl Defense for Grayscale {
    fn id(&self) -> String {
        "grayscale".to_string()
    }

    fn apply(&self, cloud: &PointCloud, _rng: &mut StdRng) -> PointCloud {
        grayscale_impl(cloud)
    }
}

/// Adds zero-mean Gaussian noise of standard deviation `sigma` to every
/// channel, clamped to `[0, 1]` — the Gaussian-preprocessing defense of
/// 1902.10899 applied to the color block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianNoise {
    /// Noise standard deviation.
    pub sigma: f32,
}

impl GaussianNoise {
    /// Creates the stage.
    pub fn new(sigma: f32) -> Self {
        assert!(sigma >= 0.0, "GaussianNoise: sigma must be non-negative");
        Self { sigma }
    }
}

impl Defense for GaussianNoise {
    fn id(&self) -> String {
        format!("gauss({})", self.sigma)
    }

    fn apply(&self, cloud: &PointCloud, rng: &mut StdRng) -> PointCloud {
        let mut out = cloud.clone();
        for c in &mut out.colors {
            for v in c {
                *v = (*v + self.sigma * standard_normal(rng)).clamp(0.0, 1.0);
            }
        }
        out
    }

    fn is_randomized(&self) -> bool {
        true
    }
}

/// One draw from N(0, 1) via Box-Muller (the rand shim carries no normal
/// distribution). Consumes exactly two uniforms per call.
fn standard_normal(rng: &mut StdRng) -> f32 {
    let u1 = 1.0 - rng.gen::<f32>(); // (0, 1]: keeps ln() finite
    let u2 = rng.gen::<f32>();
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

/// Statistical outlier removal adapted to the color-only threat model
/// (1901.03006's SOR): drops points whose **color** deviates anomalously
/// from their spatial neighborhood.
///
/// Geometric SOR is a no-op here — COLPER never moves a point — so the
/// statistic is color-space: each point's mean Euclidean color distance
/// to its `k` nearest spatial neighbors, with points above
/// `mean + sigma_mult * std` removed. Labels and coordinates of the
/// surviving points are preserved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutlierRemoval {
    /// Spatial neighborhood size for the color statistic.
    pub k: usize,
    /// Cut-off in standard deviations above the mean deviation.
    pub sigma_mult: f32,
}

impl OutlierRemoval {
    /// Creates the stage.
    ///
    /// # Panics
    ///
    /// Panics when `k == 0` or `sigma_mult` is negative.
    pub fn new(k: usize, sigma_mult: f32) -> Self {
        assert!(k > 0, "OutlierRemoval: k must be positive");
        assert!(sigma_mult >= 0.0, "OutlierRemoval: sigma_mult must be non-negative");
        Self { k, sigma_mult }
    }
}

impl Defense for OutlierRemoval {
    fn id(&self) -> String {
        format!("sor({},{})", self.k, self.sigma_mult)
    }

    fn apply(&self, cloud: &PointCloud, _rng: &mut StdRng) -> PointCloud {
        if cloud.len() <= 1 {
            return cloud.clone();
        }
        let k = self.k.min(cloud.len());
        let graph = knn_graph(&cloud.coords, k);
        let mut deviation = vec![0.0f32; cloud.len()];
        for (i, d) in deviation.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for j in 0..k {
                let nb = graph[i * k + j];
                let mut dist_sq = 0.0f32;
                for ch in 0..3 {
                    let diff = cloud.colors[i][ch] - cloud.colors[nb][ch];
                    dist_sq += diff * diff;
                }
                acc += dist_sq.sqrt();
            }
            *d = acc / k as f32;
        }
        let n = deviation.len() as f32;
        let mean = deviation.iter().sum::<f32>() / n;
        let var = deviation.iter().map(|d| (d - mean) * (d - mean)).sum::<f32>() / n;
        let cutoff = mean + self.sigma_mult * var.sqrt();
        let kept: Vec<usize> = (0..cloud.len()).filter(|&i| deviation[i] <= cutoff).collect();
        if kept.is_empty() {
            // Unreachable for sigma_mult >= 0 (the minimum deviation is
            // never above mean + 0*std), but guard anyway: downstream
            // models reject empty clouds.
            return cloud.clone();
        }
        cloud.select(&kept)
    }
}

/// Randomly drops a fraction of the points (1901.03006's random point
/// dropping): each point survives independently with probability
/// `1 - ratio`. At least one point always survives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomDrop {
    /// Expected fraction of points dropped, in `[0, 1)`.
    pub ratio: f32,
}

impl RandomDrop {
    /// Creates the stage.
    ///
    /// # Panics
    ///
    /// Panics when `ratio` is outside `[0, 1)`.
    pub fn new(ratio: f32) -> Self {
        assert!((0.0..1.0).contains(&ratio), "RandomDrop: ratio must be in [0, 1)");
        Self { ratio }
    }
}

impl Defense for RandomDrop {
    fn id(&self) -> String {
        format!("drop({})", self.ratio)
    }

    fn apply(&self, cloud: &PointCloud, rng: &mut StdRng) -> PointCloud {
        let kept: Vec<usize> =
            (0..cloud.len()).filter(|_| rng.gen::<f32>() >= self.ratio).collect();
        if kept.is_empty() {
            return cloud.select(&[0]);
        }
        cloud.select(&kept)
    }

    fn is_randomized(&self) -> bool {
        true
    }
}

/// Parses a single defense stage from its stable id, e.g. `"quantize(3)"`
/// or `"sor(8,1.5)"`. The inverse of [`Defense::id`] for every built-in
/// stage. Pipelines (`"a|b"`) are parsed by
/// [`crate::DefensePipeline::parse`].
pub fn parse_defense(token: &str) -> Result<Box<dyn Defense>, String> {
    let token = token.trim();
    let (name, args) = match token.find('(') {
        Some(open) => {
            let close = token
                .rfind(')')
                .ok_or_else(|| format!("defense `{token}`: missing closing `)`"))?;
            if close != token.len() - 1 {
                return Err(format!("defense `{token}`: trailing text after `)`"));
            }
            (&token[..open], token[open + 1..close].split(',').collect::<Vec<_>>())
        }
        None => (token, Vec::new()),
    };
    let want = |n: usize| -> Result<(), String> {
        if args.len() == n && args.iter().all(|a| !a.trim().is_empty()) {
            Ok(())
        } else {
            Err(format!("defense `{name}`: expected {n} argument(s)"))
        }
    };
    let num = |i: usize| -> Result<f32, String> {
        args[i]
            .trim()
            .parse::<f32>()
            .map_err(|_| format!("defense `{name}`: bad number `{}`", args[i].trim()))
    };
    let int = |i: usize| -> Result<usize, String> {
        args[i]
            .trim()
            .parse::<usize>()
            .map_err(|_| format!("defense `{name}`: bad integer `{}`", args[i].trim()))
    };
    match name {
        "identity" => {
            want(0)?;
            Ok(Box::new(Identity))
        }
        "quantize" => {
            want(1)?;
            let bits = int(0)? as u32;
            if !(1..=8).contains(&bits) {
                return Err("defense `quantize`: bits must be 1-8".to_string());
            }
            Ok(Box::new(Quantize::new(bits)))
        }
        "smooth" => {
            want(1)?;
            let k = int(0)?;
            if k == 0 {
                return Err("defense `smooth`: k must be positive".to_string());
            }
            Ok(Box::new(Smooth::new(k)))
        }
        "jitter" => {
            want(1)?;
            let sigma = num(0)?;
            if !sigma.is_finite() || sigma < 0.0 {
                return Err("defense `jitter`: sigma must be non-negative".to_string());
            }
            Ok(Box::new(Jitter::new(sigma)))
        }
        "grayscale" => {
            want(0)?;
            Ok(Box::new(Grayscale))
        }
        "gauss" => {
            want(1)?;
            let sigma = num(0)?;
            if !sigma.is_finite() || sigma < 0.0 {
                return Err("defense `gauss`: sigma must be non-negative".to_string());
            }
            Ok(Box::new(GaussianNoise::new(sigma)))
        }
        "sor" => {
            want(2)?;
            let k = int(0)?;
            let mult = num(1)?;
            if k == 0 {
                return Err("defense `sor`: k must be positive".to_string());
            }
            if !mult.is_finite() || mult < 0.0 {
                return Err("defense `sor`: sigma_mult must be non-negative".to_string());
            }
            Ok(Box::new(OutlierRemoval::new(k, mult)))
        }
        "drop" => {
            want(1)?;
            let ratio = num(0)?;
            if !(0.0..1.0).contains(&ratio) {
                return Err("defense `drop`: ratio must be in [0, 1)".to_string());
            }
            Ok(Box::new(RandomDrop::new(ratio)))
        }
        other => Err(format!("unknown defense `{other}`")),
    }
}

// Shared transform bodies: the deprecated free functions in
// [`crate::transform`] delegate here so old and new APIs stay
// bit-identical for the deprecation window.

pub(crate) fn quantize_impl(cloud: &PointCloud, bits: u32) -> PointCloud {
    assert!((1..=8).contains(&bits), "quantize_colors: bits must be 1-8");
    let levels = (1u32 << bits) as f32 - 1.0;
    let mut out = cloud.clone();
    for c in &mut out.colors {
        for v in c {
            *v = (*v * levels).round() / levels;
        }
    }
    out
}

pub(crate) fn smooth_impl(cloud: &PointCloud, k: usize) -> PointCloud {
    assert!(!cloud.is_empty(), "smooth_colors: empty cloud");
    assert!(k > 0, "smooth_colors: k must be positive");
    let k = k.min(cloud.len());
    let graph = knn_graph(&cloud.coords, k);
    let mut out = cloud.clone();
    for i in 0..cloud.len() {
        let mut acc = [0.0f32; 3];
        for j in 0..k {
            let nb = graph[i * k + j];
            for (a, v) in acc.iter_mut().zip(&cloud.colors[nb]) {
                *a += v;
            }
        }
        for (o, a) in out.colors[i].iter_mut().zip(acc) {
            *o = a / k as f32;
        }
    }
    out
}

pub(crate) fn jitter_impl<R: Rng + ?Sized>(
    cloud: &PointCloud,
    sigma: f32,
    rng: &mut R,
) -> PointCloud {
    let mut out = cloud.clone();
    for c in &mut out.colors {
        for v in c {
            *v = (*v + rng.gen_range(-sigma..=sigma)).clamp(0.0, 1.0);
        }
    }
    out
}

pub(crate) fn grayscale_impl(cloud: &PointCloud) -> PointCloud {
    let mut out = cloud.clone();
    for c in &mut out.colors {
        let y = 0.299 * c[0] + 0.587 * c[1] + 0.114 * c[2];
        *c = [y, y, y];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use colper_scene::{IndoorSceneConfig, SceneGenerator};
    use rand::SeedableRng;

    fn sample() -> PointCloud {
        SceneGenerator::indoor(IndoorSceneConfig::with_points(128)).generate(1)
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn identity_is_a_no_op() {
        let cloud = sample();
        let out = Identity.apply(&cloud, &mut rng());
        assert_eq!(out.colors, cloud.colors);
        assert_eq!(out.coords, cloud.coords);
        assert_eq!(out.labels, cloud.labels);
    }

    #[test]
    fn ids_round_trip_through_parse() {
        let stages: Vec<Box<dyn Defense>> = vec![
            Box::new(Identity),
            Box::new(Quantize::new(3)),
            Box::new(Smooth::new(8)),
            Box::new(Jitter::new(0.08)),
            Box::new(Grayscale),
            Box::new(GaussianNoise::new(0.05)),
            Box::new(OutlierRemoval::new(8, 1.5)),
            Box::new(RandomDrop::new(0.25)),
        ];
        for stage in stages {
            let reparsed = parse_defense(&stage.id()).expect("id should parse");
            assert_eq!(reparsed.id(), stage.id());
            assert_eq!(reparsed.is_randomized(), stage.is_randomized());
        }
    }

    #[test]
    fn parse_rejects_unknown_and_malformed() {
        for bad in
            ["fog", "quantize", "quantize()", "quantize(0)", "quantize(9)", "drop(1.0)", "sor(8)"]
        {
            assert!(parse_defense(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn gaussian_noise_stays_in_unit_box_and_is_seeded() {
        let cloud = sample();
        let a = GaussianNoise::new(0.1).apply(&cloud, &mut rng());
        let b = GaussianNoise::new(0.1).apply(&cloud, &mut rng());
        assert_eq!(a.colors, b.colors, "same seed, same output");
        assert!(a.colors.iter().flatten().all(|&v| (0.0..=1.0).contains(&v)));
        assert_ne!(a.colors, cloud.colors);
    }

    #[test]
    fn outlier_removal_drops_a_planted_color_outlier() {
        let mut cloud = sample();
        for c in &mut cloud.colors {
            *c = [0.5, 0.5, 0.5];
        }
        cloud.colors[13] = [1.0, 0.0, 1.0];
        let defended = OutlierRemoval::new(8, 2.0).apply(&cloud, &mut rng());
        assert_eq!(defended.len(), cloud.len() - 1, "exactly the outlier goes");
        assert!(defended.colors.iter().all(|c| *c == [0.5, 0.5, 0.5]));
    }

    #[test]
    fn outlier_removal_keeps_uniform_clouds_intact() {
        let mut cloud = sample();
        for c in &mut cloud.colors {
            *c = [0.25, 0.5, 0.75];
        }
        let defended = OutlierRemoval::new(8, 1.0).apply(&cloud, &mut rng());
        assert_eq!(defended.len(), cloud.len());
    }

    #[test]
    fn random_drop_removes_roughly_the_requested_fraction() {
        let cloud = sample();
        let defended = RandomDrop::new(0.5).apply(&cloud, &mut rng());
        assert!(defended.len() < cloud.len());
        assert!(!defended.is_empty());
        let frac = defended.len() as f32 / cloud.len() as f32;
        assert!((0.2..=0.8).contains(&frac), "kept fraction {frac} far from 0.5");
    }

    #[test]
    fn subset_defenses_preserve_label_alignment() {
        let cloud = sample();
        for defended in [
            OutlierRemoval::new(6, 1.0).apply(&cloud, &mut rng()),
            RandomDrop::new(0.3).apply(&cloud, &mut rng()),
        ] {
            for i in 0..defended.len() {
                let orig = cloud
                    .coords
                    .iter()
                    .position(|c| *c == defended.coords[i])
                    .expect("defended point must come from the original cloud");
                assert_eq!(defended.labels[i], cloud.labels[orig]);
                assert_eq!(defended.colors[i], cloud.colors[orig]);
            }
        }
    }
}
