//! [`DefensePipeline`]: an ordered chain of [`Defense`] stages with
//! deterministic per-stage RNG streams.

use crate::defense::{parse_defense, Defense};
use colper_scene::PointCloud;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An ordered chain of defense stages, itself a [`Defense`].
///
/// # RNG streams
///
/// `apply` draws one `u64` seed per stage from the caller's generator
/// **up front**, then runs each stage on its own `StdRng` derived from
/// that seed. Two consequences, both load-bearing for reproducibility:
///
/// * a stage's internal randomness consumption never shifts the stream
///   seen by later stages (swapping `jitter(0.1)` for `gauss(0.1)`
///   leaves stage 2's noise bit-identical);
/// * the caller's generator advances by exactly `len()` draws no matter
///   what the stages do.
///
/// The empty pipeline is the identity defense (id `"identity"`).
#[derive(Default)]
pub struct DefensePipeline {
    stages: Vec<Box<dyn Defense>>,
}

impl DefensePipeline {
    /// An empty pipeline (the identity defense).
    pub fn new() -> Self {
        Self { stages: Vec::new() }
    }

    /// Appends a stage, builder-style.
    pub fn with(mut self, stage: impl Defense + 'static) -> Self {
        self.stages.push(Box::new(stage));
        self
    }

    /// Appends a boxed stage.
    pub fn push(&mut self, stage: Box<dyn Defense>) {
        self.stages.push(stage);
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the pipeline has no stages (identity).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Parses a `|`-separated chain of stage ids, e.g.
    /// `"sor(8,1.5)|quantize(3)"`. A single token parses to a one-stage
    /// pipeline; `"identity"` to an identity stage.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let spec = spec.trim();
        if spec.is_empty() {
            return Err("empty defense spec".to_string());
        }
        let mut pipeline = Self::new();
        for token in spec.split('|') {
            pipeline.push(parse_defense(token)?);
        }
        Ok(pipeline)
    }
}

impl Defense for DefensePipeline {
    fn id(&self) -> String {
        if self.stages.is_empty() {
            "identity".to_string()
        } else {
            self.stages.iter().map(|s| s.id()).collect::<Vec<_>>().join("|")
        }
    }

    fn apply(&self, cloud: &PointCloud, rng: &mut StdRng) -> PointCloud {
        let seeds: Vec<u64> = self.stages.iter().map(|_| rng.gen()).collect();
        let mut current = cloud.clone();
        for (stage, seed) in self.stages.iter().zip(seeds) {
            let mut stage_rng = StdRng::seed_from_u64(seed);
            current = stage.apply(&current, &mut stage_rng);
        }
        current
    }

    fn is_randomized(&self) -> bool {
        self.stages.iter().any(|s| s.is_randomized())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defense::{GaussianNoise, Grayscale, Jitter, Quantize};
    use colper_scene::{IndoorSceneConfig, SceneGenerator};

    fn sample() -> PointCloud {
        SceneGenerator::indoor(IndoorSceneConfig::with_points(96)).generate(3)
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let cloud = sample();
        let p = DefensePipeline::new();
        assert_eq!(p.id(), "identity");
        assert!(!p.is_randomized());
        let out = p.apply(&cloud, &mut StdRng::seed_from_u64(0));
        assert_eq!(out.colors, cloud.colors);
    }

    #[test]
    fn id_joins_stages_and_round_trips() {
        let p = DefensePipeline::new().with(Quantize::new(3)).with(Jitter::new(0.05));
        assert_eq!(p.id(), "quantize(3)|jitter(0.05)");
        let reparsed = DefensePipeline::parse(&p.id()).expect("round trip");
        assert_eq!(reparsed.id(), p.id());
        assert!(reparsed.is_randomized());
    }

    #[test]
    fn parse_rejects_bad_stage_anywhere() {
        assert!(DefensePipeline::parse("quantize(3)|fog").is_err());
        assert!(DefensePipeline::parse("").is_err());
    }

    #[test]
    fn chain_matches_manual_composition() {
        let cloud = sample();
        let p = DefensePipeline::new().with(Grayscale).with(Quantize::new(2));
        let chained = p.apply(&cloud, &mut StdRng::seed_from_u64(5));
        let mut throwaway = StdRng::seed_from_u64(99);
        let manual =
            Quantize::new(2).apply(&Grayscale.apply(&cloud, &mut throwaway), &mut throwaway);
        assert_eq!(chained.colors, manual.colors);
    }

    #[test]
    fn later_stage_stream_is_independent_of_earlier_stage_consumption() {
        // Replace stage 1 (deterministic) with a randomized stage of the
        // same position: stage 2's noise must not move.
        let cloud = sample();
        let seed = 11;
        let a = DefensePipeline::new()
            .with(Grayscale)
            .with(GaussianNoise::new(0.05))
            .apply(&cloud, &mut StdRng::seed_from_u64(seed));
        let b = DefensePipeline::new()
            .with(Jitter::new(0.0)) // draws heavily, changes nothing
            .with(GaussianNoise::new(0.05))
            .apply(&cloud, &mut StdRng::seed_from_u64(seed));
        let gray = Grayscale.apply(&cloud, &mut StdRng::seed_from_u64(0));
        // Noise applied to different bases, so compare the deltas.
        let delta_a: Vec<f32> = a
            .colors
            .iter()
            .flatten()
            .zip(gray.colors.iter().flatten())
            .map(|(x, y)| x - y)
            .collect();
        let delta_b: Vec<f32> = b
            .colors
            .iter()
            .flatten()
            .zip(cloud.colors.iter().flatten())
            .map(|(x, y)| x - y)
            .collect();
        let interior = |v: f32| v > 0.02 && v < 0.98;
        let same = delta_a
            .iter()
            .zip(&delta_b)
            .zip(a.colors.iter().flatten().zip(b.colors.iter().flatten()))
            .filter(|((_, _), (&x, &y))| interior(x) && interior(y))
            .all(|((da, db), _)| (da - db).abs() < 1e-6);
        assert!(same, "stage-2 noise shifted when stage 1 changed");
    }

    #[test]
    fn caller_stream_advances_by_stage_count() {
        let cloud = sample();
        let mut rng_a = StdRng::seed_from_u64(21);
        DefensePipeline::new()
            .with(GaussianNoise::new(0.3))
            .with(Jitter::new(0.3))
            .apply(&cloud, &mut rng_a);
        let mut rng_b = StdRng::seed_from_u64(21);
        let _: u64 = rng_b.gen();
        let _: u64 = rng_b.gen();
        assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
    }
}
