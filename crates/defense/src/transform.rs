//! Input-transformation defenses: rewrite the color block before the
//! model sees it.
//!
//! These are the cheapest defenses — no retraining — and the classic
//! representatives of *gradient obfuscation*: a white-box attacker who is
//! unaware of the transform optimizes against the wrong input; an
//! adaptive attacker can fold a differentiable approximation back into
//! the loop (which is why the paper, citing Sun et al., is skeptical of
//! this family).

use colper_geom::knn_graph;
use colper_scene::PointCloud;
use rand::Rng;

/// The input transformations available to the evaluation harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ColorTransform {
    /// Reduce each channel to `bits` of depth.
    Quantize {
        /// Bits per channel (1–8).
        bits: u32,
    },
    /// Replace each point's color by the mean over its `k` nearest
    /// neighbors (color denoising).
    Smooth {
        /// Neighborhood size.
        k: usize,
    },
    /// Add uniform noise of half-width `sigma` (randomized defense).
    Jitter {
        /// Noise half-width.
        sigma: f32,
    },
    /// Project to grayscale (discard chroma entirely).
    Grayscale,
}

impl ColorTransform {
    /// Applies the transform to a cloud.
    pub fn apply<R: Rng + ?Sized>(&self, cloud: &PointCloud, rng: &mut R) -> PointCloud {
        match *self {
            ColorTransform::Quantize { bits } => quantize_colors(cloud, bits),
            ColorTransform::Smooth { k } => smooth_colors(cloud, k),
            ColorTransform::Jitter { sigma } => jitter_colors(cloud, sigma, rng),
            ColorTransform::Grayscale => grayscale_colors(cloud),
        }
    }

    /// A short label for report rows.
    pub fn label(&self) -> String {
        match *self {
            ColorTransform::Quantize { bits } => format!("quantize({bits} bit)"),
            ColorTransform::Smooth { k } => format!("smooth(k={k})"),
            ColorTransform::Jitter { sigma } => format!("jitter(±{sigma})"),
            ColorTransform::Grayscale => "grayscale".to_string(),
        }
    }
}

/// Quantizes every color channel to `bits` of depth (1–8).
///
/// # Panics
///
/// Panics when `bits` is 0 or above 8.
pub fn quantize_colors(cloud: &PointCloud, bits: u32) -> PointCloud {
    assert!((1..=8).contains(&bits), "quantize_colors: bits must be 1-8");
    let levels = (1u32 << bits) as f32 - 1.0;
    let mut out = cloud.clone();
    for c in &mut out.colors {
        for v in c {
            *v = (*v * levels).round() / levels;
        }
    }
    out
}

/// Replaces each color by the mean over the point's `k` nearest
/// neighbors (self included), a color-channel denoiser.
///
/// # Panics
///
/// Panics when the cloud is empty or `k == 0`.
pub fn smooth_colors(cloud: &PointCloud, k: usize) -> PointCloud {
    assert!(!cloud.is_empty(), "smooth_colors: empty cloud");
    assert!(k > 0, "smooth_colors: k must be positive");
    let k = k.min(cloud.len());
    let graph = knn_graph(&cloud.coords, k);
    let mut out = cloud.clone();
    for i in 0..cloud.len() {
        let mut acc = [0.0f32; 3];
        for j in 0..k {
            let nb = graph[i * k + j];
            for (a, v) in acc.iter_mut().zip(&cloud.colors[nb]) {
                *a += v;
            }
        }
        for (o, a) in out.colors[i].iter_mut().zip(acc) {
            *o = a / k as f32;
        }
    }
    out
}

/// Adds uniform noise of half-width `sigma` to every channel, clamped to
/// `[0, 1]` (a randomized-smoothing style defense).
pub fn jitter_colors<R: Rng + ?Sized>(cloud: &PointCloud, sigma: f32, rng: &mut R) -> PointCloud {
    let mut out = cloud.clone();
    for c in &mut out.colors {
        for v in c {
            *v = (*v + rng.gen_range(-sigma..=sigma)).clamp(0.0, 1.0);
        }
    }
    out
}

/// Projects every color onto its luma (Rec. 601 weights), removing the
/// chroma channels an attacker manipulates most freely.
pub fn grayscale_colors(cloud: &PointCloud) -> PointCloud {
    let mut out = cloud.clone();
    for c in &mut out.colors {
        let y = 0.299 * c[0] + 0.587 * c[1] + 0.114 * c[2];
        *c = [y, y, y];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use colper_scene::{IndoorSceneConfig, SceneGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> PointCloud {
        SceneGenerator::indoor(IndoorSceneConfig::with_points(128)).generate(1)
    }

    #[test]
    fn quantize_reduces_distinct_values() {
        let cloud = sample();
        let q = quantize_colors(&cloud, 2);
        let mut distinct: Vec<u32> =
            q.colors.iter().flatten().map(|v| (v * 1000.0).round() as u32).collect();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(distinct.len() <= 4, "2 bits -> at most 4 levels, got {}", distinct.len());
    }

    #[test]
    fn quantize_is_idempotent() {
        let cloud = sample();
        let once = quantize_colors(&cloud, 3);
        let twice = quantize_colors(&once, 3);
        assert_eq!(once.colors, twice.colors);
    }

    #[test]
    fn smooth_reduces_neighborhood_contrast() {
        let cloud = sample();
        let smoothed = smooth_colors(&cloud, 8);
        let contrast = |c: &PointCloud| -> f32 {
            let g = knn_graph(&c.coords, 4);
            let mut total = 0.0;
            for i in 0..c.len() {
                for j in 0..4 {
                    let nb = g[i * 4 + j];
                    for ch in 0..3 {
                        total += (c.colors[i][ch] - c.colors[nb][ch]).abs();
                    }
                }
            }
            total
        };
        assert!(contrast(&smoothed) < contrast(&cloud));
    }

    #[test]
    fn jitter_stays_in_unit_box() {
        let cloud = sample();
        let mut rng = StdRng::seed_from_u64(0);
        let j = jitter_colors(&cloud, 0.3, &mut rng);
        assert!(j.colors.iter().flatten().all(|&v| (0.0..=1.0).contains(&v)));
        assert_ne!(j.colors, cloud.colors);
    }

    #[test]
    fn grayscale_equalizes_channels() {
        let cloud = sample();
        let g = grayscale_colors(&cloud);
        for c in &g.colors {
            assert_eq!(c[0], c[1]);
            assert_eq!(c[1], c[2]);
        }
    }

    #[test]
    fn transforms_preserve_geometry_and_labels() {
        let cloud = sample();
        let mut rng = StdRng::seed_from_u64(1);
        for t in [
            ColorTransform::Quantize { bits: 4 },
            ColorTransform::Smooth { k: 5 },
            ColorTransform::Jitter { sigma: 0.1 },
            ColorTransform::Grayscale,
        ] {
            let d = t.apply(&cloud, &mut rng);
            assert_eq!(d.coords, cloud.coords, "{}", t.label());
            assert_eq!(d.labels, cloud.labels, "{}", t.label());
        }
    }

    #[test]
    fn labels_are_informative() {
        assert!(ColorTransform::Quantize { bits: 3 }.label().contains('3'));
        assert!(ColorTransform::Smooth { k: 7 }.label().contains('7'));
    }
}
