//! Deprecated pre-[`Defense`](crate::Defense) transform API.
//!
//! The original defense surface — a closed [`ColorTransform`] enum plus
//! four free functions — could not express registry keys, chains, or the
//! new point-dropping defenses, so it was replaced by the composable
//! [`Defense`](crate::Defense) trait and
//! [`DefensePipeline`](crate::DefensePipeline). Everything here is a
//! thin shim over the new stages, kept for **one release** so downstream
//! callers can migrate:
//!
//! | old | new |
//! |-----|-----|
//! | `quantize_colors(c, b)` | `Quantize::new(b).apply(c, rng)` |
//! | `smooth_colors(c, k)` | `Smooth::new(k).apply(c, rng)` |
//! | `jitter_colors(c, s, rng)` | `Jitter::new(s).apply(c, rng)` |
//! | `grayscale_colors(c)` | `Grayscale.apply(c, rng)` |
//! | `ColorTransform::apply` | `Defense::apply` |
//! | `ColorTransform::label` | `Defense::id` |
//!
//! The shims delegate to the exact same bodies as the stages, so old and
//! new APIs are bit-identical for the whole deprecation window (pinned
//! by this module's equivalence tests).

#![allow(deprecated)]

use crate::defense;
use colper_scene::PointCloud;
use rand::Rng;

/// The input transformations available to the evaluation harness.
#[deprecated(
    since = "0.2.0",
    note = "use the composable `Defense` trait stages (`Quantize`, `Smooth`, `Jitter`, \
            `Grayscale`) or a `DefensePipeline` instead"
)]
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ColorTransform {
    /// Reduce each channel to `bits` of depth.
    Quantize {
        /// Bits per channel (1–8).
        bits: u32,
    },
    /// Replace each point's color by the mean over its `k` nearest
    /// neighbors (color denoising).
    Smooth {
        /// Neighborhood size.
        k: usize,
    },
    /// Add uniform noise of half-width `sigma` (randomized defense).
    Jitter {
        /// Noise half-width.
        sigma: f32,
    },
    /// Project to grayscale (discard chroma entirely).
    Grayscale,
}

impl ColorTransform {
    /// Applies the transform to a cloud.
    pub fn apply<R: Rng + ?Sized>(&self, cloud: &PointCloud, rng: &mut R) -> PointCloud {
        match *self {
            ColorTransform::Quantize { bits } => defense::quantize_impl(cloud, bits),
            ColorTransform::Smooth { k } => defense::smooth_impl(cloud, k),
            ColorTransform::Jitter { sigma } => defense::jitter_impl(cloud, sigma, rng),
            ColorTransform::Grayscale => defense::grayscale_impl(cloud),
        }
    }

    /// A short label for report rows.
    pub fn label(&self) -> String {
        match *self {
            ColorTransform::Quantize { bits } => format!("quantize({bits} bit)"),
            ColorTransform::Smooth { k } => format!("smooth(k={k})"),
            ColorTransform::Jitter { sigma } => format!("jitter(±{sigma})"),
            ColorTransform::Grayscale => "grayscale".to_string(),
        }
    }
}

/// Quantizes every color channel to `bits` of depth (1–8).
///
/// # Panics
///
/// Panics when `bits` is 0 or above 8.
#[deprecated(since = "0.2.0", note = "use `Quantize::new(bits)` via the `Defense` trait")]
pub fn quantize_colors(cloud: &PointCloud, bits: u32) -> PointCloud {
    defense::quantize_impl(cloud, bits)
}

/// Replaces each color by the mean over the point's `k` nearest
/// neighbors (self included), a color-channel denoiser.
///
/// # Panics
///
/// Panics when the cloud is empty or `k == 0`.
#[deprecated(since = "0.2.0", note = "use `Smooth::new(k)` via the `Defense` trait")]
pub fn smooth_colors(cloud: &PointCloud, k: usize) -> PointCloud {
    defense::smooth_impl(cloud, k)
}

/// Adds uniform noise of half-width `sigma` to every channel, clamped to
/// `[0, 1]` (a randomized-smoothing style defense).
#[deprecated(since = "0.2.0", note = "use `Jitter::new(sigma)` via the `Defense` trait")]
pub fn jitter_colors<R: Rng + ?Sized>(cloud: &PointCloud, sigma: f32, rng: &mut R) -> PointCloud {
    defense::jitter_impl(cloud, sigma, rng)
}

/// Projects every color onto its luma (Rec. 601 weights), removing the
/// chroma channels an attacker manipulates most freely.
#[deprecated(since = "0.2.0", note = "use `Grayscale` via the `Defense` trait")]
pub fn grayscale_colors(cloud: &PointCloud) -> PointCloud {
    defense::grayscale_impl(cloud)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defense::{Defense, Grayscale, Jitter, Quantize, Smooth};
    use colper_geom::knn_graph;
    use colper_scene::{IndoorSceneConfig, SceneGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> PointCloud {
        SceneGenerator::indoor(IndoorSceneConfig::with_points(128)).generate(1)
    }

    // Equivalence pins: the new trait stages must reproduce the old free
    // functions bit-for-bit for the whole deprecation window.

    #[test]
    fn quantize_stage_matches_free_function() {
        let cloud = sample();
        let old = quantize_colors(&cloud, 3);
        let new = Quantize::new(3).apply(&cloud, &mut StdRng::seed_from_u64(0));
        assert_eq!(old.colors, new.colors);
    }

    #[test]
    fn smooth_stage_matches_free_function() {
        let cloud = sample();
        let old = smooth_colors(&cloud, 8);
        let new = Smooth::new(8).apply(&cloud, &mut StdRng::seed_from_u64(0));
        assert_eq!(old.colors, new.colors);
    }

    #[test]
    fn jitter_stage_matches_free_function_bit_for_bit() {
        let cloud = sample();
        let old = jitter_colors(&cloud, 0.1, &mut StdRng::seed_from_u64(9));
        let new = Jitter::new(0.1).apply(&cloud, &mut StdRng::seed_from_u64(9));
        assert_eq!(old.colors, new.colors, "identical seed must give identical noise");
    }

    #[test]
    fn grayscale_stage_matches_free_function() {
        let cloud = sample();
        let old = grayscale_colors(&cloud);
        let new = Grayscale.apply(&cloud, &mut StdRng::seed_from_u64(0));
        assert_eq!(old.colors, new.colors);
    }

    #[test]
    fn enum_apply_matches_stage_apply() {
        let cloud = sample();
        let pairs: Vec<(ColorTransform, Box<dyn Defense>)> = vec![
            (ColorTransform::Quantize { bits: 4 }, Box::new(Quantize::new(4))),
            (ColorTransform::Smooth { k: 5 }, Box::new(Smooth::new(5))),
            (ColorTransform::Jitter { sigma: 0.07 }, Box::new(Jitter::new(0.07))),
            (ColorTransform::Grayscale, Box::new(Grayscale)),
        ];
        for (old, new) in pairs {
            let a = old.apply(&cloud, &mut StdRng::seed_from_u64(4));
            let b = new.apply(&cloud, &mut StdRng::seed_from_u64(4));
            assert_eq!(a.colors, b.colors, "{}", new.id());
        }
    }

    // Behavior tests for the shared transform bodies (kept from the
    // original module).

    #[test]
    fn quantize_reduces_distinct_values() {
        let cloud = sample();
        let q = quantize_colors(&cloud, 2);
        let mut distinct: Vec<u32> =
            q.colors.iter().flatten().map(|v| (v * 1000.0).round() as u32).collect();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(distinct.len() <= 4, "2 bits -> at most 4 levels, got {}", distinct.len());
    }

    #[test]
    fn quantize_is_idempotent() {
        let cloud = sample();
        let once = quantize_colors(&cloud, 3);
        let twice = quantize_colors(&once, 3);
        assert_eq!(once.colors, twice.colors);
    }

    #[test]
    fn smooth_reduces_neighborhood_contrast() {
        let cloud = sample();
        let smoothed = smooth_colors(&cloud, 8);
        let contrast = |c: &PointCloud| -> f32 {
            let g = knn_graph(&c.coords, 4);
            let mut total = 0.0;
            for i in 0..c.len() {
                for j in 0..4 {
                    let nb = g[i * 4 + j];
                    for ch in 0..3 {
                        total += (c.colors[i][ch] - c.colors[nb][ch]).abs();
                    }
                }
            }
            total
        };
        assert!(contrast(&smoothed) < contrast(&cloud));
    }

    #[test]
    fn jitter_stays_in_unit_box() {
        let cloud = sample();
        let mut rng = StdRng::seed_from_u64(0);
        let j = jitter_colors(&cloud, 0.3, &mut rng);
        assert!(j.colors.iter().flatten().all(|&v| (0.0..=1.0).contains(&v)));
        assert_ne!(j.colors, cloud.colors);
    }

    #[test]
    fn grayscale_equalizes_channels() {
        let cloud = sample();
        let g = grayscale_colors(&cloud);
        for c in &g.colors {
            assert_eq!(c[0], c[1]);
            assert_eq!(c[1], c[2]);
        }
    }

    #[test]
    fn transforms_preserve_geometry_and_labels() {
        let cloud = sample();
        let mut rng = StdRng::seed_from_u64(1);
        for t in [
            ColorTransform::Quantize { bits: 4 },
            ColorTransform::Smooth { k: 5 },
            ColorTransform::Jitter { sigma: 0.1 },
            ColorTransform::Grayscale,
        ] {
            let d = t.apply(&cloud, &mut rng);
            assert_eq!(d.coords, cloud.coords, "{}", t.label());
            assert_eq!(d.labels, cloud.labels, "{}", t.label());
        }
    }

    #[test]
    fn labels_are_informative() {
        assert!(ColorTransform::Quantize { bits: 3 }.label().contains('3'));
        assert!(ColorTransform::Smooth { k: 7 }.label().contains('7'));
    }
}
