//! Adversarial training: interleave COLPER-perturbed clouds into the
//! training stream.
//!
//! This is the family the paper (citing DeepSym) credits with real
//! robustness at real cost: every adversarial epoch pays an inner attack
//! per cloud. The implementation alternates clean and adversarial
//! updates and reports both the robustness gained and the overhead paid,
//! so the harness can reproduce that trade-off.

use colper_attack::{AttackConfig, AttackSession};
use colper_models::{bind_input, CloudTensors, ColorBinding, SegmentationModel};
use colper_nn::{Adam, Forward};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use std::time::Instant;

/// Hyper-parameters for [`adversarial_training`].
#[derive(Debug, Clone, PartialEq)]
pub struct AdvTrainConfig {
    /// Total epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Inner attack iteration budget (small, PGD-style).
    pub attack_steps: usize,
    /// Fraction of updates that use adversarial inputs (0.5 = alternate).
    pub adversarial_fraction: f32,
}

impl Default for AdvTrainConfig {
    fn default() -> Self {
        Self { epochs: 8, lr: 0.01, attack_steps: 8, adversarial_fraction: 0.5 }
    }
}

/// The outcome of an adversarial training run.
#[derive(Debug, Clone, PartialEq)]
pub struct AdvTrainReport {
    /// Mean training accuracy (clean inputs) of the final epoch.
    pub final_clean_accuracy: f32,
    /// Number of adversarial updates performed.
    pub adversarial_updates: usize,
    /// Number of clean updates performed.
    pub clean_updates: usize,
    /// Wall-clock seconds spent inside the inner attack — the "high
    /// training overhead" the paper warns about, measured.
    pub attack_seconds: f32,
    /// Total wall-clock seconds.
    pub total_seconds: f32,
}

/// Adversarially trains `model` on `clouds`.
///
/// # Panics
///
/// Panics when `clouds` is empty or the fraction is outside `[0, 1]`.
pub fn adversarial_training<M: SegmentationModel + ?Sized>(
    model: &mut M,
    clouds: &[CloudTensors],
    config: &AdvTrainConfig,
    rng: &mut StdRng,
) -> AdvTrainReport {
    assert!(!clouds.is_empty(), "adversarial_training: no training clouds");
    assert!(
        (0.0..=1.0).contains(&config.adversarial_fraction),
        "adversarial_training: fraction must be in [0, 1]"
    );
    let started = Instant::now();
    let mut adam = Adam::with_lr(config.lr);
    let mut order: Vec<usize> = (0..clouds.len()).collect();
    let mut attack_seconds = 0.0f32;
    let mut adversarial_updates = 0usize;
    let mut clean_updates = 0usize;
    let mut last_epoch_acc = 0.0f32;

    for _ in 0..config.epochs {
        order.shuffle(rng);
        let mut epoch_acc = 0.0f32;
        for &ci in &order {
            let t = &clouds[ci];
            // Decide whether this update sees an adversarial version.
            let adversarial = rng.gen_range(0.0..1.0) < config.adversarial_fraction;
            let train_input: CloudTensors = if adversarial {
                let attack_started = Instant::now();
                // Adversarial training threads ONE rng through every epoch
                // (attack draws interleave with the shuffle and the
                // clean/adversarial coin flips), so it uses the
                // rng-threading entry point rather than per-cloud seeds.
                let attack = AttackSession::new(AttackConfig::non_targeted(config.attack_steps));
                let result = attack.run_with_rng(model, t, rng);
                attack_seconds += attack_started.elapsed().as_secs_f32();
                adversarial_updates += 1;
                let mut adv = t.clone();
                adv.colors = result.adversarial_colors;
                adv
            } else {
                clean_updates += 1;
                t.clone()
            };

            let (grads, bn_updates, acc) = {
                let mut session = Forward::new(model.params(), true);
                let input = bind_input(&mut session.tape, &train_input, ColorBinding::Constant);
                let logits = model.forward(&mut session, &input, rng);
                let loss = session.tape.softmax_cross_entropy(logits, &t.labels);
                session.tape.backward(loss);
                let preds = session.tape.value(logits).argmax_rows();
                let correct = preds.iter().zip(&t.labels).filter(|(p, l)| p == l).count();
                let acc = correct as f32 / preds.len().max(1) as f32;
                (session.collect_grads(), session.into_bn_updates(), acc)
            };
            model.params_mut().apply_bn_updates(&bn_updates);
            adam.step(model.params_mut(), &grads);
            epoch_acc += acc;
        }
        last_epoch_acc = epoch_acc / clouds.len() as f32;
    }

    AdvTrainReport {
        final_clean_accuracy: last_epoch_acc,
        adversarial_updates,
        clean_updates,
        attack_seconds,
        total_seconds: started.elapsed().as_secs_f32(),
    }
}

use rand::Rng as _;

#[cfg(test)]
mod tests {
    use super::*;
    use colper_models::{evaluate_on, train_model, PointNet2, PointNet2Config, TrainConfig};
    use colper_scene::{normalize, IndoorSceneConfig, RoomKind, SceneGenerator};
    use rand::SeedableRng;

    fn clouds(n: usize) -> Vec<CloudTensors> {
        (0..n)
            .map(|i| {
                let cfg = IndoorSceneConfig {
                    room_kind: Some(RoomKind::Office),
                    ..IndoorSceneConfig::with_points(144)
                };
                let cloud = SceneGenerator::indoor(cfg).generate(2000 + i as u64);
                CloudTensors::from_cloud(&normalize::pointnet_view(&cloud))
            })
            .collect()
    }

    #[test]
    fn adversarial_training_improves_robustness() {
        let mut rng = StdRng::seed_from_u64(0);
        let data = clouds(4);
        let tc = TrainConfig { epochs: 8, lr: 0.01, target_accuracy: 0.92 };

        // Standard victim.
        let mut plain = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        train_model(&mut plain, &data, &tc, &mut rng);

        // Adversarially trained victim (same budget-ish).
        let mut robust = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        train_model(&mut robust, &data, &tc, &mut rng);
        let at_cfg = AdvTrainConfig { epochs: 4, attack_steps: 6, ..Default::default() };
        let report = adversarial_training(&mut robust, &data, &at_cfg, &mut rng);
        assert!(report.adversarial_updates > 0);
        assert!(report.attack_seconds > 0.0);

        // Attack both with the same small budget and compare.
        let victim_cloud = &data[0];
        let attack = AttackSession::new(AttackConfig::non_targeted(15));
        let on_plain = attack.run_with_rng(&plain, victim_cloud, &mut rng).success_metric;
        let on_robust = attack.run_with_rng(&robust, victim_cloud, &mut rng).success_metric;
        // Robust model should retain at least as much accuracy under
        // attack (allow slack: tiny models, tiny budgets).
        assert!(
            on_robust + 0.15 >= on_plain,
            "adv training should not make things much worse: {on_robust} vs {on_plain}"
        );
        // And it must still segment clean data reasonably.
        let clean = evaluate_on(&robust, victim_cloud, &mut rng);
        assert!(clean > 0.3, "robust model clean accuracy collapsed: {clean}");
    }

    #[test]
    fn fraction_zero_means_no_attacks() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = clouds(2);
        let mut model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        let cfg = AdvTrainConfig { epochs: 1, adversarial_fraction: 0.0, ..Default::default() };
        let report = adversarial_training(&mut model, &data, &cfg, &mut rng);
        assert_eq!(report.adversarial_updates, 0);
        assert_eq!(report.clean_updates, 2);
        assert_eq!(report.attack_seconds, 0.0);
    }

    #[test]
    #[should_panic(expected = "no training clouds")]
    fn empty_input_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        let _ = adversarial_training(&mut model, &[], &AdvTrainConfig::default(), &mut rng);
    }
}
