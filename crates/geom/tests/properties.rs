//! Property-based tests for the geometry substrate.

use colper_geom::{
    ball_query, brute_force_knn, dilated_knn, farthest_point_sampling, knn_graph, KdTree, Point3,
};
use proptest::prelude::*;

fn arb_points(max: usize) -> impl Strategy<Value = Vec<Point3>> {
    proptest::collection::vec(
        (-10.0f32..10.0, -10.0f32..10.0, -10.0f32..10.0).prop_map(|(x, y, z)| Point3::new(x, y, z)),
        1..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kdtree_knn_agrees_with_brute_force(pts in arb_points(200), k in 1usize..12) {
        let tree = KdTree::build(&pts);
        let q = Point3::new(0.5, -0.5, 0.25);
        let tree_nn = tree.knn(q, k);
        let brute_nn = brute_force_knn(&pts, q, k);
        prop_assert_eq!(tree_nn.len(), brute_nn.len());
        for (a, b) in tree_nn.iter().zip(&brute_nn) {
            prop_assert!((a.sq_dist - b.sq_dist).abs() < 1e-4);
        }
    }

    #[test]
    fn kdtree_knn_distances_sorted(pts in arb_points(200)) {
        let tree = KdTree::build(&pts);
        let nn = tree.knn(Point3::ORIGIN, 8);
        for w in nn.windows(2) {
            prop_assert!(w[0].sq_dist <= w[1].sq_dist);
        }
    }

    #[test]
    fn radius_query_within_radius(pts in arb_points(150), r in 0.1f32..5.0) {
        let tree = KdTree::build(&pts);
        let q = Point3::new(1.0, 1.0, 1.0);
        for n in tree.within_radius(q, r) {
            prop_assert!(n.sq_dist <= r * r + 1e-5);
        }
    }

    #[test]
    fn fps_indices_valid_and_distinct(pts in arb_points(100), m in 1usize..50) {
        let sel = farthest_point_sampling(&pts, m, 0);
        prop_assert_eq!(sel.len(), m.min(pts.len()));
        let set: std::collections::HashSet<_> = sel.iter().collect();
        prop_assert_eq!(set.len(), sel.len());
        prop_assert!(sel.iter().all(|&i| i < pts.len()));
    }

    #[test]
    fn fps_first_two_are_farthest_pair_from_start(pts in arb_points(50)) {
        if pts.len() >= 2 {
            let sel = farthest_point_sampling(&pts, 2, 0);
            let d_selected = pts[sel[0]].sq_dist(pts[sel[1]]);
            for (i, p) in pts.iter().enumerate() {
                prop_assert!(pts[0].sq_dist(*p) <= d_selected + 1e-4, "point {i} farther than selected");
            }
        }
    }

    #[test]
    fn knn_graph_indices_valid(pts in arb_points(100), k in 1usize..8) {
        let g = knn_graph(&pts, k);
        prop_assert_eq!(g.len(), pts.len() * k);
        prop_assert!(g.iter().all(|&i| i < pts.len()));
    }

    #[test]
    fn dilated_knn_indices_valid(pts in arb_points(100), k in 1usize..6, d in 1usize..4) {
        let g = dilated_knn(&pts, k, d);
        prop_assert_eq!(g.len(), pts.len() * k);
        prop_assert!(g.iter().all(|&i| i < pts.len()));
    }

    #[test]
    fn ball_query_indices_in_range_or_nearest(pts in arb_points(100), r in 0.5f32..3.0) {
        let centroids: Vec<Point3> = pts.iter().step_by(4).copied().collect();
        if centroids.is_empty() { return Ok(()); }
        let k = 4;
        let idx = ball_query(&pts, &centroids, r, k);
        prop_assert_eq!(idx.len(), centroids.len() * k);
        prop_assert!(idx.iter().all(|&i| i < pts.len()));
        // The first neighbor of each centroid is within radius OR is the
        // global nearest fallback.
        for (ci, &c) in centroids.iter().enumerate() {
            let first = idx[ci * k];
            let within = pts[first].sq_dist(c) <= r * r + 1e-5;
            let nearest = brute_force_knn(&pts, c, 1)[0].index;
            prop_assert!(within || first == nearest);
        }
    }
}
