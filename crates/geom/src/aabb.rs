//! Axis-aligned bounding boxes.

use crate::Point3;

/// An axis-aligned bounding box, used by the kd-tree for pruning and by
/// the scene generators for room/object extents.
///
/// # Example
///
/// ```
/// use colper_geom::{Aabb, Point3};
///
/// let b = Aabb::from_points(&[Point3::new(0.0, 0.0, 0.0), Point3::new(2.0, 1.0, 3.0)]).unwrap();
/// assert!(b.contains(Point3::new(1.0, 0.5, 1.5)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Point3,
    /// Maximum corner.
    pub max: Point3,
}

impl Aabb {
    /// Creates a box from its two corners, normalizing the ordering.
    pub fn new(a: Point3, b: Point3) -> Self {
        Self { min: a.min(b), max: a.max(b) }
    }

    /// The tight bounding box of a point set, or `None` when empty.
    pub fn from_points(points: &[Point3]) -> Option<Self> {
        let first = *points.first()?;
        let mut min = first;
        let mut max = first;
        for &p in &points[1..] {
            min = min.min(p);
            max = max.max(p);
        }
        Some(Self { min, max })
    }

    /// Whether `p` lies inside (inclusive of boundaries).
    pub fn contains(&self, p: Point3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// The center of the box.
    pub fn center(&self) -> Point3 {
        (self.min + self.max) * 0.5
    }

    /// Extent along each axis.
    pub fn size(&self) -> Point3 {
        self.max - self.min
    }

    /// Squared distance from `p` to the nearest point of the box
    /// (zero when inside). Used for kd-tree pruning.
    pub fn sq_dist_to_point(&self, p: Point3) -> f32 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        let dz = (self.min.z - p.z).max(0.0).max(p.z - self.max.z);
        dx * dx + dy * dy + dz * dz
    }

    /// The smallest box containing both `self` and `other`.
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb { min: self.min.min(other.min), max: self.max.max(other.max) }
    }

    /// The axis with the largest extent (`0`, `1`, or `2`).
    pub fn longest_axis(&self) -> usize {
        let s = self.size();
        if s.x >= s.y && s.x >= s.z {
            0
        } else if s.y >= s.z {
            1
        } else {
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalizes_corners() {
        let b = Aabb::new(Point3::new(2.0, 0.0, 5.0), Point3::new(0.0, 1.0, 3.0));
        assert_eq!(b.min, Point3::new(0.0, 0.0, 3.0));
        assert_eq!(b.max, Point3::new(2.0, 1.0, 5.0));
    }

    #[test]
    fn from_points_tight() {
        let pts = [Point3::new(1.0, 2.0, 3.0), Point3::new(-1.0, 5.0, 0.0)];
        let b = Aabb::from_points(&pts).unwrap();
        assert_eq!(b.min, Point3::new(-1.0, 2.0, 0.0));
        assert_eq!(b.max, Point3::new(1.0, 5.0, 3.0));
        assert!(Aabb::from_points(&[]).is_none());
    }

    #[test]
    fn contains_boundary_inclusive() {
        let b = Aabb::new(Point3::ORIGIN, Point3::new(1.0, 1.0, 1.0));
        assert!(b.contains(Point3::new(1.0, 1.0, 1.0)));
        assert!(b.contains(Point3::ORIGIN));
        assert!(!b.contains(Point3::new(1.01, 0.5, 0.5)));
    }

    #[test]
    fn sq_dist_zero_inside() {
        let b = Aabb::new(Point3::ORIGIN, Point3::new(2.0, 2.0, 2.0));
        assert_eq!(b.sq_dist_to_point(Point3::new(1.0, 1.0, 1.0)), 0.0);
        assert_eq!(b.sq_dist_to_point(Point3::new(3.0, 1.0, 1.0)), 1.0);
        assert_eq!(b.sq_dist_to_point(Point3::new(-1.0, -1.0, 1.0)), 2.0);
    }

    #[test]
    fn center_size_union() {
        let a = Aabb::new(Point3::ORIGIN, Point3::new(2.0, 2.0, 2.0));
        assert_eq!(a.center(), Point3::new(1.0, 1.0, 1.0));
        assert_eq!(a.size(), Point3::new(2.0, 2.0, 2.0));
        let b = Aabb::new(Point3::new(3.0, 0.0, 0.0), Point3::new(4.0, 1.0, 1.0));
        let u = a.union(&b);
        assert_eq!(u.max, Point3::new(4.0, 2.0, 2.0));
    }

    #[test]
    fn longest_axis_picks_widest() {
        let b = Aabb::new(Point3::ORIGIN, Point3::new(1.0, 5.0, 2.0));
        assert_eq!(b.longest_axis(), 1);
    }
}
