//! Tile-halo geometry: which points of a neighboring tile sit close
//! enough to a tile's footprint to matter for cross-boundary k-NN.
//!
//! The streaming attack processes one tile at a time but the smoothness
//! penalty (Eq. 6) and every network's neighborhood structure reach
//! across tile edges. The halo rule is purely planar: a neighbor point
//! joins a tile's windows when its xy distance to the tile's rectangle
//! is at most the halo margin.

use crate::Point3;

/// Planar (xy) distance from `p` to the axis-aligned rectangle
/// `[min_x, max_x] x [min_y, max_y]`. Zero for points inside.
pub fn xy_dist_to_rect(p: Point3, min_x: f32, min_y: f32, max_x: f32, max_y: f32) -> f32 {
    let dx = (min_x - p.x).max(0.0).max(p.x - max_x);
    let dy = (min_y - p.y).max(0.0).max(p.y - max_y);
    (dx * dx + dy * dy).sqrt()
}

/// Indices of `points` whose xy distance to the rectangle is at most
/// `margin`, in input order (deterministic for a fixed input).
pub fn indices_near_rect(
    points: &[Point3],
    min_x: f32,
    min_y: f32,
    max_x: f32,
    max_y: f32,
    margin: f32,
) -> Vec<usize> {
    points
        .iter()
        .enumerate()
        .filter(|(_, &p)| xy_dist_to_rect(p, min_x, min_y, max_x, max_y) <= margin)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inside_is_zero() {
        assert_eq!(xy_dist_to_rect(Point3::new(1.0, 1.0, 99.0), 0.0, 0.0, 2.0, 2.0), 0.0);
    }

    #[test]
    fn edge_distance_is_axis_aligned() {
        let d = xy_dist_to_rect(Point3::new(3.0, 1.0, 0.0), 0.0, 0.0, 2.0, 2.0);
        assert!((d - 1.0).abs() < 1e-6);
    }

    #[test]
    fn corner_distance_is_euclidean() {
        let d = xy_dist_to_rect(Point3::new(5.0, 6.0, 0.0), 0.0, 0.0, 2.0, 2.0);
        assert!((d - 25.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn z_is_ignored() {
        let a = xy_dist_to_rect(Point3::new(3.0, 0.5, 0.0), 0.0, 0.0, 2.0, 2.0);
        let b = xy_dist_to_rect(Point3::new(3.0, 0.5, 100.0), 0.0, 0.0, 2.0, 2.0);
        assert_eq!(a, b);
    }

    #[test]
    fn near_rect_filter_keeps_input_order() {
        let pts = vec![
            Point3::new(-0.5, 1.0, 0.0), // within margin 1
            Point3::new(-3.0, 1.0, 0.0), // too far
            Point3::new(1.0, 1.0, 0.0),  // inside
            Point3::new(2.9, 2.9, 0.0),  // corner, within sqrt(0.81+0.81) > 1 -> out
        ];
        let idx = indices_near_rect(&pts, 0.0, 0.0, 2.0, 2.0, 1.0);
        assert_eq!(idx, vec![0, 2]);
    }
}
