//! k-nearest-neighbor graph construction, including the dilated variant
//! used by DeepGCN.
//!
//! Graph construction loops are embarrassingly parallel over query points:
//! each output row depends only on its own query and the (immutable) tree,
//! so the rows are split across the ambient [`colper_runtime`] runtime and
//! results are identical at any thread count.

use crate::{GeomError, KdTree, Neighbor, Point3};
use colper_runtime::Runtime;
use std::cmp::Ordering;

/// Below this many queries the per-chunk scheduling overhead outweighs the
/// tree traversals.
const MIN_PAR_QUERIES: usize = 128;

/// The ambient runtime when `queries` crosses the parallel threshold and
/// workers exist; `None` means "run the plain sequential loop".
fn runtime_for(queries: usize) -> Option<Runtime> {
    if queries < MIN_PAR_QUERIES {
        return None;
    }
    let rt = colper_runtime::current();
    if rt.is_sequential() {
        None
    } else {
        Some(rt)
    }
}

/// Fills `out` (one row of `row_len` entries per query) by running
/// `fill(query_index, row)` for every row, in parallel when worthwhile.
fn fill_rows(
    out: &mut [usize],
    queries: usize,
    row_len: usize,
    fill: impl Fn(usize, &mut [usize]) + Sync,
) {
    debug_assert_eq!(out.len(), queries * row_len);
    match runtime_for(queries) {
        None => {
            for (i, row) in out.chunks_mut(row_len).enumerate() {
                fill(i, row);
            }
        }
        Some(rt) => {
            let rows_per = queries.div_ceil(4 * rt.threads()).max(1);
            rt.par_chunks_mut(out, rows_per * row_len, |c, sub| {
                for (j, row) in sub.chunks_mut(row_len).enumerate() {
                    fill(c * rows_per + j, row);
                }
            });
        }
    }
}

/// Brute-force k-NN of `query` within `points`, sorted ascending by
/// distance. Reference implementation used to differential-test the
/// kd-tree; also the fastest option for very small point sets.
pub fn brute_force_knn(points: &[Point3], query: Point3, k: usize) -> Vec<Neighbor> {
    let mut all: Vec<Neighbor> = points
        .iter()
        .enumerate()
        .map(|(i, &p)| Neighbor { index: i, sq_dist: p.sq_dist(query) })
        .collect();
    all.sort_by(|a, b| {
        a.sq_dist
            .partial_cmp(&b.sq_dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| a.index.cmp(&b.index))
    });
    all.truncate(k);
    all
}

/// Builds the full k-NN graph of a point set: a flattened `[N*k]` index
/// list where entry `i*k + j` is the j-th nearest neighbor of point `i`
/// (the point itself included, as in PointNet++ grouping and Eq. 6 of the
/// paper when `alpha` neighborhoods are formed).
///
/// When the set holds fewer than `k` points, neighbor lists are padded by
/// repeating the nearest available neighbor so every row has exactly `k`
/// entries.
///
/// # Panics
///
/// Panics when `points` is empty or `k == 0`; [`try_knn_graph`] is the
/// fallible twin.
pub fn knn_graph(points: &[Point3], k: usize) -> Vec<usize> {
    try_knn_graph(points, k).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible twin of [`knn_graph`], following the tensor crate's
/// `get`/`at` convention.
///
/// # Errors
///
/// Returns [`GeomError::EmptyPointSet`] when `points` is empty and
/// [`GeomError::NonPositiveK`] when `k == 0`.
pub fn try_knn_graph(points: &[Point3], k: usize) -> Result<Vec<usize>, GeomError> {
    if points.is_empty() {
        return Err(GeomError::EmptyPointSet("knn_graph"));
    }
    if k == 0 {
        return Err(GeomError::NonPositiveK("knn_graph"));
    }
    let tree = KdTree::build(points);
    let kq = k.min(points.len());
    let mut out = vec![0usize; points.len() * k];
    fill_rows(&mut out, points.len(), k, |i, row| {
        let nn = tree.knn(points[i], kq);
        let last = nn.last().expect("at least one neighbor").index;
        for (j, slot) in row.iter_mut().enumerate() {
            *slot = nn.get(j).map_or(last, |n| n.index);
        }
    });
    Ok(out)
}

/// Builds a *dilated* k-NN graph as in DeepGCN: for each point the
/// `k * dilation` nearest neighbors are found and every `dilation`-th one
/// is kept, widening the receptive field without extra edges.
///
/// `dilation == 1` reduces to [`knn_graph`].
///
/// # Panics
///
/// Panics when `points` is empty, `k == 0`, or `dilation == 0`;
/// [`try_dilated_knn`] is the fallible twin.
pub fn dilated_knn(points: &[Point3], k: usize, dilation: usize) -> Vec<usize> {
    try_dilated_knn(points, k, dilation).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible twin of [`dilated_knn`].
///
/// # Errors
///
/// Returns [`GeomError::EmptyPointSet`] when `points` is empty,
/// [`GeomError::NonPositiveK`] when `k == 0`, and
/// [`GeomError::NonPositiveDilation`] when `dilation == 0`.
pub fn try_dilated_knn(
    points: &[Point3],
    k: usize,
    dilation: usize,
) -> Result<Vec<usize>, GeomError> {
    if points.is_empty() {
        return Err(GeomError::EmptyPointSet("dilated_knn"));
    }
    if k == 0 {
        return Err(GeomError::NonPositiveK("dilated_knn"));
    }
    if dilation == 0 {
        return Err(GeomError::NonPositiveDilation("dilated_knn"));
    }
    if dilation == 1 {
        // Both preconditions are already validated, so this cannot fail.
        return try_knn_graph(points, k);
    }
    let tree = KdTree::build(points);
    let wide = (k * dilation).min(points.len());
    let mut out = vec![0usize; points.len() * k];
    fill_rows(&mut out, points.len(), k, |i, row| {
        let nn = tree.knn(points[i], wide);
        let last = nn.last().expect("at least one neighbor").index;
        for (j, slot) in row.iter_mut().enumerate() {
            *slot = nn.get(j * dilation).map_or(last, |n| n.index);
        }
    });
    Ok(out)
}

/// Builds the k-NN graph of the *subset* `subset` of a tree's points
/// without rebuilding a tree over the subset: entry `i*k + j` is the
/// subset-local index of the j-th nearest subset point to subset point
/// `i`. Padding follows [`knn_graph`]: when the subset holds fewer than
/// `k` points, rows repeat the farthest available neighbor.
///
/// This is how RandLA-Net's coarse encoder levels reuse the cached
/// full-resolution kd-tree after random downsampling.
///
/// # Panics
///
/// Panics when `subset` is empty, `k == 0`, or an index is out of
/// bounds for the tree; [`try_subset_knn_graph`] is the fallible twin.
pub fn subset_knn_graph(tree: &KdTree, subset: &[usize], k: usize) -> Vec<usize> {
    try_subset_knn_graph(tree, subset, k).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible twin of [`subset_knn_graph`], following the tensor crate's
/// `get`/`at` convention.
///
/// # Errors
///
/// Returns [`GeomError::EmptySubset`] when `subset` is empty,
/// [`GeomError::NonPositiveK`] when `k == 0`, and
/// [`GeomError::SubsetIndexOutOfBounds`] when a subset entry does not
/// index into the tree's point set.
pub fn try_subset_knn_graph(
    tree: &KdTree,
    subset: &[usize],
    k: usize,
) -> Result<Vec<usize>, GeomError> {
    if subset.is_empty() {
        return Err(GeomError::EmptySubset("subset_knn_graph"));
    }
    if k == 0 {
        return Err(GeomError::NonPositiveK("subset_knn_graph"));
    }
    let (mask, local) = subset_index(tree.len(), subset)?;
    let kq = k.min(subset.len());
    let mut out = vec![0usize; subset.len() * k];
    fill_rows(&mut out, subset.len(), k, |q, row| {
        let nn = tree.knn_filtered(tree.points()[subset[q]], kq, |i| mask[i]);
        let last = local[nn.last().expect("at least one neighbor").index];
        for (j, slot) in row.iter_mut().enumerate() {
            *slot = nn.get(j).map_or(last, |n| local[n.index]);
        }
    });
    Ok(out)
}

/// For each query point, the subset-local index of its nearest neighbor
/// among `subset`, using the cached tree over the full point set
/// (RandLA-Net's decoder upsampling).
///
/// # Panics
///
/// Panics when `subset` is empty or an index is out of bounds for the
/// tree; [`try_subset_nearest`] is the fallible twin.
pub fn subset_nearest(tree: &KdTree, subset: &[usize], queries: &[Point3]) -> Vec<usize> {
    try_subset_nearest(tree, subset, queries).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible twin of [`subset_nearest`].
///
/// # Errors
///
/// Returns [`GeomError::EmptySubset`] when `subset` is empty and
/// [`GeomError::SubsetIndexOutOfBounds`] when a subset entry does not
/// index into the tree's point set.
pub fn try_subset_nearest(
    tree: &KdTree,
    subset: &[usize],
    queries: &[Point3],
) -> Result<Vec<usize>, GeomError> {
    if subset.is_empty() {
        return Err(GeomError::EmptySubset("subset_nearest"));
    }
    let (mask, local) = subset_index(tree.len(), subset)?;
    let mut out = vec![0usize; queries.len()];
    fill_rows(&mut out, queries.len(), 1, |q, row| {
        row[0] = local[tree.knn_filtered(queries[q], 1, |i| mask[i])[0].index];
    });
    Ok(out)
}

/// Membership mask and original-index -> subset-local-index map.
fn subset_index(len: usize, subset: &[usize]) -> Result<(Vec<bool>, Vec<usize>), GeomError> {
    let mut mask = vec![false; len];
    let mut local = vec![usize::MAX; len];
    for (l, &orig) in subset.iter().enumerate() {
        if orig >= len {
            return Err(GeomError::SubsetIndexOutOfBounds { index: orig, len });
        }
        mask[orig] = true;
        local[orig] = l;
    }
    Ok((mask, local))
}

/// Dense pairwise squared distances between two point sets,
/// `out[i * b.len() + j] = ||a[i] - b[j]||^2`.
pub fn pairwise_sq_dist(a: &[Point3], b: &[Point3]) -> Vec<f32> {
    let mut out = Vec::with_capacity(a.len() * b.len());
    for &pa in a {
        for &pb in b {
            out.push(pa.sq_dist(pb));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point3> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point3::new(
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                )
            })
            .collect()
    }

    #[test]
    fn knn_graph_self_is_first_neighbor() {
        let pts = random_points(64, 11);
        let g = knn_graph(&pts, 4);
        assert_eq!(g.len(), 64 * 4);
        for i in 0..64 {
            assert_eq!(g[i * 4], i, "point {i} should be its own nearest neighbor");
        }
    }

    #[test]
    fn knn_graph_matches_brute_force() {
        let pts = random_points(100, 3);
        let k = 5;
        let g = knn_graph(&pts, k);
        for (i, &p) in pts.iter().enumerate() {
            let brute = brute_force_knn(&pts, p, k);
            for j in 0..k {
                let d_tree = pts[g[i * k + j]].sq_dist(p);
                let d_brute = brute[j].sq_dist;
                assert!((d_tree - d_brute).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn knn_graph_pads_small_sets() {
        let pts = random_points(3, 4);
        let g = knn_graph(&pts, 8);
        assert_eq!(g.len(), 3 * 8);
        // All indices valid.
        assert!(g.iter().all(|&i| i < 3));
    }

    #[test]
    fn dilated_knn_skips_neighbors() {
        // Points on a line: neighbors of point 0 in order are 0,1,2,3,...
        let pts: Vec<Point3> = (0..20).map(|i| Point3::new(i as f32, 0.0, 0.0)).collect();
        let g = dilated_knn(&pts, 3, 2);
        // For point 0: wide list is [0,1,2,3,4,5]; keep every 2nd -> [0,2,4].
        assert_eq!(&g[0..3], &[0, 2, 4]);
    }

    #[test]
    fn dilation_one_equals_plain_graph() {
        let pts = random_points(50, 8);
        assert_eq!(dilated_knn(&pts, 4, 1), knn_graph(&pts, 4));
    }

    #[test]
    fn pairwise_distances() {
        let a = vec![Point3::ORIGIN, Point3::new(1.0, 0.0, 0.0)];
        let b = vec![Point3::new(0.0, 2.0, 0.0)];
        let d = pairwise_sq_dist(&a, &b);
        assert_eq!(d, vec![4.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn knn_graph_rejects_empty() {
        let _ = knn_graph(&[], 3);
    }

    #[test]
    fn subset_knn_graph_matches_fresh_graph_up_to_distance() {
        use crate::KdTree;
        let pts = random_points(120, 19);
        let tree = KdTree::build(&pts);
        // An arbitrary (unsorted) subset, as random_sample would produce.
        let subset: Vec<usize> = vec![97, 3, 55, 12, 80, 41, 7, 66, 23, 101, 5, 88];
        let sub_pts: Vec<Point3> = subset.iter().map(|&i| pts[i]).collect();
        let k = 4;
        let via_tree = subset_knn_graph(&tree, &subset, k);
        let fresh = knn_graph(&sub_pts, k);
        assert_eq!(via_tree.len(), fresh.len());
        // The points are in general position, so the neighbor sets must
        // agree exactly (both are subset-local indices).
        assert_eq!(via_tree, fresh);
    }

    #[test]
    fn subset_knn_graph_pads_small_subsets() {
        use crate::KdTree;
        let pts = random_points(50, 23);
        let tree = KdTree::build(&pts);
        let subset = vec![10, 30];
        let g = subset_knn_graph(&tree, &subset, 6);
        assert_eq!(g.len(), 2 * 6);
        assert!(g.iter().all(|&i| i < 2));
        // Self is always the nearest neighbor.
        assert_eq!(g[0], 0);
        assert_eq!(g[6], 1);
    }

    #[test]
    fn subset_nearest_finds_closest_survivor() {
        use crate::KdTree;
        let pts: Vec<Point3> = (0..10).map(|i| Point3::new(i as f32, 0.0, 0.0)).collect();
        let tree = KdTree::build(&pts);
        let subset = vec![8, 2, 5]; // unsorted, as after random sampling
        let queries = vec![Point3::new(0.2, 0.0, 0.0), Point3::new(5.6, 0.0, 0.0)];
        let nearest = subset_nearest(&tree, &subset, &queries);
        assert_eq!(nearest, vec![1, 2]); // local indices of points 2 and 5
    }

    #[test]
    fn parallel_graphs_match_sequential_bit_for_bit() {
        let pts = random_points(600, 31);
        let tree = KdTree::build(&pts);
        let subset: Vec<usize> = (0..300).map(|i| i * 2).collect();
        let seq = (
            knn_graph(&pts, 8),
            dilated_knn(&pts, 4, 2),
            subset_knn_graph(&tree, &subset, 6),
            subset_nearest(&tree, &subset, &pts),
        );
        let rt = colper_runtime::Runtime::new(4);
        let par = rt.install(|| {
            // The tree itself is also rebuilt under the pool inside
            // knn_graph/dilated_knn, covering the parallel kd-tree build.
            (
                knn_graph(&pts, 8),
                dilated_knn(&pts, 4, 2),
                subset_knn_graph(&tree, &subset, 6),
                subset_nearest(&tree, &subset, &pts),
            )
        });
        assert_eq!(seq, par);
    }

    #[test]
    fn parallel_kdtree_build_matches_sequential_queries() {
        let pts = random_points(3000, 57); // above MIN_PAR_BUILD
        let seq_tree = KdTree::build(&pts);
        let rt = colper_runtime::Runtime::new(3);
        let par_tree = rt.install(|| KdTree::build(&pts));
        for (qi, &q) in pts.iter().enumerate().step_by(97) {
            assert_eq!(seq_tree.knn(q, 12), par_tree.knn(q, 12), "query {qi}");
        }
    }

    #[test]
    #[should_panic(expected = "empty subset")]
    fn subset_knn_graph_rejects_empty_subset() {
        use crate::KdTree;
        let pts = random_points(10, 1);
        let _ = subset_knn_graph(&KdTree::build(&pts), &[], 3);
    }

    #[test]
    fn try_variants_report_errors_instead_of_panicking() {
        use crate::KdTree;
        let pts = random_points(10, 1);
        let tree = KdTree::build(&pts);
        assert_eq!(
            try_subset_knn_graph(&tree, &[], 3),
            Err(GeomError::EmptySubset("subset_knn_graph"))
        );
        assert_eq!(
            try_subset_knn_graph(&tree, &[1, 2], 0),
            Err(GeomError::NonPositiveK("subset_knn_graph"))
        );
        assert_eq!(
            try_subset_knn_graph(&tree, &[1, 99], 2),
            Err(GeomError::SubsetIndexOutOfBounds { index: 99, len: 10 })
        );
        assert_eq!(
            try_subset_nearest(&tree, &[], &pts),
            Err(GeomError::EmptySubset("subset_nearest"))
        );
        assert_eq!(
            try_subset_nearest(&tree, &[42], &pts),
            Err(GeomError::SubsetIndexOutOfBounds { index: 42, len: 10 })
        );
    }

    #[test]
    fn try_graph_variants_report_errors_instead_of_panicking() {
        let pts = random_points(10, 2);
        assert_eq!(try_knn_graph(&[], 3), Err(GeomError::EmptyPointSet("knn_graph")));
        assert_eq!(try_knn_graph(&pts, 0), Err(GeomError::NonPositiveK("knn_graph")));
        assert_eq!(try_dilated_knn(&[], 3, 2), Err(GeomError::EmptyPointSet("dilated_knn")));
        assert_eq!(try_dilated_knn(&pts, 0, 2), Err(GeomError::NonPositiveK("dilated_knn")));
        assert_eq!(try_dilated_knn(&pts, 3, 0), Err(GeomError::NonPositiveDilation("dilated_knn")));
    }

    #[test]
    #[should_panic(expected = "dilated_knn: dilation must be positive")]
    fn dilated_knn_panics_with_the_historic_message() {
        let pts = random_points(10, 2);
        let _ = dilated_knn(&pts, 3, 0);
    }

    #[test]
    fn try_variants_agree_with_the_panicking_entry_points() {
        use crate::KdTree;
        let pts = random_points(60, 13);
        let tree = KdTree::build(&pts);
        let subset: Vec<usize> = (0..30).map(|i| i * 2).collect();
        assert_eq!(try_knn_graph(&pts, 5).unwrap(), knn_graph(&pts, 5));
        assert_eq!(try_dilated_knn(&pts, 4, 2).unwrap(), dilated_knn(&pts, 4, 2));
        assert_eq!(
            try_subset_knn_graph(&tree, &subset, 5).unwrap(),
            subset_knn_graph(&tree, &subset, 5)
        );
        assert_eq!(
            try_subset_nearest(&tree, &subset, &pts).unwrap(),
            subset_nearest(&tree, &subset, &pts)
        );
    }
}
