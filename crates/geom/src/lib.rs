//! Point-cloud geometry substrate for the COLPER reproduction.
//!
//! Segmentation networks and the attack both consume *neighborhood
//! structure* computed from point coordinates: PointNet++ needs farthest
//! point sampling and ball queries, DeepGCN needs (dilated) k-nearest
//! neighbors, RandLA-Net needs random subsampling plus k-NN, and the
//! paper's smoothness penalty (Eq. 6) needs the `alpha` nearest neighbors
//! of every point. This crate provides those primitives over plain
//! `[f32; 3]` points, with a [`KdTree`] for `O(log n)` queries and brute
//! force fallbacks used for differential testing.
//!
//! # Example
//!
//! ```
//! use colper_geom::{KdTree, Point3};
//!
//! let pts = vec![
//!     Point3::new(0.0, 0.0, 0.0),
//!     Point3::new(1.0, 0.0, 0.0),
//!     Point3::new(0.0, 2.0, 0.0),
//! ];
//! let tree = KdTree::build(&pts);
//! let nearest = tree.knn(Point3::new(0.9, 0.1, 0.0), 1);
//! assert_eq!(nearest[0].index, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aabb;
mod error;
mod graph;
mod halo;
mod kdtree;
mod knn;
mod point;
mod sampling;
mod voxel;

pub use aabb::Aabb;
pub use error::GeomError;
pub use graph::NeighborGraph;
pub use halo::{indices_near_rect, xy_dist_to_rect};
pub use kdtree::{KdTree, Neighbor};
pub use knn::{
    brute_force_knn, dilated_knn, knn_graph, pairwise_sq_dist, subset_knn_graph, subset_nearest,
    try_dilated_knn, try_knn_graph, try_subset_knn_graph, try_subset_nearest,
};
pub use point::Point3;
pub use sampling::{ball_query, farthest_point_sampling, random_sample, three_nn_weights};
pub use voxel::{occupied_voxels, voxel_downsample};
