//! Error types for fallible geometry queries.

use std::error::Error;
use std::fmt;

/// The error type returned by fallible geometry queries.
///
/// Display output matches the panic messages of the corresponding
/// panicking entry points word for word, so `try_*` callers that
/// `unwrap_or_else(|e| panic!("{e}"))` are indistinguishable from the
/// original assertions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeomError {
    /// A graph query over a full point set received an empty one.
    EmptyPointSet(&'static str),
    /// A query that requires a non-empty subset received an empty one.
    EmptySubset(&'static str),
    /// A neighbor count of zero was requested.
    NonPositiveK(&'static str),
    /// A dilation of zero was requested.
    NonPositiveDilation(&'static str),
    /// A subset entry does not index into the tree's point set:
    /// `(index, len)`.
    SubsetIndexOutOfBounds {
        /// The offending original-space index.
        index: usize,
        /// Number of points in the tree.
        len: usize,
    },
}

impl fmt::Display for GeomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeomError::EmptyPointSet(op) => write!(f, "{op}: empty point set"),
            GeomError::EmptySubset(op) => write!(f, "{op}: empty subset"),
            GeomError::NonPositiveK(op) => write!(f, "{op}: k must be positive"),
            GeomError::NonPositiveDilation(op) => {
                write!(f, "{op}: dilation must be positive")
            }
            GeomError::SubsetIndexOutOfBounds { index, len } => {
                write!(f, "subset index {index} out of bounds for {len} points")
            }
        }
    }
}

impl Error for GeomError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_the_historic_panic_messages() {
        assert_eq!(GeomError::EmptyPointSet("knn_graph").to_string(), "knn_graph: empty point set");
        assert_eq!(
            GeomError::NonPositiveDilation("dilated_knn").to_string(),
            "dilated_knn: dilation must be positive"
        );
        assert_eq!(
            GeomError::EmptySubset("subset_knn_graph").to_string(),
            "subset_knn_graph: empty subset"
        );
        assert_eq!(
            GeomError::NonPositiveK("subset_knn_graph").to_string(),
            "subset_knn_graph: k must be positive"
        );
        assert_eq!(
            GeomError::SubsetIndexOutOfBounds { index: 9, len: 4 }.to_string(),
            "subset index 9 out of bounds for 4 points"
        );
    }
}
