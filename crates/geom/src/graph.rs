//! A flattened fixed-degree neighbor graph.

use crate::{knn_graph, Point3};

/// A fixed-degree neighbor graph: every node has exactly `k` neighbor
/// slots stored contiguously, which is the layout the autodiff gather and
/// grouped pooling ops consume directly.
///
/// # Example
///
/// ```
/// use colper_geom::{NeighborGraph, Point3};
///
/// let pts = vec![
///     Point3::new(0.0, 0.0, 0.0),
///     Point3::new(1.0, 0.0, 0.0),
///     Point3::new(5.0, 0.0, 0.0),
/// ];
/// let g = NeighborGraph::knn(&pts, 2);
/// assert_eq!(g.neighbors(0), &[0, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeighborGraph {
    k: usize,
    flat: Vec<usize>,
}

impl NeighborGraph {
    /// Builds a k-NN graph over `points` (self included as first
    /// neighbor).
    ///
    /// # Panics
    ///
    /// Panics when `points` is empty or `k == 0`.
    pub fn knn(points: &[Point3], k: usize) -> Self {
        Self { k, flat: knn_graph(points, k) }
    }

    /// Wraps a pre-computed flattened index list.
    ///
    /// # Panics
    ///
    /// Panics when `flat.len()` is not a multiple of `k`, `k == 0`, or an
    /// index is `>= flat.len() / k`.
    pub fn from_flat(k: usize, flat: Vec<usize>) -> Self {
        assert!(k > 0, "NeighborGraph: k must be positive");
        assert_eq!(flat.len() % k, 0, "NeighborGraph: flat length must be a multiple of k");
        let n = flat.len() / k;
        assert!(flat.iter().all(|&i| i < n), "NeighborGraph: index out of bounds");
        Self { k, flat }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.flat.len() / self.k
    }

    /// Neighbor-list degree `k`.
    pub fn degree(&self) -> usize {
        self.k
    }

    /// The neighbor slots of node `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds.
    pub fn neighbors(&self, i: usize) -> &[usize] {
        assert!(i < self.node_count(), "node {i} out of bounds");
        &self.flat[i * self.k..(i + 1) * self.k]
    }

    /// The flattened `[N*k]` index list.
    pub fn as_flat(&self) -> &[usize] {
        &self.flat
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knn_graph_shape() {
        let pts: Vec<Point3> = (0..8).map(|i| Point3::new(i as f32, 0.0, 0.0)).collect();
        let g = NeighborGraph::knn(&pts, 3);
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.degree(), 3);
        assert_eq!(g.as_flat().len(), 24);
    }

    #[test]
    fn from_flat_validates() {
        let g = NeighborGraph::from_flat(2, vec![0, 1, 1, 0]);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.neighbors(1), &[1, 0]);
    }

    #[test]
    #[should_panic(expected = "multiple of k")]
    fn from_flat_rejects_ragged() {
        let _ = NeighborGraph::from_flat(2, vec![0, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_flat_rejects_bad_index() {
        let _ = NeighborGraph::from_flat(2, vec![0, 5, 1, 0]);
    }
}
