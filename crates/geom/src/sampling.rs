//! Point sampling primitives: farthest point sampling (PointNet++), random
//! sampling (RandLA-Net), ball queries and interpolation weights.

use crate::{KdTree, Point3};
use rand::seq::SliceRandom;
use rand::Rng;

/// Farthest point sampling: selects `m` indices that greedily maximize the
/// minimum pairwise distance, starting from `start`.
///
/// This is the centroid-selection step of PointNet++ set abstraction.
/// When `m >= points.len()` all indices are returned (in selection order).
///
/// # Panics
///
/// Panics when `points` is empty or `start` is out of bounds.
pub fn farthest_point_sampling(points: &[Point3], m: usize, start: usize) -> Vec<usize> {
    assert!(!points.is_empty(), "farthest_point_sampling: empty point set");
    assert!(start < points.len(), "farthest_point_sampling: start out of bounds");
    let m = m.min(points.len());
    let mut selected = Vec::with_capacity(m);
    let mut chosen = vec![false; points.len()];
    let mut min_dist = vec![f32::INFINITY; points.len()];
    let mut current = start;
    for _ in 0..m {
        selected.push(current);
        chosen[current] = true;
        let p = points[current];
        let mut next = current;
        let mut best = f32::NEG_INFINITY;
        for (i, &q) in points.iter().enumerate() {
            let d = p.sq_dist(q);
            if d < min_dist[i] {
                min_dist[i] = d;
            }
            // Only unselected points are candidates: with coincident
            // points every min_dist can be 0 and the farthest point would
            // otherwise resolve to an already-selected index, yielding
            // duplicate centroids.
            if !chosen[i] && min_dist[i] > best {
                best = min_dist[i];
                next = i;
            }
        }
        current = next;
    }
    selected
}

/// Uniform random sample of `m` distinct indices (RandLA-Net's
/// downsampling). When `m >= points.len()`, a permutation of all indices
/// is returned.
pub fn random_sample<R: Rng + ?Sized>(len: usize, m: usize, rng: &mut R) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..len).collect();
    idx.shuffle(rng);
    idx.truncate(m.min(len));
    idx
}

/// Ball query: for each centroid, up to `k` point indices within `radius`,
/// padded by repeating the first found neighbor (PointNet++ grouping
/// semantics). When a centroid has no neighbor in range, its nearest
/// neighbor is used for all `k` slots.
///
/// Returns a flattened `[centroids.len() * k]` index list into `points`.
///
/// # Panics
///
/// Panics when `points` is empty or `k == 0`.
pub fn ball_query(points: &[Point3], centroids: &[Point3], radius: f32, k: usize) -> Vec<usize> {
    assert!(!points.is_empty(), "ball_query: empty point set");
    assert!(k > 0, "ball_query: k must be positive");
    let tree = KdTree::build(points);
    let mut out = Vec::with_capacity(centroids.len() * k);
    for &c in centroids {
        let in_range = tree.within_radius(c, radius);
        if in_range.is_empty() {
            let nn = tree.knn(c, 1)[0].index;
            out.extend(std::iter::repeat_n(nn, k));
        } else {
            let first = in_range[0].index;
            for j in 0..k {
                out.push(in_range.get(j).map_or(first, |n| n.index));
            }
        }
    }
    out
}

/// Inverse-distance interpolation weights from each query point to its 3
/// nearest support points (PointNet++ feature propagation).
///
/// Returns `(indices, weights)`, both flattened `[queries.len() * 3]`,
/// with each weight triple normalized to sum to 1.
///
/// # Panics
///
/// Panics when `support` is empty.
pub fn three_nn_weights(support: &[Point3], queries: &[Point3]) -> (Vec<usize>, Vec<f32>) {
    assert!(!support.is_empty(), "three_nn_weights: empty support set");
    let tree = KdTree::build(support);
    let k = 3.min(support.len());
    let mut idx = Vec::with_capacity(queries.len() * 3);
    let mut w = Vec::with_capacity(queries.len() * 3);
    for &q in queries {
        let nn = tree.knn(q, k);
        let mut weights = [0.0f32; 3];
        let mut indices = [0usize; 3];
        let mut total = 0.0f32;
        for j in 0..3 {
            let n = nn.get(j).copied().unwrap_or(nn[0]);
            indices[j] = n.index;
            let wi = 1.0 / (n.sq_dist + 1e-8);
            weights[j] = wi;
            total += wi;
        }
        for j in 0..3 {
            idx.push(indices[j]);
            w.push(weights[j] / total);
        }
    }
    (idx, w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grid_points(n: usize) -> Vec<Point3> {
        (0..n).map(|i| Point3::new(i as f32, 0.0, 0.0)).collect()
    }

    #[test]
    fn fps_spreads_points() {
        let pts = grid_points(10);
        let sel = farthest_point_sampling(&pts, 2, 0);
        // From point 0 the farthest is point 9.
        assert_eq!(sel, vec![0, 9]);
    }

    #[test]
    fn fps_handles_coincident_points_without_duplicates() {
        // Four distinct positions, each duplicated: after the distinct
        // positions are exhausted every min_dist is 0 and the old
        // implementation re-selected an already-chosen index.
        let mut pts = Vec::new();
        for i in 0..4 {
            let p = Point3::new(i as f32, 0.0, 0.0);
            pts.push(p);
            pts.push(p);
        }
        let sel = farthest_point_sampling(&pts, 6, 0);
        assert_eq!(sel.len(), 6);
        let set: std::collections::HashSet<_> = sel.iter().collect();
        assert_eq!(set.len(), 6, "duplicate centroid indices returned: {sel:?}");
    }

    #[test]
    fn fps_all_points_identical_still_distinct_indices() {
        let pts = vec![Point3::ORIGIN; 8];
        let sel = farthest_point_sampling(&pts, 8, 0);
        let set: std::collections::HashSet<_> = sel.iter().collect();
        assert_eq!(set.len(), 8);
    }

    #[test]
    fn fps_selects_distinct_indices() {
        let mut rng = StdRng::seed_from_u64(3);
        let pts: Vec<Point3> = (0..100)
            .map(|_| {
                Point3::new(
                    rand::Rng::gen_range(&mut rng, -1.0..1.0),
                    rand::Rng::gen_range(&mut rng, -1.0..1.0),
                    rand::Rng::gen_range(&mut rng, -1.0..1.0),
                )
            })
            .collect();
        let sel = farthest_point_sampling(&pts, 30, 0);
        let set: std::collections::HashSet<_> = sel.iter().collect();
        assert_eq!(set.len(), 30);
    }

    #[test]
    fn fps_caps_at_point_count() {
        let pts = grid_points(5);
        let sel = farthest_point_sampling(&pts, 99, 0);
        assert_eq!(sel.len(), 5);
    }

    #[test]
    fn random_sample_distinct() {
        let mut rng = StdRng::seed_from_u64(0);
        let s = random_sample(100, 40, &mut rng);
        assert_eq!(s.len(), 40);
        let set: std::collections::HashSet<_> = s.iter().collect();
        assert_eq!(set.len(), 40);
        assert!(s.iter().all(|&i| i < 100));
    }

    #[test]
    fn random_sample_caps_at_len() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(random_sample(5, 10, &mut rng).len(), 5);
    }

    #[test]
    fn ball_query_respects_radius_and_pads() {
        let pts = grid_points(10);
        let centroids = vec![Point3::new(0.0, 0.0, 0.0)];
        let idx = ball_query(&pts, &centroids, 1.5, 4);
        assert_eq!(idx.len(), 4);
        // Only points 0 and 1 are within radius 1.5; list is padded with
        // the first in-range point.
        assert_eq!(idx[0], 0);
        assert_eq!(idx[1], 1);
        assert_eq!(idx[2], 0);
        assert_eq!(idx[3], 0);
    }

    #[test]
    fn ball_query_empty_ball_falls_back_to_nearest() {
        let pts = grid_points(10);
        let centroids = vec![Point3::new(100.0, 0.0, 0.0)];
        let idx = ball_query(&pts, &centroids, 0.5, 3);
        assert_eq!(idx, vec![9, 9, 9]);
    }

    #[test]
    fn three_nn_weights_sum_to_one_and_favor_closest() {
        let support = grid_points(5);
        let queries = vec![Point3::new(1.2, 0.0, 0.0)];
        let (idx, w) = three_nn_weights(&support, &queries);
        assert_eq!(idx.len(), 3);
        let total: f32 = w.iter().sum();
        assert!((total - 1.0).abs() < 1e-5);
        // Nearest support of x=1.2 is index 1.
        assert_eq!(idx[0], 1);
        assert!(w[0] > w[1] && w[1] >= w[2]);
    }

    #[test]
    fn three_nn_weights_exact_hit_dominates() {
        let support = grid_points(5);
        let queries = vec![support[2]];
        let (idx, w) = three_nn_weights(&support, &queries);
        assert_eq!(idx[0], 2);
        assert!(w[0] > 0.999);
    }

    #[test]
    fn three_nn_with_tiny_support() {
        let support = vec![Point3::ORIGIN];
        let queries = vec![Point3::new(1.0, 1.0, 1.0)];
        let (idx, w) = three_nn_weights(&support, &queries);
        assert_eq!(idx, vec![0, 0, 0]);
        assert!((w.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }
}
