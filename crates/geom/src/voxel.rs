//! Voxel-grid downsampling — the deterministic subsampling large-scale
//! pipelines (including RandLA-Net's preprocessing) apply before any
//! learning: one representative point per occupied grid cell.

use crate::Point3;
use std::collections::HashMap;

/// Selects one representative index per occupied voxel of size `cell`:
/// the point closest to its cell's centroid. Output indices are sorted
/// ascending, so the selection is deterministic and order-independent.
///
/// # Panics
///
/// Panics when `cell` is not a positive finite number.
pub fn voxel_downsample(points: &[Point3], cell: f32) -> Vec<usize> {
    assert!(cell > 0.0 && cell.is_finite(), "voxel_downsample: cell must be positive");
    if points.is_empty() {
        return Vec::new();
    }
    let key = |p: Point3| -> (i64, i64, i64) {
        ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64, (p.z / cell).floor() as i64)
    };
    // First pass: per-cell centroid.
    let mut cells: HashMap<(i64, i64, i64), (Point3, usize)> = HashMap::new();
    for &p in points {
        let entry = cells.entry(key(p)).or_insert((Point3::ORIGIN, 0));
        entry.0 = entry.0 + p;
        entry.1 += 1;
    }
    for entry in cells.values_mut() {
        entry.0 = entry.0 / entry.1 as f32;
    }
    // Second pass: the point nearest its cell centroid wins.
    let mut best: HashMap<(i64, i64, i64), (usize, f32)> = HashMap::with_capacity(cells.len());
    for (i, &p) in points.iter().enumerate() {
        let k = key(p);
        let centroid = cells[&k].0;
        let d = p.sq_dist(centroid);
        match best.get_mut(&k) {
            Some(slot) if d >= slot.1 => {}
            Some(slot) => *slot = (i, d),
            None => {
                best.insert(k, (i, d));
            }
        }
    }
    let mut out: Vec<usize> = best.values().map(|&(i, _)| i).collect();
    out.sort_unstable();
    out
}

/// Number of voxels of size `cell` a point set occupies.
pub fn occupied_voxels(points: &[Point3], cell: f32) -> usize {
    assert!(cell > 0.0 && cell.is_finite(), "occupied_voxels: cell must be positive");
    let mut set = std::collections::HashSet::new();
    for &p in points {
        set.insert((
            (p.x / cell).floor() as i64,
            (p.y / cell).floor() as i64,
            (p.z / cell).floor() as i64,
        ));
    }
    set.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_point_per_occupied_cell() {
        // Two tight clusters far apart -> exactly two representatives.
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(Point3::new(0.01 * i as f32, 0.0, 0.0));
            pts.push(Point3::new(10.0 + 0.01 * i as f32, 0.0, 0.0));
        }
        let sel = voxel_downsample(&pts, 1.0);
        assert_eq!(sel.len(), 2);
        assert_eq!(occupied_voxels(&pts, 1.0), 2);
    }

    #[test]
    fn representative_is_near_cell_centroid() {
        let pts = vec![
            Point3::new(0.1, 0.1, 0.1),
            Point3::new(0.5, 0.5, 0.5), // closest to the centroid (0.37,..)
            Point3::new(0.9, 0.2, 0.1),
        ];
        let sel = voxel_downsample(&pts, 1.0);
        assert_eq!(sel, vec![1]);
    }

    #[test]
    fn fine_grid_keeps_everything() {
        let pts: Vec<Point3> = (0..50).map(|i| Point3::new(i as f32, 0.0, 0.0)).collect();
        let sel = voxel_downsample(&pts, 0.5);
        assert_eq!(sel.len(), 50);
        assert_eq!(sel, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn negative_coordinates_handled() {
        let pts = vec![Point3::new(-0.5, -0.5, -0.5), Point3::new(0.5, 0.5, 0.5)];
        let sel = voxel_downsample(&pts, 1.0);
        assert_eq!(sel.len(), 2, "points straddling the origin are in different cells");
    }

    #[test]
    fn empty_input() {
        assert!(voxel_downsample(&[], 1.0).is_empty());
        assert_eq!(occupied_voxels(&[], 1.0), 0);
    }

    #[test]
    fn deterministic_for_same_input() {
        // (Full order-independence is not guaranteed: the centroid
        // accumulates in f32, so summation order can shift exact ties.)
        let pts: Vec<Point3> = (0..40)
            .map(|i| {
                Point3::new((i as f32 * 0.37).fract() * 3.0, (i as f32 * 0.73).fract() * 3.0, 0.0)
            })
            .collect();
        assert_eq!(voxel_downsample(&pts, 1.0), voxel_downsample(&pts, 1.0));
        // Selected indices are valid and unique.
        let sel = voxel_downsample(&pts, 1.0);
        let set: std::collections::HashSet<_> = sel.iter().collect();
        assert_eq!(set.len(), sel.len());
        assert!(sel.iter().all(|&i| i < pts.len()));
    }

    #[test]
    #[should_panic(expected = "cell must be positive")]
    fn cell_validated() {
        let _ = voxel_downsample(&[Point3::ORIGIN], 0.0);
    }
}
