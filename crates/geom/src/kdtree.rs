//! A kd-tree over 3-D points with k-NN and radius queries.

use crate::{Aabb, Point3};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A neighbor returned by a spatial query: the index of the point in the
/// original slice and its squared distance to the query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Index into the point slice the tree was built from.
    pub index: usize,
    /// Squared Euclidean distance to the query point.
    pub sq_dist: f32,
}

// Max-heap ordering on squared distance so the worst current neighbor is
// at the top and can be evicted in O(log k).
#[derive(Debug, PartialEq)]
struct HeapEntry(Neighbor);

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // `total_cmp`, not `partial_cmp(..).unwrap_or(Equal)`: a NaN
        // distance (from a non-finite input point) must still give a
        // total order or BinaryHeap's invariants silently break.
        self.0.sq_dist.total_cmp(&other.0.sq_dist).then_with(|| self.0.index.cmp(&other.0.index))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug)]
enum Node {
    Leaf {
        // Indices into the points array.
        items: Vec<usize>,
    },
    Split {
        axis: usize,
        value: f32,
        left: Box<Node>,
        right: Box<Node>,
        bounds_left: Aabb,
        bounds_right: Aabb,
    },
}

/// A static kd-tree over a slice of points.
///
/// The tree stores its own copy of the points; query results index into
/// the slice passed to [`KdTree::build`].
///
/// # Example
///
/// ```
/// use colper_geom::{KdTree, Point3};
///
/// let pts: Vec<Point3> = (0..100)
///     .map(|i| Point3::new(i as f32, 0.0, 0.0))
///     .collect();
/// let tree = KdTree::build(&pts);
/// let nn = tree.knn(Point3::new(42.4, 0.0, 0.0), 2);
/// assert_eq!(nn[0].index, 42);
/// assert_eq!(nn[1].index, 43);
/// ```
#[derive(Debug)]
pub struct KdTree {
    points: Vec<Point3>,
    root: Option<Node>,
}

const LEAF_SIZE: usize = 16;

/// Below this many points a parallel build costs more than it saves.
const MIN_PAR_BUILD: usize = 2048;

/// Outcome of one splitting step, shared by the sequential and parallel
/// builds so both produce the exact same tree.
enum SplitStep<'a> {
    /// Leaf-sized or degenerate node: these indices become a leaf.
    Leaf(Vec<usize>),
    /// A proper split with both halves non-empty.
    Split {
        axis: usize,
        value: f32,
        bounds_left: Aabb,
        bounds_right: Aabb,
        left: &'a mut [usize],
        right: &'a mut [usize],
    },
}

/// Partial tree produced by the frontier expansion of a parallel build:
/// the top of the tree with unbuilt subtrees parked in numbered slots.
enum Proto {
    Done(Node),
    Split {
        axis: usize,
        value: f32,
        bounds_left: Aabb,
        bounds_right: Aabb,
        left: Box<Proto>,
        right: Box<Proto>,
    },
    Open {
        slot: usize,
    },
}

impl KdTree {
    /// Builds a tree from a point slice. An empty slice yields an empty
    /// tree whose queries return no neighbors.
    ///
    /// Large builds split the top of the tree sequentially and construct
    /// the resulting subtrees in parallel on the ambient runtime. Every
    /// split decision is shared with the sequential code path, so the tree
    /// is bit-identical regardless of thread count.
    pub fn build(points: &[Point3]) -> Self {
        let points = points.to_vec();
        if points.is_empty() {
            return Self { points, root: None };
        }
        let mut indices: Vec<usize> = (0..points.len()).collect();
        let bounds = Aabb::from_points(&points).expect("non-empty");
        let rt = colper_runtime::current();
        let root = if points.len() < MIN_PAR_BUILD || rt.is_sequential() {
            Self::build_node(&points, &mut indices, bounds)
        } else {
            // Expand the top of the tree until ~4 subtree tasks per thread
            // exist, then build the subtrees across the pool.
            let depth = usize::BITS - (4 * rt.threads()).next_power_of_two().leading_zeros();
            let mut tasks: Vec<(Vec<usize>, Aabb)> = Vec::new();
            let proto =
                Self::expand_frontier(&points, &mut indices, bounds, depth as usize, &mut tasks);
            let built = rt.par_map(tasks.len(), |i| {
                let (task_indices, task_bounds) = &tasks[i];
                Self::build_node(&points, &mut task_indices.clone(), *task_bounds)
            });
            let mut built: Vec<Option<Node>> = built.into_iter().map(Some).collect();
            Self::assemble(proto, &mut built)
        };
        Self { points, root: Some(root) }
    }

    /// The single splitting step used by both build strategies: partitions
    /// `indices` around the median of the longest axis, falling back to a
    /// leaf for leaf-sized or degenerate (all-equal coordinate) nodes.
    fn split_step<'a>(points: &[Point3], indices: &'a mut [usize], bounds: Aabb) -> SplitStep<'a> {
        if indices.len() <= LEAF_SIZE {
            return SplitStep::Leaf(indices.to_vec());
        }
        let axis = bounds.longest_axis();
        let mid = indices.len() / 2;
        // `total_cmp` + index tie-break keeps the median selection a total,
        // deterministic order even when a coordinate is NaN. The old
        // `partial_cmp(..).unwrap_or(Equal)` comparator is non-transitive
        // under NaN, which makes the partition — and hence the whole tree
        // shape — depend on the incidental order of the index slice.
        indices.select_nth_unstable_by(mid, |&a, &b| {
            points[a].axis(axis).total_cmp(&points[b].axis(axis)).then_with(|| a.cmp(&b))
        });
        let value = points[indices[mid]].axis(axis);
        let (left_idx, right_idx) = indices.split_at_mut(mid);
        if left_idx.is_empty() || right_idx.is_empty() {
            let mut items = left_idx.to_vec();
            items.extend_from_slice(right_idx);
            return SplitStep::Leaf(items);
        }
        let bounds_left =
            Aabb::from_points(&left_idx.iter().map(|&i| points[i]).collect::<Vec<_>>())
                .expect("non-empty");
        let bounds_right =
            Aabb::from_points(&right_idx.iter().map(|&i| points[i]).collect::<Vec<_>>())
                .expect("non-empty");
        SplitStep::Split {
            axis,
            value,
            bounds_left,
            bounds_right,
            left: left_idx,
            right: right_idx,
        }
    }

    /// Splits the top `depth` levels, pushing every unexpanded subtree as a
    /// `(indices, bounds)` task and recording its slot in the proto tree.
    fn expand_frontier(
        points: &[Point3],
        indices: &mut [usize],
        bounds: Aabb,
        depth: usize,
        tasks: &mut Vec<(Vec<usize>, Aabb)>,
    ) -> Proto {
        if depth == 0 {
            let slot = tasks.len();
            tasks.push((indices.to_vec(), bounds));
            return Proto::Open { slot };
        }
        match Self::split_step(points, indices, bounds) {
            SplitStep::Leaf(items) => Proto::Done(Node::Leaf { items }),
            SplitStep::Split { axis, value, bounds_left, bounds_right, left, right } => {
                Proto::Split {
                    axis,
                    value,
                    bounds_left,
                    bounds_right,
                    left: Box::new(Self::expand_frontier(
                        points,
                        left,
                        bounds_left,
                        depth - 1,
                        tasks,
                    )),
                    right: Box::new(Self::expand_frontier(
                        points,
                        right,
                        bounds_right,
                        depth - 1,
                        tasks,
                    )),
                }
            }
        }
    }

    /// Replaces every open slot of the proto tree with its built subtree.
    fn assemble(proto: Proto, built: &mut [Option<Node>]) -> Node {
        match proto {
            Proto::Done(node) => node,
            Proto::Open { slot } => built[slot].take().expect("each slot built exactly once"),
            Proto::Split { axis, value, bounds_left, bounds_right, left, right } => Node::Split {
                axis,
                value,
                left: Box::new(Self::assemble(*left, built)),
                right: Box::new(Self::assemble(*right, built)),
                bounds_left,
                bounds_right,
            },
        }
    }

    /// Number of points in the tree.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The points the tree was built from.
    pub fn points(&self) -> &[Point3] {
        &self.points
    }

    fn build_node(points: &[Point3], indices: &mut [usize], bounds: Aabb) -> Node {
        match Self::split_step(points, indices, bounds) {
            SplitStep::Leaf(items) => Node::Leaf { items },
            SplitStep::Split { axis, value, bounds_left, bounds_right, left, right } => {
                Node::Split {
                    axis,
                    value,
                    left: Box::new(Self::build_node(points, left, bounds_left)),
                    right: Box::new(Self::build_node(points, right, bounds_right)),
                    bounds_left,
                    bounds_right,
                }
            }
        }
    }

    /// The `k` nearest neighbors of `query`, sorted by ascending distance.
    ///
    /// Returns fewer than `k` neighbors when the tree holds fewer points.
    pub fn knn(&self, query: Point3, k: usize) -> Vec<Neighbor> {
        if k == 0 {
            return Vec::new();
        }
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
        if let Some(root) = &self.root {
            self.knn_visit(root, query, k, &mut heap);
        }
        let mut out: Vec<Neighbor> = heap.into_iter().map(|e| e.0).collect();
        out.sort_by(|a, b| a.sq_dist.total_cmp(&b.sq_dist).then_with(|| a.index.cmp(&b.index)));
        out
    }

    fn knn_visit(&self, node: &Node, query: Point3, k: usize, heap: &mut BinaryHeap<HeapEntry>) {
        match node {
            Node::Leaf { items } => {
                for &i in items {
                    let d = self.points[i].sq_dist(query);
                    if heap.len() < k {
                        heap.push(HeapEntry(Neighbor { index: i, sq_dist: d }));
                    } else if d < heap.peek().expect("non-empty").0.sq_dist {
                        heap.pop();
                        heap.push(HeapEntry(Neighbor { index: i, sq_dist: d }));
                    }
                }
            }
            Node::Split { axis, value, left, right, bounds_left, bounds_right } => {
                let (first, second, b_second) = if query.axis(*axis) < *value {
                    (left, right, bounds_right)
                } else {
                    (right, left, bounds_left)
                };
                self.knn_visit(first, query, k, heap);
                let worst = heap.peek().map_or(f32::INFINITY, |e| e.0.sq_dist);
                if heap.len() < k || b_second.sq_dist_to_point(query) < worst {
                    self.knn_visit(second, query, k, heap);
                }
            }
        }
    }

    /// The `k` nearest neighbors of `query` among the points for which
    /// `keep` returns `true`, sorted by ascending distance.
    ///
    /// Indices are into the *original* slice the tree was built from,
    /// exactly as with [`KdTree::knn`]. This lets one tree over the full
    /// point set answer queries restricted to an arbitrary subset (e.g.
    /// the survivors of a random downsampling) without rebuilding.
    ///
    /// Returns fewer than `k` neighbors when fewer than `k` points pass
    /// the filter.
    pub fn knn_filtered(
        &self,
        query: Point3,
        k: usize,
        keep: impl Fn(usize) -> bool,
    ) -> Vec<Neighbor> {
        if k == 0 {
            return Vec::new();
        }
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
        if let Some(root) = &self.root {
            self.knn_visit_filtered(root, query, k, &keep, &mut heap);
        }
        let mut out: Vec<Neighbor> = heap.into_iter().map(|e| e.0).collect();
        out.sort_by(|a, b| a.sq_dist.total_cmp(&b.sq_dist).then_with(|| a.index.cmp(&b.index)));
        out
    }

    fn knn_visit_filtered(
        &self,
        node: &Node,
        query: Point3,
        k: usize,
        keep: &impl Fn(usize) -> bool,
        heap: &mut BinaryHeap<HeapEntry>,
    ) {
        match node {
            Node::Leaf { items } => {
                for &i in items {
                    if !keep(i) {
                        continue;
                    }
                    let d = self.points[i].sq_dist(query);
                    if heap.len() < k {
                        heap.push(HeapEntry(Neighbor { index: i, sq_dist: d }));
                    } else if d < heap.peek().expect("non-empty").0.sq_dist {
                        heap.pop();
                        heap.push(HeapEntry(Neighbor { index: i, sq_dist: d }));
                    }
                }
            }
            Node::Split { axis, value, left, right, bounds_left, bounds_right } => {
                let (first, second, b_second) = if query.axis(*axis) < *value {
                    (left, right, bounds_right)
                } else {
                    (right, left, bounds_left)
                };
                self.knn_visit_filtered(first, query, k, keep, heap);
                let worst = heap.peek().map_or(f32::INFINITY, |e| e.0.sq_dist);
                if heap.len() < k || b_second.sq_dist_to_point(query) < worst {
                    self.knn_visit_filtered(second, query, k, keep, heap);
                }
            }
        }
    }

    /// All points within `radius` of `query`, sorted by ascending
    /// distance.
    pub fn within_radius(&self, query: Point3, radius: f32) -> Vec<Neighbor> {
        let mut out = Vec::new();
        let r2 = radius * radius;
        if let Some(root) = &self.root {
            self.radius_visit(root, query, r2, &mut out);
        }
        out.sort_by(|a, b| a.sq_dist.total_cmp(&b.sq_dist).then_with(|| a.index.cmp(&b.index)));
        out
    }

    fn radius_visit(&self, node: &Node, query: Point3, r2: f32, out: &mut Vec<Neighbor>) {
        match node {
            Node::Leaf { items } => {
                for &i in items {
                    let d = self.points[i].sq_dist(query);
                    if d <= r2 {
                        out.push(Neighbor { index: i, sq_dist: d });
                    }
                }
            }
            Node::Split { left, right, bounds_left, bounds_right, .. } => {
                if bounds_left.sq_dist_to_point(query) <= r2 {
                    self.radius_visit(left, query, r2, out);
                }
                if bounds_right.sq_dist_to_point(query) <= r2 {
                    self.radius_visit(right, query, r2, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point3> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point3::new(
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                )
            })
            .collect()
    }

    #[test]
    fn empty_tree_queries() {
        let tree = KdTree::build(&[]);
        assert!(tree.is_empty());
        assert!(tree.knn(Point3::ORIGIN, 3).is_empty());
        assert!(tree.within_radius(Point3::ORIGIN, 1.0).is_empty());
    }

    #[test]
    fn single_point() {
        let tree = KdTree::build(&[Point3::new(1.0, 2.0, 3.0)]);
        let nn = tree.knn(Point3::ORIGIN, 5);
        assert_eq!(nn.len(), 1);
        assert_eq!(nn[0].index, 0);
    }

    #[test]
    fn knn_matches_brute_force() {
        let pts = random_points(500, 42);
        let tree = KdTree::build(&pts);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let q = Point3::new(
                rng.gen_range(-1.2..1.2),
                rng.gen_range(-1.2..1.2),
                rng.gen_range(-1.2..1.2),
            );
            let k = rng.gen_range(1..20);
            let got = tree.knn(q, k);
            let mut brute: Vec<Neighbor> = pts
                .iter()
                .enumerate()
                .map(|(i, &p)| Neighbor { index: i, sq_dist: p.sq_dist(q) })
                .collect();
            brute.sort_by(|a, b| a.sq_dist.partial_cmp(&b.sq_dist).unwrap());
            brute.truncate(k);
            assert_eq!(got.len(), k);
            for (g, b) in got.iter().zip(&brute) {
                assert!((g.sq_dist - b.sq_dist).abs() < 1e-6, "kd {g:?} vs brute {b:?}");
            }
        }
    }

    #[test]
    fn radius_matches_brute_force() {
        let pts = random_points(300, 5);
        let tree = KdTree::build(&pts);
        let q = Point3::new(0.1, -0.2, 0.3);
        let r = 0.5;
        let got = tree.within_radius(q, r);
        let expected: Vec<usize> =
            pts.iter().enumerate().filter(|(_, p)| p.sq_dist(q) <= r * r).map(|(i, _)| i).collect();
        let got_idx: std::collections::HashSet<usize> = got.iter().map(|n| n.index).collect();
        assert_eq!(got_idx.len(), expected.len());
        for i in expected {
            assert!(got_idx.contains(&i));
        }
        // Sorted by ascending distance.
        for w in got.windows(2) {
            assert!(w[0].sq_dist <= w[1].sq_dist);
        }
    }

    #[test]
    fn duplicate_points_are_handled() {
        let pts = vec![Point3::ORIGIN; 100];
        let tree = KdTree::build(&pts);
        let nn = tree.knn(Point3::ORIGIN, 10);
        assert_eq!(nn.len(), 10);
        assert!(nn.iter().all(|n| n.sq_dist == 0.0));
    }

    #[test]
    fn knn_k_zero() {
        let tree = KdTree::build(&random_points(10, 1));
        assert!(tree.knn(Point3::ORIGIN, 0).is_empty());
    }

    #[test]
    fn knn_filtered_matches_brute_force_on_subset() {
        let pts = random_points(400, 13);
        let tree = KdTree::build(&pts);
        // Keep roughly a third of the points.
        let keep_mask: Vec<bool> = (0..pts.len()).map(|i| i % 3 == 0).collect();
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..30 {
            let q = Point3::new(
                rng.gen_range(-1.2..1.2),
                rng.gen_range(-1.2..1.2),
                rng.gen_range(-1.2..1.2),
            );
            let k = rng.gen_range(1..12);
            let got = tree.knn_filtered(q, k, |i| keep_mask[i]);
            let mut brute: Vec<Neighbor> = pts
                .iter()
                .enumerate()
                .filter(|(i, _)| keep_mask[*i])
                .map(|(i, &p)| Neighbor { index: i, sq_dist: p.sq_dist(q) })
                .collect();
            brute.sort_by(|a, b| {
                a.sq_dist.partial_cmp(&b.sq_dist).unwrap().then_with(|| a.index.cmp(&b.index))
            });
            brute.truncate(k);
            assert_eq!(got.len(), brute.len());
            for (g, b) in got.iter().zip(&brute) {
                assert!((g.sq_dist - b.sq_dist).abs() < 1e-6, "kd {g:?} vs brute {b:?}");
                assert!(keep_mask[g.index], "filtered query returned excluded point");
            }
        }
    }

    #[test]
    fn knn_filtered_with_sparse_subset_returns_all_survivors() {
        let pts = random_points(100, 3);
        let tree = KdTree::build(&pts);
        // Only two points pass; asking for 5 returns both.
        let got = tree.knn_filtered(Point3::ORIGIN, 5, |i| i == 4 || i == 87);
        assert_eq!(got.len(), 2);
        let idx: Vec<usize> = got.iter().map(|n| n.index).collect();
        assert!(idx.contains(&4) && idx.contains(&87));
    }

    #[test]
    fn knn_filtered_all_pass_matches_knn() {
        let pts = random_points(200, 17);
        let tree = KdTree::build(&pts);
        let q = Point3::new(0.2, -0.4, 0.6);
        assert_eq!(tree.knn(q, 8), tree.knn_filtered(q, 8, |_| true));
    }

    #[test]
    fn build_and_queries_stay_deterministic_under_nan_and_inf() {
        // A cloud with a few poisoned coordinates: the tree must still be a
        // deterministic function of the input (same build regardless of the
        // incidental index order fed to the median selection), and queries
        // over the finite points must be unaffected.
        let mut pts = random_points(64, 11);
        pts[5] = Point3::new(f32::NAN, 0.0, 0.0);
        pts[23] = Point3::new(0.1, f32::INFINITY, -0.2);
        pts[41] = Point3::new(f32::NEG_INFINITY, f32::NAN, 0.3);

        let q = Point3::new(0.05, -0.1, 0.2);
        let knn_a = KdTree::build(&pts).knn(q, 8);
        let knn_b = KdTree::build(&pts).knn(q, 8);
        assert_eq!(knn_a, knn_b, "kd-tree build is not deterministic under NaN/inf points");

        // Brute-force comparison restricted to finite points: poisoned
        // points have NaN/inf distances and must never displace real
        // neighbors.
        let mut brute: Vec<Neighbor> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| [p.x, p.y, p.z].iter().all(|c| c.is_finite()))
            .map(|(i, &p)| Neighbor { index: i, sq_dist: p.sq_dist(q) })
            .collect();
        brute.sort_by(|a, b| a.sq_dist.total_cmp(&b.sq_dist).then_with(|| a.index.cmp(&b.index)));
        brute.truncate(8);
        assert_eq!(knn_a.len(), 8);
        for (g, b) in knn_a.iter().zip(&brute) {
            assert_eq!(g.index, b.index, "NaN point displaced a finite neighbor");
        }

        // Radius queries likewise: finite hits only, ascending total order.
        let hits = KdTree::build(&pts).within_radius(q, 0.6);
        for w in hits.windows(2) {
            assert!(w[0].sq_dist.total_cmp(&w[1].sq_dist).is_le());
        }
        assert!(hits.iter().all(|n| n.sq_dist.is_finite()));
    }

    #[test]
    fn knn_includes_query_point_itself_when_in_set() {
        let pts = random_points(50, 9);
        let tree = KdTree::build(&pts);
        let nn = tree.knn(pts[17], 1);
        assert_eq!(nn[0].index, 17);
        assert_eq!(nn[0].sq_dist, 0.0);
    }
}
