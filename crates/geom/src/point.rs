//! The [`Point3`] type: a 3-D coordinate.

use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

/// A point (or vector) in 3-D space.
///
/// # Example
///
/// ```
/// use colper_geom::Point3;
///
/// let a = Point3::new(1.0, 2.0, 3.0);
/// let b = Point3::new(1.0, 0.0, 3.0);
/// assert_eq!(a.sq_dist(b), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point3 {
    /// X coordinate.
    pub x: f32,
    /// Y coordinate.
    pub y: f32,
    /// Z coordinate.
    pub z: f32,
}

impl Point3 {
    /// The origin.
    pub const ORIGIN: Point3 = Point3 { x: 0.0, y: 0.0, z: 0.0 };

    /// Creates a point from its three coordinates.
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Self { x, y, z }
    }

    /// Creates a point from a `[x, y, z]` array.
    pub const fn from_array(a: [f32; 3]) -> Self {
        Self { x: a[0], y: a[1], z: a[2] }
    }

    /// The coordinates as a `[x, y, z]` array.
    pub const fn to_array(self) -> [f32; 3] {
        [self.x, self.y, self.z]
    }

    /// Coordinate by axis index (`0 -> x`, `1 -> y`, `2 -> z`).
    ///
    /// # Panics
    ///
    /// Panics when `axis > 2`.
    pub fn axis(self, axis: usize) -> f32 {
        match axis {
            0 => self.x,
            1 => self.y,
            2 => self.z,
            _ => panic!("axis {axis} out of range for Point3"),
        }
    }

    /// Squared Euclidean distance to `other`.
    pub fn sq_dist(self, other: Point3) -> f32 {
        let d = self - other;
        d.x * d.x + d.y * d.y + d.z * d.z
    }

    /// Euclidean distance to `other`.
    pub fn dist(self, other: Point3) -> f32 {
        self.sq_dist(other).sqrt()
    }

    /// Euclidean norm of the point viewed as a vector.
    pub fn norm(self) -> f32 {
        self.sq_dist(Point3::ORIGIN).sqrt()
    }

    /// Dot product with `other`.
    pub fn dot(self, other: Point3) -> f32 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Componentwise minimum.
    pub fn min(self, other: Point3) -> Point3 {
        Point3::new(self.x.min(other.x), self.y.min(other.y), self.z.min(other.z))
    }

    /// Componentwise maximum.
    pub fn max(self, other: Point3) -> Point3 {
        Point3::new(self.x.max(other.x), self.y.max(other.y), self.z.max(other.z))
    }

    /// Whether all three coordinates are finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Add for Point3 {
    type Output = Point3;
    fn add(self, rhs: Point3) -> Point3 {
        Point3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl Sub for Point3 {
    type Output = Point3;
    fn sub(self, rhs: Point3) -> Point3 {
        Point3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl Mul<f32> for Point3 {
    type Output = Point3;
    fn mul(self, s: f32) -> Point3 {
        Point3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Div<f32> for Point3 {
    type Output = Point3;
    fn div(self, s: f32) -> Point3 {
        Point3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl From<[f32; 3]> for Point3 {
    fn from(a: [f32; 3]) -> Self {
        Point3::from_array(a)
    }
}

impl From<Point3> for [f32; 3] {
    fn from(p: Point3) -> Self {
        p.to_array()
    }
}

impl fmt::Display for Point3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Point3::new(1.0, 2.0, 3.0);
        let b = Point3::new(0.5, 0.5, 0.5);
        assert_eq!(a + b, Point3::new(1.5, 2.5, 3.5));
        assert_eq!(a - b, Point3::new(0.5, 1.5, 2.5));
        assert_eq!(a * 2.0, Point3::new(2.0, 4.0, 6.0));
        assert_eq!(a / 2.0, Point3::new(0.5, 1.0, 1.5));
    }

    #[test]
    fn distances() {
        let a = Point3::new(0.0, 3.0, 0.0);
        let b = Point3::new(4.0, 0.0, 0.0);
        assert_eq!(a.sq_dist(b), 25.0);
        assert_eq!(a.dist(b), 5.0);
        assert_eq!(a.norm(), 3.0);
    }

    #[test]
    fn axis_access() {
        let a = Point3::new(1.0, 2.0, 3.0);
        assert_eq!(a.axis(0), 1.0);
        assert_eq!(a.axis(1), 2.0);
        assert_eq!(a.axis(2), 3.0);
    }

    #[test]
    #[should_panic(expected = "axis")]
    fn axis_out_of_range() {
        let _ = Point3::ORIGIN.axis(3);
    }

    #[test]
    fn min_max_componentwise() {
        let a = Point3::new(1.0, 5.0, 2.0);
        let b = Point3::new(3.0, 1.0, 2.0);
        assert_eq!(a.min(b), Point3::new(1.0, 1.0, 2.0));
        assert_eq!(a.max(b), Point3::new(3.0, 5.0, 2.0));
    }

    #[test]
    fn array_round_trip() {
        let a = Point3::new(1.0, 2.0, 3.0);
        let arr: [f32; 3] = a.into();
        assert_eq!(Point3::from(arr), a);
    }

    #[test]
    fn dot_product() {
        let a = Point3::new(1.0, 2.0, 3.0);
        let b = Point3::new(4.0, -5.0, 6.0);
        assert_eq!(a.dot(b), 12.0);
    }

    #[test]
    fn display_formats_coordinates() {
        assert_eq!(Point3::new(1.0, 2.0, 3.0).to_string(), "(1, 2, 3)");
    }

    #[test]
    fn finite_check() {
        assert!(Point3::new(1.0, 2.0, 3.0).is_finite());
        assert!(!Point3::new(f32::NAN, 0.0, 0.0).is_finite());
    }
}
