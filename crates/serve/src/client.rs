//! The load-test client: many concurrent attack jobs against a running
//! `colperd`, with latency percentiles and a machine-readable report.
//!
//! Latencies are sorted with `total_cmp` — the service bench must never
//! panic or mis-rank on a NaN that slipped into a timing computation,
//! for the same reason the attack's point orderings are NaN-safe.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::thread;
use std::time::Instant;

/// How the load test is shaped.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Concurrent client threads.
    pub clients: usize,
    /// Sequential requests per client.
    pub requests_per_client: usize,
    /// The `POST /attack` body each request sends.
    pub body: String,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7414".to_string(),
            clients: 100,
            requests_per_client: 2,
            body: r#"{"points":64,"steps":5,"priority":"batch"}"#.to_string(),
        }
    }
}

/// Latency percentiles in milliseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencySummary {
    /// Median.
    pub p50_ms: f64,
    /// 90th percentile.
    pub p90_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Worst observed.
    pub max_ms: f64,
}

/// Outcome of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Concurrent clients.
    pub clients: usize,
    /// Requests each client sent.
    pub requests_per_client: usize,
    /// `200` responses.
    pub ok: u64,
    /// `429` backpressure rejections.
    pub rejected: u64,
    /// Transport failures and non-200/429 statuses.
    pub errors: u64,
    /// Wall-clock span of the whole run, seconds.
    pub wall_s: f64,
    /// Completed (`200`) jobs per second of wall clock.
    pub jobs_per_sec: f64,
    /// Percentiles over completed jobs only.
    pub latency: LatencySummary,
    /// The server's `/stats` body after the run (raw JSON), if
    /// reachable.
    pub server_stats: Option<String>,
}

/// Sends one HTTP/1.1 request and reads the response to EOF (the server
/// always answers `Connection: close`). Returns `(status, body)`.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    )?;
    stream.flush()?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| std::io::Error::other("response missing a status line"))?;
    let payload = match response.split_once("\r\n\r\n") {
        Some((_head, payload)) => payload.to_string(),
        None => String::new(),
    };
    Ok((status, payload))
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    // Nearest-rank: the smallest value with at least q of the sample at
    // or below it.
    let rank = ((sorted_ms.len() as f64 * q).ceil() as usize).saturating_sub(1);
    sorted_ms[rank.min(sorted_ms.len() - 1)]
}

/// Runs the load test: `clients` threads, each sending
/// `requests_per_client` jobs back to back.
pub fn run_load(config: &LoadConfig) -> LoadReport {
    let started = Instant::now();
    let results: Vec<(u64, u64, u64, Vec<f64>)> = thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients)
            .map(|_| {
                scope.spawn(|| {
                    let mut ok = 0u64;
                    let mut rejected = 0u64;
                    let mut errors = 0u64;
                    let mut latencies_ms = Vec::with_capacity(config.requests_per_client);
                    for _ in 0..config.requests_per_client {
                        let sent = Instant::now();
                        match http_request(&config.addr, "POST", "/attack", &config.body) {
                            Ok((200, _)) => {
                                ok += 1;
                                latencies_ms.push(sent.elapsed().as_secs_f64() * 1e3);
                            }
                            Ok((429, _)) => rejected += 1,
                            Ok(_) | Err(_) => errors += 1,
                        }
                    }
                    (ok, rejected, errors, latencies_ms)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread panicked")).collect()
    });
    let wall_s = started.elapsed().as_secs_f64();

    let mut ok = 0;
    let mut rejected = 0;
    let mut errors = 0;
    let mut latencies_ms = Vec::new();
    for (o, r, e, l) in results {
        ok += o;
        rejected += r;
        errors += e;
        latencies_ms.extend(l);
    }
    // NaN-safe total order, like every other sort in the workspace.
    latencies_ms.sort_by(f64::total_cmp);

    LoadReport {
        clients: config.clients,
        requests_per_client: config.requests_per_client,
        ok,
        rejected,
        errors,
        wall_s,
        jobs_per_sec: if wall_s > 0.0 { ok as f64 / wall_s } else { 0.0 },
        latency: LatencySummary {
            p50_ms: percentile(&latencies_ms, 0.50),
            p90_ms: percentile(&latencies_ms, 0.90),
            p99_ms: percentile(&latencies_ms, 0.99),
            max_ms: latencies_ms.last().copied().unwrap_or(0.0),
        },
        server_stats: http_request(&config.addr, "GET", "/stats", "")
            .ok()
            .filter(|(status, _)| *status == 200)
            .map(|(_, body)| body),
    }
}

impl LoadReport {
    /// The report as the `results/BENCH_service.json` document.
    pub fn to_json(&self) -> String {
        let stats = self.server_stats.as_deref().unwrap_or("null");
        format!(
            concat!(
                "{{\n",
                "  \"schema\": \"colper-bench-service-v1\",\n",
                "  \"clients\": {},\n",
                "  \"requests_per_client\": {},\n",
                "  \"ok\": {},\n",
                "  \"rejected_429\": {},\n",
                "  \"errors\": {},\n",
                "  \"wall_s\": {:.4},\n",
                "  \"jobs_per_sec\": {:.3},\n",
                "  \"latency_ms\": {{\"p50\": {:.3}, \"p90\": {:.3}, \"p99\": {:.3}, \"max\": {:.3}}},\n",
                "  \"server_stats\": {}\n",
                "}}\n"
            ),
            self.clients,
            self.requests_per_client,
            self.ok,
            self.rejected,
            self.errors,
            self.wall_s,
            self.jobs_per_sec,
            self.latency.p50_ms,
            self.latency.p90_ms,
            self.latency.p99_ms,
            self.latency.max_ms,
            stats,
        )
    }

    /// The one-line human summary the load-test binary prints.
    pub fn summary_line(&self) -> String {
        format!(
            "{} clients x {} req: {} ok, {} backpressured, {} errors | {:.1} jobs/s | p50 {:.1} ms, p99 {:.1} ms",
            self.clients,
            self.requests_per_client,
            self.ok,
            self.rejected,
            self.errors,
            self.jobs_per_sec,
            self.latency.p50_ms,
            self.latency.p99_ms,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nan_safe_and_ordered() {
        let mut ms = vec![5.0, f64::NAN, 1.0, 3.0];
        ms.sort_by(f64::total_cmp);
        // NaN sorts to the end under total order; percentiles below it
        // stay meaningful.
        assert_eq!(percentile(&ms, 0.0), 1.0);
        assert_eq!(percentile(&ms, 0.5), 3.0);
        assert!(percentile(&ms, 1.0).is_nan());
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn report_serializes_to_valid_json() {
        let report = LoadReport {
            clients: 4,
            requests_per_client: 2,
            ok: 7,
            rejected: 1,
            errors: 0,
            wall_s: 1.5,
            jobs_per_sec: 4.67,
            latency: LatencySummary { p50_ms: 10.0, p90_ms: 20.0, p99_ms: 30.0, max_ms: 31.0 },
            server_stats: Some("{\"completed\":7}".to_string()),
        };
        let parsed = crate::json::Json::parse(&report.to_json()).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(crate::json::Json::as_str),
            Some("colper-bench-service-v1")
        );
        assert_eq!(parsed.get("ok").and_then(crate::json::Json::as_u64), Some(7));
        assert_eq!(
            parsed
                .get("server_stats")
                .and_then(|s| s.get("completed"))
                .and_then(crate::json::Json::as_u64),
            Some(7)
        );
        assert!(report.summary_line().contains("7 ok"));
    }
}
