//! A minimal HTTP/1.1 layer for `colperd`.
//!
//! Hand-rolled on purpose (the workspace takes no network deps): enough
//! of HTTP/1.1 to parse a request line, headers, and a
//! `Content-Length` body, and to write fixed-length or streamed
//! responses. Streaming responses avoid chunked encoding by declaring
//! `Connection: close` and flushing line-by-line — the JSONL trace
//! stream ends when the socket does.

use std::io::{self, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest request body `colperd` will buffer (inline clouds included).
pub const MAX_BODY: usize = 8 << 20;

/// Largest request head (request line + headers) accepted.
const MAX_HEAD: usize = 16 << 10;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// The request method, uppercased as sent (`GET`, `POST`, …).
    pub method: String,
    /// The request target (path + optional query), as sent.
    pub path: String,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum HttpError {
    /// The socket failed mid-read.
    Io(io::Error),
    /// The bytes were not acceptable HTTP (reason included).
    Malformed(&'static str),
}

impl From<io::Error> for HttpError {
    fn from(err: io::Error) -> Self {
        HttpError::Io(err)
    }
}

fn read_line(reader: &mut BufReader<TcpStream>, budget: &mut usize) -> Result<String, HttpError> {
    let mut line = String::new();
    loop {
        let mut byte = [0u8; 1];
        reader.read_exact(&mut byte)?;
        if *budget == 0 {
            return Err(HttpError::Malformed("request head too large"));
        }
        *budget -= 1;
        match byte[0] {
            b'\n' => return Ok(line),
            b'\r' => {}
            b if b.is_ascii() => line.push(b as char),
            _ => return Err(HttpError::Malformed("non-ASCII byte in request head")),
        }
    }
}

/// Reads one request from the stream.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Request, HttpError> {
    let mut budget = MAX_HEAD;
    let request_line = read_line(reader, &mut budget)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or(HttpError::Malformed("empty request line"))?.to_string();
    let path = parts.next().ok_or(HttpError::Malformed("request line missing target"))?.to_string();
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        _ => return Err(HttpError::Malformed("not an HTTP/1.x request")),
    }

    let mut content_length = 0usize;
    loop {
        let line = read_line(reader, &mut budget)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed("header line without a colon"));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| HttpError::Malformed("unparsable Content-Length"))?;
            if content_length > MAX_BODY {
                return Err(HttpError::Malformed("body exceeds the service limit"));
            }
        }
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request { method, path, body })
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        _ => "Internal Server Error",
    }
}

/// Writes a complete fixed-length JSON response and flushes it.
pub fn respond_json(stream: &mut TcpStream, code: u16, body: &str) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        code,
        status_text(code),
        body.len(),
        body,
    )?;
    stream.flush()
}

/// Writes the head of a streamed JSONL response; the body is whatever
/// the caller writes until it closes the socket.
pub fn begin_jsonl_stream(stream: &mut TcpStream) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: application/jsonl\r\nConnection: close\r\n\r\n",
    )?;
    stream.flush()
}

/// Renders a `{"error": ...}` body for an error response.
pub fn error_body(message: &str) -> String {
    format!("{{\"error\":\"{}\"}}", crate::json::escape(message))
}
