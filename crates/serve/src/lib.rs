//! `colperd`: a pooled, backpressured attack service over the COLPER
//! reproduction.
//!
//! The library crates answer "what does one attack do?"; this crate
//! answers "what does a *stream* of attack requests do to a shared
//! machine?" — the operational questions behind robustness evaluation
//! at service scale:
//!
//! * **Intake** ([`http`], [`json`], [`proto`]): a hand-rolled
//!   HTTP/1.1 + JSON front door (the workspace takes no network or
//!   serde dependencies). Malformed bytes → `400`; well-formed but
//!   invalid jobs (unknown model, NaN cloud, out-of-range labels) →
//!   `422` with the library's typed validation messages.
//! * **Backpressure** ([`queue`]): a bounded two-priority queue.
//!   Interactive jobs overtake batch jobs; a full queue answers `429`
//!   immediately instead of queueing latency.
//! * **Warm seats** ([`pool`]): finished jobs donate their autodiff
//!   tape back to a pool keyed by `(model, point-count bucket)`, so
//!   steady-state jobs skip the first-step allocation burst and run on
//!   the attack loop's zero-allocation path. Bit-identical to cold
//!   runs — seats recycle buffer pools, never state.
//! * **Scheduling** ([`server`]): jobs run on one shared work-stealing
//!   [`colper_runtime::Runtime`] under per-job thread budgets, so a
//!   greedy job cannot monopolize the pool, and results stay
//!   bit-identical across budgets.
//! * **Heavyweight jobs** ([`stream_job`]): `POST /stream` attacks an
//!   out-of-core tiled world under a hard residency budget. Stream
//!   jobs always queue at batch priority and answer with a summary
//!   object instead of per-point results.
//! * **Telemetry**: streamed jobs receive live per-step
//!   `colper-trace-v1` JSONL lines over the socket via
//!   [`colper_obs::StepSink`]; `/stats` exposes service counters.
//! * **Load testing** ([`client`]): a multi-client driver that writes
//!   `results/BENCH_service.json` with throughput and latency
//!   percentiles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod json;
pub mod pool;
pub mod proto;
pub mod queue;
pub mod server;
pub mod stats;
pub mod stream_job;

pub use client::{run_load, LoadConfig, LoadReport};
pub use pool::{ModelKind, SeatPool};
pub use proto::JobSpec;
pub use queue::{JobQueue, Priority};
pub use server::{ServeConfig, Server};
pub use stream_job::StreamSpec;
