//! A minimal JSON reader for the service intake.
//!
//! The workspace is offline and carries no serde; the observability
//! layer already *emits* JSON by hand ([`colper_obs::jf`] and friends),
//! and this module is its counterpart for *reading* the service's small
//! request vocabulary. It is a strict recursive-descent parser over the
//! full JSON grammar — objects, arrays, strings with escapes, numbers,
//! booleans, null — with a depth limit instead of recursion-unbounded
//! trust in the client.

use std::fmt;

/// Maximum nesting depth accepted by the parser; requests are flat, so
/// anything deeper is hostile or broken input.
const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys keep the last value on
    /// lookup, matching common parser behaviour).
    Obj(Vec<(String, Json)>),
}

/// A parse failure: what went wrong and the byte offset it went wrong at.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses `input` as one JSON value (trailing garbage is an error).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Object field lookup (last duplicate wins); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number that
    /// round-trips exactly (rejects 1.5, -3, 1e30).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        (n >= 0.0 && n <= u64::MAX as f64 && n.fract() == 0.0).then_some(n as u64)
    }

    /// [`Json::as_u64`] narrowed to `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Escapes `s` for embedding in a JSON string literal (quotes not
/// included). The inverse of the parser's unescaping, used when echoing
/// client-controlled text back in error bodies.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { message: message.to_string(), at: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are rejected rather than paired:
                            // the service vocabulary is ASCII.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("invalid \\u code point"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (the input is a &str, so the
                    // bytes are valid UTF-8).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xc0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect("utf8"));
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .ok()
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_request_vocabulary() {
        let v = Json::parse(
            r#"{"model":"pointnet","points":128,"seed":7,"stream":true,
                "cloud":{"xyz":[[0.5,-1.25,3e-2]],"labels":[12]},"note":null}"#,
        )
        .unwrap();
        assert_eq!(v.get("model").and_then(Json::as_str), Some("pointnet"));
        assert_eq!(v.get("points").and_then(Json::as_usize), Some(128));
        assert_eq!(v.get("stream").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("note"), Some(&Json::Null));
        let xyz = v.get("cloud").unwrap().get("xyz").unwrap().as_arr().unwrap();
        let row = xyz[0].as_arr().unwrap();
        assert_eq!(row[1].as_f64(), Some(-1.25));
        assert_eq!(row[2].as_f64(), Some(0.03));
    }

    #[test]
    fn strings_unescape_and_escape_round_trips() {
        let v = Json::parse(r#""line\n\"quoted\"\tA""#).unwrap();
        assert_eq!(v.as_str(), Some("line\n\"quoted\"\tA"));
        assert_eq!(escape("line\n\"quoted\"\tA"), r#"line\n\"quoted\"\tA"#);
        assert_eq!(escape("\u{0001}"), "\\u0001");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "01x",
            "nul",
            "\"abc",
            "1.2.3",
            "[1] []",
            "{\"a\":1,}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
        // Depth bomb: 40 nested arrays exceeds MAX_DEPTH.
        let deep = format!("{}1{}", "[".repeat(40), "]".repeat(40));
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn integer_narrowing_is_exact() {
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1e30").unwrap().as_u64(), None);
        assert!(Json::parse("1e999").is_err(), "infinite numbers rejected");
    }

    #[test]
    fn duplicate_keys_keep_the_last_value() {
        let v = Json::parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(2.0));
    }
}
