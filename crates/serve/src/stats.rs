//! Service counters for `/stats`.
//!
//! These are plain atomics, deliberately separate from the
//! `colper-obs` counter registry: obs counters are compiled to no-ops
//! unless tracing is enabled, while a service must always be able to
//! answer "how many jobs have you run?" — health introspection is not
//! optional telemetry.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic service-lifetime counters.
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// Jobs accepted into the queue.
    pub accepted: AtomicU64,
    /// Jobs rejected with `429` because the queue was full.
    pub rejected_full: AtomicU64,
    /// Requests rejected with `400` (malformed HTTP or JSON).
    pub rejected_malformed: AtomicU64,
    /// Requests rejected with `422` (well-formed but invalid job spec).
    pub rejected_invalid: AtomicU64,
    /// Jobs fully executed by a worker.
    pub completed: AtomicU64,
    /// Completed jobs that were heavyweight `POST /stream` world
    /// attacks (also counted in `completed`).
    pub stream_completed: AtomicU64,
    /// Completed jobs that started on a warm (donated-tape) seat.
    pub warm_starts: AtomicU64,
}

impl ServiceStats {
    /// Bumps a counter by one.
    pub fn incr(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Renders the counters plus current queue depths as a JSON object.
    pub fn to_json(
        &self,
        interactive_depth: usize,
        batch_depth: usize,
        idle_seats: usize,
    ) -> String {
        format!(
            concat!(
                "{{\"accepted\":{},\"rejected_full\":{},\"rejected_malformed\":{},",
                "\"rejected_invalid\":{},\"completed\":{},\"stream_completed\":{},",
                "\"warm_starts\":{},",
                "\"queue_interactive\":{},\"queue_batch\":{},\"idle_seats\":{}}}"
            ),
            self.accepted.load(Ordering::Relaxed),
            self.rejected_full.load(Ordering::Relaxed),
            self.rejected_malformed.load(Ordering::Relaxed),
            self.rejected_invalid.load(Ordering::Relaxed),
            self.completed.load(Ordering::Relaxed),
            self.stream_completed.load(Ordering::Relaxed),
            self.warm_starts.load(Ordering::Relaxed),
            interactive_depth,
            batch_depth,
            idle_seats,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn snapshot_is_valid_json_with_every_field() {
        let stats = ServiceStats::default();
        ServiceStats::incr(&stats.accepted);
        ServiceStats::incr(&stats.accepted);
        ServiceStats::incr(&stats.completed);
        let parsed = Json::parse(&stats.to_json(3, 1, 2)).unwrap();
        assert_eq!(parsed.get("accepted").and_then(Json::as_u64), Some(2));
        assert_eq!(parsed.get("completed").and_then(Json::as_u64), Some(1));
        assert_eq!(parsed.get("rejected_full").and_then(Json::as_u64), Some(0));
        assert_eq!(parsed.get("queue_interactive").and_then(Json::as_u64), Some(3));
        assert_eq!(parsed.get("queue_batch").and_then(Json::as_u64), Some(1));
        assert_eq!(parsed.get("idle_seats").and_then(Json::as_u64), Some(2));
    }
}
