//! The `POST /attack` job vocabulary.
//!
//! A job spec is a small JSON object; every field is optional except
//! that a `"targeted"` goal requires `"target"`:
//!
//! ```json
//! {
//!   "model": "pointnet",          // or "resgcn"
//!   "points": 64,                 // synthetic-scene size when no cloud is inlined
//!   "seed": 7,                    // scene + attack seed
//!   "steps": 5,                   // optimization iterations (≤ 1000)
//!   "objective": "non_targeted",  // attack objective id: "targeted(3)",
//!                                 // "noise(4)", "transfer(0.5)", "boundary(4)"
//!   "goal": "non_targeted",       // legacy alternative to "objective":
//!                                 // "targeted" with "target": <class>
//!   "priority": "interactive",    // or "batch"
//!   "threads": 1,                 // per-job runtime budget
//!   "stream": false,              // true → per-step JSONL instead of a result object
//!   "cloud": {                    // optional inline cloud (else a scene is generated)
//!     "xyz": [[x, y, z], ...],
//!     "colors": [[r, g, b], ...],
//!     "labels": [l, ...]
//!   }
//! }
//! ```
//!
//! Parsing distinguishes the two client-fault classes the HTTP layer
//! reports: bytes that are not JSON are a `400` (handled before this
//! module runs), while a well-formed object that names an unknown model,
//! blows a limit, or inlines an inconsistent cloud is a `422` — the
//! distinction tells a client whether to fix its encoder or its request.

use crate::json::Json;
use crate::pool::ModelKind;
use crate::queue::Priority;
use colper_attack::{AttackConfig, AttackGoal, Objective};
use colper_geom::Point3;
use colper_models::CloudTensors;
use colper_tensor::Matrix;

/// Class count of every zoo model (the S3DIS label set).
pub const NUM_CLASSES: usize = 13;

/// Most points a job may attack, inline or synthetic.
pub const MAX_POINTS: usize = 4096;

/// Fewest points a job may attack (the smoothness penalty needs a
/// neighborhood).
pub const MIN_POINTS: usize = 16;

/// Most optimization steps a job may request.
pub const MAX_STEPS: usize = 1000;

/// A validated attack job, ready to queue.
#[derive(Debug)]
pub struct JobSpec {
    /// Victim model.
    pub model: ModelKind,
    /// Synthetic-scene point count (ignored when `cloud` is inlined).
    pub points: usize,
    /// Scene + attack seed.
    pub seed: u64,
    /// The attack objective ([`Objective::id`] names it in responses;
    /// the legacy `goal`/`target` fields lift into it).
    pub objective: Objective,
    /// Optimization iterations.
    pub steps: usize,
    /// Scheduling class.
    pub priority: Priority,
    /// Requested per-job thread budget (the server clamps this to its
    /// runtime's pool).
    pub threads: usize,
    /// Stream per-step JSONL instead of returning a result object.
    pub stream: bool,
    /// Inline cloud, already lifted to tensors.
    pub cloud: Option<CloudTensors>,
}

impl JobSpec {
    /// The point count this job will actually run with.
    pub fn effective_points(&self) -> usize {
        self.cloud.as_ref().map_or(self.points, CloudTensors::len)
    }

    /// The attack configuration this job resolves to.
    pub fn attack_config(&self) -> AttackConfig {
        match self.objective.goal() {
            AttackGoal::NonTargeted => AttackConfig::non_targeted(self.steps),
            AttackGoal::Targeted { target } => AttackConfig::targeted(self.steps, target),
        }
    }

    /// Parses and validates a job spec from a decoded JSON value.
    /// `Err` carries a client-readable reason and maps to `422`.
    pub fn from_json(value: &Json) -> Result<JobSpec, String> {
        let Json::Obj(_) = value else {
            return Err("job spec must be a JSON object".into());
        };

        let model = match value.get("model") {
            None => ModelKind::PointNet,
            Some(m) => {
                let name = m.as_str().ok_or("\"model\" must be a string")?;
                ModelKind::parse(name).ok_or_else(|| format!("unknown model {name:?}"))?
            }
        };
        let points = field_usize(value, "points", 64)?;
        let seed = match value.get("seed") {
            None => 0,
            Some(s) => s.as_u64().ok_or("\"seed\" must be a non-negative integer")?,
        };
        let steps = field_usize(value, "steps", 5)?;
        if steps == 0 || steps > MAX_STEPS {
            return Err(format!("\"steps\" must be in 1..={MAX_STEPS}, got {steps}"));
        }
        let objective = match (value.get("objective"), value.get("goal")) {
            (Some(_), Some(_)) => {
                return Err(
                    "give either \"objective\" or the legacy \"goal\", not both".to_string()
                );
            }
            // The one vocabulary the matrix runner and service clients
            // share: an `Objective` id string, e.g. "targeted(3)" or
            // "transfer(0.5)". Unknown ids and malformed parameters map
            // to 422 with the parser's reason.
            (Some(o), None) => {
                let s = o.as_str().ok_or("\"objective\" must be a string")?;
                Objective::parse(s)?
            }
            (None, goal) => {
                let goal = match goal {
                    None => AttackGoal::NonTargeted,
                    Some(g) => match g.as_str().ok_or("\"goal\" must be a string")? {
                        "non_targeted" => AttackGoal::NonTargeted,
                        "targeted" => {
                            let target = value
                                .get("target")
                                .and_then(Json::as_usize)
                                .ok_or("a targeted goal requires an integer \"target\"")?;
                            AttackGoal::Targeted { target }
                        }
                        other => return Err(format!("unknown goal {other:?}")),
                    },
                };
                Objective::from_goal(goal)
            }
        };
        if let Objective::Targeted { target } = objective {
            if target >= NUM_CLASSES {
                return Err(format!(
                    "\"target\" must name one of the {NUM_CLASSES} classes, got {target}"
                ));
            }
        }
        let priority = match value.get("priority") {
            None => Priority::Interactive,
            Some(p) => {
                let name = p.as_str().ok_or("\"priority\" must be a string")?;
                Priority::parse(name).ok_or_else(|| format!("unknown priority {name:?}"))?
            }
        };
        let threads = field_usize(value, "threads", 1)?.max(1);
        let stream = match value.get("stream") {
            None => false,
            Some(s) => s.as_bool().ok_or("\"stream\" must be a boolean")?,
        };
        let cloud = match value.get("cloud") {
            None => None,
            Some(c) => Some(cloud_from_json(c)?),
        };

        let effective = cloud.as_ref().map_or(points, CloudTensors::len);
        if !(MIN_POINTS..=MAX_POINTS).contains(&effective) {
            return Err(format!(
                "point count must be in {MIN_POINTS}..={MAX_POINTS}, got {effective}"
            ));
        }

        Ok(JobSpec { model, points, seed, objective, steps, priority, threads, stream, cloud })
    }
}

fn field_usize(value: &Json, name: &str, default: usize) -> Result<usize, String> {
    match value.get(name) {
        None => Ok(default),
        Some(v) => v.as_usize().ok_or_else(|| format!("{name:?} must be a non-negative integer")),
    }
}

fn triples(value: &Json, name: &str) -> Result<Vec<[f32; 3]>, String> {
    let rows = value
        .get(name)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("\"cloud\" requires an array {name:?}"))?;
    rows.iter()
        .enumerate()
        .map(|(i, row)| {
            let row = row
                .as_arr()
                .filter(|r| r.len() == 3)
                .ok_or_else(|| format!("{name:?}[{i}] must be an array of 3 numbers"))?;
            let mut out = [0.0f32; 3];
            for (slot, v) in out.iter_mut().zip(row) {
                *slot =
                    v.as_f64().ok_or_else(|| format!("{name:?}[{i}] holds a non-number"))? as f32;
            }
            Ok(out)
        })
        .collect()
}

/// Lifts an inline `{"xyz", "colors", "labels"}` object to tensors.
/// Value-level validation (finite coordinates, colors in `[0, 1]`,
/// labels below the class count) is the intake's job via
/// [`colper_attack::validate_clouds`]; this only checks shape.
fn cloud_from_json(value: &Json) -> Result<CloudTensors, String> {
    let xyz = triples(value, "xyz")?;
    let colors = triples(value, "colors")?;
    let labels: Vec<usize> = value
        .get("labels")
        .and_then(Json::as_arr)
        .ok_or("\"cloud\" requires an array \"labels\"")?
        .iter()
        .enumerate()
        .map(|(i, l)| {
            l.as_usize().ok_or_else(|| format!("\"labels\"[{i}] must be a non-negative integer"))
        })
        .collect::<Result<_, _>>()?;

    let n = xyz.len();
    if colors.len() != n || labels.len() != n {
        return Err(format!(
            "\"cloud\" arrays disagree on length: {} xyz, {} colors, {} labels",
            n,
            colors.len(),
            labels.len()
        ));
    }

    let coords: Vec<Point3> = xyz.iter().map(|&[x, y, z]| Point3::new(x, y, z)).collect();
    let flat = |rows: &[[f32; 3]]| rows.iter().flatten().copied().collect::<Vec<f32>>();
    let xyz_m = Matrix::from_vec(n, 3, flat(&xyz)).expect("shape checked above");
    let colors_m = Matrix::from_vec(n, 3, flat(&colors)).expect("shape checked above");

    // Normalized location within the cloud's bounding box — the same
    // convention as `colper_scene::normalize::location01`.
    let mut lo = [f32::INFINITY; 3];
    let mut hi = [f32::NEG_INFINITY; 3];
    for row in &xyz {
        for a in 0..3 {
            lo[a] = lo[a].min(row[a]);
            hi[a] = hi[a].max(row[a]);
        }
    }
    let loc01 = Matrix::from_fn(n, 3, |i, a| {
        let extent = hi[a] - lo[a];
        if extent > 0.0 {
            (xyz[i][a] - lo[a]) / extent
        } else {
            0.5
        }
    });

    Ok(CloudTensors {
        coords,
        xyz: xyz_m,
        colors: colors_m,
        loc01,
        labels,
        num_classes: NUM_CLASSES,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(body: &str) -> Result<JobSpec, String> {
        JobSpec::from_json(&Json::parse(body).expect("test bodies are valid JSON"))
    }

    #[test]
    fn defaults_fill_an_empty_object() {
        let job = spec("{}").unwrap();
        assert_eq!(job.model, ModelKind::PointNet);
        assert_eq!(job.points, 64);
        assert_eq!(job.steps, 5);
        assert_eq!(job.objective, Objective::NonTargeted);
        assert_eq!(job.priority, Priority::Interactive);
        assert_eq!(job.threads, 1);
        assert!(!job.stream);
        assert!(job.cloud.is_none());
    }

    #[test]
    fn explicit_fields_parse() {
        let job = spec(
            r#"{"model":"resgcn","points":128,"seed":9,"steps":20,
                "goal":"targeted","target":3,"priority":"batch","threads":4,"stream":true}"#,
        )
        .unwrap();
        assert_eq!(job.model, ModelKind::ResGcn);
        assert_eq!(job.points, 128);
        assert_eq!(job.seed, 9);
        assert_eq!(job.objective, Objective::Targeted { target: 3 });
        assert_eq!(job.priority, Priority::Batch);
        assert_eq!(job.threads, 4);
        assert!(job.stream);
        assert_eq!(job.attack_config().steps, 20);
    }

    #[test]
    fn limits_and_vocabulary_are_enforced() {
        assert!(spec(r#"{"model":"transformer"}"#).unwrap_err().contains("unknown model"));
        assert!(spec(r#"{"steps":0}"#).unwrap_err().contains("steps"));
        assert!(spec(r#"{"steps":5000}"#).unwrap_err().contains("steps"));
        assert!(spec(r#"{"points":4}"#).unwrap_err().contains("point count"));
        assert!(spec(r#"{"points":100000}"#).unwrap_err().contains("point count"));
        assert!(spec(r#"{"goal":"targeted"}"#).unwrap_err().contains("target"));
        assert!(spec(r#"{"goal":"targeted","target":99}"#).unwrap_err().contains("classes"));
        assert!(spec(r#"{"priority":"urgent"}"#).unwrap_err().contains("unknown priority"));
        assert!(spec(r#"{"seed":-1}"#).unwrap_err().contains("seed"));
        assert!(spec(r#"[1,2,3]"#).unwrap_err().contains("object"));
    }

    #[test]
    fn objective_ids_parse() {
        assert_eq!(
            spec(r#"{"objective":"targeted(3)"}"#).unwrap().objective,
            Objective::Targeted { target: 3 }
        );
        assert_eq!(
            spec(r#"{"objective":"transfer(0.5)"}"#).unwrap().objective,
            Objective::Transfer { gamma: 0.5 }
        );
        assert_eq!(
            spec(r#"{"objective":"boundary(4)"}"#).unwrap().objective,
            Objective::Boundary { k: 4 }
        );
        assert_eq!(
            spec(r#"{"objective":"noise(4)"}"#).unwrap().objective,
            Objective::NoiseBaseline { l2_sq: 4.0 }
        );
        // Targeted objectives hit the same class-count guard as the
        // legacy fields, and attack_config carries the goal through.
        assert!(spec(r#"{"objective":"targeted(99)"}"#).unwrap_err().contains("classes"));
        let cfg = spec(r#"{"objective":"targeted(3)","steps":7}"#).unwrap().attack_config();
        assert_eq!(cfg.goal, AttackGoal::Targeted { target: 3 });
        assert_eq!(cfg.steps, 7);
    }

    #[test]
    fn unknown_or_conflicting_objectives_are_422() {
        assert!(spec(r#"{"objective":"warp(2)"}"#).unwrap_err().contains("warp"));
        assert!(spec(r#"{"objective":"transfer("}"#).is_err());
        assert!(spec(r#"{"objective":"non_targeted","goal":"non_targeted"}"#)
            .unwrap_err()
            .contains("not both"));
    }

    #[test]
    fn inline_cloud_lifts_to_tensors() {
        // 16 points on a line, alternating two colors.
        let xyz: Vec<String> = (0..16).map(|i| format!("[{}.0, 0.0, 0.0]", i)).collect();
        let colors: Vec<String> = (0..16).map(|i| format!("[{}.0, 0.5, 0.25]", i % 2)).collect();
        let labels: Vec<String> = (0..16).map(|i| format!("{}", i % 13)).collect();
        let body = format!(
            r#"{{"cloud":{{"xyz":[{}],"colors":[{}],"labels":[{}]}}}}"#,
            xyz.join(","),
            colors.join(","),
            labels.join(",")
        );
        let job = spec(&body).unwrap();
        let cloud = job.cloud.as_ref().unwrap();
        assert_eq!(job.effective_points(), 16);
        assert_eq!(cloud.coords[3], Point3::new(3.0, 0.0, 0.0));
        assert_eq!(cloud.colors[(1, 0)], 1.0);
        // loc01 spans [0, 1] on x, collapses to 0.5 on flat axes.
        assert_eq!(cloud.loc01[(0, 0)], 0.0);
        assert_eq!(cloud.loc01[(15, 0)], 1.0);
        assert_eq!(cloud.loc01[(7, 1)], 0.5);
        // Value-level validation is deferred to the intake.
        assert!(colper_attack::validate_clouds(std::slice::from_ref(cloud), NUM_CLASSES).is_ok());
    }

    #[test]
    fn inline_cloud_shape_mismatch_is_rejected() {
        let body = r#"{"cloud":{"xyz":[[0,0,0],[1,1,1]],"colors":[[0,0,0]],"labels":[1,2]}}"#;
        assert!(spec(body).unwrap_err().contains("disagree"));
        let body = r#"{"cloud":{"xyz":[[0,0]],"colors":[[0,0,0]],"labels":[1]}}"#;
        assert!(spec(body).unwrap_err().contains("3 numbers"));
    }
}
