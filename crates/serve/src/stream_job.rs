//! The `POST /stream` heavyweight job class.
//!
//! A stream job materializes an out-of-core tiled outdoor world as
//! memory-mapped column shards in a scratch directory, slides the
//! bounded-memory [`colper_attack::StreamingAttack`] over it under a
//! hard residency budget, and answers with a summary object. Stream
//! jobs are always **batch** priority — they occupy a worker for far
//! longer than a single-cloud attack, so they must never overtake
//! interactive jobs — and they run under the same per-job thread
//! budget discipline as `POST /attack`.
//!
//! ```json
//! {
//!   "model": "pointnet",       // victim zoo entry, same as /attack
//!   "tiles": 2,                // world is tiles x tiles
//!   "points_per_tile": 512,
//!   "steps": 5,                // optimization iterations per window
//!   "window": 256,             // core points per attack window
//!   "windows_per_tile": 4,     // optional cap (default: cover the tile)
//!   "budget_tiles": 2,         // residency budget in tiles
//!   "threads": 1,              // per-job runtime budget
//!   "seed": 7
//! }
//! ```

use crate::json::Json;
use crate::pool::ModelKind;
use crate::proto::MAX_STEPS;
use colper_attack::{AttackConfig, StreamConfig, StreamOutcome, StreamingAttack};
use colper_models::SegmentationModel;
use colper_obs::jf;
use colper_runtime::Runtime;
use colper_scene::tiled::{ShardStore, TiledWorld, TiledWorldConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Widest world a stream job may request, in tiles per side.
pub const MAX_TILES: usize = 8;

/// Most points a stream job may attack across the whole world. Stream
/// jobs are heavyweight by design, but a service must still bound the
/// damage one request can do.
pub const MAX_STREAM_POINTS: usize = 65_536;

/// Fewest points per tile (a window needs a neighborhood).
pub const MIN_TILE_POINTS: usize = 64;

/// A validated streaming-attack job, ready to queue.
#[derive(Debug)]
pub struct StreamSpec {
    /// Victim model.
    pub model: ModelKind,
    /// World side length in tiles.
    pub tiles: usize,
    /// Points generated per tile.
    pub points_per_tile: usize,
    /// Optimization iterations per window.
    pub steps: usize,
    /// Core points per attack window.
    pub window: usize,
    /// Optional cap on windows per tile (default: cover every point).
    pub windows_per_tile: Option<usize>,
    /// Residency budget, in tiles.
    pub budget_tiles: usize,
    /// Requested per-job thread budget.
    pub threads: usize,
    /// World + attack seed.
    pub seed: u64,
}

impl StreamSpec {
    /// Total points in the requested world.
    pub fn total_points(&self) -> usize {
        self.tiles * self.tiles * self.points_per_tile
    }

    /// Parses and validates a stream spec from a decoded JSON value.
    /// `Err` carries a client-readable reason and maps to `422`.
    pub fn from_json(value: &Json) -> Result<StreamSpec, String> {
        let Json::Obj(_) = value else {
            return Err("stream spec must be a JSON object".into());
        };
        let model = match value.get("model") {
            None => ModelKind::PointNet,
            Some(m) => {
                let name = m.as_str().ok_or("\"model\" must be a string")?;
                ModelKind::parse(name).ok_or_else(|| format!("unknown model {name:?}"))?
            }
        };
        let tiles = field_usize(value, "tiles", 2)?;
        if !(1..=MAX_TILES).contains(&tiles) {
            return Err(format!("\"tiles\" must be in 1..={MAX_TILES}, got {tiles}"));
        }
        let points_per_tile = field_usize(value, "points_per_tile", 512)?;
        if points_per_tile < MIN_TILE_POINTS {
            return Err(format!(
                "\"points_per_tile\" must be at least {MIN_TILE_POINTS}, got {points_per_tile}"
            ));
        }
        let total = tiles * tiles * points_per_tile;
        if total > MAX_STREAM_POINTS {
            return Err(format!(
                "world of {total} points exceeds the stream cap of {MAX_STREAM_POINTS}"
            ));
        }
        let steps = field_usize(value, "steps", 5)?;
        if steps == 0 || steps > MAX_STEPS {
            return Err(format!("\"steps\" must be in 1..={MAX_STEPS}, got {steps}"));
        }
        let window = field_usize(value, "window", 256)?;
        if window == 0 {
            return Err("\"window\" must be positive".into());
        }
        let windows_per_tile = match value.get("windows_per_tile") {
            None => None,
            Some(v) => {
                let n = v.as_usize().ok_or("\"windows_per_tile\" must be a positive integer")?;
                if n == 0 {
                    return Err("\"windows_per_tile\" must be positive".into());
                }
                Some(n)
            }
        };
        let budget_tiles = field_usize(value, "budget_tiles", 2)?;
        if budget_tiles == 0 || budget_tiles > tiles * tiles {
            return Err(format!(
                "\"budget_tiles\" must be in 1..={}, got {budget_tiles}",
                tiles * tiles
            ));
        }
        let threads = field_usize(value, "threads", 1)?.max(1);
        let seed = match value.get("seed") {
            None => 0,
            Some(s) => s.as_u64().ok_or("\"seed\" must be a non-negative integer")?,
        };
        Ok(StreamSpec {
            model,
            tiles,
            points_per_tile,
            steps,
            window,
            windows_per_tile,
            budget_tiles,
            threads,
            seed,
        })
    }
}

fn field_usize(value: &Json, name: &str, default: usize) -> Result<usize, String> {
    match value.get(name) {
        None => Ok(default),
        Some(v) => v.as_usize().ok_or_else(|| format!("{name:?} must be a non-negative integer")),
    }
}

/// Serial for scratch directories, so concurrent stream jobs in one
/// process never collide.
static SCRATCH_SERIAL: AtomicU64 = AtomicU64::new(0);

/// Runs a validated stream job: shards a world under a scratch
/// directory, attacks it window by window on `runtime`, removes the
/// scratch, and renders the summary JSON the worker answers with.
pub fn run_stream(
    spec: &StreamSpec,
    model: &dyn SegmentationModel,
    runtime: &Runtime,
) -> Result<String, String> {
    let serial = SCRATCH_SERIAL.fetch_add(1, Ordering::Relaxed);
    let dir: PathBuf =
        std::env::temp_dir().join(format!("colperd-stream-{}-{serial}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let mut world_cfg = TiledWorldConfig::grid(spec.tiles as u32, spec.points_per_tile);
    world_cfg.world_seed = spec.seed;
    let budget_bytes = spec.budget_tiles * world_cfg.tile_bytes();

    let mut cfg = StreamConfig::new(AttackConfig::non_targeted(spec.steps));
    cfg.window_core = spec.window;
    cfg.windows_per_tile = spec.windows_per_tile;
    cfg.seed = spec.seed;

    let result = runtime.install(|| -> Result<StreamOutcome, String> {
        let world =
            TiledWorld::create(&dir, &world_cfg).map_err(|e| format!("cannot shard world: {e}"))?;
        let mut store = ShardStore::new(world, budget_bytes);
        StreamingAttack::new(cfg)
            .runtime(runtime)
            .run(model, &mut store)
            .map_err(|e| format!("stream attack failed: {e}"))
    });
    std::fs::remove_dir_all(&dir).ok();
    let outcome = result?;

    Ok(format!(
        concat!(
            "{{\"model\":\"{}\",\"priority\":\"batch\",\"total_points\":{},",
            "\"tiles\":{},\"windows\":{},\"points_attacked\":{},\"halo_points\":{},",
            "\"clean_accuracy\":{},\"clean_miou\":{},",
            "\"adversarial_accuracy\":{},\"adversarial_miou\":{},",
            "\"attack_success\":{},\"l2_sq\":{},",
            "\"peak_resident_bytes\":{},\"budget_bytes\":{},\"evictions\":{},",
            "\"warm_hit_rate\":{}}}"
        ),
        spec.model.name(),
        spec.total_points(),
        outcome.tiles,
        outcome.windows,
        outcome.points_attacked,
        outcome.halo_points,
        jf(outcome.clean.accuracy()),
        jf(outcome.clean.mean_iou()),
        jf(outcome.adversarial.accuracy()),
        jf(outcome.adversarial.mean_iou()),
        jf(outcome.attack_success()),
        jf(outcome.total_l2_sq),
        outcome.residency.peak_bytes,
        outcome.residency.budget_bytes,
        outcome.residency.evictions,
        jf(outcome.warm_hit_rate()),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(body: &str) -> Result<StreamSpec, String> {
        StreamSpec::from_json(&Json::parse(body).expect("test bodies are valid JSON"))
    }

    #[test]
    fn defaults_fill_an_empty_object() {
        let job = spec("{}").unwrap();
        assert_eq!(job.model, ModelKind::PointNet);
        assert_eq!(job.tiles, 2);
        assert_eq!(job.points_per_tile, 512);
        assert_eq!(job.steps, 5);
        assert_eq!(job.window, 256);
        assert_eq!(job.windows_per_tile, None);
        assert_eq!(job.budget_tiles, 2);
        assert_eq!(job.threads, 1);
        assert_eq!(job.total_points(), 2048);
    }

    #[test]
    fn limits_are_enforced() {
        assert!(spec(r#"{"tiles":0}"#).unwrap_err().contains("tiles"));
        assert!(spec(r#"{"tiles":9}"#).unwrap_err().contains("tiles"));
        assert!(spec(r#"{"points_per_tile":8}"#).unwrap_err().contains("points_per_tile"));
        assert!(spec(r#"{"tiles":8,"points_per_tile":4096}"#).unwrap_err().contains("cap"));
        assert!(spec(r#"{"steps":0}"#).unwrap_err().contains("steps"));
        assert!(spec(r#"{"window":0}"#).unwrap_err().contains("window"));
        assert!(spec(r#"{"windows_per_tile":0}"#).unwrap_err().contains("windows_per_tile"));
        assert!(spec(r#"{"budget_tiles":0}"#).unwrap_err().contains("budget_tiles"));
        assert!(spec(r#"{"tiles":2,"budget_tiles":5}"#).unwrap_err().contains("budget_tiles"));
        assert!(spec(r#"{"model":"transformer"}"#).unwrap_err().contains("unknown model"));
        assert!(spec(r#"[]"#).unwrap_err().contains("object"));
    }

    #[test]
    fn explicit_fields_parse() {
        let job = spec(
            r#"{"model":"resgcn","tiles":3,"points_per_tile":128,"steps":9,
                "window":64,"windows_per_tile":2,"budget_tiles":4,"threads":2,"seed":11}"#,
        )
        .unwrap();
        assert_eq!(job.model, ModelKind::ResGcn);
        assert_eq!(job.tiles, 3);
        assert_eq!(job.points_per_tile, 128);
        assert_eq!(job.steps, 9);
        assert_eq!(job.window, 64);
        assert_eq!(job.windows_per_tile, Some(2));
        assert_eq!(job.budget_tiles, 4);
        assert_eq!(job.threads, 2);
        assert_eq!(job.seed, 11);
    }
}
