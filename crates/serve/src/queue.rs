//! The bounded two-priority job queue behind the intake.
//!
//! Backpressure is the point: the queue has a hard capacity and
//! [`JobQueue::push`] fails instead of blocking when it is full, so the
//! HTTP intake can answer `429` immediately rather than letting latency
//! grow without bound. Two priority classes share the capacity —
//! `interactive` jobs (a human waiting on a socket) always drain before
//! `batch` jobs (sweeps, load generators), with FIFO order inside each
//! class.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

/// Scheduling class of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// A caller is blocked on the result; drains first.
    Interactive,
    /// Throughput work; drains only when no interactive job waits.
    Batch,
}

impl Priority {
    /// Parses the wire name (`"interactive"` / `"batch"`).
    pub fn parse(name: &str) -> Option<Priority> {
        match name {
            "interactive" => Some(Priority::Interactive),
            "batch" => Some(Priority::Batch),
            _ => None,
        }
    }
}

/// Push failure: the queue was at capacity (or shut down); the rejected
/// job is handed back so the caller can answer the client.
#[derive(Debug)]
pub struct Rejected<T>(pub T);

struct Inner<T> {
    interactive: VecDeque<T>,
    batch: VecDeque<T>,
    closed: bool,
}

impl<T> Inner<T> {
    fn len(&self) -> usize {
        self.interactive.len() + self.batch.len()
    }
}

/// A bounded MPMC queue with two strict priority classes.
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// Creates a queue admitting at most `capacity` queued jobs across
    /// both classes (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                interactive: VecDeque::new(),
                batch: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The queue's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues a job, failing immediately (never blocking) when the
    /// queue is full or closed.
    pub fn push(&self, priority: Priority, job: T) -> Result<(), Rejected<T>> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if inner.closed || inner.len() >= self.capacity {
            return Err(Rejected(job));
        }
        match priority {
            Priority::Interactive => inner.interactive.push_back(job),
            Priority::Batch => inner.batch.push_back(job),
        }
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until a job is available (interactive before batch) or the
    /// queue is closed and drained; `None` means "no more work, ever".
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(job) = inner.interactive.pop_front() {
                return Some(job);
            }
            if let Some(job) = inner.batch.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: pending jobs still drain, new pushes fail, and
    /// blocked poppers wake up with `None` once the queue is empty.
    pub fn close(&self) {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).closed = true;
        self.ready.notify_all();
    }

    /// Current `(interactive, batch)` depths.
    pub fn depths(&self) -> (usize, usize) {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        (inner.interactive.len(), inner.batch.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn interactive_always_drains_before_batch() {
        let q = JobQueue::new(8);
        q.push(Priority::Batch, "b1").unwrap();
        q.push(Priority::Interactive, "i1").unwrap();
        q.push(Priority::Batch, "b2").unwrap();
        q.push(Priority::Interactive, "i2").unwrap();
        // Strict priority, FIFO within class.
        assert_eq!(q.pop(), Some("i1"));
        assert_eq!(q.pop(), Some("i2"));
        assert_eq!(q.pop(), Some("b1"));
        q.push(Priority::Interactive, "i3").unwrap();
        assert_eq!(q.pop(), Some("i3"), "late interactive overtakes queued batch");
        assert_eq!(q.pop(), Some("b2"));
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let q = JobQueue::new(2);
        q.push(Priority::Interactive, 1).unwrap();
        q.push(Priority::Batch, 2).unwrap();
        // Capacity is shared across classes.
        let Rejected(job) = q.push(Priority::Interactive, 3).unwrap_err();
        assert_eq!(job, 3, "the rejected job is handed back");
        assert_eq!(q.depths(), (1, 1));
        assert_eq!(q.pop(), Some(1));
        q.push(Priority::Interactive, 4).unwrap();
    }

    #[test]
    fn close_drains_then_wakes_poppers_with_none() {
        let q = Arc::new(JobQueue::new(4));
        q.push(Priority::Batch, 7).unwrap();
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || (q.pop(), q.pop()))
        };
        // Give the waiter a chance to consume the job and block.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(waiter.join().unwrap(), (Some(7), None));
        assert!(q.push(Priority::Interactive, 8).is_err(), "closed queue admits nothing");
        assert_eq!(q.pop(), None);
    }
}
