//! Warm-seat pooling keyed by (model, point-count bucket).
//!
//! Every attack with `gradient_samples == 1` runs its steady-state loop
//! on a single [`WarmSeat`] tape. Tape capacity scales with the model's
//! graph size and the cloud's point count, so seats are pooled per
//! `(model kind, bucket)` where the bucket is the point count rounded up
//! to a power of two — a 700-point job and a 900-point job share the
//! 1024 bucket and therefore reuse each other's arenas, while a
//! 64-point job never inflates its tiny tape to megabytes by inheriting
//! a 4096-point one.

use std::collections::HashMap;
use std::sync::{Mutex, PoisonError};

use colper_attack::WarmSeat;

/// Which pretrained zoo model a job targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// The PointNet segmentation head.
    PointNet,
    /// The residual GCN segmentation head.
    ResGcn,
}

impl ModelKind {
    /// Parses the wire name (`"pointnet"` / `"resgcn"`).
    pub fn parse(name: &str) -> Option<ModelKind> {
        match name {
            "pointnet" => Some(ModelKind::PointNet),
            "resgcn" => Some(ModelKind::ResGcn),
            _ => None,
        }
    }

    /// The wire name.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::PointNet => "pointnet",
            ModelKind::ResGcn => "resgcn",
        }
    }

    /// The other zoo architecture — the transfer objective's penalty
    /// network when this kind is the surrogate.
    pub fn other(&self) -> ModelKind {
        match self {
            ModelKind::PointNet => ModelKind::ResGcn,
            ModelKind::ResGcn => ModelKind::PointNet,
        }
    }
}

/// Rounds a point count up to its pooling bucket.
pub fn bucket_for(points: usize) -> usize {
    points.max(1).next_power_of_two()
}

/// A pool of warm seats, capped per `(model, bucket)` key.
pub struct SeatPool {
    seats: Mutex<HashMap<(ModelKind, usize), Vec<WarmSeat>>>,
    per_key_cap: usize,
}

impl SeatPool {
    /// Creates a pool retaining at most `per_key_cap` idle seats per key
    /// (clamped to at least 1).
    pub fn new(per_key_cap: usize) -> Self {
        Self { seats: Mutex::new(HashMap::new()), per_key_cap: per_key_cap.max(1) }
    }

    /// Takes a seat for `(model, points)`, minting a cold one when no
    /// warm seat is idle in that bucket.
    pub fn checkout(&self, model: ModelKind, points: usize) -> WarmSeat {
        let key = (model, bucket_for(points));
        let mut seats = self.seats.lock().unwrap_or_else(PoisonError::into_inner);
        seats.get_mut(&key).and_then(Vec::pop).unwrap_or_default()
    }

    /// Returns a seat after a job; dropped instead if the bucket already
    /// holds `per_key_cap` idle seats.
    pub fn checkin(&self, model: ModelKind, points: usize, seat: WarmSeat) {
        let key = (model, bucket_for(points));
        let mut seats = self.seats.lock().unwrap_or_else(PoisonError::into_inner);
        let bucket = seats.entry(key).or_default();
        if bucket.len() < self.per_key_cap {
            bucket.push(seat);
        }
    }

    /// Total idle seats across all buckets.
    pub fn idle(&self) -> usize {
        let seats = self.seats.lock().unwrap_or_else(PoisonError::into_inner);
        seats.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_round_up_to_powers_of_two() {
        assert_eq!(bucket_for(0), 1);
        assert_eq!(bucket_for(1), 1);
        assert_eq!(bucket_for(64), 64);
        assert_eq!(bucket_for(65), 128);
        assert_eq!(bucket_for(700), 1024);
        assert_eq!(bucket_for(900), 1024);
    }

    #[test]
    fn checkin_then_checkout_reuses_the_seat_within_a_bucket() {
        let pool = SeatPool::new(4);
        let cold = pool.checkout(ModelKind::PointNet, 700);
        assert!(!cold.is_warm(), "first checkout in a bucket mints a cold seat");
        pool.checkin(ModelKind::PointNet, 700, cold);
        assert_eq!(pool.idle(), 1);
        // 900 points rounds to the same 1024 bucket → same seat back.
        let again = pool.checkout(ModelKind::PointNet, 900);
        assert_eq!(pool.idle(), 0);
        // A different model or bucket mints fresh seats.
        pool.checkin(ModelKind::PointNet, 900, again);
        pool.checkout(ModelKind::ResGcn, 700);
        pool.checkout(ModelKind::PointNet, 64);
        assert_eq!(pool.idle(), 1, "the 1024-bucket PointNet seat stays idle");
    }

    #[test]
    fn per_key_cap_bounds_idle_seats() {
        let pool = SeatPool::new(2);
        for _ in 0..5 {
            pool.checkin(ModelKind::PointNet, 64, WarmSeat::new());
        }
        assert_eq!(pool.idle(), 2, "extra seats beyond the cap are dropped");
    }
}
