//! `colperd`: the attack service itself.
//!
//! Request flow:
//!
//! 1. The accept loop hands each connection to a short-lived intake
//!    thread, which parses the HTTP request and either answers an
//!    introspection endpoint (`/healthz`, `/stats`) or decodes a
//!    [`JobSpec`] from `POST /attack`.
//! 2. Intake validation happens *before* queuing: bytes that are not
//!    JSON → `400`; a spec that blows a limit or inlines a NaN cloud →
//!    `422` (via [`colper_attack::validate_clouds`]); a full queue →
//!    `429`. Only work that can actually run is admitted.
//! 3. Admitted jobs carry their socket into the [`JobQueue`]. Worker
//!    threads drain it (interactive before batch), check a
//!    [`colper_attack::WarmSeat`] out of the [`SeatPool`], run the
//!    attack on the shared
//!    work-stealing [`Runtime`] under the job's thread budget, and
//!    write the response themselves — streamed jobs get per-step
//!    `colper-trace-v1` JSONL lines live via a [`StepSink`].
//!
//! `workers: 0` is supported and deliberate: nothing drains the queue,
//! which makes backpressure deterministic to test.

use std::io::{BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::Instant;

use colper_attack::{validate_clouds, AttackResult, AttackSession};
use colper_models::{CloudTensors, PointNet2, PointNet2Config, ResGcn, ResGcnConfig};
use colper_obs::{jf, Observer, StepRecord, StepSink};
use colper_runtime::Runtime;
use colper_scene::{normalize, IndoorSceneConfig, SceneGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::http::{begin_jsonl_stream, error_body, read_request, respond_json, HttpError, Request};
use crate::json::Json;
use crate::pool::{ModelKind, SeatPool};
use crate::proto::{JobSpec, NUM_CLASSES};
use crate::queue::{JobQueue, Priority, Rejected};
use crate::stats::ServiceStats;
use crate::stream_job::{run_stream, StreamSpec};

/// How `colperd` is shaped.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port `0` picks a free one.
    pub addr: String,
    /// Worker threads draining the queue. `0` is allowed: the queue
    /// fills and the intake answers `429` — useful for testing
    /// backpressure deterministically.
    pub workers: usize,
    /// Size of the shared compute pool jobs are scheduled onto.
    pub threads: usize,
    /// Queue capacity across both priority classes.
    pub queue_capacity: usize,
    /// Idle warm seats retained per `(model, bucket)`.
    pub seat_cap: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7414".to_string(),
            workers: 2,
            threads: 2,
            queue_capacity: 256,
            seat_cap: 4,
        }
    }
}

/// What a queued job will do once a worker picks it up.
enum Spec {
    /// A single-cloud `POST /attack` job.
    Attack(JobSpec),
    /// A heavyweight `POST /stream` out-of-core world attack; always
    /// batch priority.
    Stream(StreamSpec),
}

/// A queued job: the validated spec plus the socket the worker will
/// answer on.
struct Job {
    spec: Spec,
    stream: TcpStream,
    queued_at: Instant,
}

/// The pretrained victim zoo, built once with fixed seeds so every job
/// against the same model attacks identical weights.
struct Zoo {
    pointnet: PointNet2,
    resgcn: ResGcn,
}

impl Zoo {
    fn new() -> Self {
        let mut rng = StdRng::seed_from_u64(42);
        let pointnet = PointNet2::new(PointNet2Config::tiny(NUM_CLASSES), &mut rng);
        let mut rng = StdRng::seed_from_u64(43);
        let resgcn = ResGcn::new(ResGcnConfig::tiny(NUM_CLASSES), &mut rng);
        Self { pointnet, resgcn }
    }
}

/// Shared state every intake and worker thread sees.
struct Ctx {
    queue: JobQueue<Job>,
    stats: ServiceStats,
    seats: SeatPool,
    zoo: Zoo,
    runtime: Runtime,
    shutdown: AtomicBool,
}

/// A [`StepSink`] that writes each record to the client's socket as a
/// `colper-trace-v1` `step` line, flushed per line so the client sees
/// progress while the attack runs.
struct SocketSink {
    stream: Mutex<TcpStream>,
}

impl StepSink for SocketSink {
    fn on_step(&self, cloud: usize, record: &StepRecord) {
        let mut stream = self.stream.lock().unwrap_or_else(PoisonError::into_inner);
        let body = record.to_json();
        // Splice the cloud index in, matching the file sink's format.
        let _ = writeln!(stream, "{{\"type\":\"step\",\"cloud\":{},{}", cloud, &body[1..]);
        let _ = stream.flush();
    }
}

/// A running `colperd` instance. Dropping it without [`Server::stop`]
/// leaves threads running; tests and binaries should call `stop`.
pub struct Server {
    local_addr: SocketAddr,
    ctx: Arc<Ctx>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, builds the model zoo, and spawns the accept loop plus
    /// `config.workers` worker threads.
    pub fn start(config: &ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let ctx = Arc::new(Ctx {
            queue: JobQueue::new(config.queue_capacity),
            stats: ServiceStats::default(),
            seats: SeatPool::new(config.seat_cap),
            zoo: Zoo::new(),
            runtime: Runtime::new(config.threads.max(1)),
            shutdown: AtomicBool::new(false),
        });

        let workers = (0..config.workers)
            .map(|i| {
                let ctx = Arc::clone(&ctx);
                thread::Builder::new()
                    .name(format!("colperd-worker-{i}"))
                    .spawn(move || worker_loop(&ctx))
                    .expect("spawn worker thread")
            })
            .collect();

        let accept = {
            let ctx = Arc::clone(&ctx);
            thread::Builder::new()
                .name("colperd-accept".to_string())
                .spawn(move || accept_loop(&listener, &ctx))
                .expect("spawn accept thread")
        };

        Ok(Server { local_addr, ctx, accept: Some(accept), workers })
    }

    /// The address the server actually bound (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, drains nothing further, and joins all threads.
    /// Queued-but-unstarted jobs are dropped; their clients see the
    /// connection close.
    pub fn stop(mut self) {
        self.ctx.shutdown.store(true, Ordering::SeqCst);
        self.ctx.queue.close();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, ctx: &Arc<Ctx>) {
    for stream in listener.incoming() {
        if ctx.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let ctx = Arc::clone(ctx);
        // Intake threads are short-lived: they parse, validate, and
        // either respond immediately or hand the socket to the queue.
        let _ = thread::Builder::new()
            .name("colperd-intake".to_string())
            .spawn(move || handle_connection(stream, &ctx));
    }
}

fn handle_connection(stream: TcpStream, ctx: &Ctx) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut stream = stream;
    let request = match read_request(&mut reader) {
        Ok(request) => request,
        Err(HttpError::Io(_)) => return,
        Err(HttpError::Malformed(reason)) => {
            ServiceStats::incr(&ctx.stats.rejected_malformed);
            let _ = respond_json(&mut stream, 400, &error_body(reason));
            return;
        }
    };
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let _ = respond_json(&mut stream, 200, "{\"status\":\"ok\"}");
        }
        ("GET", "/stats") => {
            let (interactive, batch) = ctx.queue.depths();
            let body = ctx.stats.to_json(interactive, batch, ctx.seats.idle());
            let _ = respond_json(&mut stream, 200, &body);
        }
        ("POST", "/attack") => intake_attack(stream, &request, ctx),
        ("POST", "/stream") => intake_stream(stream, &request, ctx),
        (_, "/healthz" | "/stats" | "/attack" | "/stream") => {
            let _ = respond_json(&mut stream, 405, &error_body("method not allowed"));
        }
        _ => {
            let _ = respond_json(&mut stream, 404, &error_body("unknown endpoint"));
        }
    }
}

fn intake_attack(mut stream: TcpStream, request: &Request, ctx: &Ctx) {
    let Ok(text) = std::str::from_utf8(&request.body) else {
        ServiceStats::incr(&ctx.stats.rejected_malformed);
        let _ = respond_json(&mut stream, 400, &error_body("body is not UTF-8"));
        return;
    };
    let value = match Json::parse(text) {
        Ok(value) => value,
        Err(err) => {
            ServiceStats::incr(&ctx.stats.rejected_malformed);
            let _ = respond_json(&mut stream, 400, &error_body(&err.to_string()));
            return;
        }
    };
    let spec = match JobSpec::from_json(&value) {
        Ok(spec) => spec,
        Err(reason) => {
            ServiceStats::incr(&ctx.stats.rejected_invalid);
            let _ = respond_json(&mut stream, 422, &error_body(&reason));
            return;
        }
    };
    // Value-level validation of inline clouds (finite coordinates,
    // colors in [0, 1], labels in range) — same typed errors the
    // library's `try_run` reports, surfaced before the job queues.
    if let Some(cloud) = &spec.cloud {
        if let Err(err) = validate_clouds(std::slice::from_ref(cloud), NUM_CLASSES) {
            ServiceStats::incr(&ctx.stats.rejected_invalid);
            let _ = respond_json(&mut stream, 422, &error_body(&err.to_string()));
            return;
        }
    }

    let priority = spec.priority;
    enqueue(Job { spec: Spec::Attack(spec), stream, queued_at: Instant::now() }, priority, ctx);
}

/// `POST /stream`: the heavyweight job class. The same intake
/// discipline as `/attack` (not-JSON → 400, bad spec → 422, full
/// queue → 429), but admitted jobs always queue at batch priority so a
/// world-scale attack can never overtake interactive work.
fn intake_stream(mut stream: TcpStream, request: &Request, ctx: &Ctx) {
    let Ok(text) = std::str::from_utf8(&request.body) else {
        ServiceStats::incr(&ctx.stats.rejected_malformed);
        let _ = respond_json(&mut stream, 400, &error_body("body is not UTF-8"));
        return;
    };
    let value = match Json::parse(text) {
        Ok(value) => value,
        Err(err) => {
            ServiceStats::incr(&ctx.stats.rejected_malformed);
            let _ = respond_json(&mut stream, 400, &error_body(&err.to_string()));
            return;
        }
    };
    let spec = match StreamSpec::from_json(&value) {
        Ok(spec) => spec,
        Err(reason) => {
            ServiceStats::incr(&ctx.stats.rejected_invalid);
            let _ = respond_json(&mut stream, 422, &error_body(&reason));
            return;
        }
    };
    let job = Job { spec: Spec::Stream(spec), stream, queued_at: Instant::now() };
    enqueue(job, Priority::Batch, ctx);
}

fn enqueue(job: Job, priority: Priority, ctx: &Ctx) {
    match ctx.queue.push(priority, job) {
        Ok(()) => ServiceStats::incr(&ctx.stats.accepted),
        Err(Rejected(job)) => {
            ServiceStats::incr(&ctx.stats.rejected_full);
            let mut stream = job.stream;
            let _ = respond_json(&mut stream, 429, &error_body("queue full, retry later"));
        }
    }
}

fn worker_loop(ctx: &Ctx) {
    while let Some(job) = ctx.queue.pop() {
        run_job(job, ctx);
    }
}

fn run_job(job: Job, ctx: &Ctx) {
    let Job { spec, stream, queued_at } = job;
    match spec {
        Spec::Attack(spec) => run_attack_job(spec, stream, queued_at, ctx),
        Spec::Stream(spec) => run_stream_job(&spec, stream, queued_at, ctx),
    }
}

/// Runs a heavyweight `POST /stream` job: the world is sharded to a
/// scratch directory, attacked window by window on the shared pool
/// under the job's thread budget, and the scratch removed before the
/// summary goes out.
fn run_stream_job(spec: &StreamSpec, mut stream: TcpStream, queued_at: Instant, ctx: &Ctx) {
    let queue_ms = queued_at.elapsed().as_secs_f64() * 1e3;
    let budget = spec.threads.clamp(1, ctx.runtime.threads().max(1));
    let rt = ctx.runtime.clone().with_budget(budget);
    let model: &dyn colper_models::SegmentationModel = match spec.model {
        ModelKind::PointNet => &ctx.zoo.pointnet,
        ModelKind::ResGcn => &ctx.zoo.resgcn,
    };
    let run_started = Instant::now();
    match run_stream(spec, model, &rt) {
        Ok(body) => {
            ServiceStats::incr(&ctx.stats.completed);
            ServiceStats::incr(&ctx.stats.stream_completed);
            let run_ms = run_started.elapsed().as_secs_f64() * 1e3;
            // Splice the timings into the summary object.
            let timed = format!(
                "{},\"queue_ms\":{queue_ms:.3},\"run_ms\":{run_ms:.3}}}",
                &body[..body.len() - 1]
            );
            let _ = respond_json(&mut stream, 200, &timed);
        }
        Err(reason) => {
            let _ = respond_json(&mut stream, 500, &error_body(&reason));
        }
    }
}

fn run_attack_job(spec: JobSpec, mut stream: TcpStream, queued_at: Instant, ctx: &Ctx) {
    let queue_ms = queued_at.elapsed().as_secs_f64() * 1e3;

    // Materialize the cloud: inline if supplied, else a synthetic indoor
    // scene normalized the way the victim expects. A transfer objective
    // also gets the penalty network's own view of the same scene (both
    // views preserve point order, so the shared color variable is
    // sound); inline clouds arrive pre-normalized, so the penalty
    // network sees the surrogate's view there.
    let view_of = |scene: &_, kind: ModelKind| {
        CloudTensors::from_cloud(&match kind {
            ModelKind::PointNet => normalize::pointnet_view(scene),
            ModelKind::ResGcn => normalize::resgcn_view(scene),
        })
    };
    let (cloud, penalty_view) = match &spec.cloud {
        Some(cloud) => (cloud.clone(), None),
        None => {
            let scene = SceneGenerator::indoor(IndoorSceneConfig::with_points(spec.points))
                .generate(spec.seed);
            let penalty =
                spec.objective.needs_penalty_model().then(|| view_of(&scene, spec.model.other()));
            (view_of(&scene, spec.model), penalty)
        }
    };

    let mut seat = ctx.seats.checkout(spec.model, cloud.len());
    let was_warm = seat.is_warm();
    let budget = spec.threads.clamp(1, ctx.runtime.threads().max(1));
    let rt = ctx.runtime.clone().with_budget(budget);
    let mut rng = StdRng::seed_from_u64(spec.seed);

    let sink = spec.stream.then(|| {
        stream.try_clone().ok().map(|clone| Arc::new(SocketSink { stream: Mutex::new(clone) }))
    });
    let sink = sink.flatten();
    let observer = match &sink {
        Some(sink) => {
            // A failed write means the client left; run anyway so the
            // seat still warms up.
            let _ = begin_jsonl_stream(&mut stream);
            let meta = format!(
                "{{\"type\":\"meta\",\"schema\":\"colper-trace-v1\",\"attacks\":1,\
                 \"model\":\"{}\",\"points\":{},\"max_steps\":{}}}",
                spec.model.name(),
                cloud.len(),
                spec.steps,
            );
            let _ = writeln!(stream, "{meta}");
            let _ = stream.flush();
            Observer::with_sink(Arc::clone(sink) as Arc<dyn StepSink>)
        }
        None => Observer::disabled(),
    };

    let run_started = Instant::now();
    let mut session = AttackSession::new(spec.attack_config())
        .runtime(&rt)
        .observer(&observer)
        .objective(spec.objective.clone());
    if spec.objective.needs_penalty_model() {
        let penalty: &dyn colper_models::SegmentationModel = match spec.model.other() {
            ModelKind::PointNet => &ctx.zoo.pointnet,
            ModelKind::ResGcn => &ctx.zoo.resgcn,
        };
        session = session.penalty_model(penalty);
        if let Some(view) = &penalty_view {
            session = session.penalty_view(view);
        }
    }
    let result = match spec.model {
        ModelKind::PointNet => {
            session.run_with_rng_seated(&ctx.zoo.pointnet, &cloud, &mut rng, &mut seat)
        }
        ModelKind::ResGcn => {
            session.run_with_rng_seated(&ctx.zoo.resgcn, &cloud, &mut rng, &mut seat)
        }
    };
    let run_ms = run_started.elapsed().as_secs_f64() * 1e3;

    ctx.seats.checkin(spec.model, cloud.len(), seat);
    ServiceStats::incr(&ctx.stats.completed);
    if was_warm {
        ServiceStats::incr(&ctx.stats.warm_starts);
    }

    let body = result_json(&spec, &result, was_warm, queue_ms, run_ms);
    if spec.stream {
        // The head already went out; append the result as the final
        // JSONL line and let Connection: close end the stream.
        let _ = writeln!(stream, "{{\"type\":\"result\",{}", &body[1..]);
        let _ = stream.flush();
    } else {
        let _ = respond_json(&mut stream, 200, &body);
    }
}

fn result_json(
    spec: &JobSpec,
    result: &AttackResult,
    warm_start: bool,
    queue_ms: f64,
    run_ms: f64,
) -> String {
    format!(
        concat!(
            "{{\"model\":\"{}\",\"objective\":\"{}\",\"points\":{},\"steps_run\":{},",
            "\"converged\":{},",
            "\"success_metric\":{},\"l2_sq\":{},\"attacked_points\":{},\"restarts\":{},",
            "\"warm_start\":{},\"queue_ms\":{:.3},\"run_ms\":{:.3}}}"
        ),
        spec.model.name(),
        spec.objective.id(),
        spec.effective_points(),
        result.steps_run,
        result.converged,
        jf(result.success_metric),
        jf(result.l2_sq),
        result.attacked_points,
        result.restarts,
        warm_start,
        queue_ms,
        run_ms,
    )
}
