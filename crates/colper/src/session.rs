//! The unified attack entry point: [`AttackSession`].
//!
//! Historically the crate grew five ways to launch an attack
//! (`Colper::run`, `run_planned`, `run_batch`, `run_batch_non_targeted`,
//! `run_batch_targeted`), each threading a different subset of runtime /
//! plan / seed / mask through its signature. `AttackSession` collapses
//! them into one builder: a single-cloud attack is simply the 1-element
//! batch case.
//!
//! ```no_run
//! use colper_attack::{AttackConfig, AttackSession};
//! use colper_models::{CloudTensors, PointNet2, PointNet2Config};
//! use colper_obs::Observer;
//! use colper_runtime::Runtime;
//! use colper_scene::{normalize, IndoorSceneConfig, SceneGenerator};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let cloud = SceneGenerator::indoor(IndoorSceneConfig::with_points(256)).generate(1);
//! let tensors = CloudTensors::from_cloud(&normalize::pointnet_view(&cloud));
//! let model = PointNet2::new(PointNet2Config::small(13), &mut rng);
//! let rt = Runtime::new(4);
//! let obs = Observer::from_env();
//! let outcome = AttackSession::new(AttackConfig::non_targeted(64))
//!     .runtime(&rt)
//!     .observer(&obs)
//!     .seed(7)
//!     .run(&model, std::slice::from_ref(&tensors));
//! println!("adv accuracy: {}", outcome.adversarial_accuracy.mean);
//! ```

use crate::attack::PenaltyRun;
use crate::{
    AttackConfig, AttackPlan, AttackResult, BatchItem, BatchOutcome, Colper, NoiseBaseline,
    Objective, SessionError, WarmSeat,
};
use colper_geom::knn_graph;
use colper_metrics::ConfusionMatrix;
use colper_models::{CloudTensors, SegmentationModel};
use colper_obs::Observer;
use colper_runtime::Runtime;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// How the session derives each cloud's attacked-point mask.
enum MaskSelector<'a> {
    /// Attack every point (the paper's non-targeted setting).
    All,
    /// Attack the points whose ground-truth label equals the class (the
    /// paper's targeted setting).
    SourceClass(usize),
    /// Arbitrary per-cloud mask.
    Custom(&'a (dyn Fn(&CloudTensors) -> Vec<bool> + Sync)),
}

/// Builder for attack runs: configure once, run over one cloud or many.
///
/// Defaults: sequential [`Runtime`] (deferring to the ambient one inside
/// the optimizer, exactly like [`Colper::new`]), no pre-built plan, a
/// disabled [`Observer`], seed 0, and an all-points mask.
///
/// Per-cloud RNGs derive from `seed + cloud_index`, so outcomes are
/// reproducible and independent of the runtime's thread count and
/// schedule — matching the former `run_batch` contract.
pub struct AttackSession<'a> {
    config: AttackConfig,
    runtime: Runtime,
    plan: Option<&'a AttackPlan>,
    observer: Observer,
    base_seed: u64,
    mask: MaskSelector<'a>,
    objective: Option<Objective>,
    penalty_model: Option<&'a dyn SegmentationModel>,
    penalty_view: Option<&'a CloudTensors>,
}

impl<'a> AttackSession<'a> {
    /// Starts a session with the given attack configuration.
    pub fn new(config: AttackConfig) -> Self {
        Self {
            config,
            runtime: Runtime::sequential(),
            plan: None,
            observer: Observer::disabled(),
            base_seed: 0,
            mask: MaskSelector::All,
            objective: None,
            penalty_model: None,
            penalty_view: None,
        }
    }

    /// Attaches a compute runtime: clouds are scheduled over it as
    /// stealable tasks, one per cloud.
    #[must_use]
    pub fn runtime(mut self, runtime: &Runtime) -> Self {
        self.runtime = runtime.clone();
        self
    }

    /// Attaches a pre-built [`AttackPlan`]. Only valid for single-cloud
    /// runs ([`AttackSession::run`] panics otherwise) — a plan caches one
    /// cloud's geometry.
    #[must_use]
    pub fn plan(mut self, plan: &'a AttackPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Attaches an observer collecting per-step telemetry (records only
    /// while global tracing is on — see [`colper_obs::enabled`]).
    #[must_use]
    pub fn observer(mut self, observer: &Observer) -> Self {
        self.observer = observer.clone();
        self
    }

    /// Sets the base seed; cloud `i` draws from `seed + i`.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Attacks every point of every cloud (the default).
    #[must_use]
    pub fn mask_all(mut self) -> Self {
        self.mask = MaskSelector::All;
        self
    }

    /// Attacks the points labeled `source` in each cloud.
    #[must_use]
    pub fn mask_source_class(mut self, source: usize) -> Self {
        self.mask = MaskSelector::SourceClass(source);
        self
    }

    /// Derives each cloud's mask with `mask_of`.
    #[must_use]
    pub fn mask_with(mut self, mask_of: &'a (dyn Fn(&CloudTensors) -> Vec<bool> + Sync)) -> Self {
        self.mask = MaskSelector::Custom(mask_of);
        self
    }

    /// Selects what the attacker optimizes for (see [`Objective`]). The
    /// objective's goal overrides the configuration's
    /// [`crate::AttackGoal`]; a session without an objective behaves
    /// exactly as before (the configuration's goal stands, RNG streams
    /// bit-identical).
    ///
    /// [`Objective::Boundary`] intersects the session's mask selector
    /// with the ground-truth label-boundary mask;
    /// [`Objective::NoiseBaseline`] skips the optimization loop and
    /// draws one L2-matched noise sample; [`Objective::Transfer`]
    /// requires a penalty model
    /// ([`AttackSession::penalty_model`]).
    #[must_use]
    pub fn objective(mut self, objective: Objective) -> Self {
        self.objective = Some(objective);
        self
    }

    /// Attaches the second network of the [`Objective::Transfer`]
    /// objective (AdvPC's penalty network). Ignored by other objectives.
    #[must_use]
    pub fn penalty_model(mut self, model: &'a dyn SegmentationModel) -> Self {
        self.penalty_model = Some(model);
        self
    }

    /// Attaches the penalty network's own normalized view of the
    /// attacked cloud (same point order — views rescale coordinates
    /// only). Without it the penalty network sees the surrogate's view.
    #[must_use]
    pub fn penalty_view(mut self, tensors: &'a CloudTensors) -> Self {
        self.penalty_view = Some(tensors);
        self
    }

    /// The configuration the engine runs under: the objective's goal
    /// (when one is set) overrides the configured goal.
    fn effective_config(&self) -> AttackConfig {
        let mut cfg = self.config.clone();
        if let Some(objective) = &self.objective {
            cfg.goal = objective.goal();
        }
        cfg
    }

    /// The cloud's attacked-point mask: the session's selector,
    /// intersected with the label-boundary mask under
    /// [`Objective::Boundary`].
    fn mask_for(&self, t: &CloudTensors) -> Vec<bool> {
        let mut mask = match &self.mask {
            MaskSelector::All => vec![true; t.len()],
            MaskSelector::SourceClass(source) => t.labels.iter().map(|l| l == source).collect(),
            MaskSelector::Custom(mask_of) => mask_of(t),
        };
        if let Some(Objective::Boundary { k }) = self.objective {
            let boundary = boundary_mask(t, k);
            for (m, b) in mask.iter_mut().zip(boundary) {
                *m = *m && b;
            }
        }
        mask
    }

    /// The transfer penalty handed to the engine, when the objective
    /// asks for one.
    ///
    /// # Panics
    ///
    /// Panics when the transfer objective is set without a penalty
    /// model.
    fn penalty_run(&self) -> Option<PenaltyRun<'a>> {
        match self.objective {
            Some(Objective::Transfer { gamma }) => Some(PenaltyRun {
                model: self
                    .penalty_model
                    .expect("transfer objective requires a penalty model (penalty_model)"),
                tensors: self.penalty_view,
                gamma,
            }),
            _ => None,
        }
    }

    /// Runs the attack on one cloud drawing noise from the caller's RNG,
    /// for callers that thread one RNG stream through a longer procedure
    /// (adversarial training interleaves attacks with weight updates and
    /// must not reseed per cloud). Uses the session's plan when attached,
    /// and its mask selector; the observer reports the cloud as index 0.
    ///
    /// Unlike [`AttackSession::run`], no clean prediction is made and no
    /// per-cloud seed is derived — the RNG stream is bit-identical to the
    /// former `Colper::run` entry point.
    ///
    /// # Panics
    ///
    /// Panics when the mask selects no points, when an attached plan was
    /// built for a different cloud, or when the configuration is invalid
    /// for the model's class count.
    pub fn run_with_rng<M: SegmentationModel + ?Sized>(
        &self,
        model: &M,
        cloud: &CloudTensors,
        rng: &mut StdRng,
    ) -> AttackResult {
        let cfg = self.effective_config();
        let mask = self.mask_for(cloud);
        if let Some(Objective::NoiseBaseline { l2_sq }) = self.objective {
            return NoiseBaseline::new(l2_sq).run(model, cloud, &mask, rng);
        }
        let built;
        let plan = match self.plan {
            Some(plan) => plan,
            None => {
                built = AttackPlan::build(model, cloud, &cfg);
                &built
            }
        };
        Colper::new(cfg).with_runtime(self.runtime.clone()).run_planned_obs_full(
            model,
            cloud,
            &mask,
            plan,
            rng,
            &self.observer,
            0,
            None,
            self.penalty_run().as_ref(),
        )
    }

    /// [`AttackSession::run_with_rng`] on a [`WarmSeat`]: the run resumes
    /// on the seat's donated tape (if any) and donates its own tape back
    /// when it finishes, so repeated attacks on same-shaped clouds skip
    /// the first-step allocation burst. Bit-identical to the seatless
    /// entry point — the seat recycles buffer pools, never state.
    pub fn run_with_rng_seated<M: SegmentationModel + ?Sized>(
        &self,
        model: &M,
        cloud: &CloudTensors,
        rng: &mut StdRng,
        seat: &mut WarmSeat,
    ) -> AttackResult {
        let cfg = self.effective_config();
        let mask = self.mask_for(cloud);
        if let Some(Objective::NoiseBaseline { l2_sq }) = self.objective {
            return NoiseBaseline::new(l2_sq).run(model, cloud, &mask, rng);
        }
        let built;
        let plan = match self.plan {
            Some(plan) => plan,
            None => {
                built = AttackPlan::build(model, cloud, &cfg);
                &built
            }
        };
        Colper::new(cfg).with_runtime(self.runtime.clone()).run_planned_obs_full(
            model,
            cloud,
            &mask,
            plan,
            rng,
            &self.observer,
            0,
            Some(seat),
            self.penalty_run().as_ref(),
        )
    }

    /// Runs the attack over `clouds`, one stealable task per cloud, and
    /// aggregates the outcome. Single-cloud attacks are the 1-element
    /// case: `session.run(&model, std::slice::from_ref(&tensors))`.
    ///
    /// # Panics
    ///
    /// Panics on any input [`AttackSession::try_run`] rejects, and when a
    /// mask selects no points or the configuration is invalid for the
    /// model's class count.
    pub fn run<M: SegmentationModel + ?Sized>(
        &self,
        model: &M,
        clouds: &[CloudTensors],
    ) -> BatchOutcome {
        match self.try_run(model, clouds) {
            Ok(outcome) => outcome,
            Err(err) => panic!("{err}"),
        }
    }

    /// Validates the batch and runs the attack, returning a typed
    /// [`SessionError`] instead of propagating garbage gradients when a
    /// cloud carries NaN/inf coordinates, colors outside `[0, 1]`, or
    /// out-of-range labels. The service intake maps these errors to
    /// client faults.
    pub fn try_run<M: SegmentationModel + ?Sized>(
        &self,
        model: &M,
        clouds: &[CloudTensors],
    ) -> Result<BatchOutcome, SessionError> {
        crate::validate_clouds(clouds, model.num_classes())?;
        if self.plan.is_some() && clouds.len() != 1 {
            return Err(SessionError::PlanNeedsSingleCloud { clouds: clouds.len() });
        }
        let classes = model.num_classes();
        let cfg = self.effective_config();

        let items: Vec<BatchItem> = self.runtime.par_map_grained(clouds.len(), 1, |index| {
            let _cloud_span = colper_obs::span!(BATCH_CLOUD);
            colper_obs::counters::BATCH_CLOUDS.incr();
            let t = &clouds[index];
            let mut rng = StdRng::seed_from_u64(self.base_seed.wrapping_add(index as u64));
            // One plan per cloud serves the clean prediction and every
            // attack iteration.
            let built;
            let plan = match self.plan {
                Some(plan) => plan,
                None => {
                    built = AttackPlan::build(model, t, &cfg);
                    &built
                }
            };
            let clean_preds = colper_models::predict_planned(model, t, plan.geometry(), &mut rng);
            let mut cm = ConfusionMatrix::new(classes);
            cm.update(&clean_preds, &t.labels);
            let clean_accuracy = cm.accuracy();

            let mask = self.mask_for(t);
            let result = if let Some(Objective::NoiseBaseline { l2_sq }) = self.objective {
                NoiseBaseline::new(l2_sq).run(model, t, &mask, &mut rng)
            } else {
                Colper::new(cfg.clone()).run_planned_obs_full(
                    model,
                    t,
                    &mask,
                    plan,
                    &mut rng,
                    &self.observer,
                    index,
                    None,
                    self.penalty_run().as_ref(),
                )
            };
            let mut cm = ConfusionMatrix::new(classes);
            cm.update(&result.predictions, &t.labels);
            BatchItem {
                clean_accuracy,
                adversarial_accuracy: cm.accuracy(),
                adversarial_miou: cm.mean_iou(),
                result,
            }
        });
        Ok(BatchOutcome::aggregate(items))
    }
}

/// Points within `k` nearest neighbors of a ground-truth label boundary:
/// a point is boundary when any of its `k` nearest spatial neighbors
/// carries a different label (1908.06062's boundary regions, under the
/// color-only threat model).
fn boundary_mask(t: &CloudTensors, k: usize) -> Vec<bool> {
    let k = k.max(1).min(t.len());
    let graph = knn_graph(&t.coords, k);
    (0..t.len()).map(|i| (0..k).any(|j| t.labels[graph[i * k + j]] != t.labels[i])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttackResult;
    use colper_models::{PointNet2, PointNet2Config};
    use colper_scene::{normalize, IndoorSceneConfig, SceneGenerator};

    fn clouds(n: u64) -> Vec<CloudTensors> {
        (0..n)
            .map(|i| {
                let c = SceneGenerator::indoor(IndoorSceneConfig::with_points(96)).generate(i);
                CloudTensors::from_cloud(&normalize::pointnet_view(&c))
            })
            .collect()
    }

    #[test]
    fn custom_all_points_mask_matches_the_default() {
        let mut rng = StdRng::seed_from_u64(0);
        let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        let data = clouds(3);
        let cfg = AttackConfig::non_targeted(3);
        let by_default =
            AttackSession::new(cfg.clone()).runtime(&Runtime::new(2)).seed(7).run(&model, &data);
        let all = |t: &CloudTensors| vec![true; t.len()];
        let by_closure = AttackSession::new(cfg)
            .runtime(&Runtime::new(2))
            .seed(7)
            .mask_with(&all)
            .run(&model, &data);
        assert_eq!(by_default, by_closure);
    }

    #[test]
    fn single_cloud_is_the_one_element_batch_and_matches_run_with_rng() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        let data = clouds(1);
        let cfg = AttackConfig::non_targeted(4);
        let outcome = AttackSession::new(cfg.clone()).seed(11).run(&model, &data);
        assert_eq!(outcome.items.len(), 1);

        // The session seeds cloud 0 with `seed + 0` *and* uses the same
        // RNG for the clean prediction first — reproduce that stream.
        let mut rng2 = StdRng::seed_from_u64(11);
        let plan = AttackPlan::build(&model, &data[0], &cfg);
        let _clean = colper_models::predict_planned(&model, &data[0], plan.geometry(), &mut rng2);
        let direct: AttackResult =
            AttackSession::new(cfg).plan(&plan).run_with_rng(&model, &data[0], &mut rng2);
        assert_eq!(outcome.items[0].result, direct);
    }

    #[test]
    fn source_class_mask_matches_custom_closure() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        let data = clouds(2);
        // Pick a label present in both clouds.
        let source = data[0].labels[0];
        if !data[1].labels.contains(&source) {
            return;
        }
        let cfg = AttackConfig::non_targeted(2);
        let by_variant =
            AttackSession::new(cfg.clone()).mask_source_class(source).run(&model, &data);
        let mask_of = move |t: &CloudTensors| -> Vec<bool> {
            t.labels.iter().map(|&l| l == source).collect()
        };
        let by_closure = AttackSession::new(cfg).mask_with(&mask_of).run(&model, &data);
        assert_eq!(by_variant, by_closure);
    }

    #[test]
    fn seated_runs_match_seatless_runs() {
        let mut rng = StdRng::seed_from_u64(9);
        let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        let data = clouds(1);
        let cfg = AttackConfig::non_targeted(3);
        let session = AttackSession::new(cfg);
        let mut seat = crate::WarmSeat::new();
        // Two seated runs: the second resumes on the first one's donated
        // tape (and, with scheduling on, its captured schedule). Both must
        // be bit-identical to seatless runs on the same RNG streams.
        for seed in [5u64, 5u64] {
            let mut rng_a = StdRng::seed_from_u64(seed);
            let a = session.run_with_rng(&model, &data[0], &mut rng_a);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let b = session.run_with_rng_seated(&model, &data[0], &mut rng_b, &mut seat);
            assert_eq!(a, b);
            // Both consume the same amount of randomness.
            assert_eq!(rng_a, rng_b);
        }
        assert!(seat.is_warm());
        assert_eq!(seat.warm_starts(), 1);
    }

    #[test]
    fn try_run_rejects_nan_coordinates_with_typed_error() {
        let mut rng = StdRng::seed_from_u64(5);
        let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        let mut data = clouds(1);
        data[0].coords[3].x = f32::NAN;
        let err =
            AttackSession::new(AttackConfig::non_targeted(2)).try_run(&model, &data).unwrap_err();
        assert!(matches!(
            err,
            crate::SessionError::NonFiniteCoordinate { cloud: 0, point: 3, axis: 0, .. }
        ));
    }

    #[test]
    fn try_run_rejects_out_of_range_colors() {
        let mut rng = StdRng::seed_from_u64(6);
        let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        let mut data = clouds(1);
        data[0].colors.as_mut_slice()[4] = -0.25;
        let err =
            AttackSession::new(AttackConfig::non_targeted(2)).try_run(&model, &data).unwrap_err();
        assert!(matches!(err, crate::SessionError::ColorOutOfRange { .. }));
    }

    #[test]
    fn try_run_matches_run_on_valid_input() {
        let mut rng = StdRng::seed_from_u64(7);
        let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        let data = clouds(1);
        let cfg = AttackConfig::non_targeted(2);
        let a = AttackSession::new(cfg.clone()).seed(3).try_run(&model, &data).unwrap();
        let b = AttackSession::new(cfg).seed(3).run(&model, &data);
        assert_eq!(a, b);
    }

    #[test]
    fn explicit_non_targeted_objective_matches_legacy_path() {
        let mut rng = StdRng::seed_from_u64(20);
        let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        let data = clouds(1);
        let cfg = AttackConfig::non_targeted(4);
        let legacy = AttackSession::new(cfg.clone()).run_with_rng(
            &model,
            &data[0],
            &mut StdRng::seed_from_u64(3),
        );
        let via_objective = AttackSession::new(cfg)
            .objective(crate::Objective::NonTargeted)
            .run_with_rng(&model, &data[0], &mut StdRng::seed_from_u64(3));
        assert_eq!(legacy, via_objective);
    }

    #[test]
    fn noise_objective_runs_the_matched_baseline() {
        let mut rng = StdRng::seed_from_u64(21);
        let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        let data = clouds(1);
        let by_objective = AttackSession::new(AttackConfig::non_targeted(4))
            .objective(crate::Objective::NoiseBaseline { l2_sq: 0.5 })
            .run_with_rng(&model, &data[0], &mut StdRng::seed_from_u64(8));
        let direct = crate::NoiseBaseline::new(0.5).run(
            &model,
            &data[0],
            &vec![true; data[0].len()],
            &mut StdRng::seed_from_u64(8),
        );
        assert_eq!(by_objective, direct);
        assert_eq!(by_objective.steps_run, 1);
        assert!(by_objective.l2_sq > 0.0);
    }

    #[test]
    fn boundary_objective_freezes_interior_points() {
        let mut rng = StdRng::seed_from_u64(22);
        let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        let data = clouds(1);
        let t = &data[0];
        let result = AttackSession::new(AttackConfig::non_targeted(3))
            .objective(crate::Objective::Boundary { k: 6 })
            .run_with_rng(&model, t, &mut StdRng::seed_from_u64(1));
        assert!(result.attacked_points < t.len(), "a boundary mask should exclude interior points");
        // The boundary mask is reproducible: points outside it keep
        // their exact colors.
        let boundary = super::boundary_mask(t, 6);
        assert_eq!(result.attacked_points, boundary.iter().filter(|&&b| b).count());
        for (i, &b) in boundary.iter().enumerate() {
            if !b {
                for c in 0..3 {
                    assert_eq!(result.adversarial_colors[(i, c)], t.colors[(i, c)]);
                }
            }
        }
    }

    #[test]
    fn transfer_objective_optimizes_against_both_networks() {
        use colper_models::{train_model, TrainConfig};
        // Untrained networks clamp the CW hinge to zero, which would
        // make the penalty invisible — train both briefly so the hinges
        // are live.
        let mut rng = StdRng::seed_from_u64(23);
        let data = clouds(1);
        let tc = TrainConfig { epochs: 8, lr: 0.01, target_accuracy: 0.9 };
        let mut surrogate = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        train_model(&mut surrogate, &data, &tc, &mut rng);
        let mut penalty = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        train_model(&mut penalty, &data, &tc, &mut rng);

        let mut cfg = AttackConfig::non_targeted(3);
        cfg.convergence_threshold = Some(0.0); // run all steps
        let plain = AttackSession::new(cfg.clone()).run_with_rng(
            &surrogate,
            &data[0],
            &mut StdRng::seed_from_u64(5),
        );
        let transfer = AttackSession::new(cfg.clone())
            .objective(crate::Objective::Transfer { gamma: 1.0 })
            .penalty_model(&penalty)
            .run_with_rng(&surrogate, &data[0], &mut StdRng::seed_from_u64(5));
        // The penalty hinge joins the objective, so the gain trajectory
        // must differ from the surrogate-only run.
        assert_ne!(plain.gain_history, transfer.gain_history);
        assert!(transfer.l2_sq > 0.0);
        // Determinism holds run-to-run.
        let again = AttackSession::new(cfg)
            .objective(crate::Objective::Transfer { gamma: 1.0 })
            .penalty_model(&penalty)
            .run_with_rng(&surrogate, &data[0], &mut StdRng::seed_from_u64(5));
        assert_eq!(transfer, again);
    }

    #[test]
    #[should_panic(expected = "requires a penalty model")]
    fn transfer_objective_without_penalty_model_rejected() {
        let mut rng = StdRng::seed_from_u64(24);
        let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        let data = clouds(1);
        let _ = AttackSession::new(AttackConfig::non_targeted(2))
            .objective(crate::Objective::Transfer { gamma: 0.5 })
            .run_with_rng(&model, &data[0], &mut rng);
    }

    #[test]
    #[should_panic(expected = "no clouds")]
    fn empty_session_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        let _ = AttackSession::new(AttackConfig::non_targeted(2)).run(&model, &[]);
    }

    #[test]
    #[should_panic(expected = "exactly one cloud")]
    fn plan_with_many_clouds_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        let data = clouds(2);
        let cfg = AttackConfig::non_targeted(2);
        let plan = AttackPlan::build(&model, &data[0], &cfg);
        let _ = AttackSession::new(cfg).plan(&plan).run(&model, &data);
    }
}
