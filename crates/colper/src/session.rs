//! The unified attack entry point: [`AttackSession`].
//!
//! Historically the crate grew five ways to launch an attack
//! (`Colper::run`, `run_planned`, `run_batch`, `run_batch_non_targeted`,
//! `run_batch_targeted`), each threading a different subset of runtime /
//! plan / seed / mask through its signature. `AttackSession` collapses
//! them into one builder: a single-cloud attack is simply the 1-element
//! batch case.
//!
//! ```no_run
//! use colper_attack::{AttackConfig, AttackSession};
//! use colper_models::{CloudTensors, PointNet2, PointNet2Config};
//! use colper_obs::Observer;
//! use colper_runtime::Runtime;
//! use colper_scene::{normalize, IndoorSceneConfig, SceneGenerator};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let cloud = SceneGenerator::indoor(IndoorSceneConfig::with_points(256)).generate(1);
//! let tensors = CloudTensors::from_cloud(&normalize::pointnet_view(&cloud));
//! let model = PointNet2::new(PointNet2Config::small(13), &mut rng);
//! let rt = Runtime::new(4);
//! let obs = Observer::from_env();
//! let outcome = AttackSession::new(AttackConfig::non_targeted(64))
//!     .runtime(&rt)
//!     .observer(&obs)
//!     .seed(7)
//!     .run(&model, std::slice::from_ref(&tensors));
//! println!("adv accuracy: {}", outcome.adversarial_accuracy.mean);
//! ```

use crate::{AttackConfig, AttackPlan, BatchItem, BatchOutcome, Colper};
use colper_metrics::ConfusionMatrix;
use colper_models::{CloudTensors, SegmentationModel};
use colper_obs::Observer;
use colper_runtime::Runtime;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// How the session derives each cloud's attacked-point mask.
enum MaskSelector<'a> {
    /// Attack every point (the paper's non-targeted setting).
    All,
    /// Attack the points whose ground-truth label equals the class (the
    /// paper's targeted setting).
    SourceClass(usize),
    /// Arbitrary per-cloud mask.
    Custom(&'a (dyn Fn(&CloudTensors) -> Vec<bool> + Sync)),
}

/// Builder for attack runs: configure once, run over one cloud or many.
///
/// Defaults: sequential [`Runtime`] (deferring to the ambient one inside
/// the optimizer, exactly like [`Colper::new`]), no pre-built plan, a
/// disabled [`Observer`], seed 0, and an all-points mask.
///
/// Per-cloud RNGs derive from `seed + cloud_index`, so outcomes are
/// reproducible and independent of the runtime's thread count and
/// schedule — matching the former `run_batch` contract.
pub struct AttackSession<'a> {
    config: AttackConfig,
    runtime: Runtime,
    plan: Option<&'a AttackPlan>,
    observer: Observer,
    base_seed: u64,
    mask: MaskSelector<'a>,
}

impl<'a> AttackSession<'a> {
    /// Starts a session with the given attack configuration.
    pub fn new(config: AttackConfig) -> Self {
        Self {
            config,
            runtime: Runtime::sequential(),
            plan: None,
            observer: Observer::disabled(),
            base_seed: 0,
            mask: MaskSelector::All,
        }
    }

    /// Attaches a compute runtime: clouds are scheduled over it as
    /// stealable tasks, one per cloud.
    #[must_use]
    pub fn runtime(mut self, runtime: &Runtime) -> Self {
        self.runtime = runtime.clone();
        self
    }

    /// Attaches a pre-built [`AttackPlan`]. Only valid for single-cloud
    /// runs ([`AttackSession::run`] panics otherwise) — a plan caches one
    /// cloud's geometry.
    #[must_use]
    pub fn plan(mut self, plan: &'a AttackPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Attaches an observer collecting per-step telemetry (records only
    /// while global tracing is on — see [`colper_obs::enabled`]).
    #[must_use]
    pub fn observer(mut self, observer: &Observer) -> Self {
        self.observer = observer.clone();
        self
    }

    /// Sets the base seed; cloud `i` draws from `seed + i`.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Attacks every point of every cloud (the default).
    #[must_use]
    pub fn mask_all(mut self) -> Self {
        self.mask = MaskSelector::All;
        self
    }

    /// Attacks the points labeled `source` in each cloud.
    #[must_use]
    pub fn mask_source_class(mut self, source: usize) -> Self {
        self.mask = MaskSelector::SourceClass(source);
        self
    }

    /// Derives each cloud's mask with `mask_of`.
    #[must_use]
    pub fn mask_with(mut self, mask_of: &'a (dyn Fn(&CloudTensors) -> Vec<bool> + Sync)) -> Self {
        self.mask = MaskSelector::Custom(mask_of);
        self
    }

    /// Runs the attack over `clouds`, one stealable task per cloud, and
    /// aggregates the outcome. Single-cloud attacks are the 1-element
    /// case: `session.run(&model, std::slice::from_ref(&tensors))`.
    ///
    /// # Panics
    ///
    /// Panics when `clouds` is empty, when a pre-built plan is combined
    /// with more than one cloud, when a mask selects no points, or when
    /// the configuration is invalid for the model's class count.
    pub fn run<M: SegmentationModel + ?Sized>(
        &self,
        model: &M,
        clouds: &[CloudTensors],
    ) -> BatchOutcome {
        assert!(!clouds.is_empty(), "attack session: no clouds");
        assert!(
            self.plan.is_none() || clouds.len() == 1,
            "attack session: a pre-built plan applies to exactly one cloud"
        );
        let classes = model.num_classes();

        let items: Vec<BatchItem> = self.runtime.par_map_grained(clouds.len(), 1, |index| {
            let _cloud_span = colper_obs::span!(BATCH_CLOUD);
            colper_obs::counters::BATCH_CLOUDS.incr();
            let t = &clouds[index];
            let mut rng = StdRng::seed_from_u64(self.base_seed.wrapping_add(index as u64));
            // One plan per cloud serves the clean prediction and every
            // attack iteration.
            let built;
            let plan = match self.plan {
                Some(plan) => plan,
                None => {
                    built = AttackPlan::build(model, t, &self.config);
                    &built
                }
            };
            let clean_preds = colper_models::predict_planned(model, t, plan.geometry(), &mut rng);
            let mut cm = ConfusionMatrix::new(classes);
            cm.update(&clean_preds, &t.labels);
            let clean_accuracy = cm.accuracy();

            let mask = match &self.mask {
                MaskSelector::All => vec![true; t.len()],
                MaskSelector::SourceClass(source) => t.labels.iter().map(|l| l == source).collect(),
                MaskSelector::Custom(mask_of) => mask_of(t),
            };
            let result = Colper::new(self.config.clone()).run_planned_obs(
                model,
                t,
                &mask,
                plan,
                &mut rng,
                &self.observer,
                index,
            );
            let mut cm = ConfusionMatrix::new(classes);
            cm.update(&result.predictions, &t.labels);
            BatchItem {
                clean_accuracy,
                adversarial_accuracy: cm.accuracy(),
                adversarial_miou: cm.mean_iou(),
                result,
            }
        });
        BatchOutcome::aggregate(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttackResult;
    use colper_models::{PointNet2, PointNet2Config};
    use colper_scene::{normalize, IndoorSceneConfig, SceneGenerator};

    fn clouds(n: u64) -> Vec<CloudTensors> {
        (0..n)
            .map(|i| {
                let c = SceneGenerator::indoor(IndoorSceneConfig::with_points(96)).generate(i);
                CloudTensors::from_cloud(&normalize::pointnet_view(&c))
            })
            .collect()
    }

    #[test]
    fn session_matches_the_deprecated_batch_entry_point() {
        let mut rng = StdRng::seed_from_u64(0);
        let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        let data = clouds(3);
        let cfg = AttackConfig::non_targeted(3);
        let session_out =
            AttackSession::new(cfg.clone()).runtime(&Runtime::new(2)).seed(7).run(&model, &data);
        #[allow(deprecated)]
        let batch_out =
            crate::run_batch(&model, &data, &cfg, |t| vec![true; t.len()], 7, &Runtime::new(2));
        assert_eq!(session_out, batch_out);
    }

    #[test]
    fn single_cloud_is_the_one_element_batch_and_matches_colper_run() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        let data = clouds(1);
        let cfg = AttackConfig::non_targeted(4);
        let outcome = AttackSession::new(cfg.clone()).seed(11).run(&model, &data);
        assert_eq!(outcome.items.len(), 1);

        // The session seeds cloud 0 with `seed + 0` *and* uses the same
        // RNG for the clean prediction first — reproduce that stream.
        let mut rng2 = StdRng::seed_from_u64(11);
        let plan = AttackPlan::build(&model, &data[0], &cfg);
        let _clean = colper_models::predict_planned(&model, &data[0], plan.geometry(), &mut rng2);
        #[allow(deprecated)]
        let direct: AttackResult = Colper::new(cfg).run_planned(
            &model,
            &data[0],
            &vec![true; data[0].len()],
            &plan,
            &mut rng2,
        );
        assert_eq!(outcome.items[0].result, direct);
    }

    #[test]
    fn source_class_mask_matches_custom_closure() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        let data = clouds(2);
        // Pick a label present in both clouds.
        let source = data[0].labels[0];
        if !data[1].labels.contains(&source) {
            return;
        }
        let cfg = AttackConfig::non_targeted(2);
        let by_variant =
            AttackSession::new(cfg.clone()).mask_source_class(source).run(&model, &data);
        let mask_of = move |t: &CloudTensors| -> Vec<bool> {
            t.labels.iter().map(|&l| l == source).collect()
        };
        let by_closure = AttackSession::new(cfg).mask_with(&mask_of).run(&model, &data);
        assert_eq!(by_variant, by_closure);
    }

    #[test]
    #[should_panic(expected = "no clouds")]
    fn empty_session_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        let _ = AttackSession::new(AttackConfig::non_targeted(2)).run(&model, &[]);
    }

    #[test]
    #[should_panic(expected = "exactly one cloud")]
    fn plan_with_many_clouds_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        let data = clouds(2);
        let cfg = AttackConfig::non_targeted(2);
        let plan = AttackPlan::build(&model, &data[0], &cfg);
        let _ = AttackSession::new(cfg).plan(&plan).run(&model, &data);
    }
}
