//! Algorithm 1 of the paper: the COLPER optimization loop.

use crate::seat::{CapturedSchedule, ScheduleKey, SeatTape};
use crate::{AttackConfig, AttackGoal, AttackResult, TanhReparam};
use colper_autodiff::{CompileSpec, HingeSpec, TapeSchedule, Var};
use colper_geom::knn_graph;
use colper_metrics::success_rate;
use colper_models::{CaptureShapes, CloudTensors, GeometryPlan, ModelInput, SegmentationModel};
use colper_nn::{AdamState, Forward};
use colper_obs::{Observer, StepRecord};
use colper_runtime::Runtime;
use colper_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// One EoT sample's contribution to a step: `(gain, d gain / d w,
/// evaluation)`. The evaluation — unlit predictions, colors and raw loss
/// terms `[D, L, S]` for metric tracking and telemetry — is `Some` only
/// for sample 0.
type SampleEval = (f32, Matrix, Option<(Vec<usize>, Matrix, [f32; 3])>);

/// Vars handed back by the per-step graph builder: `(gain, w, color,
/// logits, dist, adv_loss, smooth)`.
type BuiltVars = (Var, Var, Var, Var, Var, Var, Var);

/// Pre-computed per-(model, cloud) geometry shared by every iteration of
/// an attack — and by repeated attacks on the same cloud.
///
/// Holds the victim's [`GeometryPlan`] plus the fixed alpha-NN graph of
/// the smoothness penalty (Eq. 6) and interned (`Arc`-shared) copies of
/// the coordinate tensors, so each step binds them onto the tape without
/// copying. Caching is sound because COLPER perturbs only *colors*:
/// coordinates never change during the optimization, so every
/// coordinate-derived structure is a constant of the run.
#[derive(Debug)]
pub struct AttackPlan {
    geometry: GeometryPlan,
    smooth_nbrs: Arc<[usize]>,
    alpha: usize,
    /// Interned `[N,3]` coordinate tensor (model input + smoothness).
    xyz: Arc<Matrix>,
    /// Interned `[N,3]` normalized-location tensor (model input).
    loc01: Arc<Matrix>,
}

impl AttackPlan {
    /// Builds the plan for attacking `tensors` on `model` under `config`.
    pub fn build<M: SegmentationModel + ?Sized>(
        model: &M,
        tensors: &CloudTensors,
        config: &AttackConfig,
    ) -> Self {
        let alpha = config.alpha.min(tensors.len());
        Self {
            geometry: model.plan(&tensors.coords),
            smooth_nbrs: knn_graph(&tensors.coords, alpha).into(),
            alpha,
            xyz: Arc::new(tensors.xyz.clone()),
            loc01: Arc::new(tensors.loc01.clone()),
        }
    }

    /// The victim model's cached geometry (usable for planned inference
    /// on the same cloud, e.g. clean predictions before the attack).
    pub fn geometry(&self) -> &GeometryPlan {
        &self.geometry
    }
}

/// A second network folded into the objective for AdvPC-style
/// transferability ([`crate::Objective::Transfer`]): the penalty model's
/// CW hinge joins the surrogate's at weight `gamma`, discouraging
/// perturbations that only work on one architecture.
///
/// `tensors` optionally carries the penalty model's own normalized view
/// of the same cloud (views rescale coordinates only, so the shared
/// color variable is sound); when absent the penalty network sees the
/// surrogate's view. Point order must match the attacked tensors.
pub(crate) struct PenaltyRun<'a> {
    /// The penalty network.
    pub model: &'a dyn SegmentationModel,
    /// The penalty network's view of the cloud (same point order).
    pub tensors: Option<&'a CloudTensors>,
    /// Hinge weight `γ` (gain = D + λ1·(L + γ·L') + λ2·S).
    pub gamma: f32,
}

/// Gain-plateau detection for the noise-restart rule of Algorithm 1.
///
/// The paper checks every `int(Steps * 0.01)` iterations whether the
/// objective improved *since the last checkpoint*. The previous
/// implementation compared against the gain of the immediately preceding
/// iteration (`prev_gain` was overwritten every step), so a run whose
/// gain crept down by epsilon each step never restarted even when it had
/// been flat for the whole window.
#[derive(Debug)]
struct PlateauTracker {
    every: usize,
    checkpoint_gain: f32,
}

impl PlateauTracker {
    fn new(every: usize) -> Self {
        Self { every, checkpoint_gain: f32::INFINITY }
    }

    /// Records the gain of `step`; returns `true` when this step is a
    /// checkpoint and the objective has not improved since the previous
    /// checkpoint (i.e. noise should be injected).
    fn observe(&mut self, step: usize, gain: f32) -> bool {
        if step == 0 || !step.is_multiple_of(self.every) {
            return false;
        }
        let stalled = gain >= self.checkpoint_gain;
        self.checkpoint_gain = gain;
        stalled
    }
}

/// The COLPER attack engine.
///
/// One instance holds the hyper-parameters; the optimization itself is
/// driven exclusively through [`crate::AttackSession`] — the session
/// builder is the crate's only public attack entry point. The cloud's
/// tensors must already be in the victim's normalized view (see
/// [`colper_scene::normalize`]).
///
/// # Parallelism
///
/// The attack runs on a [`Runtime`]: [`Colper::with_runtime`] attaches an
/// explicit handle, while a default instance inherits whatever runtime the
/// caller [installed](Runtime::install) (falling back to sequential).
/// Results are bit-identical for every thread count — the pool only changes
/// wall-clock time, never the adversarial sample.
#[derive(Debug, Clone)]
pub struct Colper {
    config: AttackConfig,
    runtime: Runtime,
}

impl PartialEq for Colper {
    /// Equality is configuration equality: the runtime is an execution
    /// resource, not part of the attack's identity (results do not depend
    /// on it).
    fn eq(&self, other: &Self) -> bool {
        self.config == other.config
    }
}

impl Colper {
    /// Creates the attack with the given configuration. The attack defers
    /// to the ambient [`Runtime`] of the calling thread; use
    /// [`Colper::with_runtime`] to pin one explicitly.
    pub fn new(config: AttackConfig) -> Self {
        Self { config, runtime: Runtime::sequential() }
    }

    /// Attaches a compute runtime. An explicit pool here overrides the
    /// ambient runtime; passing [`Runtime::sequential`] restores the
    /// default deferring behavior.
    #[must_use]
    pub fn with_runtime(mut self, runtime: Runtime) -> Self {
        self.runtime = runtime;
        self
    }

    /// The attack configuration.
    pub fn config(&self) -> &AttackConfig {
        &self.config
    }

    /// The runtime the attack was built with (sequential unless
    /// [`Colper::with_runtime`] was used).
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// The attack engine behind [`crate::AttackSession`]: one planned
    /// attack drawing from the caller's RNG, reporting step telemetry for
    /// cloud index `cloud` through `obs` (a no-op with a disabled
    /// observer).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_planned_obs<M: SegmentationModel + ?Sized>(
        &self,
        model: &M,
        tensors: &colper_models::CloudTensors,
        mask: &[bool],
        plan: &AttackPlan,
        rng: &mut StdRng,
        obs: &Observer,
        cloud: usize,
    ) -> AttackResult {
        self.run_planned_obs_full(model, tensors, mask, plan, rng, obs, cloud, None, None)
    }

    /// The fully general engine entry: seat *and* optional transfer
    /// penalty. A penalty run records the second network's forward pass
    /// into the same graph every step, which disqualifies static-schedule
    /// capture (the schedule compiler pins exactly one victim); results
    /// remain bit-identical across runtimes and SIMD legs.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_planned_obs_full<M: SegmentationModel + ?Sized>(
        &self,
        model: &M,
        tensors: &colper_models::CloudTensors,
        mask: &[bool],
        plan: &AttackPlan,
        rng: &mut StdRng,
        obs: &Observer,
        cloud: usize,
        seat: Option<&mut crate::WarmSeat>,
        penalty: Option<&PenaltyRun<'_>>,
    ) -> AttackResult {
        // An explicitly attached runtime wins; the default sequential
        // handle defers to the ambient one so `Colper::new` picks up pool
        // parallelism installed by batch / bench callers. Installing the
        // effective runtime lets the tensor and geometry kernels inside
        // the forward/backward passes see the same pool.
        let rt = if self.runtime.is_sequential() {
            colper_runtime::current()
        } else {
            self.runtime.clone()
        };
        rt.clone().install(move || {
            self.optimize(model, tensors, mask, plan, rng, &rt, obs, cloud, seat, penalty)
        })
    }

    /// The optimization loop of Algorithm 1, running on `rt`.
    #[allow(clippy::too_many_arguments)]
    fn optimize<M: SegmentationModel + ?Sized>(
        &self,
        model: &M,
        tensors: &colper_models::CloudTensors,
        mask: &[bool],
        plan: &AttackPlan,
        rng: &mut StdRng,
        rt: &Runtime,
        obs: &Observer,
        cloud: usize,
        mut seat: Option<&mut crate::WarmSeat>,
        penalty: Option<&PenaltyRun<'_>>,
    ) -> AttackResult {
        let n = tensors.len();
        let classes = model.num_classes();
        let cfg = &self.config;
        cfg.validate(classes);
        assert_eq!(mask.len(), n, "mask length must equal point count");
        let attacked_points = mask.iter().filter(|&&m| m).count();
        assert!(attacked_points > 0, "attack mask selects no points");
        assert_eq!(plan.alpha, cfg.alpha.min(n), "attack plan built under a different alpha");
        assert_eq!(plan.geometry.num_points(), n, "attack plan built for a different cloud");
        assert!(*plan.xyz == tensors.xyz, "attack plan built for a different cloud");

        let labels_for_loss: Vec<usize> = match cfg.goal {
            AttackGoal::NonTargeted => tensors.labels.clone(),
            AttackGoal::Targeted { target } => vec![target; n],
        };
        let threshold = cfg.threshold(classes);

        // Transfer penalty: the second network's geometry is planned once
        // per run (its coordinates are constants, exactly like the
        // surrogate's) and its view tensors are interned for per-step
        // constant binding. Point order must match — the shared color
        // variable and the hinge's labels/mask index by point.
        let penalty_ctx = penalty.map(|p| {
            let pt = p.tensors.unwrap_or(tensors);
            assert_eq!(pt.len(), n, "penalty view must cover the same points");
            assert_eq!(
                pt.labels, tensors.labels,
                "penalty view must preserve point order (labels differ)"
            );
            assert_eq!(
                p.model.num_classes(),
                classes,
                "penalty model must share the surrogate's class count"
            );
            (p, pt, p.model.plan(&pt.coords), Arc::new(pt.xyz.clone()), Arc::new(pt.loc01.clone()))
        });

        // Eq. 5: optimize w with colors = tanh-mapped w, initialized so
        // the first iterate reproduces the clean colors. The run's
        // constants are interned once so every step shares them with the
        // tape instead of copying them into the graph.
        let reparam = TanhReparam::color();
        let orig = Arc::new(tensors.colors.clone());
        let mut w = reparam.to_w(&orig);
        let mut adam = AdamState::new(n, 3);

        // Fixed alpha-NN graph for the smoothness penalty (Eq. 6),
        // cached in the plan.
        let alpha = plan.alpha;

        // Only masked points may change: color = mask*c(w) + (1-mask)*orig.
        let mask_m = Arc::new(Matrix::from_fn(n, 3, |r, _| if mask[r] { 1.0 } else { 0.0 }));
        let frozen =
            Arc::new(Matrix::from_fn(n, 3, |r, c| if mask[r] { 0.0 } else { orig[(r, c)] }));

        // The paper checks every int(Steps * 0.01) iterations (10 when
        // Steps = 1000); clamp from below so reduced step budgets do not
        // degenerate into noise injection at every iteration.
        let plateau_every = (cfg.steps / 100).max(5);
        let mut plateau = PlateauTracker::new(plateau_every);
        let mut restarts = 0usize;
        let mut history = Vec::with_capacity(cfg.steps);
        let mut converged = false;
        let mut steps_run = 0;
        let (mut best_metric, better): (f32, fn(f32, f32) -> bool) = match cfg.goal {
            AttackGoal::NonTargeted => (f32::INFINITY, |new, best| new < best),
            AttackGoal::Targeted { .. } => (f32::NEG_INFINITY, |new, best| new > best),
        };
        let mut best_colors = Matrix::clone(&orig);
        let mut best_preds: Vec<usize> = Vec::new();

        // Static-schedule eligibility: single-sample path, global gate on,
        // a victim whose eval forward is a pure function of its inputs
        // (RandLA-Net's random sampling is not), and capture inputs that
        // pass shape validation. When eligible, the key pins everything
        // the captured graph folded in: the config, the parameter/buffer
        // storage, the plan's interned tensors, and the run's labels /
        // mask / original colors.
        let schedule_eligible = cfg.gradient_samples == 1
            && colper_autodiff::schedule_enabled()
            && model.deterministic_eval()
            && penalty_ctx.is_none()
            && CaptureShapes::check(n, &plan.xyz, &orig, &plan.loc01).is_ok();
        let sched_key = schedule_eligible.then(|| ScheduleKey {
            config: cfg.clone(),
            param_addrs: model.params().storage_fingerprint(),
            xyz_addr: Arc::as_ptr(&plan.xyz) as usize,
            loc_addr: Arc::as_ptr(&plan.loc01) as usize,
            nbrs_addr: plan.smooth_nbrs.as_ptr() as usize,
            nbrs_len: plan.smooth_nbrs.len(),
            points: n,
            labels: labels_for_loss.clone(),
            mask: mask.to_vec(),
            orig_colors: orig.clone(),
        });

        // Steady-state buffers for the single-sample path: one reusable
        // forward session plus preallocated gradient / prediction / color
        // scratch, so step >= 2 performs no heap allocation in tape value
        // or gradient storage. A seated run resumes on the seat's donated
        // tape, extending the zero-allocation property back to step 1 of
        // repeat attacks on same-shaped clouds. When the seat's tape also
        // carries a schedule compiled for exactly this key, the run adopts
        // the captured graph intact and replays from its very first step.
        let mut captured: Option<CapturedSchedule> = None;
        let mut sched_failed = false;
        let mut steady =
            (cfg.gradient_samples == 1).then(|| match seat.as_mut().and_then(|s| s.checkout()) {
                Some(SeatTape { tape, captured: donated }) => {
                    colper_obs::counters::SEAT_WARM.incr();
                    match (donated, &sched_key) {
                        (Some(c), Some(key)) if c.key == *key => {
                            captured = Some(c);
                            Forward::resume_captured(model.params(), tape)
                        }
                        _ => Forward::resume(model.params(), false, tape),
                    }
                }
                None => Forward::new(model.params(), false),
            });
        let mut grad_buf = Matrix::zeros(n, 3);
        let mut preds_buf: Vec<usize> = Vec::new();
        let mut colors_buf = Matrix::zeros(n, 3);

        // Telemetry is collected into a buffer pre-sized to the step
        // budget (`None` — and no allocation at all — when tracing is
        // off). Every recorded quantity is *read* from state the loop
        // already computes; tracing cannot perturb the trajectory.
        let mut trace_buf = obs.begin_attack(cloud, cfg.steps);

        let mut metric_history = Vec::new();
        for step in 0..cfg.steps {
            let _step_span = colper_obs::span!(ATTACK_STEP);
            steps_run = step + 1;
            // Records one forward/backward pass onto `session` and returns
            // `(gain, w_var, color, logits, dist, adv_loss, smooth)`.
            // Shared by the session-reuse and EoT paths so both record the
            // exact same graph.
            let build =
                |session: &mut Forward<'_>, sample_idx: usize, rng: &mut StdRng| -> BuiltVars {
                    let w_var = session.tape.leaf_from(&w);
                    let color_free = reparam.features_on_tape(&mut session.tape, w_var);
                    let color_masked = session.tape.mul_const_shared(color_free, mask_m.clone());
                    let frozen_var = session.tape.constant_shared(frozen.clone());
                    let color = session.tape.add(color_masked, frozen_var);

                    // EoT over illumination: the victim sees the colors under
                    // a random scene-lighting multiplier, while the distance
                    // and smoothness terms stay on the printed (unlit) colors.
                    // The first sample stays unlit so the convergence metric
                    // and best-iterate selection are deterministic.
                    let seen_color = if cfg.lighting_eot > 0.0 && sample_idx > 0 {
                        let lf = 1.0 + rng.gen_range(-cfg.lighting_eot..=cfg.lighting_eot);
                        session.tape.scale(color, lf)
                    } else {
                        color
                    };
                    let xyz = session.tape.constant_shared(plan.xyz.clone());
                    let loc = session.tape.constant_shared(plan.loc01.clone());
                    let input = ModelInput {
                        coords: &tensors.coords,
                        xyz,
                        color: seen_color,
                        loc,
                        plan: Some(&plan.geometry),
                    };
                    let logits = model.forward(session, &input, rng);

                    // gain = D + λ1 L + λ2 S   (Eq. 2 / Eq. 3)
                    let orig_var = session.tape.constant_shared(orig.clone());
                    let diff = session.tape.sub(color, orig_var);
                    let sq = session.tape.square(diff);
                    let dist = session.tape.sum(sq);
                    let smooth = session.tape.smoothness_shared(
                        color,
                        plan.xyz.clone(),
                        plan.smooth_nbrs.clone(),
                        alpha,
                    );
                    let adv_loss = match cfg.goal {
                        AttackGoal::NonTargeted => {
                            session.tape.cw_nontargeted(logits, &labels_for_loss, mask)
                        }
                        AttackGoal::Targeted { .. } => {
                            session.tape.cw_targeted(logits, &labels_for_loss, mask)
                        }
                    };
                    // Transfer penalty (AdvPC, Eq.-style combination):
                    // forward the second network on the same color
                    // variable — its own coordinate view and geometry
                    // plan, the shared perturbation — and add its hinge
                    // at weight γ. The combined term replaces L in
                    // gain = D + λ1·L + λ2·S.
                    let adv_loss = match &penalty_ctx {
                        Some((p, pt, pplan, pxyz, ploc)) => {
                            let pxyz_var = session.tape.constant_shared(pxyz.clone());
                            let ploc_var = session.tape.constant_shared(ploc.clone());
                            let pinput = ModelInput {
                                coords: &pt.coords,
                                xyz: pxyz_var,
                                color: seen_color,
                                loc: ploc_var,
                                plan: Some(pplan),
                            };
                            // The penalty network binds its own weights:
                            // a guest session shares the tape but
                            // resolves ParamIds against the penalty
                            // model's ParamSet.
                            let plogits = session.with_params(p.model.params(), |guest| {
                                p.model.forward(guest, &pinput, rng)
                            });
                            let phinge = match cfg.goal {
                                AttackGoal::NonTargeted => {
                                    session.tape.cw_nontargeted(plogits, &labels_for_loss, mask)
                                }
                                AttackGoal::Targeted { .. } => {
                                    session.tape.cw_targeted(plogits, &labels_for_loss, mask)
                                }
                            };
                            let weighted_penalty = session.tape.scale(phinge, p.gamma);
                            session.tape.add(adv_loss, weighted_penalty)
                        }
                        None => adv_loss,
                    };
                    let weighted_loss = session.tape.scale(adv_loss, cfg.lambda1);
                    let weighted_smooth = session.tape.scale(smooth, cfg.lambda2);
                    let partial = session.tape.add(dist, weighted_loss);
                    let gain = session.tape.add(partial, weighted_smooth);
                    session.tape.backward(gain);
                    (gain, w_var, color, logits, dist, adv_loss, smooth)
                };

            // Raw loss terms `[D, L, S]` of the (unlit) sample 0,
            // reported in the step telemetry.
            let terms: [f32; 3];
            let gain_v = if cfg.gradient_samples == 1 {
                // Single-sample (paper-exact) path: the forward pass draws
                // from the caller's RNG in place, preserving its stream.
                // One session is reused across every step — `reset` keeps
                // the tape's buffer pools, and the extraction below writes
                // into preallocated scratch, so the steady state allocates
                // nothing. Once a schedule is captured, steps stop even
                // rebuilding the graph: the frozen op program replays over
                // the captured nodes, bit-identical to a dynamic rebuild
                // (the victim's eval forward consumes no randomness on
                // this path, so the RNG stream is preserved too).
                let session = steady.as_mut().expect("single-sample path owns a session");
                let vars = if let Some(c) = captured.as_ref() {
                    let _build_span = colper_obs::span!(ATTACK_BUILD);
                    c.schedule.replay(&mut session.tape, &w);
                    c.vars
                } else {
                    session.reset();
                    let built = {
                        let _build_span = colper_obs::span!(ATTACK_BUILD);
                        build(session, 0, rng)
                    };
                    // One-shot capture: freeze the graph just recorded into
                    // a static schedule for every following step. A graph
                    // the compiler rejects falls back to dynamic rebuilds
                    // permanently (the graph is the same every step, so
                    // retrying could only fail again).
                    if !sched_failed {
                        if let Some(key) = sched_key.clone() {
                            let (gain, w_var, color, logits, dist, adv_loss, smooth) = built;
                            let spec = CompileSpec {
                                input: w_var,
                                output: gain,
                                keep: &[color, logits, dist, adv_loss, smooth],
                                hinge: Some(HingeSpec {
                                    labels: labels_for_loss.clone(),
                                    mask: mask.to_vec(),
                                    targeted: matches!(cfg.goal, AttackGoal::Targeted { .. }),
                                }),
                            };
                            match TapeSchedule::compile(&mut session.tape, &spec) {
                                Ok(schedule) => {
                                    captured = Some(CapturedSchedule { key, schedule, vars: built })
                                }
                                Err(_) => sched_failed = true,
                            }
                        }
                    }
                    built
                };
                let (gain, w_var, color, logits, dist, adv_loss, smooth) = vars;
                let gain_v = session.tape.value(gain)[(0, 0)];
                terms = [
                    session.tape.value(dist)[(0, 0)],
                    session.tape.value(adv_loss)[(0, 0)],
                    session.tape.value(smooth)[(0, 0)],
                ];
                grad_buf.fill_from(session.tape.grad(w_var).expect("w must receive a gradient"));
                session.tape.value(logits).argmax_rows_into(&mut preds_buf);
                colors_buf.fill_from(session.tape.value(color));
                gain_v
            } else {
                // Expectation over transforms: average the gradient over
                // `gradient_samples` forward/backward passes (stochastic
                // victims like RandLA-Net resample per pass). Derive one
                // seed per sample *sequentially* from the caller's RNG, so
                // both the sample trajectories and the caller's stream
                // afterwards are independent of how the pool schedules the
                // samples. `par_reduce` folds the per-sample terms in
                // sample order (grain 1), so the averaged gradient is
                // bit-identical on every runtime, including the sequential
                // one. Worker sessions cannot be reused across steps here
                // (the closure is shared by the pool), so this path keeps
                // fresh sessions.
                let one_sample = |sample_idx: usize, rng: &mut StdRng| -> SampleEval {
                    let mut session = Forward::new(model.params(), false);
                    let (gain, w_var, color, logits, dist, adv_loss, smooth) = {
                        let _build_span = colper_obs::span!(ATTACK_BUILD);
                        build(&mut session, sample_idx, rng)
                    };
                    let gain_v = session.tape.value(gain)[(0, 0)];
                    let grad = session.tape.grad(w_var).expect("w must receive a gradient").clone();
                    let eval = (sample_idx == 0).then(|| {
                        (
                            session.tape.value(logits).argmax_rows(),
                            session.tape.value(color).clone(),
                            [
                                session.tape.value(dist)[(0, 0)],
                                session.tape.value(adv_loss)[(0, 0)],
                                session.tape.value(smooth)[(0, 0)],
                            ],
                        )
                    });
                    (gain_v, grad, eval)
                };
                let seeds: Vec<u64> = (0..cfg.gradient_samples).map(|_| rng.gen()).collect();
                let (gain_sum, grad_sum, first_eval) = rt
                    .par_reduce(
                        cfg.gradient_samples,
                        1,
                        |s| one_sample(s, &mut StdRng::seed_from_u64(seeds[s])),
                        |(ga, mut wa, ea), (gb, wb, eb)| {
                            wa.add_assign(&wb);
                            (ga + gb, wa, ea.or(eb))
                        },
                    )
                    .expect("gradient_samples is validated to be at least 1");
                let inv = 1.0 / cfg.gradient_samples as f32;
                grad_buf = grad_sum.scale(inv);
                let (preds, colors_now, sample0_terms) =
                    first_eval.expect("sample 0 reports an evaluation");
                preds_buf = preds;
                colors_buf = colors_now;
                terms = sample0_terms;
                gain_sum * inv
            };
            history.push(gain_v);

            // Attacker's metric on the current iterate.
            let metric = match cfg.goal {
                AttackGoal::NonTargeted => masked_accuracy(&preds_buf, &tensors.labels, mask),
                AttackGoal::Targeted { .. } => success_rate(&preds_buf, &labels_for_loss, mask),
            };
            if cfg.record_trajectory {
                metric_history.push(metric);
            }
            if best_preds.is_empty() || better(metric, best_metric) {
                best_metric = metric;
                best_colors.fill_from(&colors_buf);
                best_preds.clone_from(&preds_buf);
            }

            {
                let _adam_span = colper_obs::span!(ATTACK_ADAM);
                adam.update(&mut w, &grad_buf, cfg.lr);
            }

            // Converge(gain_i): the attacker's own stopping criterion.
            let done = match cfg.goal {
                AttackGoal::NonTargeted => metric < threshold,
                AttackGoal::Targeted { .. } => metric >= threshold,
            };

            // Plateau restart: every int(Steps * 0.01) iterations, add
            // uniform noise when the objective stopped improving since
            // the previous checkpoint. A converged step never consults
            // the tracker (it used to break before reaching it).
            let restarted = !done && plateau.observe(step, gain_v);
            if restarted {
                restarts += 1;
                colper_obs::counters::ATTACK_RESTARTS.incr();
                for (r, &attacked) in mask.iter().enumerate() {
                    if attacked {
                        for c in 0..3 {
                            w[(r, c)] += rng.gen_range(0.0..1.0) * cfg.noise_scale;
                        }
                    }
                }
            }

            if let Some(buf) = trace_buf.as_mut() {
                let grad_inf_norm = grad_buf.as_slice().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
                let flipped_points = preds_buf
                    .iter()
                    .zip(&tensors.labels)
                    .zip(mask)
                    .filter(|((p, l), &attacked)| attacked && p != l)
                    .count();
                buf.push(StepRecord {
                    step,
                    gain: gain_v,
                    dist: terms[0],
                    cw_hinge: terms[1],
                    smooth: terms[2],
                    weighted_hinge: cfg.lambda1 * terms[1],
                    weighted_smooth: cfg.lambda2 * terms[2],
                    grad_inf_norm,
                    flipped_points,
                    metric,
                    plateau_checkpoint_gain: plateau.checkpoint_gain,
                    restarted,
                });
            }

            if done {
                converged = true;
                break;
            }
        }
        if let Some(buf) = trace_buf {
            obs.finish_attack(buf);
        }

        // Hand the steady session's tape back to the seat so the next
        // attack seated here starts with warmed buffer pools. A captured
        // schedule travels with its tape (graph intact, not reset): a
        // key-matching successor replays from step 1, anyone else resumes
        // normally and the stale graph is cleared by its first `reset`.
        if let (Some(seat), Some(session)) = (seat.as_mut(), steady.take()) {
            match captured.take() {
                Some(c) => seat.donate_captured(session.into_tape_captured(), c),
                None => seat.donate(session.into_tape()),
            }
        }

        let l2_sq = best_colors.sub(&orig).expect("shape").frobenius_sq();
        AttackResult {
            adversarial_colors: best_colors,
            l2_sq,
            steps_run,
            converged,
            gain_history: history,
            metric_history,
            predictions: best_preds,
            success_metric: best_metric,
            attacked_points,
            restarts,
        }
    }
}

/// Accuracy restricted to the masked points.
fn masked_accuracy(preds: &[usize], labels: &[usize], mask: &[bool]) -> f32 {
    let mut total = 0u64;
    let mut correct = 0u64;
    for i in 0..preds.len() {
        if mask[i] {
            total += 1;
            if preds[i] == labels[i] {
                correct += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        correct as f32 / total as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttackSession;
    use colper_models::{
        evaluate_on, train_model, CloudTensors, PointNet2, PointNet2Config, TrainConfig,
    };
    use colper_scene::{normalize, IndoorClass, IndoorSceneConfig, RoomKind, SceneGenerator};
    use rand::SeedableRng;

    /// A small trained victim shared by the attack tests.
    fn trained_victim(rng: &mut StdRng) -> (PointNet2, Vec<CloudTensors>) {
        let clouds: Vec<CloudTensors> = (0..5)
            .map(|i| {
                let cfg = IndoorSceneConfig {
                    room_kind: Some(RoomKind::Office),
                    ..IndoorSceneConfig::with_points(192)
                };
                let cloud = SceneGenerator::indoor(cfg).generate(300 + i);
                CloudTensors::from_cloud(&normalize::pointnet_view(&cloud))
            })
            .collect();
        let mut model = PointNet2::new(PointNet2Config::tiny(13), rng);
        let tc = TrainConfig { epochs: 12, lr: 0.01, target_accuracy: 0.93 };
        train_model(&mut model, &clouds, &tc, rng);
        (model, clouds)
    }

    #[test]
    fn non_targeted_attack_degrades_accuracy() {
        let mut rng = StdRng::seed_from_u64(0);
        let (model, clouds) = trained_victim(&mut rng);
        let victim_cloud = &clouds[0];
        let clean_acc = evaluate_on(&model, victim_cloud, &mut rng);
        assert!(clean_acc > 0.5, "victim should segment decently, got {clean_acc}");

        let attack = AttackSession::new(AttackConfig::non_targeted(150));
        let result = attack.run_with_rng(&model, victim_cloud, &mut rng);
        assert!(
            result.success_metric < clean_acc - 0.2,
            "attack should drop accuracy well below clean: {} vs {clean_acc}",
            result.success_metric
        );
        assert!(result.l2_sq > 0.0, "perturbation should be non-trivial");
        assert_eq!(result.gain_history.len(), result.steps_run);
    }

    #[test]
    fn adversarial_colors_stay_feasible_and_masked() {
        let mut rng = StdRng::seed_from_u64(1);
        let (model, clouds) = trained_victim(&mut rng);
        let t = &clouds[1];
        // Attack only the table points.
        let mask: Vec<bool> = t.labels.iter().map(|&l| l == IndoorClass::Table.label()).collect();
        if !mask.iter().any(|&m| m) {
            return; // sample without tables; other seeds cover this path
        }
        let attack = AttackSession::new(AttackConfig::targeted(25, IndoorClass::Wall.label()))
            .mask_source_class(IndoorClass::Table.label());
        let result = attack.run_with_rng(&model, t, &mut rng);
        let adv = &result.adversarial_colors;
        assert!(adv.min().unwrap() >= 0.0 && adv.max().unwrap() <= 1.0);
        // Unattacked points keep their exact colors.
        for (i, &attacked) in mask.iter().enumerate() {
            if !attacked {
                for c in 0..3 {
                    assert_eq!(adv[(i, c)], t.colors[(i, c)], "point {i} changed outside mask");
                }
            }
        }
        assert_eq!(result.attacked_points, mask.iter().filter(|&&m| m).count());
    }

    #[test]
    fn targeted_attack_moves_points_toward_target() {
        let mut rng = StdRng::seed_from_u64(2);
        let (model, clouds) = trained_victim(&mut rng);
        let t = &clouds[2];
        let source = IndoorClass::Board.label();
        let target = IndoorClass::Wall.label();
        let mask: Vec<bool> = t.labels.iter().map(|&l| l == source).collect();
        if mask.iter().filter(|&&m| m).count() < 3 {
            return;
        }
        // Clean SR toward the target.
        let clean_preds = colper_models::predict(&model, t, &mut rng);
        let targets = vec![target; t.len()];
        let clean_sr = success_rate(&clean_preds, &targets, &mask);

        let attack =
            AttackSession::new(AttackConfig::targeted(60, target)).mask_source_class(source);
        let result = attack.run_with_rng(&model, t, &mut rng);
        assert!(
            result.success_metric >= clean_sr,
            "targeted SR should not fall: {} vs clean {clean_sr}",
            result.success_metric
        );
    }

    #[test]
    fn lenient_threshold_converges_immediately() {
        let mut rng = StdRng::seed_from_u64(3);
        let (model, clouds) = trained_victim(&mut rng);
        let t = &clouds[3];
        let mut cfg = AttackConfig::non_targeted(50);
        cfg.convergence_threshold = Some(1.1); // accuracy always below 1.1
        let result = AttackSession::new(cfg).run_with_rng(&model, t, &mut rng);
        assert!(result.converged);
        assert_eq!(result.steps_run, 1);
    }

    #[test]
    fn plateau_tracker_compares_against_checkpoint_not_previous_step() {
        let mut t = PlateauTracker::new(5);
        // Steps between checkpoints never consult the tracker.
        assert!(!t.observe(1, 100.0));
        assert!(!t.observe(4, 1.0));
        // First checkpoint: nothing to compare against yet.
        assert!(!t.observe(5, 10.0));
        // Gain fell step-to-step (17 -> 12) but NOT since the checkpoint
        // (10 -> 12): the old per-step comparison would have seen
        // improvement here and skipped the restart.
        assert!(t.observe(10, 12.0));
        // Genuine improvement since the checkpoint: no restart.
        assert!(!t.observe(15, 3.0));
        // Flat again relative to the new checkpoint.
        assert!(t.observe(20, 3.0));
    }

    #[test]
    fn stalled_objective_triggers_noise_restart() {
        let mut rng = StdRng::seed_from_u64(5);
        // Untrained victim and a learning rate so small the iterate — and
        // with it the gain — cannot move: every checkpoint sees a stalled
        // objective and must inject noise.
        let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        let cloud = SceneGenerator::indoor(IndoorSceneConfig::with_points(64)).generate(9);
        let t = CloudTensors::from_cloud(&normalize::pointnet_view(&cloud));
        let mut cfg = AttackConfig::non_targeted(16);
        cfg.lr = 1e-12;
        cfg.convergence_threshold = Some(0.0); // never converge
        let result = AttackSession::new(cfg).run_with_rng(&model, &t, &mut rng);
        assert_eq!(result.steps_run, 16);
        // plateau_every = max(16/100, 5) = 5 -> checkpoints at 5, 10, 15.
        // The first checkpoint only records a baseline; by step 10 the
        // gain has not moved, so noise must be injected at least once
        // (afterwards the noise itself may legitimately change the gain).
        assert!(
            result.restarts >= 1,
            "stalled attack should trigger a noise restart, got {}",
            result.restarts
        );
    }

    #[test]
    fn planned_and_plan_free_attacks_agree() {
        let mut rng = StdRng::seed_from_u64(6);
        let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        let cloud = SceneGenerator::indoor(IndoorSceneConfig::with_points(96)).generate(11);
        let t = CloudTensors::from_cloud(&normalize::pointnet_view(&cloud));
        let cfg = AttackConfig::non_targeted(8);
        let plain = AttackSession::new(cfg.clone()).run_with_rng(
            &model,
            &t,
            &mut StdRng::seed_from_u64(42),
        );
        let plan = AttackPlan::build(&model, &t, &cfg);
        let planned = AttackSession::new(cfg).plan(&plan).run_with_rng(
            &model,
            &t,
            &mut StdRng::seed_from_u64(42),
        );
        assert_eq!(plain.adversarial_colors, planned.adversarial_colors);
        assert_eq!(plain.gain_history, planned.gain_history);
        assert_eq!(plain.predictions, planned.predictions);
    }

    #[test]
    #[should_panic(expected = "different cloud")]
    fn mismatched_plan_rejected() {
        let mut rng = StdRng::seed_from_u64(7);
        let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        let small = CloudTensors::from_cloud(&normalize::pointnet_view(
            &SceneGenerator::indoor(IndoorSceneConfig::with_points(64)).generate(1),
        ));
        let big = CloudTensors::from_cloud(&normalize::pointnet_view(
            &SceneGenerator::indoor(IndoorSceneConfig::with_points(128)).generate(2),
        ));
        let cfg = AttackConfig::non_targeted(5);
        let plan = AttackPlan::build(&model, &small, &cfg);
        let _ = AttackSession::new(cfg).plan(&plan).run_with_rng(&model, &big, &mut rng);
    }

    #[test]
    #[should_panic(expected = "selects no points")]
    fn empty_mask_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        let cloud = SceneGenerator::indoor(IndoorSceneConfig::with_points(64)).generate(0);
        let t = CloudTensors::from_cloud(&normalize::pointnet_view(&cloud));
        let none = |t: &CloudTensors| vec![false; t.len()];
        let attack = AttackSession::new(AttackConfig::non_targeted(5)).mask_with(&none);
        let _ = attack.run_with_rng(&model, &t, &mut rng);
    }
}
