//! The tanh change of variables (Eq. 5 of the paper).
//!
//! Optimizing colors directly would need a projection onto `[0, 1]^3`
//! every step; instead the paper optimizes an unconstrained `w` with
//! `c = a + (b-a)/2 · (tanh(w) + 1)`, which keeps every iterate feasible
//! and smooths the gradient near the box boundary.

use colper_autodiff::{Tape, Var};
use colper_tensor::Matrix;

/// The tanh reparameterization between a feature box `[a, b]` and the
/// unconstrained optimization variable `w`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TanhReparam {
    a: f32,
    b: f32,
}

impl TanhReparam {
    /// For color channels: `[0, 1]`.
    pub fn color() -> Self {
        Self { a: 0.0, b: 1.0 }
    }

    /// For ResGCN-normalized coordinates: `[-1, 1]` (the range the
    /// paper's coordinate-attack comparison uses).
    pub fn coordinate() -> Self {
        Self { a: -1.0, b: 1.0 }
    }

    /// A custom feature box.
    ///
    /// # Panics
    ///
    /// Panics when `a >= b`.
    pub fn new(a: f32, b: f32) -> Self {
        assert!(a < b, "TanhReparam: a must be below b");
        Self { a, b }
    }

    /// Lower bound of the box.
    pub fn lo(&self) -> f32 {
        self.a
    }

    /// Upper bound of the box.
    pub fn hi(&self) -> f32 {
        self.b
    }

    /// Maps feature values to `w` space: `w = atanh(2 (c-a)/(b-a) - 1)`,
    /// clamping features slightly inside the box so `atanh` stays
    /// finite.
    pub fn to_w(&self, features: &Matrix) -> Matrix {
        const MARGIN: f32 = 1e-4;
        features.map(|c| {
            let unit = ((c - self.a) / (self.b - self.a)).clamp(MARGIN, 1.0 - MARGIN);
            let x = 2.0 * unit - 1.0;
            // atanh(x) = 0.5 ln((1+x)/(1-x))
            0.5 * ((1.0 + x) / (1.0 - x)).ln()
        })
    }

    /// Maps `w` values back to features off-tape.
    pub fn to_features(&self, w: &Matrix) -> Matrix {
        w.map(|t| self.a + (self.b - self.a) / 2.0 * (t.tanh() + 1.0))
    }

    /// Records the on-tape mapping `c = a + (b-a)/2 (tanh(w) + 1)` so
    /// gradients flow from the objective back to `w`.
    pub fn features_on_tape(&self, tape: &mut Tape, w: Var) -> Var {
        let t = tape.tanh(w);
        let shifted = tape.add_scalar(t, 1.0);
        let scaled = tape.scale(shifted, (self.b - self.a) / 2.0);
        tape.add_scalar(scaled, self.a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_is_identity_inside_box() {
        let rp = TanhReparam::color();
        let c = Matrix::from_rows(&[&[0.1, 0.5, 0.9]]).unwrap();
        let w = rp.to_w(&c);
        let back = rp.to_features(&w);
        assert!(c.max_abs_diff(&back) < 1e-3, "{back:?}");
    }

    #[test]
    fn boundary_values_stay_finite() {
        let rp = TanhReparam::color();
        let c = Matrix::from_rows(&[&[0.0, 1.0]]).unwrap();
        let w = rp.to_w(&c);
        assert!(w.all_finite());
        let back = rp.to_features(&w);
        assert!(back.min().unwrap() >= 0.0 && back.max().unwrap() <= 1.0);
    }

    #[test]
    fn on_tape_matches_off_tape() {
        let rp = TanhReparam::new(-1.0, 1.0);
        let w = Matrix::from_rows(&[&[-2.0, 0.0, 3.0]]).unwrap();
        let mut tape = Tape::new();
        let wv = tape.leaf(w.clone());
        let cv = rp.features_on_tape(&mut tape, wv);
        let off = rp.to_features(&w);
        assert!(tape.value(cv).max_abs_diff(&off) < 1e-6);
    }

    #[test]
    fn any_w_yields_feasible_features() {
        let rp = TanhReparam::color();
        let w = Matrix::from_rows(&[&[-100.0, -1.0, 0.0, 1.0, 100.0]]).unwrap();
        let c = rp.to_features(&w);
        assert!(c.min().unwrap() >= 0.0);
        assert!(c.max().unwrap() <= 1.0);
    }

    #[test]
    fn gradient_flows_through_reparam() {
        let rp = TanhReparam::color();
        let mut tape = Tape::new();
        let w = tape.leaf(Matrix::zeros(1, 3));
        let c = rp.features_on_tape(&mut tape, w);
        let s = tape.sum(c);
        tape.backward(s);
        let g = tape.grad(w).unwrap();
        // d/dw [0.5 (tanh w + 1)] at w=0 is 0.5.
        assert!((g[(0, 0)] - 0.5).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "a must be below b")]
    fn validates_box() {
        let _ = TanhReparam::new(1.0, 1.0);
    }
}
