//! Input validation at the session boundary.
//!
//! The optimizer assumes finite coordinates and colors in `[0, 1]` — the
//! tanh reparameterization (Eq. 5) maps colors through `atanh`, so an
//! out-of-range or non-finite channel silently poisons every gradient
//! after it. [`validate_clouds`] front-loads that check into a typed
//! error the service layer can surface as a client fault instead of a
//! garbage result.

use colper_models::CloudTensors;
use std::fmt;

/// A rejected attack request: the input violates the session contract.
///
/// Every variant pinpoints the offending cloud (and point, where
/// applicable) so a service client can fix its payload.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// The batch holds no clouds.
    EmptyBatch,
    /// A pre-built [`crate::AttackPlan`] was combined with a multi-cloud
    /// batch; a plan caches exactly one cloud's geometry.
    PlanNeedsSingleCloud {
        /// Number of clouds in the rejected batch.
        clouds: usize,
    },
    /// A coordinate is NaN or infinite.
    NonFiniteCoordinate {
        /// Cloud index within the batch.
        cloud: usize,
        /// Point index within the cloud.
        point: usize,
        /// Axis (0 = x, 1 = y, 2 = z).
        axis: usize,
        /// The offending value.
        value: f32,
    },
    /// A color channel is outside `[0, 1]` (NaN included).
    ColorOutOfRange {
        /// Cloud index within the batch.
        cloud: usize,
        /// Point index within the cloud.
        point: usize,
        /// Channel (0 = r, 1 = g, 2 = b).
        channel: usize,
        /// The offending value.
        value: f32,
    },
    /// A ground-truth label is not below the model's class count.
    LabelOutOfRange {
        /// Cloud index within the batch.
        cloud: usize,
        /// Point index within the cloud.
        point: usize,
        /// The offending label.
        label: usize,
        /// The model's class count.
        classes: usize,
    },
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyBatch => write!(f, "attack session: no clouds"),
            Self::PlanNeedsSingleCloud { clouds } => write!(
                f,
                "attack session: a pre-built plan applies to exactly one cloud, got {clouds}"
            ),
            Self::NonFiniteCoordinate { cloud, point, axis, value } => write!(
                f,
                "attack session: cloud {cloud} point {point} axis {axis} \
                 has non-finite coordinate {value}"
            ),
            Self::ColorOutOfRange { cloud, point, channel, value } => write!(
                f,
                "attack session: cloud {cloud} point {point} channel {channel} \
                 has color {value} outside [0, 1]"
            ),
            Self::LabelOutOfRange { cloud, point, label, classes } => write!(
                f,
                "attack session: cloud {cloud} point {point} has label {label} \
                 but the model has {classes} classes"
            ),
        }
    }
}

impl std::error::Error for SessionError {}

/// Checks a batch against the session contract: non-empty, finite
/// coordinates, colors in `[0, 1]`, labels below `classes`.
pub fn validate_clouds(clouds: &[CloudTensors], classes: usize) -> Result<(), SessionError> {
    if clouds.is_empty() {
        return Err(SessionError::EmptyBatch);
    }
    for (cloud, t) in clouds.iter().enumerate() {
        for (point, p) in t.coords.iter().enumerate() {
            for (axis, v) in [p.x, p.y, p.z].into_iter().enumerate() {
                if !v.is_finite() {
                    return Err(SessionError::NonFiniteCoordinate { cloud, point, axis, value: v });
                }
            }
        }
        let colors = t.colors.as_slice();
        for (i, &v) in colors.iter().enumerate() {
            // NaN fails both comparisons and is rejected here too.
            if !(0.0..=1.0).contains(&v) {
                return Err(SessionError::ColorOutOfRange {
                    cloud,
                    point: i / 3,
                    channel: i % 3,
                    value: v,
                });
            }
        }
        for (point, &label) in t.labels.iter().enumerate() {
            if label >= classes {
                return Err(SessionError::LabelOutOfRange { cloud, point, label, classes });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use colper_scene::{normalize, IndoorSceneConfig, SceneGenerator};

    fn cloud(seed: u64) -> CloudTensors {
        let c = SceneGenerator::indoor(IndoorSceneConfig::with_points(64)).generate(seed);
        CloudTensors::from_cloud(&normalize::pointnet_view(&c))
    }

    #[test]
    fn clean_cloud_passes() {
        assert_eq!(validate_clouds(&[cloud(1)], 13), Ok(()));
    }

    #[test]
    fn empty_batch_rejected() {
        assert_eq!(validate_clouds(&[], 13), Err(SessionError::EmptyBatch));
    }

    #[test]
    fn nan_coordinate_rejected_with_location() {
        let mut t = cloud(2);
        t.coords[7].y = f32::NAN;
        let err = validate_clouds(&[t], 13).unwrap_err();
        match err {
            SessionError::NonFiniteCoordinate { cloud: 0, point: 7, axis: 1, value } => {
                assert!(value.is_nan());
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn infinite_coordinate_rejected() {
        let mut t = cloud(3);
        t.coords[0].z = f32::INFINITY;
        assert!(matches!(
            validate_clouds(&[t], 13),
            Err(SessionError::NonFiniteCoordinate { cloud: 0, point: 0, axis: 2, .. })
        ));
    }

    #[test]
    fn color_out_of_range_rejected() {
        let mut t = cloud(4);
        let idx = 5 * 3 + 2;
        t.colors.as_mut_slice()[idx] = 1.5;
        assert!(matches!(
            validate_clouds(&[t], 13),
            Err(SessionError::ColorOutOfRange { cloud: 0, point: 5, channel: 2, value }) if value == 1.5
        ));
    }

    #[test]
    fn nan_color_rejected() {
        let mut t = cloud(5);
        t.colors.as_mut_slice()[0] = f32::NAN;
        assert!(matches!(
            validate_clouds(&[t], 13),
            Err(SessionError::ColorOutOfRange { cloud: 0, point: 0, channel: 0, .. })
        ));
    }

    #[test]
    fn label_out_of_range_rejected() {
        let mut t = cloud(6);
        t.labels[3] = 99;
        assert_eq!(
            validate_clouds(&[t], 13),
            Err(SessionError::LabelOutOfRange { cloud: 0, point: 3, label: 99, classes: 13 })
        );
    }

    #[test]
    fn error_in_second_cloud_is_attributed_to_it() {
        let ok = cloud(7);
        let mut bad = cloud(8);
        bad.coords[1].x = f32::NAN;
        assert!(matches!(
            validate_clouds(&[ok, bad], 13),
            Err(SessionError::NonFiniteCoordinate { cloud: 1, point: 1, axis: 0, .. })
        ));
    }
}
