//! The [`AttackResult`] returned by attack runs.

use colper_tensor::Matrix;

/// Everything an attack run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackResult {
    /// The adversarial color block `[N, 3]` (unattacked points keep
    /// their original colors exactly).
    pub adversarial_colors: Matrix,
    /// The squared-L2 perturbation magnitude `D(r_color)` (Eq. 4).
    pub l2_sq: f32,
    /// Iterations actually run (early stop on convergence).
    pub steps_run: usize,
    /// Whether the attacker's criterion was met before the step budget.
    pub converged: bool,
    /// The composite objective (`gain`) per iteration.
    pub gain_history: Vec<f32>,
    /// The attacker's metric per iteration (empty unless
    /// [`crate::AttackConfig::record_trajectory`] is set).
    pub metric_history: Vec<f32>,
    /// Predictions of the victim on the best adversarial sample.
    pub predictions: Vec<usize>,
    /// The attacker's metric on the best sample: accuracy over attacked
    /// points (non-targeted, lower is better) or SR (targeted, higher is
    /// better).
    pub success_metric: f32,
    /// Number of attacked points (`|X_t|`).
    pub attacked_points: usize,
    /// Number of plateau noise restarts performed (Algorithm 1's
    /// random-noise injection when the gain stalls between checkpoints).
    pub restarts: usize,
}

impl AttackResult {
    /// The L2 (not squared) perturbation norm, as reported in the
    /// paper's tables.
    pub fn l2(&self) -> f32 {
        self.l2_sq.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_is_sqrt_of_l2_sq() {
        let r = AttackResult {
            adversarial_colors: Matrix::zeros(1, 3),
            l2_sq: 9.0,
            steps_run: 1,
            converged: false,
            gain_history: vec![1.0],
            metric_history: Vec::new(),
            predictions: vec![0],
            success_metric: 0.0,
            attacked_points: 1,
            restarts: 0,
        };
        assert_eq!(r.l2(), 3.0);
    }
}
