//! [`Objective`]: what the attacker optimizes for, as a first-class
//! value with a stable string id.
//!
//! Historically the goal lived inside [`crate::AttackConfig`] as the
//! two-variant [`crate::AttackGoal`], and the noise baseline was a
//! separate entry point. The robustness matrix and the `colperd` service
//! need to *name* attacks — the same string keys a registry, a JSON job
//! spec, and a report row — and need two objectives the goal enum cannot
//! express: AdvPC-style transfer (arXiv 1912.00461: optimize on a
//! surrogate, penalize with a second network) and boundary-focused
//! perturbation (1908.06062's shape-boundary attacks, adapted to the
//! color-only threat model as a label-boundary mask).
//!
//! | id | objective |
//! |----|-----------|
//! | `non_targeted` | [`Objective::NonTargeted`] |
//! | `targeted(T)` | [`Objective::Targeted`] |
//! | `noise(L2)` | [`Objective::NoiseBaseline`] |
//! | `transfer(GAMMA)` | [`Objective::Transfer`] |
//! | `boundary(K)` | [`Objective::Boundary`] |
//!
//! `Objective::id()` round-trips through [`Objective::parse`].

use crate::AttackGoal;

/// What the attacker wants, surfaced through the
/// [`crate::AttackSession`] builder and the `colperd` job spec.
#[derive(Debug, Clone, PartialEq)]
pub enum Objective {
    /// Make every attacked point's prediction differ from its ground
    /// truth (Eq. 3 / Eq. 8).
    NonTargeted,
    /// Drive every attacked point's prediction to `target` (Eq. 2 /
    /// Eq. 7).
    Targeted {
        /// The class the attacked points should be predicted as.
        target: usize,
    },
    /// The random-noise baseline of Tables 1 and 3: uniform color noise
    /// matched to a squared-L2 budget instead of an optimized
    /// perturbation ([`crate::NoiseBaseline`]).
    NoiseBaseline {
        /// Squared-L2 budget of the noise.
        l2_sq: f32,
    },
    /// AdvPC-style transferability (arXiv 1912.00461): non-targeted
    /// optimization on the session's (surrogate) model with a second
    /// network's CW hinge added at weight `gamma`, so the perturbation
    /// is not over-fitted to one architecture. Requires a penalty model
    /// attached via [`crate::AttackSession::penalty_model`].
    Transfer {
        /// Weight of the penalty network's hinge relative to the
        /// surrogate's (`γ` in gain = D + λ1·(L + γ·L') + λ2·S).
        gamma: f32,
    },
    /// Boundary-focused perturbation (1908.06062's shape-boundary
    /// attacks under the color-only threat model): non-targeted
    /// optimization restricted to points within `k` nearest neighbors
    /// of a ground-truth label boundary — the regions segmentation
    /// models are least certain about. Intersects with the session's
    /// mask selector.
    Boundary {
        /// Neighborhood size of the boundary test: a point is boundary
        /// when any of its `k` nearest neighbors carries a different
        /// ground-truth label.
        k: usize,
    },
}

impl Objective {
    /// Stable registry id, e.g. `"targeted(4)"`. Round-trips through
    /// [`Objective::parse`].
    pub fn id(&self) -> String {
        match *self {
            Objective::NonTargeted => "non_targeted".to_string(),
            Objective::Targeted { target } => format!("targeted({target})"),
            Objective::NoiseBaseline { l2_sq } => format!("noise({l2_sq})"),
            Objective::Transfer { gamma } => format!("transfer({gamma})"),
            Objective::Boundary { k } => format!("boundary({k})"),
        }
    }

    /// Parses an objective from its stable id. The inverse of
    /// [`Objective::id`].
    pub fn parse(s: &str) -> Result<Objective, String> {
        let s = s.trim();
        let (name, arg) = match s.find('(') {
            Some(open) => {
                let close =
                    s.rfind(')').ok_or_else(|| format!("objective `{s}`: missing closing `)`"))?;
                if close != s.len() - 1 {
                    return Err(format!("objective `{s}`: trailing text after `)`"));
                }
                (&s[..open], Some(s[open + 1..close].trim()))
            }
            None => (s, None),
        };
        let num = |what: &str| -> Result<f32, String> {
            let raw = arg.ok_or_else(|| format!("objective `{name}`: expected ({what})"))?;
            let v: f32 =
                raw.parse().map_err(|_| format!("objective `{name}`: bad number `{raw}`"))?;
            if !v.is_finite() || v < 0.0 {
                return Err(format!("objective `{name}`: {what} must be non-negative"));
            }
            Ok(v)
        };
        let int = |what: &str| -> Result<usize, String> {
            let raw = arg.ok_or_else(|| format!("objective `{name}`: expected ({what})"))?;
            raw.parse().map_err(|_| format!("objective `{name}`: bad integer `{raw}`"))
        };
        match name {
            "non_targeted" => {
                if arg.is_some() {
                    return Err("objective `non_targeted` takes no argument".to_string());
                }
                Ok(Objective::NonTargeted)
            }
            "targeted" => Ok(Objective::Targeted { target: int("target class")? }),
            "noise" => Ok(Objective::NoiseBaseline { l2_sq: num("squared-L2 budget")? }),
            "transfer" => Ok(Objective::Transfer { gamma: num("gamma")? }),
            "boundary" => {
                let k = int("k")?;
                if k == 0 {
                    return Err("objective `boundary`: k must be positive".to_string());
                }
                Ok(Objective::Boundary { k })
            }
            other => Err(format!("unknown objective `{other}`")),
        }
    }

    /// The [`AttackGoal`] driving the CW hinge and convergence test.
    /// Every objective except [`Objective::Targeted`] optimizes the
    /// non-targeted hinge.
    pub fn goal(&self) -> AttackGoal {
        match *self {
            Objective::Targeted { target } => AttackGoal::Targeted { target },
            _ => AttackGoal::NonTargeted,
        }
    }

    /// Lifts a legacy [`AttackGoal`] into the objective it names.
    pub fn from_goal(goal: AttackGoal) -> Objective {
        match goal {
            AttackGoal::NonTargeted => Objective::NonTargeted,
            AttackGoal::Targeted { target } => Objective::Targeted { target },
        }
    }

    /// Whether the objective requires a penalty model on the session
    /// ([`crate::AttackSession::penalty_model`]).
    pub fn needs_penalty_model(&self) -> bool {
        matches!(self, Objective::Transfer { .. })
    }

    /// Whether the objective runs the gradient optimization loop
    /// (`false` for the noise baseline, which draws one sample).
    pub fn is_optimized(&self) -> bool {
        !matches!(self, Objective::NoiseBaseline { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip() {
        for o in [
            Objective::NonTargeted,
            Objective::Targeted { target: 4 },
            Objective::NoiseBaseline { l2_sq: 1.5 },
            Objective::Transfer { gamma: 0.5 },
            Objective::Boundary { k: 6 },
        ] {
            let reparsed = Objective::parse(&o.id()).expect("id should parse");
            assert_eq!(reparsed, o, "{}", o.id());
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "fog",
            "targeted",
            "targeted()",
            "targeted(-1)",
            "noise(-2)",
            "transfer",
            "boundary(0)",
            "non_targeted(3)",
            "noise(1.0)x",
        ] {
            assert!(Objective::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn goals_map_through() {
        assert_eq!(Objective::NonTargeted.goal(), AttackGoal::NonTargeted);
        assert_eq!(Objective::Targeted { target: 2 }.goal(), AttackGoal::Targeted { target: 2 });
        assert_eq!(Objective::Transfer { gamma: 0.5 }.goal(), AttackGoal::NonTargeted);
        assert_eq!(Objective::Boundary { k: 8 }.goal(), AttackGoal::NonTargeted);
        assert_eq!(
            Objective::from_goal(AttackGoal::Targeted { target: 7 }),
            Objective::Targeted { target: 7 }
        );
    }

    #[test]
    fn capability_flags() {
        assert!(Objective::Transfer { gamma: 1.0 }.needs_penalty_model());
        assert!(!Objective::Boundary { k: 4 }.needs_penalty_model());
        assert!(!Objective::NoiseBaseline { l2_sq: 1.0 }.is_optimized());
        assert!(Objective::NonTargeted.is_optimized());
    }
}
