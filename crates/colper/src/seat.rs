//! Warm attack seats: recycling one attack's tape into the next.
//!
//! A long-running attack service executes many short attacks against the
//! same victims. Each attack's steady state is already allocation-free
//! (the optimizer reuses one [`colper_nn::Forward`] session across
//! steps), but the *first* step of every attack still pays the full cost
//! of growing a fresh tape. A [`WarmSeat`] carries the finished
//! session's tape — graph cleared, buffer pools intact — across attacks,
//! so a pooled job on a same-shaped cloud starts on the zero-allocation
//! path from step 1.
//!
//! Since the schedule compiler landed, a seat can be warmer still: a
//! scheduled attack donates its tape *with the captured graph intact*,
//! plus the compiled `TapeSchedule` and a [`ScheduleKey`] describing
//! exactly which (config, weights, plan, cloud) the capture is valid for.
//! The next job compares keys: on a match it adopts the schedule and
//! replays from its very first step — skipping even graph capture; on a
//! mismatch the tape is reset and serves as an ordinary warm buffer pool.
//!
//! Seats stay deliberately dumb about *placement*: keying seats by victim
//! and cloud shape (so a donated tape's pooled buffers actually fit the
//! next job) is the caller's job — the service keeps a map of seats keyed
//! by `(model, point-count bucket)`.
//!
//! Reuse never changes results: a donated graph is either cleared before
//! recording or replayed bit-identically, so a seated attack matches a
//! cold one exactly (`tests/session_pool.rs`, `tests/schedule_equivalence.rs`).

use crate::config::AttackConfig;
use colper_autodiff::{Tape, TapeSchedule, Var};
use colper_tensor::Matrix;
use std::sync::Arc;

/// Everything a captured schedule must match before it may be replayed
/// for a new job.
///
/// Mixes content equality (config, labels, mask, original colors) with
/// address identity (parameter/buffer storage and the plan's interned
/// `Arc` payloads, stored as `usize` addresses so the seat stays `Send`).
/// Address identity is sound here because mutation of either goes through
/// copy-on-write `Arc`s — a changed weight or a rebuilt plan always
/// presents fresh addresses. The residual ABA hazard (an old allocation
/// freed and a new one landing at the same address, with every other
/// field also equal) is documented in DESIGN.md; models and plans are
/// long-lived in every caller that seats attacks.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ScheduleKey {
    pub(crate) config: AttackConfig,
    /// `ParamSet::storage_fingerprint` of the victim model.
    pub(crate) param_addrs: Vec<usize>,
    /// Address of the plan's interned xyz matrix.
    pub(crate) xyz_addr: usize,
    /// Address of the plan's interned normalized-location matrix.
    pub(crate) loc_addr: usize,
    /// Address and length of the plan's smoothness neighbor list.
    pub(crate) nbrs_addr: usize,
    pub(crate) nbrs_len: usize,
    /// Point count of the captured graph.
    pub(crate) points: usize,
    /// The per-point labels the hinge was captured against.
    pub(crate) labels: Vec<usize>,
    /// The attack mask the hinge was captured against.
    pub(crate) mask: Vec<bool>,
    /// The unperturbed colors (content-compared: per-run `Arc`s are
    /// freshly allocated, so address identity would never match).
    pub(crate) orig_colors: Arc<Matrix>,
}

/// A compiled schedule traveling with its tape: the key it is valid for,
/// the frozen program, and the extraction vars of the captured graph
/// `(gain, w, color, logits, dist, adv_loss, smooth)`.
#[derive(Debug)]
pub(crate) struct CapturedSchedule {
    pub(crate) key: ScheduleKey,
    pub(crate) schedule: TapeSchedule,
    pub(crate) vars: (Var, Var, Var, Var, Var, Var, Var),
}

/// What a checkout hands the attack: the donated tape, plus the compiled
/// schedule when the previous occupant captured one.
#[derive(Debug)]
pub(crate) struct SeatTape {
    pub(crate) tape: Tape,
    pub(crate) captured: Option<CapturedSchedule>,
}

/// A reusable warm seat for attack jobs: holds the tape of the last
/// attack that ran on it — and, when that attack compiled a static
/// schedule, the schedule itself — ready for donation to the next one.
#[derive(Debug, Default)]
pub struct WarmSeat {
    tape: Option<Tape>,
    captured: Option<CapturedSchedule>,
    runs: u64,
    warm_starts: u64,
}

impl WarmSeat {
    /// An empty (cold) seat.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the seat currently holds a donated tape — i.e. whether
    /// the next attack seated here starts warm.
    pub fn is_warm(&self) -> bool {
        self.tape.is_some()
    }

    /// Whether the seat's donated tape carries a compiled schedule a
    /// key-matching job could replay without re-capturing.
    pub fn is_scheduled(&self) -> bool {
        self.captured.is_some()
    }

    /// Attacks that ran on this seat.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Attacks that found a donated tape waiting (every run after the
    /// first, unless a multi-sample attack declined the donation).
    pub fn warm_starts(&self) -> u64 {
        self.warm_starts
    }

    /// Takes the seat's tape (and any captured schedule) for an attack
    /// run, recording the run and whether it started warm.
    pub(crate) fn checkout(&mut self) -> Option<SeatTape> {
        self.runs += 1;
        let tape = self.tape.take()?;
        self.warm_starts += 1;
        Some(SeatTape { tape, captured: self.captured.take() })
    }

    /// Returns a finished attack's reset tape to the seat. Any previously
    /// stored schedule is already gone (checkout moved it out).
    pub(crate) fn donate(&mut self, tape: Tape) {
        self.tape = Some(tape);
        self.captured = None;
    }

    /// Returns a finished attack's tape with its captured graph intact,
    /// together with the schedule compiled against it.
    pub(crate) fn donate_captured(&mut self, tape: Tape, captured: CapturedSchedule) {
        self.tape = Some(tape);
        self.captured = Some(captured);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seat_tracks_warmth_across_checkouts() {
        let mut seat = WarmSeat::new();
        assert!(!seat.is_warm());
        assert!(seat.checkout().is_none(), "cold seat has no tape");
        seat.donate(Tape::new());
        assert!(seat.is_warm());
        assert!(!seat.is_scheduled(), "plain donation carries no schedule");
        assert!(seat.checkout().is_some(), "donated tape is handed out");
        assert!(!seat.is_warm(), "checkout empties the seat");
        assert_eq!(seat.runs(), 2);
        assert_eq!(seat.warm_starts(), 1);
    }
}
