//! Warm attack seats: recycling one attack's tape into the next.
//!
//! A long-running attack service executes many short attacks against the
//! same victims. Each attack's steady state is already allocation-free
//! (the optimizer reuses one [`colper_nn::Forward`] session across
//! steps), but the *first* step of every attack still pays the full cost
//! of growing a fresh tape. A [`WarmSeat`] carries the finished
//! session's tape — graph cleared, buffer pools intact — across attacks,
//! so a pooled job on a same-shaped cloud starts on the zero-allocation
//! path from step 1.
//!
//! Seats are deliberately dumb: a seat holds at most one tape and knows
//! nothing about models or shapes. Keying seats by victim and cloud
//! shape (so a donated tape's pooled buffers actually fit the next job)
//! is the caller's job — the service keeps a map of seats keyed by
//! `(model, point-count bucket)`.
//!
//! Reuse never changes results: the donated graph is cleared before the
//! first pass records onto it, so a seated attack is bit-identical to a
//! cold one (`tests/session_pool.rs` pins this down).

use colper_autodiff::Tape;

/// A reusable warm seat for attack jobs: holds the tape of the last
/// attack that ran on it, ready for donation to the next one.
#[derive(Debug, Default)]
pub struct WarmSeat {
    tape: Option<Tape>,
    runs: u64,
    warm_starts: u64,
}

impl WarmSeat {
    /// An empty (cold) seat.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the seat currently holds a donated tape — i.e. whether
    /// the next attack seated here starts warm.
    pub fn is_warm(&self) -> bool {
        self.tape.is_some()
    }

    /// Attacks that ran on this seat.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Attacks that found a donated tape waiting (every run after the
    /// first, unless a multi-sample attack declined the donation).
    pub fn warm_starts(&self) -> u64 {
        self.warm_starts
    }

    /// Takes the seat's tape for an attack run, recording the run and
    /// whether it started warm.
    pub(crate) fn checkout(&mut self) -> Option<Tape> {
        self.runs += 1;
        let tape = self.tape.take();
        if tape.is_some() {
            self.warm_starts += 1;
        }
        tape
    }

    /// Returns a finished attack's tape to the seat.
    pub(crate) fn donate(&mut self, tape: Tape) {
        self.tape = Some(tape);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seat_tracks_warmth_across_checkouts() {
        let mut seat = WarmSeat::new();
        assert!(!seat.is_warm());
        assert!(seat.checkout().is_none(), "cold seat has no tape");
        seat.donate(Tape::new());
        assert!(seat.is_warm());
        assert!(seat.checkout().is_some(), "donated tape is handed out");
        assert!(!seat.is_warm(), "checkout empties the seat");
        assert_eq!(seat.runs(), 2);
        assert_eq!(seat.warm_starts(), 1);
    }
}
