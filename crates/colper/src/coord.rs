//! Algorithm 2 of the paper: the L0-constrained attack used to compare
//! color against coordinate perturbation (Table 7).
//!
//! The attack alternates optimization rounds with *impactful-point
//! selection* (Eq. 9): after each round, the `restore_per_round` points
//! with the smallest `|gradient · perturbation|` score are restored to
//! their original values and frozen, shrinking the perturbed set until
//! it fits the L0 budget (10% of the points in the paper).

use crate::{AttackGoal, TanhReparam};
use colper_geom::Point3;
use colper_metrics::ConfusionMatrix;
use colper_models::{CloudTensors, GeometryPlan, ModelInput, SegmentationModel};
use colper_nn::{AdamState, Forward};
use colper_tensor::Matrix;
use rand::rngs::StdRng;

/// Which feature block the L0 attack perturbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PerturbTarget {
    /// RGB color, box `[0, 1]` (COLPER under an L0 constraint).
    Color,
    /// Coordinates, box `[-1, 1]` (the prior-work style the paper
    /// compares against; use the ResGCN normalized view).
    Coordinate,
}

/// Hyper-parameters for [`L0Attack`].
#[derive(Debug, Clone, PartialEq)]
pub struct L0AttackConfig {
    /// Perturbed feature block.
    pub target: PerturbTarget,
    /// Attack goal (the paper's Table 7 uses non-targeted).
    pub goal: AttackGoal,
    /// Optimization steps per restoration round.
    pub steps_per_round: usize,
    /// Points restored (frozen) per round — `N` in Eq. 9; the paper
    /// uses 100.
    pub restore_per_round: usize,
    /// Maximum fraction of points that may stay perturbed (the paper's
    /// L0 criterion is 10%).
    pub l0_budget: f32,
    /// Adam learning rate.
    pub lr: f32,
    /// Success threshold on masked accuracy (non-targeted): the sample
    /// "succeeds" when accuracy falls below it. `None` uses random
    /// guessing (`1/classes`).
    pub success_threshold: Option<f32>,
}

impl L0AttackConfig {
    /// Defaults matching the paper at reduced step counts.
    pub fn new(target: PerturbTarget) -> Self {
        Self {
            target,
            goal: AttackGoal::NonTargeted,
            steps_per_round: 30,
            restore_per_round: 100,
            l0_budget: 0.10,
            lr: 0.01,
            success_threshold: None,
        }
    }
}

/// The outcome of one [`L0Attack::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct L0Result {
    /// The perturbed feature block (colors or coordinates, `[N, 3]`).
    pub adversarial: Matrix,
    /// Fraction of points still perturbed at the end.
    pub perturbed_fraction: f32,
    /// Whether the final perturbed set fits the L0 budget.
    pub meets_budget: bool,
    /// Whether the attack met its success threshold while fitting the
    /// budget (the event SSR counts).
    pub success: bool,
    /// Post-attack accuracy over all points.
    pub accuracy: f32,
    /// Post-attack aIoU over all points.
    pub miou: f32,
    /// Final predictions.
    pub predictions: Vec<usize>,
}

/// The L0-constrained color/coordinate attack.
#[derive(Debug, Clone, PartialEq)]
pub struct L0Attack {
    config: L0AttackConfig,
}

impl L0Attack {
    /// Creates the attack.
    pub fn new(config: L0AttackConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &L0AttackConfig {
        &self.config
    }

    /// Runs the attack on one cloud (all points initially perturbable).
    ///
    /// # Panics
    ///
    /// Panics when the cloud is empty.
    pub fn run<M: SegmentationModel + ?Sized>(
        &self,
        model: &M,
        tensors: &CloudTensors,
        rng: &mut StdRng,
    ) -> L0Result {
        let n = tensors.len();
        assert!(n > 0, "L0Attack: empty cloud");
        let cfg = &self.config;
        let classes = model.num_classes();
        let threshold = cfg.success_threshold.unwrap_or(1.0 / classes as f32);

        let (orig, reparam) = match cfg.target {
            PerturbTarget::Color => (tensors.colors.clone(), TanhReparam::color()),
            PerturbTarget::Coordinate => (tensors.xyz.clone(), TanhReparam::coordinate()),
        };
        let labels_for_loss: Vec<usize> = match cfg.goal {
            AttackGoal::NonTargeted => tensors.labels.clone(),
            AttackGoal::Targeted { target } => vec![target; n],
        };

        let mut w = reparam.to_w(&orig);
        let w_orig = w.clone();
        let mut perturbable = vec![true; n];
        // During optimization the *graph* coordinates stay the original
        // ones even when xyz features are perturbed (input.coords is
        // never rebuilt mid-run), so one plan covers every step. Only the
        // final evaluation below re-derives geometry from moved points.
        let plan = model.plan(&tensors.coords);
        let budget_points = ((n as f32) * cfg.l0_budget).floor() as usize;

        let max_rounds = n / cfg.restore_per_round.max(1) + 2;
        let mut last_grad = Matrix::zeros(n, 3);
        for _ in 0..max_rounds {
            // Inner optimization over the currently perturbable set;
            // Algorithm 2 drops the D and S terms (gain = loss).
            let mut adam = AdamState::new(n, 3);
            for _ in 0..cfg.steps_per_round {
                let (grad, _) = self.step(
                    model,
                    tensors,
                    &w,
                    &perturbable,
                    &labels_for_loss,
                    &reparam,
                    &plan,
                    rng,
                );
                last_grad = grad.clone();
                adam.update(&mut w, &grad, cfg.lr);
            }
            let count = perturbable.iter().filter(|&&p| p).count();
            if count <= budget_points {
                // "The point cloud will be perturbed without restoration":
                // spend a longer final phase on the surviving set.
                let mut adam = AdamState::new(n, 3);
                for _ in 0..cfg.steps_per_round * 3 {
                    let (grad, _) = self.step(
                        model,
                        tensors,
                        &w,
                        &perturbable,
                        &labels_for_loss,
                        &reparam,
                        &plan,
                        rng,
                    );
                    adam.update(&mut w, &grad, cfg.lr * 2.0);
                }
                break;
            }
            // Eq. 9: restore the least impactful points.
            let perturb = reparam.to_features(&w).sub(&orig).expect("shape");
            let mut scores: Vec<(f32, usize)> = (0..n)
                .filter(|&i| perturbable[i])
                .map(|i| {
                    let s: f32 = (0..3).map(|c| (last_grad[(i, c)] * perturb[(i, c)]).abs()).sum();
                    (s, i)
                })
                .collect();
            restoration_order(&mut scores);
            let to_restore = cfg.restore_per_round.min(count.saturating_sub(budget_points).max(1));
            for &(_, i) in scores.iter().take(to_restore) {
                perturbable[i] = false;
                for c in 0..3 {
                    w[(i, c)] = w_orig[(i, c)];
                }
            }
        }

        // Final evaluation with the graph rebuilt when coordinates moved.
        // Restored points are reset to their *exact* original features:
        // the tanh round-trip is only accurate to ~1e-4 near the box
        // boundary, which would otherwise leak into the L0 count.
        let mut adversarial = reparam.to_features(&w);
        for (i, &p) in perturbable.iter().enumerate() {
            if !p {
                for c in 0..3 {
                    adversarial[(i, c)] = orig[(i, c)];
                }
            }
        }
        let mut final_tensors = tensors.clone();
        match cfg.target {
            PerturbTarget::Color => final_tensors.colors = adversarial.clone(),
            PerturbTarget::Coordinate => {
                final_tensors.xyz = adversarial.clone();
                final_tensors.coords = (0..n)
                    .map(|i| {
                        Point3::new(adversarial[(i, 0)], adversarial[(i, 1)], adversarial[(i, 2)])
                    })
                    .collect();
            }
        }
        let predictions = colper_models::predict(model, &final_tensors, rng);
        let mut cm = ConfusionMatrix::new(classes);
        cm.update(&predictions, &tensors.labels);
        let accuracy = cm.accuracy();
        let miou = cm.mean_iou();

        let perturbed = adversarial
            .sub(&orig)
            .expect("shape")
            .iter_rows()
            .filter(|row| row.iter().any(|v| v.abs() > 1e-4))
            .count();
        let perturbed_fraction = perturbed as f32 / n as f32;
        let meets_budget = perturbed <= budget_points;
        L0Result {
            adversarial,
            perturbed_fraction,
            meets_budget,
            success: meets_budget && accuracy < threshold.max(0.5),
            accuracy,
            miou,
            predictions,
        }
    }

    /// One gradient evaluation: returns `(grad_w, loss_value)`.
    #[allow(clippy::too_many_arguments)]
    fn step<M: SegmentationModel + ?Sized>(
        &self,
        model: &M,
        tensors: &CloudTensors,
        w: &Matrix,
        perturbable: &[bool],
        labels_for_loss: &[usize],
        reparam: &TanhReparam,
        plan: &GeometryPlan,
        rng: &mut StdRng,
    ) -> (Matrix, f32) {
        let n = tensors.len();
        let mask_m = Matrix::from_fn(n, 3, |r, _| if perturbable[r] { 1.0 } else { 0.0 });
        let orig = match self.config.target {
            PerturbTarget::Color => &tensors.colors,
            PerturbTarget::Coordinate => &tensors.xyz,
        };
        let frozen = Matrix::from_fn(n, 3, |r, c| if perturbable[r] { 0.0 } else { orig[(r, c)] });

        let mut session = Forward::new(model.params(), false);
        let w_var = session.tape.leaf(w.clone());
        let feat_free = reparam.features_on_tape(&mut session.tape, w_var);
        let feat_masked = session.tape.mul_const(feat_free, mask_m);
        let frozen_var = session.tape.constant(frozen);
        let feat = session.tape.add(feat_masked, frozen_var);

        let (xyz, color) = match self.config.target {
            PerturbTarget::Color => (session.tape.constant(tensors.xyz.clone()), feat),
            PerturbTarget::Coordinate => (feat, session.tape.constant(tensors.colors.clone())),
        };
        let loc = session.tape.constant(tensors.loc01.clone());
        let input = ModelInput { coords: &tensors.coords, xyz, color, loc, plan: Some(plan) };
        let logits = model.forward(&mut session, &input, rng);
        // Algorithm 2 keeps the adversarial loss over the *whole* attacked
        // set X_t (all points here); only the perturbation support shrinks
        // via the mask. Perturbing 10% of the points must still be able
        // to flip their neighbors through the network's receptive field.
        let full_mask = vec![true; n];
        let loss = match self.config.goal {
            AttackGoal::NonTargeted => {
                session.tape.cw_nontargeted(logits, labels_for_loss, &full_mask)
            }
            AttackGoal::Targeted { .. } => {
                session.tape.cw_targeted(logits, labels_for_loss, &full_mask)
            }
        };
        session.tape.backward(loss);
        let loss_v = session.tape.value(loss)[(0, 0)];
        let grad = session.tape.grad(w_var).cloned().unwrap_or_else(|| Matrix::zeros(n, 3));
        (grad, loss_v)
    }
}

/// Sorts Eq. 9 restoration candidates by ascending impact score with the
/// point index as tie-break. Uses [`f32::total_cmp`]: a non-finite score
/// (a diverged gradient, an overflowed perturbation product) must not
/// poison the ordering — NaN sorts after every finite score, so broken
/// points are restored *last* and the order stays a total, deterministic
/// function of the input.
fn restoration_order(scores: &mut [(f32, usize)]) {
    scores.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use colper_models::{train_model, PointNet2, PointNet2Config, TrainConfig};
    use colper_scene::{normalize, IndoorSceneConfig, RoomKind, SceneGenerator};
    use rand::SeedableRng;

    fn victim(
        rng: &mut StdRng,
        norm: fn(&colper_scene::PointCloud) -> colper_scene::PointCloud,
    ) -> (PointNet2, CloudTensors) {
        let clouds: Vec<CloudTensors> = (0..4)
            .map(|i| {
                let cfg = IndoorSceneConfig {
                    room_kind: Some(RoomKind::Office),
                    ..IndoorSceneConfig::with_points(160)
                };
                CloudTensors::from_cloud(&norm(&SceneGenerator::indoor(cfg).generate(700 + i)))
            })
            .collect();
        let mut model = PointNet2::new(PointNet2Config::tiny(13), rng);
        let tc = TrainConfig { epochs: 8, lr: 0.01, target_accuracy: 0.9 };
        train_model(&mut model, &clouds, &tc, rng);
        let t = clouds[0].clone();
        (model, t)
    }

    #[test]
    fn color_l0_attack_fits_budget() {
        let mut rng = StdRng::seed_from_u64(0);
        let (model, t) = victim(&mut rng, normalize::resgcn_view);
        let mut cfg = L0AttackConfig::new(PerturbTarget::Color);
        cfg.steps_per_round = 10;
        cfg.restore_per_round = 40;
        let result = L0Attack::new(cfg).run(&model, &t, &mut rng);
        assert!(result.meets_budget, "perturbed fraction {}", result.perturbed_fraction);
        assert!(result.perturbed_fraction <= 0.101);
        assert_eq!(result.predictions.len(), t.len());
    }

    #[test]
    fn coordinate_l0_attack_runs_and_reports() {
        let mut rng = StdRng::seed_from_u64(1);
        let (model, t) = victim(&mut rng, normalize::resgcn_view);
        let mut cfg = L0AttackConfig::new(PerturbTarget::Coordinate);
        cfg.steps_per_round = 8;
        cfg.restore_per_round = 40;
        let result = L0Attack::new(cfg).run(&model, &t, &mut rng);
        assert!((0.0..=1.0).contains(&result.accuracy));
        assert!((0.0..=1.0).contains(&result.miou));
        assert!(result.adversarial.all_finite());
        // Coordinates stay in the tanh box.
        assert!(result.adversarial.min().unwrap() >= -1.0 - 1e-4);
        assert!(result.adversarial.max().unwrap() <= 1.0 + 1e-4);
    }

    #[test]
    fn restored_points_keep_original_features() {
        let mut rng = StdRng::seed_from_u64(2);
        let (model, t) = victim(&mut rng, normalize::resgcn_view);
        let mut cfg = L0AttackConfig::new(PerturbTarget::Color);
        cfg.steps_per_round = 6;
        cfg.restore_per_round = 60;
        let result = L0Attack::new(cfg).run(&model, &t, &mut rng);
        // At most budget fraction of rows differ.
        let n = t.len();
        let changed = (0..n)
            .filter(|&i| {
                (0..3).any(|c| (result.adversarial[(i, c)] - t.colors[(i, c)]).abs() > 1e-3)
            })
            .count();
        assert!(changed as f32 / n as f32 <= 0.11, "{changed}/{n} changed");
    }

    #[test]
    fn restoration_order_is_total_under_nan_and_inf() {
        // The old `partial_cmp(..).unwrap_or(Equal)` comparator made NaN
        // compare equal to *everything*, which breaks transitivity and
        // lets the sort order depend on element layout. `total_cmp` plus
        // the index tie-break must produce one canonical order.
        let mut scores = vec![
            (f32::NAN, 0),
            (1.0, 1),
            (f32::NEG_INFINITY, 2),
            (0.0, 3),
            (f32::INFINITY, 4),
            (1.0, 5),
            (f32::NAN, 6),
        ];
        restoration_order(&mut scores);
        let order: Vec<usize> = scores.iter().map(|&(_, i)| i).collect();
        // -inf < 0 < 1 (ties by index) < +inf < NaN (ties by index).
        assert_eq!(order, vec![2, 3, 1, 5, 4, 0, 6]);

        // Any permutation of the same input sorts to the same order.
        let mut rotated = vec![
            (1.0, 5),
            (f32::NAN, 6),
            (f32::INFINITY, 4),
            (f32::NAN, 0),
            (0.0, 3),
            (1.0, 1),
            (f32::NEG_INFINITY, 2),
        ];
        restoration_order(&mut rotated);
        assert_eq!(rotated.iter().map(|&(_, i)| i).collect::<Vec<_>>(), order);
    }
}
