//! COLPER: color-only adversarial perturbation against point-cloud
//! semantic segmentation — the paper's primary contribution.
//!
//! The attack (Algorithm 1 of the paper) is a white-box, test-time,
//! gradient-based optimization over a tanh-reparameterized color
//! variable `w` (Eq. 5): each iteration runs the victim network forward,
//! computes the composite objective
//!
//! ```text
//! gain = D(r_color) + λ1 · L(X', Y) + λ2 · S(X')        (Eq. 2 / Eq. 3)
//! ```
//!
//! — squared-L2 perturbation magnitude (Eq. 4), a CW-style hinge on the
//! logits (Eq. 7 targeted / Eq. 8 non-targeted), and a k-NN smoothness
//! penalty (Eq. 6) — backpropagates to `w`, and applies one Adam step.
//! On a plateau, uniform noise restarts the search; optimization stops
//! early once the attacker's criterion is met (accuracy below random
//! guessing for non-targeted attacks, success rate ≥ 95% for targeted
//! ones).
//!
//! Alongside the main attack the crate ships the paper's comparison
//! apparatus: the L0-constrained coordinate/color attack (Algorithm 2,
//! with the impactful-point selection of Eq. 9), the random-noise
//! baseline matched on L2, and the transferability helpers (Eq. 10).
//!
//! # Example
//!
//! ```no_run
//! use colper_attack::{AttackConfig, AttackSession};
//! use colper_models::{CloudTensors, PointNet2, PointNet2Config};
//! use colper_scene::{normalize, IndoorSceneConfig, SceneGenerator};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let cloud = SceneGenerator::indoor(IndoorSceneConfig::with_points(512)).generate(1);
//! let tensors = CloudTensors::from_cloud(&normalize::pointnet_view(&cloud));
//! let model = PointNet2::new(PointNet2Config::small(13), &mut rng);
//! let attack = AttackSession::new(AttackConfig::non_targeted(64));
//! let result = attack.run_with_rng(&model, &tensors, &mut rng);
//! println!("post-attack accuracy on attacked points: {}", result.success_metric);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attack;
mod baseline;
mod batch;
mod classic;
mod config;
mod coord;
mod objective;
pub mod physical;
mod reparam;
mod report;
mod seat;
mod session;
mod streaming;
mod transfer;
mod validate;

pub use attack::{AttackPlan, Colper};
pub use baseline::{random_color_noise, NoiseBaseline};
pub use batch::{BatchItem, BatchOutcome};
pub use classic::{ClassicAttack, ClassicKind};
/// Re-exported so attack callers can build an [`Observer`] without
/// depending on `colper-obs` directly.
pub use colper_obs::Observer;
pub use config::{AttackConfig, AttackGoal};
pub use coord::{L0Attack, L0AttackConfig, L0Result, PerturbTarget};
pub use objective::Objective;
pub use reparam::TanhReparam;
pub use report::AttackResult;
pub use seat::WarmSeat;
pub use session::AttackSession;
pub use streaming::{StreamConfig, StreamOutcome, StreamingAttack};
pub use transfer::{apply_adversarial_colors, evaluate_cloud, TransferOutcome};
pub use validate::{validate_clouds, SessionError};
