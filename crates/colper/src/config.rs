//! Attack configuration, with the paper's hyper-parameters as defaults.

/// What the attacker wants (Section "Problem Formulation" of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackGoal {
    /// Make every attacked point's prediction differ from its ground
    /// truth (Eq. 3 / Eq. 8).
    NonTargeted,
    /// Drive every attacked point's prediction to `target` (Eq. 2 /
    /// Eq. 7) — e.g. board → wall in the paper's indoor experiments.
    Targeted {
        /// The class the attacked points should be predicted as.
        target: usize,
    },
}

/// Hyper-parameters of [`crate::Colper`].
///
/// Defaults follow the paper: `λ1 = λ2 = 1`, `α = 10` smoothness
/// neighbors, Adam with learning rate 0.01, plateau-noise every
/// `max(1, steps/100)` iterations. The paper runs `Steps = 1000`; the
/// constructors default to a CPU-friendly 150, and
/// [`AttackConfig::paper_scale`] restores 1000.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackConfig {
    /// The attack goal.
    pub goal: AttackGoal,
    /// Maximum number of optimization iterations (`Steps`).
    pub steps: usize,
    /// Weight of the adversarial loss (`λ1`).
    pub lambda1: f32,
    /// Weight of the smoothness penalty (`λ2`).
    pub lambda2: f32,
    /// Number of nearest neighbors in the smoothness penalty (`α`).
    pub alpha: usize,
    /// Adam learning rate over `w`.
    pub lr: f32,
    /// Convergence threshold: for non-targeted attacks, stop when the
    /// accuracy over attacked points drops below this (the paper uses
    /// `1/classes`, i.e. random guessing); for targeted attacks, stop
    /// when SR exceeds it (the paper uses 0.95). `None` picks the
    /// paper's value automatically.
    pub convergence_threshold: Option<f32>,
    /// Magnitude of the uniform plateau-restart noise added to `w`.
    pub noise_scale: f32,
    /// Forward/backward passes averaged per iteration (expectation over
    /// transforms). `1` reproduces the paper; larger values stabilize
    /// gradients against stochastic victims such as RandLA-Net's random
    /// sampling.
    pub gradient_samples: usize,
    /// Half-width of a random scene-lighting multiplier applied to the
    /// colors *inside* each gradient sample (EoT over illumination, for
    /// physically robust perturbations). `0.0` (the paper's setting)
    /// disables it; combine with `gradient_samples > 1`.
    pub lighting_eot: f32,
    /// Record the attacker's metric at every iteration in
    /// [`crate::AttackResult::metric_history`] (small extra memory).
    pub record_trajectory: bool,
}

impl AttackConfig {
    /// A non-targeted attack configuration with CPU-friendly step count
    /// (`steps`).
    pub fn non_targeted(steps: usize) -> Self {
        Self {
            goal: AttackGoal::NonTargeted,
            steps,
            lambda1: 1.0,
            lambda2: 1.0,
            alpha: 10,
            lr: 0.01,
            convergence_threshold: None,
            noise_scale: 0.2,
            gradient_samples: 1,
            lighting_eot: 0.0,
            record_trajectory: false,
        }
    }

    /// A targeted attack configuration toward `target`.
    pub fn targeted(steps: usize, target: usize) -> Self {
        Self { goal: AttackGoal::Targeted { target }, ..Self::non_targeted(steps) }
    }

    /// Restores the paper's `Steps = 1000`.
    pub fn paper_scale(self) -> Self {
        Self { steps: 1000, ..self }
    }

    /// The effective convergence threshold for `classes` classes.
    pub fn threshold(&self, classes: usize) -> f32 {
        match (self.convergence_threshold, self.goal) {
            (Some(t), _) => t,
            (None, AttackGoal::NonTargeted) => 1.0 / classes as f32,
            (None, AttackGoal::Targeted { .. }) => 0.95,
        }
    }

    pub(crate) fn validate(&self, classes: usize) {
        assert!(self.steps > 0, "AttackConfig: steps must be positive");
        assert!(self.alpha > 0, "AttackConfig: alpha must be positive");
        assert!(self.lr > 0.0, "AttackConfig: lr must be positive");
        assert!(self.gradient_samples > 0, "AttackConfig: gradient_samples must be positive");
        if let AttackGoal::Targeted { target } = self.goal {
            assert!(target < classes, "AttackConfig: target class {target} out of range");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = AttackConfig::non_targeted(150);
        assert_eq!(c.lambda1, 1.0);
        assert_eq!(c.lambda2, 1.0);
        assert_eq!(c.alpha, 10);
        assert_eq!(c.lr, 0.01);
        assert_eq!(c.paper_scale().steps, 1000);
    }

    #[test]
    fn automatic_thresholds_match_paper() {
        let nt = AttackConfig::non_targeted(10);
        // 1/13 for S3DIS-like, 1/8 for Semantic3D-like.
        assert!((nt.threshold(13) - 1.0 / 13.0).abs() < 1e-6);
        assert!((nt.threshold(8) - 0.125).abs() < 1e-6);
        let t = AttackConfig::targeted(10, 2);
        assert!((t.threshold(13) - 0.95).abs() < 1e-6);
    }

    #[test]
    fn explicit_threshold_wins() {
        let mut c = AttackConfig::non_targeted(10);
        c.convergence_threshold = Some(0.42);
        assert_eq!(c.threshold(13), 0.42);
    }

    #[test]
    #[should_panic(expected = "target class")]
    fn validates_target_range() {
        AttackConfig::targeted(10, 20).validate(13);
    }
}
