//! Transferability helpers (the paper's Table 8 protocol): adversarial
//! samples generated against one model are replayed against another,
//! renormalizing coordinates between model conventions (Eq. 10).

use colper_metrics::ConfusionMatrix;
use colper_models::{CloudTensors, SegmentationModel};
use colper_scene::PointCloud;
use colper_tensor::Matrix;
use rand::rngs::StdRng;

/// Segmentation quality of a replayed adversarial sample.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferOutcome {
    /// Point accuracy of the receiving model.
    pub accuracy: f32,
    /// aIoU of the receiving model.
    pub miou: f32,
    /// The receiving model's predictions.
    pub predictions: Vec<usize>,
}

/// Writes an adversarial color block back into a cloud (clamped to
/// `[0, 1]`), leaving coordinates and labels untouched.
///
/// # Panics
///
/// Panics when the matrix shape is not `[cloud.len(), 3]`.
pub fn apply_adversarial_colors(cloud: &PointCloud, colors: &Matrix) -> PointCloud {
    let mut out = cloud.clone();
    out.set_colors_from_matrix(colors);
    out
}

/// Evaluates `model` on a cloud that must already be in the model's
/// normalized view; this is the replay step of the transfer protocol.
pub fn evaluate_cloud<M: SegmentationModel + ?Sized>(
    model: &M,
    cloud: &PointCloud,
    rng: &mut StdRng,
) -> TransferOutcome {
    let tensors = CloudTensors::from_cloud(cloud);
    let predictions = colper_models::predict(model, &tensors, rng);
    let mut cm = ConfusionMatrix::new(model.num_classes());
    cm.update(&predictions, &cloud.labels);
    TransferOutcome { accuracy: cm.accuracy(), miou: cm.mean_iou(), predictions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colper_models::{PointNet2, PointNet2Config};
    use colper_scene::{normalize, IndoorSceneConfig, SceneGenerator};
    use rand::SeedableRng;

    #[test]
    fn apply_colors_round_trip() {
        let cloud = SceneGenerator::indoor(IndoorSceneConfig::with_points(64)).generate(0);
        let colors = Matrix::filled(64, 3, 0.25);
        let out = apply_adversarial_colors(&cloud, &colors);
        assert!(out.colors.iter().all(|c| c.iter().all(|&v| v == 0.25)));
        assert_eq!(out.coords, cloud.coords);
        assert_eq!(out.labels, cloud.labels);
    }

    #[test]
    fn apply_colors_clamps() {
        let cloud = SceneGenerator::indoor(IndoorSceneConfig::with_points(8)).generate(0);
        let colors = Matrix::filled(8, 3, 7.0);
        let out = apply_adversarial_colors(&cloud, &colors);
        assert!(out.colors.iter().all(|c| c.iter().all(|&v| v == 1.0)));
    }

    #[test]
    fn evaluate_cloud_reports_bounded_metrics() {
        let mut rng = StdRng::seed_from_u64(0);
        let cloud = normalize::pointnet_view(
            &SceneGenerator::indoor(IndoorSceneConfig::with_points(96)).generate(1),
        );
        let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        let outcome = evaluate_cloud(&model, &cloud, &mut rng);
        assert!((0.0..=1.0).contains(&outcome.accuracy));
        assert!((0.0..=1.0).contains(&outcome.miou));
        assert_eq!(outcome.predictions.len(), 96);
    }

    #[test]
    fn eq10_pipeline_composes() {
        // ResGCN view -> Eq. 10 -> feed to a PointNet++-convention model.
        let mut rng = StdRng::seed_from_u64(1);
        let cloud = SceneGenerator::indoor(IndoorSceneConfig::with_points(96)).generate(2);
        let resgcn_cloud = normalize::resgcn_view(&cloud);
        let transferred = normalize::eq10_transform(&resgcn_cloud);
        let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        let outcome = evaluate_cloud(&model, &transferred, &mut rng);
        assert_eq!(outcome.predictions.len(), 96);
    }
}
