//! Batch outcome types: per-cloud attack results with segmentation
//! quality attached, and their aggregation into the paper's summary
//! statistics.
//!
//! The paper attacks hundreds of Area-5 point clouds per table;
//! [`crate::AttackSession::run`] is the library-level equivalent of that
//! loop, and these are the types it returns (the experiment harness
//! builds its tables on top of the same primitives).

use crate::AttackResult;
use colper_metrics::{AttackReport, Summary};
use colper_obs::Observer;

/// One cloud's attack outcome with segmentation quality attached.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchItem {
    /// The raw attack result.
    pub result: AttackResult,
    /// Clean accuracy on this cloud.
    pub clean_accuracy: f32,
    /// Post-attack accuracy over all points.
    pub adversarial_accuracy: f32,
    /// Post-attack aIoU over all points.
    pub adversarial_miou: f32,
}

/// Aggregates over an [`crate::AttackSession::run`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// Per-cloud outcomes, in input order.
    pub items: Vec<BatchItem>,
    /// Summary of post-attack accuracy.
    pub adversarial_accuracy: Summary,
    /// Summary of post-attack aIoU.
    pub adversarial_miou: Summary,
    /// Summary of perturbation L2.
    pub l2: Summary,
    /// Fraction of clouds whose attack converged.
    pub convergence_rate: f32,
}

impl BatchOutcome {
    /// Aggregates per-cloud items into the batch summary statistics.
    ///
    /// # Panics
    ///
    /// Panics when `items` is empty.
    pub fn aggregate(items: Vec<BatchItem>) -> Self {
        assert!(!items.is_empty(), "BatchOutcome::aggregate: no items");
        let accs: Vec<f32> = items.iter().map(|i| i.adversarial_accuracy).collect();
        let mious: Vec<f32> = items.iter().map(|i| i.adversarial_miou).collect();
        let l2s: Vec<f32> = items.iter().map(|i| i.result.l2()).collect();
        let converged = items.iter().filter(|i| i.result.converged).count();
        BatchOutcome {
            adversarial_accuracy: Summary::of(&accs),
            adversarial_miou: Summary::of(&mious),
            l2: Summary::of(&l2s),
            convergence_rate: converged as f32 / items.len() as f32,
            items,
        }
    }

    /// One [`AttackReport`] per cloud, in input order — the unified
    /// serialization schema shared by the CLI, the bench bins and the
    /// `colper-obs` sinks. When `observer` collected step telemetry for
    /// a cloud (same observer handed to the session, tracing on), the
    /// matching report nests it under `steps`.
    pub fn reports(&self, observer: &Observer) -> Vec<AttackReport> {
        let traces = observer.attack_traces();
        self.items
            .iter()
            .enumerate()
            .map(|(cloud, item)| AttackReport {
                cloud,
                l2: item.result.l2(),
                steps_run: item.result.steps_run,
                converged: item.result.converged,
                success_metric: item.result.success_metric,
                attacked_points: item.result.attacked_points,
                restarts: item.result.restarts,
                clean_accuracy: item.clean_accuracy,
                adversarial_accuracy: item.adversarial_accuracy,
                adversarial_miou: item.adversarial_miou,
                steps: traces
                    .iter()
                    .find(|t| t.cloud == cloud)
                    .map(|t| t.steps.clone())
                    .unwrap_or_default(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::{AttackConfig, AttackSession};
    use colper_models::{CloudTensors, PointNet2, PointNet2Config};
    use colper_runtime::Runtime;
    use colper_scene::{normalize, IndoorSceneConfig, SceneGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn clouds(n: u64) -> Vec<CloudTensors> {
        (0..n)
            .map(|i| {
                let c = SceneGenerator::indoor(IndoorSceneConfig::with_points(96)).generate(i);
                CloudTensors::from_cloud(&normalize::pointnet_view(&c))
            })
            .collect()
    }

    #[test]
    fn batch_covers_every_cloud_in_order() {
        let mut rng = StdRng::seed_from_u64(0);
        let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        let data = clouds(5);
        let outcome = AttackSession::new(AttackConfig::non_targeted(3))
            .runtime(&Runtime::new(2))
            .seed(7)
            .run(&model, &data);
        assert_eq!(outcome.items.len(), 5);
        assert_eq!(outcome.adversarial_accuracy.count, 5);
        assert!((0.0..=1.0).contains(&outcome.convergence_rate));
        for item in &outcome.items {
            assert!((0.0..=1.0).contains(&item.adversarial_accuracy));
            assert_eq!(item.result.adversarial_colors.rows(), 96);
        }
    }

    #[test]
    fn batch_is_deterministic_regardless_of_runtime() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        let data = clouds(4);
        let cfg = AttackConfig::non_targeted(3);
        let serial = AttackSession::new(cfg.clone())
            .runtime(&Runtime::sequential())
            .seed(9)
            .run(&model, &data);
        let parallel = AttackSession::new(cfg).runtime(&Runtime::new(4)).seed(9).run(&model, &data);
        for (a, b) in serial.items.iter().zip(&parallel.items) {
            assert_eq!(a.result.adversarial_colors, b.result.adversarial_colors);
            assert_eq!(a.adversarial_accuracy, b.adversarial_accuracy);
        }
    }

    #[test]
    #[should_panic(expected = "no clouds")]
    fn empty_batch_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        let _ = AttackSession::new(AttackConfig::non_targeted(3)).run(&model, &[]);
    }
}
