//! Batch orchestration: run the attack over many clouds in parallel and
//! aggregate the paper's summary statistics.
//!
//! The paper attacks hundreds of Area-5 point clouds per table; this
//! module is the library-level equivalent of that loop (the experiment
//! harness builds its tables on top of the same primitives).

use crate::{AttackConfig, AttackGoal, AttackResult, AttackSession};
use colper_metrics::{AttackReport, Summary};
use colper_models::{CloudTensors, SegmentationModel};
use colper_obs::Observer;
use colper_runtime::Runtime;

/// One cloud's attack outcome with segmentation quality attached.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchItem {
    /// The raw attack result.
    pub result: AttackResult,
    /// Clean accuracy on this cloud.
    pub clean_accuracy: f32,
    /// Post-attack accuracy over all points.
    pub adversarial_accuracy: f32,
    /// Post-attack aIoU over all points.
    pub adversarial_miou: f32,
}

/// Aggregates over a [`run_batch`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// Per-cloud outcomes, in input order.
    pub items: Vec<BatchItem>,
    /// Summary of post-attack accuracy.
    pub adversarial_accuracy: Summary,
    /// Summary of post-attack aIoU.
    pub adversarial_miou: Summary,
    /// Summary of perturbation L2.
    pub l2: Summary,
    /// Fraction of clouds whose attack converged.
    pub convergence_rate: f32,
}

impl BatchOutcome {
    /// Aggregates per-cloud items into the batch summary statistics.
    ///
    /// # Panics
    ///
    /// Panics when `items` is empty.
    pub fn aggregate(items: Vec<BatchItem>) -> Self {
        assert!(!items.is_empty(), "BatchOutcome::aggregate: no items");
        let accs: Vec<f32> = items.iter().map(|i| i.adversarial_accuracy).collect();
        let mious: Vec<f32> = items.iter().map(|i| i.adversarial_miou).collect();
        let l2s: Vec<f32> = items.iter().map(|i| i.result.l2()).collect();
        let converged = items.iter().filter(|i| i.result.converged).count();
        BatchOutcome {
            adversarial_accuracy: Summary::of(&accs),
            adversarial_miou: Summary::of(&mious),
            l2: Summary::of(&l2s),
            convergence_rate: converged as f32 / items.len() as f32,
            items,
        }
    }

    /// One [`AttackReport`] per cloud, in input order — the unified
    /// serialization schema shared by the CLI, the bench bins and the
    /// `colper-obs` sinks. When `observer` collected step telemetry for
    /// a cloud (same observer handed to the session, tracing on), the
    /// matching report nests it under `steps`.
    pub fn reports(&self, observer: &Observer) -> Vec<AttackReport> {
        let traces = observer.attack_traces();
        self.items
            .iter()
            .enumerate()
            .map(|(cloud, item)| AttackReport {
                cloud,
                l2: item.result.l2(),
                steps_run: item.result.steps_run,
                converged: item.result.converged,
                success_metric: item.result.success_metric,
                attacked_points: item.result.attacked_points,
                restarts: item.result.restarts,
                clean_accuracy: item.clean_accuracy,
                adversarial_accuracy: item.adversarial_accuracy,
                adversarial_miou: item.adversarial_miou,
                steps: traces
                    .iter()
                    .find(|t| t.cloud == cloud)
                    .map(|t| t.steps.clone())
                    .unwrap_or_default(),
            })
            .collect()
    }
}

/// Attacks every cloud (each with an all-points mask for non-targeted
/// goals, or a per-cloud source-class mask supplied by `mask_of`),
/// scheduling each cloud as one stealable task on `runtime`.
///
/// Seeds derive from `base_seed + index`, so outcomes are reproducible
/// and independent of the runtime's thread count and schedule.
///
/// # Panics
///
/// Panics when `clouds` is empty or a mask selects no points.
#[deprecated(
    note = "use `AttackSession::new(config).runtime(&rt).seed(seed).mask_with(&f).run(...)` instead"
)]
pub fn run_batch<M: SegmentationModel + ?Sized>(
    model: &M,
    clouds: &[CloudTensors],
    config: &AttackConfig,
    mask_of: impl Fn(&CloudTensors) -> Vec<bool> + Sync,
    base_seed: u64,
    runtime: &Runtime,
) -> BatchOutcome {
    AttackSession::new(config.clone())
        .runtime(runtime)
        .seed(base_seed)
        .mask_with(&mask_of)
        .run(model, clouds)
}

/// Convenience: non-targeted batch over all points of every cloud.
#[deprecated(
    note = "use `AttackSession::new(AttackConfig::non_targeted(steps)).runtime(&rt).seed(seed).run(...)` instead"
)]
pub fn run_batch_non_targeted<M: SegmentationModel + ?Sized>(
    model: &M,
    clouds: &[CloudTensors],
    steps: usize,
    base_seed: u64,
    runtime: &Runtime,
) -> BatchOutcome {
    #[allow(deprecated)]
    run_batch(
        model,
        clouds,
        &AttackConfig::non_targeted(steps),
        |t| vec![true; t.len()],
        base_seed,
        runtime,
    )
}

/// Convenience: targeted batch attacking one source class toward a
/// target in every cloud (clouds without the source class are skipped by
/// the caller; a cloud with zero source points panics as in
/// [`crate::Colper::run`]).
#[deprecated(
    note = "use `AttackSession::new(AttackConfig::targeted(steps, target)).mask_source_class(source).run(...)` instead"
)]
pub fn run_batch_targeted<M: SegmentationModel + ?Sized>(
    model: &M,
    clouds: &[CloudTensors],
    source: usize,
    target: usize,
    steps: usize,
    base_seed: u64,
    runtime: &Runtime,
) -> BatchOutcome {
    let mut config = AttackConfig::targeted(steps, target);
    config.goal = AttackGoal::Targeted { target };
    #[allow(deprecated)]
    run_batch(
        model,
        clouds,
        &config,
        |t| t.labels.iter().map(|&l| l == source).collect(),
        base_seed,
        runtime,
    )
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use colper_models::{PointNet2, PointNet2Config};
    use colper_scene::{normalize, IndoorSceneConfig, SceneGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn clouds(n: u64) -> Vec<CloudTensors> {
        (0..n)
            .map(|i| {
                let c = SceneGenerator::indoor(IndoorSceneConfig::with_points(96)).generate(i);
                CloudTensors::from_cloud(&normalize::pointnet_view(&c))
            })
            .collect()
    }

    #[test]
    fn batch_covers_every_cloud_in_order() {
        let mut rng = StdRng::seed_from_u64(0);
        let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        let data = clouds(5);
        let outcome = run_batch_non_targeted(&model, &data, 3, 7, &Runtime::new(2));
        assert_eq!(outcome.items.len(), 5);
        assert_eq!(outcome.adversarial_accuracy.count, 5);
        assert!((0.0..=1.0).contains(&outcome.convergence_rate));
        for item in &outcome.items {
            assert!((0.0..=1.0).contains(&item.adversarial_accuracy));
            assert_eq!(item.result.adversarial_colors.rows(), 96);
        }
    }

    #[test]
    fn batch_is_deterministic_regardless_of_runtime() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        let data = clouds(4);
        let cfg = AttackConfig::non_targeted(3);
        let serial =
            run_batch(&model, &data, &cfg, |t| vec![true; t.len()], 9, &Runtime::sequential());
        let parallel = run_batch(&model, &data, &cfg, |t| vec![true; t.len()], 9, &Runtime::new(4));
        for (a, b) in serial.items.iter().zip(&parallel.items) {
            assert_eq!(a.result.adversarial_colors, b.result.adversarial_colors);
            assert_eq!(a.adversarial_accuracy, b.adversarial_accuracy);
        }
    }

    #[test]
    #[should_panic(expected = "no clouds")]
    fn empty_batch_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        let _ = run_batch_non_targeted(&model, &[], 3, 0, &Runtime::sequential());
    }
}
