//! The classic 2D-image gradient attacks the paper's related-work
//! section builds on — FGSM, iFGSM and PGD — adapted to the color-only
//! threat model, as comparison points for COLPER.
//!
//! All three operate under an L∞ budget `epsilon` on the color channels
//! (the standard formulation), maximize the softmax cross-entropy of the
//! ground-truth labels (non-targeted), and clamp iterates into the valid
//! color box. COLPER differs by optimizing a margin loss with an L2
//! *penalty* rather than projecting onto a fixed ball, plus its
//! smoothness term and restarts.

use crate::AttackResult;
use colper_models::{CloudTensors, GeometryPlan, ModelInput, SegmentationModel};
use colper_nn::Forward;
use colper_tensor::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

/// Which classic attack to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClassicKind {
    /// Single-step fast gradient sign method (Goodfellow et al.).
    Fgsm,
    /// Iterative FGSM (Kurakin et al.): `steps` sign steps of size
    /// `epsilon / steps`, clipped to the ball.
    Ifgsm {
        /// Number of iterations.
        steps: usize,
    },
    /// Projected gradient descent (Madry et al.): random start in the
    /// ball, `steps` sign steps of size `alpha`, projected back.
    Pgd {
        /// Number of iterations.
        steps: usize,
        /// Step size per iteration.
        alpha: f32,
    },
}

impl ClassicKind {
    /// A short label for report rows.
    pub fn label(&self) -> String {
        match self {
            ClassicKind::Fgsm => "FGSM".to_string(),
            ClassicKind::Ifgsm { steps } => format!("iFGSM({steps})"),
            ClassicKind::Pgd { steps, alpha } => format!("PGD({steps}, α={alpha})"),
        }
    }
}

/// A classic L∞-bounded color attack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassicAttack {
    /// The method.
    pub kind: ClassicKind,
    /// L∞ budget on each color channel.
    pub epsilon: f32,
}

impl ClassicAttack {
    /// Creates the attack.
    ///
    /// # Panics
    ///
    /// Panics when `epsilon` is not positive.
    pub fn new(kind: ClassicKind, epsilon: f32) -> Self {
        assert!(epsilon > 0.0, "ClassicAttack: epsilon must be positive");
        Self { kind, epsilon }
    }

    /// Runs the (non-targeted) attack over the masked points.
    ///
    /// # Panics
    ///
    /// Panics when `mask.len() != tensors.len()` or no point is masked.
    pub fn run<M: SegmentationModel + ?Sized>(
        &self,
        model: &M,
        tensors: &CloudTensors,
        mask: &[bool],
        rng: &mut StdRng,
    ) -> AttackResult {
        let n = tensors.len();
        assert_eq!(mask.len(), n, "mask length must equal point count");
        let attacked_points = mask.iter().filter(|&&m| m).count();
        assert!(attacked_points > 0, "attack mask selects no points");
        let orig = tensors.colors.clone();
        let eps = self.epsilon;
        // Color-only attack: geometry is constant across iterations.
        let plan = model.plan(&tensors.coords);

        let (steps, step_size, random_start) = match self.kind {
            ClassicKind::Fgsm => (1usize, eps, false),
            ClassicKind::Ifgsm { steps } => (steps.max(1), eps / steps.max(1) as f32, false),
            ClassicKind::Pgd { steps, alpha } => (steps.max(1), alpha, true),
        };

        let mut colors = if random_start {
            Matrix::from_fn(n, 3, |r, c| {
                if mask[r] {
                    (orig[(r, c)] + rng.gen_range(-eps..=eps)).clamp(0.0, 1.0)
                } else {
                    orig[(r, c)]
                }
            })
        } else {
            orig.clone()
        };

        let mut history = Vec::with_capacity(steps);
        let mut best_preds = Vec::new();
        let mut best_colors = colors.clone();
        let mut best_acc = f32::INFINITY;
        for _ in 0..steps {
            let (grad, loss, preds) = self.gradient(model, tensors, &colors, &plan, rng);
            history.push(loss);
            let acc = masked_accuracy(&preds, &tensors.labels, mask);
            if best_preds.is_empty() || acc < best_acc {
                best_acc = acc;
                best_preds = preds;
                best_colors = colors.clone();
            }
            // Ascend the loss by the gradient sign, project to the
            // epsilon ball and the color box; untouched points frozen.
            for r in 0..n {
                if !mask[r] {
                    continue;
                }
                for c in 0..3 {
                    let stepped = colors[(r, c)] + step_size * grad[(r, c)].signum();
                    let ball = stepped.clamp(orig[(r, c)] - eps, orig[(r, c)] + eps);
                    colors[(r, c)] = ball.clamp(0.0, 1.0);
                }
            }
        }
        // Score the final iterate too.
        let (_, _, preds) = self.gradient(model, tensors, &colors, &plan, rng);
        let acc = masked_accuracy(&preds, &tensors.labels, mask);
        if acc < best_acc {
            best_acc = acc;
            best_preds = preds;
            best_colors = colors;
        }

        let l2_sq = best_colors.sub(&orig).expect("shape").frobenius_sq();
        AttackResult {
            adversarial_colors: best_colors,
            l2_sq,
            steps_run: steps,
            converged: false,
            gain_history: history,
            metric_history: Vec::new(),
            predictions: best_preds,
            success_metric: best_acc,
            attacked_points,
            restarts: 0,
        }
    }

    /// One forward/backward pass: gradient of the cross-entropy with
    /// respect to the colors, plus loss value and predictions.
    fn gradient<M: SegmentationModel + ?Sized>(
        &self,
        model: &M,
        tensors: &CloudTensors,
        colors: &Matrix,
        plan: &GeometryPlan,
        rng: &mut StdRng,
    ) -> (Matrix, f32, Vec<usize>) {
        let mut session = Forward::new(model.params(), false);
        let color = session.tape.leaf(colors.clone());
        let xyz = session.tape.constant(tensors.xyz.clone());
        let loc = session.tape.constant(tensors.loc01.clone());
        let input = ModelInput { coords: &tensors.coords, xyz, color, loc, plan: Some(plan) };
        let logits = model.forward(&mut session, &input, rng);
        let loss = session.tape.softmax_cross_entropy(logits, &tensors.labels);
        session.tape.backward(loss);
        let grad =
            session.tape.grad(color).cloned().unwrap_or_else(|| Matrix::zeros(colors.rows(), 3));
        let loss_v = session.tape.value(loss)[(0, 0)];
        let preds = session.tape.value(logits).argmax_rows();
        (grad, loss_v, preds)
    }
}

fn masked_accuracy(preds: &[usize], labels: &[usize], mask: &[bool]) -> f32 {
    let mut total = 0u64;
    let mut correct = 0u64;
    for i in 0..preds.len() {
        if mask[i] {
            total += 1;
            if preds[i] == labels[i] {
                correct += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        correct as f32 / total as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colper_models::{evaluate_on, train_model, PointNet2, PointNet2Config, TrainConfig};
    use colper_scene::{normalize, IndoorSceneConfig, RoomKind, SceneGenerator};
    use rand::SeedableRng;

    fn victim(rng: &mut StdRng) -> (PointNet2, CloudTensors) {
        let clouds: Vec<CloudTensors> = (0..4)
            .map(|i| {
                let cfg = IndoorSceneConfig {
                    room_kind: Some(RoomKind::Office),
                    ..IndoorSceneConfig::with_points(160)
                };
                CloudTensors::from_cloud(&normalize::pointnet_view(
                    &SceneGenerator::indoor(cfg).generate(5000 + i),
                ))
            })
            .collect();
        let mut model = PointNet2::new(PointNet2Config::tiny(13), rng);
        train_model(
            &mut model,
            &clouds,
            &TrainConfig { epochs: 10, lr: 0.01, target_accuracy: 0.92 },
            rng,
        );
        let t = clouds[0].clone();
        (model, t)
    }

    #[test]
    fn all_kinds_respect_epsilon_ball_and_mask() {
        let mut rng = StdRng::seed_from_u64(0);
        let (model, t) = victim(&mut rng);
        let mut mask = vec![true; t.len()];
        mask[0] = false;
        let eps = 0.1;
        for kind in [
            ClassicKind::Fgsm,
            ClassicKind::Ifgsm { steps: 4 },
            ClassicKind::Pgd { steps: 4, alpha: 0.04 },
        ] {
            let result = ClassicAttack::new(kind, eps).run(&model, &t, &mask, &mut rng);
            let adv = &result.adversarial_colors;
            for r in 0..t.len() {
                for c in 0..3 {
                    let delta = (adv[(r, c)] - t.colors[(r, c)]).abs();
                    if mask[r] {
                        assert!(delta <= eps + 1e-5, "{}: |delta| {delta}", kind.label());
                    } else {
                        assert_eq!(delta, 0.0, "{}: frozen point moved", kind.label());
                    }
                }
            }
            assert!(adv.min().unwrap() >= 0.0 && adv.max().unwrap() <= 1.0);
        }
    }

    #[test]
    fn iterative_attacks_hurt_more_than_single_step() {
        let mut rng = StdRng::seed_from_u64(1);
        let (model, t) = victim(&mut rng);
        let mask = vec![true; t.len()];
        let eps = 0.15;
        let fgsm = ClassicAttack::new(ClassicKind::Fgsm, eps).run(&model, &t, &mask, &mut rng);
        let pgd = ClassicAttack::new(ClassicKind::Pgd { steps: 15, alpha: 0.03 }, eps)
            .run(&model, &t, &mask, &mut rng);
        let clean = evaluate_on(&model, &t, &mut rng);
        assert!(fgsm.success_metric <= clean + 1e-5);
        assert!(
            pgd.success_metric <= fgsm.success_metric + 0.05,
            "PGD ({}) should be at least as strong as FGSM ({})",
            pgd.success_metric,
            fgsm.success_metric
        );
    }

    #[test]
    fn labels_are_informative() {
        assert_eq!(ClassicKind::Fgsm.label(), "FGSM");
        assert!(ClassicKind::Ifgsm { steps: 7 }.label().contains('7'));
        assert!(ClassicKind::Pgd { steps: 3, alpha: 0.01 }.label().contains("PGD"));
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn epsilon_validated() {
        let _ = ClassicAttack::new(ClassicKind::Fgsm, 0.0);
    }
}
