//! Bounded-memory streaming attacks over tiled out-of-core worlds.
//!
//! [`StreamingAttack`] slides RandLA-Net-style random-sampling windows
//! over the tiles of a [`TileStore`]: each tile's points are chunked by
//! a seeded permutation into fixed-size windows, every window is padded
//! with *halo* points from neighboring tiles (so cross-boundary k-NN —
//! the smoothness penalty and the networks' neighborhoods — sees real
//! geometry at tile edges), attacked through the ordinary
//! [`AttackSession`] on a recycled [`WarmSeat`], and the perturbed
//! colors are written back to the store column-wise.
//!
//! Determinism: tiles are visited in row-major order on the driving
//! thread; windows of one tile fan out onto the shared
//! [`colper_runtime`] runtime but read only an immutable snapshot of
//! the tile (taken before any window runs) and their results are folded
//! back in window order. Every RNG stream derives from
//! `(seed, tile, window)` via [`colper_scene::mix_seed`]. The outcome is
//! therefore bit-identical for any thread count, any residency budget
//! that fits two tiles, and either storage backend — which is exactly
//! what `tests/streaming_equivalence.rs` asserts.

use crate::{AttackConfig, AttackPlan, AttackSession, WarmSeat};
use colper_geom::{random_sample, xy_dist_to_rect, Point3};
use colper_metrics::ConfusionMatrix;
use colper_models::{predict_planned, CloudTensors, SegmentationModel};
use colper_runtime::Runtime;
use colper_scene::tiled::{ResidencyStats, TileAccess, TileStore, TiledError};
use colper_scene::{mix_seed, normalize, PointCloud};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// Configuration of the streaming driver.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// The per-window attack.
    pub attack: AttackConfig,
    /// Core (tile-resident, attacked) points per window.
    pub window_core: usize,
    /// Halo reach in meters: neighbor-tile points whose planar distance
    /// to the tile footprint is at most this join every window.
    pub halo_margin: f32,
    /// Cap on halo points per tile (deterministically subsampled).
    pub halo_budget: usize,
    /// Windows attacked per tile; `None` covers every point.
    pub windows_per_tile: Option<usize>,
    /// Base seed for all derived streams.
    pub seed: u64,
}

impl StreamConfig {
    /// A config around `attack` with RandLA-ish window defaults.
    pub fn new(attack: AttackConfig) -> StreamConfig {
        StreamConfig {
            attack,
            window_core: 512,
            halo_margin: 2.0,
            halo_budget: 256,
            windows_per_tile: None,
            seed: 0x5354_5245_414D,
        }
    }
}

/// Aggregated result of one streaming run.
#[derive(Debug)]
pub struct StreamOutcome {
    /// Confusion over attacked points, clean model outputs.
    pub clean: ConfusionMatrix,
    /// Confusion over attacked points, post-attack outputs.
    pub adversarial: ConfusionMatrix,
    /// Tiles visited.
    pub tiles: usize,
    /// Windows attacked.
    pub windows: usize,
    /// Core points attacked (each exactly once).
    pub points_attacked: usize,
    /// Halo points carried across tile boundaries (summed over tiles).
    pub halo_points: usize,
    /// Summed squared-L2 color perturbation over windows.
    pub total_l2_sq: f32,
    /// Attack runs executed on pooled seats.
    pub seat_runs: u64,
    /// Runs that started on a warm (tape-donating) seat.
    pub warm_starts: u64,
    /// Residency occupancy of the store after the run.
    pub residency: ResidencyStats,
}

impl StreamOutcome {
    /// Fraction of attacked points whose post-attack prediction differs
    /// from the ground-truth label.
    pub fn attack_success(&self) -> f32 {
        1.0 - self.adversarial.accuracy()
    }

    /// Fraction of seat runs that reused a warm tape.
    pub fn warm_hit_rate(&self) -> f32 {
        if self.seat_runs == 0 {
            0.0
        } else {
            self.warm_starts as f32 / self.seat_runs as f32
        }
    }
}

/// One window's fold-ready result (private).
struct WindowResult {
    core: Vec<usize>,
    labels: Vec<usize>,
    clean_preds: Vec<usize>,
    adv_preds: Vec<usize>,
    colors: Vec<[f32; 3]>,
    l2_sq: f32,
}

/// The streaming driver. Build with [`StreamingAttack::new`], optionally
/// cap its worker share with [`StreamingAttack::threads_budget`] (the
/// same per-job budget mechanism `colperd` applies to queued jobs), then
/// [`StreamingAttack::run`] it over a store.
pub struct StreamingAttack {
    config: StreamConfig,
    runtime: Runtime,
}

impl StreamingAttack {
    /// A driver on the ambient runtime.
    pub fn new(config: StreamConfig) -> StreamingAttack {
        StreamingAttack { config, runtime: colper_runtime::current() }
    }

    /// Replaces the runtime the tile windows fan out on.
    pub fn runtime(mut self, runtime: &Runtime) -> StreamingAttack {
        self.runtime = runtime.clone();
        self
    }

    /// Caps the number of concurrently stealable window tasks, exactly
    /// like `colperd`'s per-job thread budgets. Bit-identical results
    /// at any budget.
    pub fn threads_budget(mut self, max_tasks: usize) -> StreamingAttack {
        self.runtime = self.runtime.clone().with_budget(max_tasks);
        self
    }

    /// Streams the attack over every tile of `store`.
    ///
    /// # Panics
    ///
    /// Panics when the model's class space is smaller than the store's
    /// (labels would be out of range for the attack's validation).
    pub fn run<M, S>(&self, model: &M, store: &mut S) -> Result<StreamOutcome, TiledError>
    where
        M: SegmentationModel + ?Sized,
        S: TileStore,
    {
        assert!(
            model.num_classes() >= store.num_classes(),
            "model has {} classes but the world labels span {}",
            model.num_classes(),
            store.num_classes()
        );
        let ids = store.tile_ids();
        let classes = model.num_classes();
        let mut clean = ConfusionMatrix::new(classes);
        let mut adversarial = ConfusionMatrix::new(classes);
        let mut windows_total = 0usize;
        let mut points_attacked = 0usize;
        let mut halo_points = 0usize;
        let mut total_l2_sq = 0.0f32;
        let seat_pool: Mutex<Vec<WarmSeat>> = Mutex::new(Vec::new());

        for (t, &id) in ids.iter().enumerate() {
            let halo = self.collect_halo(store, id, t)?;
            halo_points += halo.len();
            let view = store.load(id)?;
            let n = view.len();
            if n == 0 {
                continue;
            }
            // Seeded permutation chunked into windows: every core point
            // belongs to exactly one window, so write-backs never
            // conflict and coverage is exact.
            let mut prng = StdRng::seed_from_u64(mix_seed(self.config.seed, t as u64, u64::MAX));
            let perm = random_sample(n, n, &mut prng);
            let wc = self.config.window_core.clamp(1, n);
            let all_windows = n.div_ceil(wc);
            let n_windows =
                self.config.windows_per_tile.map_or(all_windows, |k| k.min(all_windows));

            let view_ref: &dyn TileAccess = view.as_ref();
            let results: Vec<WindowResult> = self.runtime.par_map_grained(n_windows, 1, |w| {
                let lo = w * wc;
                let hi = ((w + 1) * wc).min(n);
                self.run_window(model, view_ref, &halo, &perm[lo..hi], t, w, &seat_pool)
            });

            // Fold in window order: colors back into the tile column,
            // confusion counts into the shared matrices.
            let mut tile_colors: Vec<[f32; 3]> = (0..n).map(|i| view_ref.color(i)).collect();
            for r in &results {
                clean.update(&r.clean_preds, &r.labels);
                adversarial.update(&r.adv_preds, &r.labels);
                total_l2_sq += r.l2_sq;
                points_attacked += r.core.len();
                for (j, &pi) in r.core.iter().enumerate() {
                    tile_colors[pi] = r.colors[j];
                }
            }
            windows_total += n_windows;
            drop(view);
            store.write_colors(id, &tile_colors)?;
        }

        let seats = seat_pool.into_inner().expect("seat pool lock");
        let seat_runs = seats.iter().map(|s| s.runs()).sum();
        let warm_starts = seats.iter().map(|s| s.warm_starts()).sum();
        Ok(StreamOutcome {
            clean,
            adversarial,
            tiles: ids.len(),
            windows: windows_total,
            points_attacked,
            halo_points,
            total_l2_sq,
            seat_runs,
            warm_starts,
            residency: store.resident_stats(),
        })
    }

    /// Gathers neighbor-tile points within the halo margin of tile
    /// `id`'s footprint, visiting neighbors one at a time (so at most
    /// two tiles are ever resident) in a fixed order, then subsampling
    /// to the halo budget with a per-tile derived stream.
    fn collect_halo<S: TileStore>(
        &self,
        store: &S,
        id: colper_scene::tiled::TileId,
        t: usize,
    ) -> Result<Vec<(Point3, [f32; 3], usize)>, TiledError> {
        let (ox, oy) = store.tile_origin(id);
        let ext = store.tile_extent();
        let margin = self.config.halo_margin;
        let mut halo: Vec<(Point3, [f32; 3], usize)> = Vec::new();
        if margin <= 0.0 || self.config.halo_budget == 0 {
            return Ok(halo);
        }
        const NEIGHBORS: [(i64, i64); 8] =
            [(-1, -1), (0, -1), (1, -1), (-1, 0), (1, 0), (-1, 1), (0, 1), (1, 1)];
        for (dx, dy) in NEIGHBORS {
            let nx = id.x as i64 + dx;
            let ny = id.y as i64 + dy;
            if nx < 0 || ny < 0 || nx >= store.tiles_x() as i64 || ny >= store.tiles_y() as i64 {
                continue;
            }
            let nid = colper_scene::tiled::TileId { x: nx as u32, y: ny as u32 };
            let nview = store.load(nid)?;
            for i in 0..nview.len() {
                let p = nview.point(i);
                if xy_dist_to_rect(p, ox, oy, ox + ext, oy + ext) <= margin {
                    halo.push((p, nview.color(i), nview.label(i)));
                }
            }
            // nview drops here: the neighbor mapping becomes evictable
            // before the next one loads, keeping residency at <=2 tiles.
        }
        if halo.len() > self.config.halo_budget {
            let mut hrng =
                StdRng::seed_from_u64(mix_seed(self.config.seed.wrapping_add(3), t as u64, 0));
            let mut keep = random_sample(halo.len(), self.config.halo_budget, &mut hrng);
            keep.sort_unstable();
            halo = keep.into_iter().map(|i| halo[i]).collect();
        }
        Ok(halo)
    }

    /// Attacks one window: core points by store index plus the shared
    /// halo, masked so only core points perturb.
    #[allow(clippy::too_many_arguments)]
    fn run_window<M: SegmentationModel + ?Sized>(
        &self,
        model: &M,
        view: &dyn TileAccess,
        halo: &[(Point3, [f32; 3], usize)],
        core: &[usize],
        t: usize,
        w: usize,
        seat_pool: &Mutex<Vec<WarmSeat>>,
    ) -> WindowResult {
        let core_len = core.len();
        let total = core_len + halo.len();
        let mut coords = Vec::with_capacity(total);
        let mut colors = Vec::with_capacity(total);
        let mut labels = Vec::with_capacity(total);
        for &i in core {
            coords.push(view.point(i));
            colors.push(view.color(i));
            labels.push(view.label(i));
        }
        for &(p, c, l) in halo {
            coords.push(p);
            colors.push(c);
            labels.push(l);
        }
        let cloud = PointCloud::new(coords, colors, labels, model.num_classes());
        let tensors = CloudTensors::from_cloud(&normalize::pointnet_view(&cloud));
        let plan = AttackPlan::build(model, &tensors, &self.config.attack);

        let mut clean_rng =
            StdRng::seed_from_u64(mix_seed(self.config.seed.wrapping_add(1), t as u64, w as u64));
        let clean_full = predict_planned(model, &tensors, plan.geometry(), &mut clean_rng);

        let mask_fn =
            move |t: &CloudTensors| (0..t.len()).map(|i| i < core_len).collect::<Vec<bool>>();
        let session = AttackSession::new(self.config.attack.clone())
            .runtime(&self.runtime)
            .plan(&plan)
            .mask_with(&mask_fn);
        let mut seat = seat_pool.lock().expect("seat pool lock").pop().unwrap_or_default();
        let mut attack_rng =
            StdRng::seed_from_u64(mix_seed(self.config.seed.wrapping_add(2), t as u64, w as u64));
        let result = session.run_with_rng_seated(model, &tensors, &mut attack_rng, &mut seat);
        seat_pool.lock().expect("seat pool lock").push(seat);

        let adv_colors: Vec<[f32; 3]> = (0..core_len)
            .map(|i| {
                let row = result.adversarial_colors.row(i);
                [row[0], row[1], row[2]]
            })
            .collect();
        WindowResult {
            core: core.to_vec(),
            labels: cloud.labels[..core_len].to_vec(),
            clean_preds: clean_full[..core_len].to_vec(),
            adv_preds: result.predictions[..core_len].to_vec(),
            colors: adv_colors,
            l2_sq: result.l2_sq,
        }
    }
}
