//! The random-noise baseline the paper compares COLPER against in
//! Tables 1 and 3: uniform color noise *matched on L2* to the attack's
//! perturbation, showing that the accuracy drop is not explained by
//! noise magnitude alone.

use crate::AttackResult;
use colper_metrics::ConfusionMatrix;
use colper_models::{CloudTensors, SegmentationModel};
use colper_tensor::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

/// Draws uniform noise on the masked color entries and rescales it so
/// the clamped result has (approximately) the requested squared-L2
/// magnitude.
///
/// Clamping to `[0, 1]` shrinks the norm, so the scale is re-fit for a
/// few rounds; the residual mismatch is well under 1% for realistic
/// budgets.
///
/// # Panics
///
/// Panics when `mask.len() != orig.rows()` or `target_l2_sq < 0`.
pub fn random_color_noise(
    orig: &Matrix,
    mask: &[bool],
    target_l2_sq: f32,
    rng: &mut StdRng,
) -> Matrix {
    assert_eq!(mask.len(), orig.rows(), "mask length must equal row count");
    assert!(target_l2_sq >= 0.0, "target L2 must be non-negative");
    if target_l2_sq == 0.0 || !mask.iter().any(|&m| m) {
        return orig.clone();
    }
    // Unit-scale noise direction on the masked entries.
    let noise = Matrix::from_fn(orig.rows(), orig.cols(), |r, _| {
        if mask[r] {
            rng.gen_range(-1.0..1.0)
        } else {
            0.0
        }
    });
    let mut scale = (target_l2_sq / noise.frobenius_sq().max(1e-12)).sqrt();
    let mut out = orig.clone();
    for _ in 0..8 {
        out = orig.add(&noise.scale(scale)).expect("shape").clamp(0.0, 1.0);
        let achieved = out.sub(orig).expect("shape").frobenius_sq();
        if achieved <= 1e-12 {
            break;
        }
        let ratio = target_l2_sq / achieved;
        if (ratio - 1.0).abs() < 0.005 {
            break;
        }
        scale *= ratio.sqrt().min(4.0);
    }
    out
}

/// The baseline "attack": random noise at a given L2 budget, evaluated
/// exactly like a [`crate::Colper`] run so the harness can print both in
/// one table row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseBaseline {
    /// Squared-L2 budget to match (typically the COLPER result's
    /// [`AttackResult::l2_sq`]).
    pub target_l2_sq: f32,
}

impl NoiseBaseline {
    /// Creates a baseline matched to `target_l2_sq`.
    pub fn new(target_l2_sq: f32) -> Self {
        Self { target_l2_sq }
    }

    /// Applies the noise and evaluates the victim.
    ///
    /// # Panics
    ///
    /// Panics when `mask.len() != tensors.len()`.
    pub fn run<M: SegmentationModel + ?Sized>(
        &self,
        model: &M,
        tensors: &CloudTensors,
        mask: &[bool],
        rng: &mut StdRng,
    ) -> AttackResult {
        let noisy = random_color_noise(&tensors.colors, mask, self.target_l2_sq, rng);
        let mut perturbed = tensors.clone();
        perturbed.colors = noisy.clone();
        let preds = colper_models::predict(model, &perturbed, rng);
        let mut cm = ConfusionMatrix::new(model.num_classes());
        let masked_preds: Vec<usize> =
            preds.iter().zip(mask).filter(|(_, &m)| m).map(|(&p, _)| p).collect();
        let masked_labels: Vec<usize> =
            tensors.labels.iter().zip(mask).filter(|(_, &m)| m).map(|(&l, _)| l).collect();
        cm.update(&masked_preds, &masked_labels);
        let l2_sq = noisy.sub(&tensors.colors).expect("shape").frobenius_sq();
        AttackResult {
            adversarial_colors: noisy,
            l2_sq,
            steps_run: 1,
            converged: false,
            gain_history: Vec::new(),
            metric_history: Vec::new(),
            predictions: preds,
            success_metric: cm.accuracy(),
            attacked_points: mask.iter().filter(|&&m| m).count(),
            restarts: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn noise_matches_l2_budget() {
        let mut rng = StdRng::seed_from_u64(0);
        let orig = Matrix::filled(200, 3, 0.5);
        let mask = vec![true; 200];
        let target = 4.0;
        let noisy = random_color_noise(&orig, &mask, target, &mut rng);
        let achieved = noisy.sub(&orig).unwrap().frobenius_sq();
        assert!((achieved - target).abs() / target < 0.05, "achieved {achieved}");
        assert!(noisy.min().unwrap() >= 0.0 && noisy.max().unwrap() <= 1.0);
    }

    #[test]
    fn noise_respects_mask() {
        let mut rng = StdRng::seed_from_u64(1);
        let orig = Matrix::filled(10, 3, 0.5);
        let mut mask = vec![false; 10];
        mask[3] = true;
        let noisy = random_color_noise(&orig, &mask, 0.1, &mut rng);
        for r in 0..10 {
            for c in 0..3 {
                if r == 3 {
                    continue;
                }
                assert_eq!(noisy[(r, c)], 0.5, "row {r} should be untouched");
            }
        }
    }

    #[test]
    fn zero_budget_is_identity() {
        let mut rng = StdRng::seed_from_u64(2);
        let orig = Matrix::filled(5, 3, 0.3);
        let noisy = random_color_noise(&orig, &[true; 5], 0.0, &mut rng);
        assert_eq!(noisy, orig);
    }

    #[test]
    fn clamping_saturated_colors_still_close_to_budget() {
        // Colors at the box corner: half the noise directions clamp away.
        let mut rng = StdRng::seed_from_u64(3);
        let orig = Matrix::filled(300, 3, 1.0);
        let target = 2.0;
        let noisy = random_color_noise(&orig, [true; 300].as_ref(), target, &mut rng);
        let achieved = noisy.sub(&orig).unwrap().frobenius_sq();
        assert!((achieved - target).abs() / target < 0.1, "achieved {achieved}");
    }
}
