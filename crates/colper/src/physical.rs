//! Physical-realizability modeling.
//!
//! The paper motivates color-only perturbation by physical deployment —
//! "pasting carefully-printed stickers on the surface" (citing Eykholt
//! et al.) — and argues such attacks survive "surrounding illuminations,
//! viewing angle and distance". This module makes that claim testable:
//!
//! * [`PhysicalModel`] degrades an adversarial color block the way the
//!   physical pipeline would: printer quantization, scene-wide lighting
//!   multiplier, per-point sensor noise;
//! * [`survival`] replays a degraded adversarial sample many times and
//!   reports how much of the attack's effect survives;
//! * [`robust_colper`] hardens the attack itself with expectation over
//!   lighting transforms (EoT) so the optimized perturbation holds up
//!   under the same degradations.

use crate::{AttackConfig, AttackGoal, AttackResult, Colper};
use colper_metrics::ConfusionMatrix;
use colper_models::{CloudTensors, SegmentationModel};
use colper_tensor::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

/// A model of the print-and-rescan pipeline between the attacker's
/// digital colors and what the victim's sensor sees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhysicalModel {
    /// Printer color depth in bits per channel (8 = ideal printer).
    pub print_bits: u32,
    /// Half-width of the scene-wide multiplicative lighting variation
    /// (0.2 ⇒ brightness varies in ±20%).
    pub lighting_jitter: f32,
    /// Standard deviation of additive per-point sensor noise.
    pub sensor_noise: f32,
}

impl Default for PhysicalModel {
    fn default() -> Self {
        Self { print_bits: 5, lighting_jitter: 0.15, sensor_noise: 0.02 }
    }
}

impl PhysicalModel {
    /// An ideal pipeline (no degradation), for control runs.
    pub fn ideal() -> Self {
        Self { print_bits: 8, lighting_jitter: 0.0, sensor_noise: 0.0 }
    }

    /// Applies one random realization of the pipeline to a color block.
    ///
    /// # Panics
    ///
    /// Panics when `print_bits` is outside 1–8.
    pub fn degrade(&self, colors: &Matrix, rng: &mut StdRng) -> Matrix {
        assert!((1..=8).contains(&self.print_bits), "print_bits must be 1-8");
        let levels = (1u32 << self.print_bits) as f32 - 1.0;
        let lighting = 1.0
            + if self.lighting_jitter > 0.0 {
                rng.gen_range(-self.lighting_jitter..=self.lighting_jitter)
            } else {
                0.0
            };
        Matrix::from_fn(colors.rows(), colors.cols(), |r, c| {
            let v = colors[(r, c)];
            let printed = (v * levels).round() / levels;
            let lit = printed * lighting;
            let noisy = if self.sensor_noise > 0.0 {
                lit + rng.gen_range(-self.sensor_noise..=self.sensor_noise)
            } else {
                lit
            };
            noisy.clamp(0.0, 1.0)
        })
    }
}

/// How well an adversarial sample survives the physical pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurvivalReport {
    /// Victim accuracy on the pristine digital adversarial sample.
    pub digital_accuracy: f32,
    /// Mean victim accuracy over `trials` degraded realizations.
    pub physical_accuracy: f32,
    /// Worst (highest) accuracy across realizations — the attacker's
    /// unlucky day.
    pub worst_accuracy: f32,
    /// Number of realizations evaluated.
    pub trials: usize,
}

/// Replays `adversarial_colors` through `trials` random realizations of
/// the physical pipeline and measures the victim's accuracy each time.
///
/// # Panics
///
/// Panics when `trials == 0` or the color shape mismatches the cloud.
pub fn survival<M: SegmentationModel + ?Sized>(
    model: &M,
    tensors: &CloudTensors,
    adversarial_colors: &Matrix,
    physical: &PhysicalModel,
    trials: usize,
    rng: &mut StdRng,
) -> SurvivalReport {
    assert!(trials > 0, "survival: trials must be positive");
    assert_eq!(adversarial_colors.shape(), (tensors.len(), 3), "survival: color shape mismatch");
    let classes = model.num_classes();
    let acc_of = |colors: Matrix, rng: &mut StdRng| -> f32 {
        let mut t = tensors.clone();
        t.colors = colors;
        let preds = colper_models::predict(model, &t, rng);
        let mut cm = ConfusionMatrix::new(classes);
        cm.update(&preds, &tensors.labels);
        cm.accuracy()
    };
    let digital_accuracy = acc_of(adversarial_colors.clone(), rng);
    let mut worst = 0.0f32;
    let mut total = 0.0f32;
    for _ in 0..trials {
        let degraded = physical.degrade(adversarial_colors, rng);
        let acc = acc_of(degraded, rng);
        worst = worst.max(acc);
        total += acc;
    }
    SurvivalReport {
        digital_accuracy,
        physical_accuracy: total / trials as f32,
        worst_accuracy: worst,
        trials,
    }
}

/// Runs COLPER hardened with expectation over lighting transforms: each
/// gradient sample shows the victim the colors under a random lighting
/// multiplier drawn from `physical.lighting_jitter`, so the optimizer
/// finds perturbations whose effect is lighting-invariant (the standard
/// EoT recipe for physically robust adversarial examples).
///
/// `eot_samples` is the number of lighting draws averaged per
/// iteration.
pub fn robust_colper<M: SegmentationModel + Sync + ?Sized>(
    model: &M,
    tensors: &CloudTensors,
    mask: &[bool],
    config: &AttackConfig,
    physical: &PhysicalModel,
    eot_samples: usize,
    rng: &mut StdRng,
) -> AttackResult {
    assert!(eot_samples > 0, "robust_colper: eot_samples must be positive");
    let mut config = config.clone();
    config.gradient_samples = config.gradient_samples.max(eot_samples);
    config.lighting_eot = physical.lighting_jitter;
    // Convergence checks under EoT observe a random lighting draw; keep
    // optimizing the full budget instead of stopping on one lucky draw.
    config.convergence_threshold = Some(match config.goal {
        AttackGoal::NonTargeted => 0.0,
        AttackGoal::Targeted { .. } => 1.1,
    });
    let plan = crate::AttackPlan::build(model, tensors, &config);
    Colper::new(config).run_planned_obs(
        model,
        tensors,
        mask,
        &plan,
        rng,
        &colper_obs::Observer::disabled(),
        0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use colper_models::{train_model, PointNet2, PointNet2Config, TrainConfig};
    use colper_scene::{normalize, IndoorSceneConfig, RoomKind, SceneGenerator};
    use rand::SeedableRng;

    fn victim(rng: &mut StdRng) -> (PointNet2, CloudTensors) {
        let clouds: Vec<CloudTensors> = (0..4)
            .map(|i| {
                let cfg = IndoorSceneConfig {
                    room_kind: Some(RoomKind::Office),
                    ..IndoorSceneConfig::with_points(144)
                };
                CloudTensors::from_cloud(&normalize::pointnet_view(
                    &SceneGenerator::indoor(cfg).generate(4000 + i),
                ))
            })
            .collect();
        let mut model = PointNet2::new(PointNet2Config::tiny(13), rng);
        train_model(
            &mut model,
            &clouds,
            &TrainConfig { epochs: 8, lr: 0.01, target_accuracy: 0.9 },
            rng,
        );
        let t = clouds[0].clone();
        (model, t)
    }

    #[test]
    fn degrade_stays_in_unit_box_and_quantizes() {
        let mut rng = StdRng::seed_from_u64(0);
        let colors = Matrix::from_fn(50, 3, |r, c| (r as f32 * 0.02 + c as f32 * 0.3).fract());
        let pm = PhysicalModel { print_bits: 2, lighting_jitter: 0.0, sensor_noise: 0.0 };
        let out = pm.degrade(&colors, &mut rng);
        assert!(out.min().unwrap() >= 0.0 && out.max().unwrap() <= 1.0);
        // 2 bits -> values in {0, 1/3, 2/3, 1}.
        for &v in out.as_slice() {
            let nearest = (v * 3.0).round() / 3.0;
            assert!((v - nearest).abs() < 1e-6, "{v}");
        }
    }

    #[test]
    fn ideal_pipeline_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let colors = Matrix::from_fn(20, 3, |r, c| ((r * 3 + c) as f32 / 255.0) * 4.0 % 1.0);
        let out = PhysicalModel::ideal().degrade(&colors, &mut rng);
        assert!(colors.max_abs_diff(&out) < 1e-2, "8-bit quantization is near-lossless");
    }

    #[test]
    fn survival_reports_bounded_and_ordered() {
        let mut rng = StdRng::seed_from_u64(2);
        let (model, t) = victim(&mut rng);
        let attack = crate::AttackSession::new(AttackConfig::non_targeted(25));
        let result = attack.run_with_rng(&model, &t, &mut rng);
        let report = survival(
            &model,
            &t,
            &result.adversarial_colors,
            &PhysicalModel::default(),
            5,
            &mut rng,
        );
        assert_eq!(report.trials, 5);
        assert!((0.0..=1.0).contains(&report.physical_accuracy));
        assert!(report.worst_accuracy + 1e-6 >= report.physical_accuracy);
        // Degradation can only help the victim (or leave it fooled).
        assert!(report.physical_accuracy + 0.35 >= report.digital_accuracy);
    }

    #[test]
    fn robust_attack_returns_feasible_colors() {
        let mut rng = StdRng::seed_from_u64(3);
        let (model, t) = victim(&mut rng);
        let mask = vec![true; t.len()];
        let result = robust_colper(
            &model,
            &t,
            &mask,
            &AttackConfig::non_targeted(10),
            &PhysicalModel::default(),
            2,
            &mut rng,
        );
        assert!(result.adversarial_colors.min().unwrap() >= 0.0);
        assert!(result.adversarial_colors.max().unwrap() <= 1.0);
    }
}
