//! Streaming ≡ in-core equivalence: on a world small enough to hold in
//! memory, the streaming driver produces bit-identical per-class IoU,
//! per-point predictions, and perturbed colors whether it runs over
//! memory-mapped shards or fully-resident tiles, at 1 or 4 worker
//! threads, under a tight residency budget that forces evictions.
//!
//! CI runs this file on both SIMD legs (`COLPER_SIMD=scalar-reference`
//! and native) via the kernel-dispatch matrix, which closes the last
//! acceptance axis.

use colper_attack::{AttackConfig, StreamConfig, StreamOutcome, StreamingAttack};
use colper_models::{PointNet2, PointNet2Config};
use colper_runtime::Runtime;
use colper_scene::tiled::{MemStore, ShardStore, TileStore, TiledWorld, TiledWorldConfig};
use colper_scene::OUTDOOR_CLASS_COUNT;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

fn world_cfg() -> TiledWorldConfig {
    TiledWorldConfig {
        tiles_x: 2,
        tiles_y: 2,
        points_per_tile: 192,
        tile_extent: 20.0,
        world_seed: 11,
        ..TiledWorldConfig::default()
    }
}

fn stream_cfg() -> StreamConfig {
    let mut cfg = StreamConfig::new(AttackConfig::non_targeted(3));
    cfg.window_core = 96;
    cfg.halo_margin = 2.0;
    cfg.halo_budget = 64;
    cfg.seed = 5;
    cfg
}

fn model() -> PointNet2 {
    PointNet2::new(PointNet2Config::tiny(OUTDOOR_CLASS_COUNT), &mut StdRng::seed_from_u64(0))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("colper-stream-eq-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Runs the streaming attack over a fresh shard-backed world and
/// returns the outcome plus the final per-tile colors.
fn run_sharded(name: &str, threads: usize) -> (StreamOutcome, Vec<Vec<[f32; 3]>>) {
    let dir = temp_dir(name);
    let runtime = Runtime::new(threads);
    let (outcome, colors) = runtime.install(|| {
        let world = TiledWorld::create(&dir, &world_cfg()).unwrap();
        // Budget: two tiles (core + one neighbor during halo collection).
        let tile_bytes = world.config().tile_bytes();
        let mut store = ShardStore::new(world, 2 * tile_bytes);
        let model = model();
        let outcome = StreamingAttack::new(stream_cfg()).run(&model, &mut store).unwrap();
        let colors = store
            .world()
            .tile_ids()
            .into_iter()
            .map(|id| store.world().read_tile(id).unwrap().colors)
            .collect();
        (outcome, colors)
    });
    std::fs::remove_dir_all(&dir).ok();
    (outcome, colors)
}

fn run_in_core(threads: usize) -> (StreamOutcome, Vec<Vec<[f32; 3]>>) {
    let runtime = Runtime::new(threads);
    runtime.install(|| {
        let mut store = MemStore::generate(&world_cfg());
        let model = model();
        let outcome = StreamingAttack::new(stream_cfg()).run(&model, &mut store).unwrap();
        let colors = store.tile_ids().into_iter().map(|id| store.colors_of(id)).collect();
        (outcome, colors)
    })
}

fn assert_equivalent(
    (a, ac): &(StreamOutcome, Vec<Vec<[f32; 3]>>),
    (b, bc): &(StreamOutcome, Vec<Vec<[f32; 3]>>),
    what: &str,
) {
    assert_eq!(a.points_attacked, b.points_attacked, "{what}: points");
    assert_eq!(a.windows, b.windows, "{what}: windows");
    assert_eq!(a.clean.per_class_iou(), b.clean.per_class_iou(), "{what}: clean IoU");
    assert_eq!(
        a.adversarial.per_class_iou(),
        b.adversarial.per_class_iou(),
        "{what}: adversarial IoU"
    );
    assert_eq!(a.total_l2_sq.to_bits(), b.total_l2_sq.to_bits(), "{what}: l2");
    assert_eq!(ac, bc, "{what}: perturbed colors");
}

#[test]
fn streaming_equals_in_core_across_backends_and_threads() {
    let shard_1 = run_sharded("t1", 1);
    let shard_4 = run_sharded("t4", 4);
    let mem_1 = run_in_core(1);
    let mem_4 = run_in_core(4);

    // Sanity: the attack actually did something.
    assert!(shard_1.0.points_attacked > 0);
    assert!(shard_1.0.total_l2_sq > 0.0);
    assert!(shard_1.0.windows >= 8, "expected >=2 windows/tile, got {}", shard_1.0.windows);
    assert!(shard_1.0.halo_points > 0, "halo should cross tile boundaries");

    assert_equivalent(&shard_1, &shard_4, "shard t1 vs shard t4");
    assert_equivalent(&shard_1, &mem_1, "shard t1 vs mem t1");
    assert_equivalent(&mem_1, &mem_4, "mem t1 vs mem t4");
}

#[test]
fn residency_stays_within_budget_and_seats_warm_up() {
    let dir = temp_dir("budget");
    let world = TiledWorld::create(&dir, &world_cfg()).unwrap();
    let tile_bytes = world.config().tile_bytes();
    let budget = 2 * tile_bytes;
    let mut store = ShardStore::new(world, budget);
    let model = model();
    let outcome = StreamingAttack::new(stream_cfg()).run(&model, &mut store).unwrap();
    assert!(
        outcome.residency.peak_bytes <= budget,
        "peak {} exceeded budget {budget}",
        outcome.residency.peak_bytes
    );
    assert!(outcome.residency.evictions > 0, "tight budget should evict");
    assert_eq!(outcome.seat_runs, outcome.windows as u64);
    assert!(
        outcome.warm_starts > 0,
        "warm seats should be reused across windows ({} runs)",
        outcome.seat_runs
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn thread_budget_cap_is_bit_identical() {
    let full = run_in_core(4);
    let capped = Runtime::new(4).install(|| {
        let mut store = MemStore::generate(&world_cfg());
        let model = model();
        let outcome =
            StreamingAttack::new(stream_cfg()).threads_budget(1).run(&model, &mut store).unwrap();
        let colors = store.tile_ids().into_iter().map(|id| store.colors_of(id)).collect();
        (outcome, colors)
    });
    assert_equivalent(&full, &capped, "uncapped vs budget=1");
}
