//! Property-based tests on attack invariants: feasibility, mask
//! discipline, metric bounds and reparameterization consistency — for
//! arbitrary scenes, masks and configurations.

use colper_attack::{random_color_noise, AttackConfig, AttackGoal, AttackSession, TanhReparam};
use colper_models::{CloudTensors, PointNet2, PointNet2Config};
use colper_scene::{normalize, IndoorSceneConfig, SceneGenerator};
use colper_tensor::Matrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scene_tensors(seed: u64, points: usize) -> CloudTensors {
    let cloud = SceneGenerator::indoor(IndoorSceneConfig::with_points(points)).generate(seed);
    CloudTensors::from_cloud(&normalize::pointnet_view(&cloud))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The attack must always produce feasible colors and respect its
    /// mask, for any scene / mask density / goal.
    #[test]
    fn attack_invariants_hold(
        seed in 0u64..500,
        mask_density in 0.2f32..1.0,
        targeted in proptest::bool::ANY,
    ) {
        let t = scene_tensors(seed, 96);
        let mut rng = StdRng::seed_from_u64(seed);
        let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        // Deterministic pseudo-random mask with at least one point.
        let mut mask: Vec<bool> = (0..t.len())
            .map(|i| ((i as f32 * 0.7543 + seed as f32).sin() + 1.0) / 2.0 < mask_density)
            .collect();
        mask[0] = true;

        let config = if targeted {
            AttackConfig::targeted(5, 2)
        } else {
            AttackConfig::non_targeted(5)
        };
        let mask_of = |_: &CloudTensors| mask.clone();
        let result =
            AttackSession::new(config).mask_with(&mask_of).run_with_rng(&model, &t, &mut rng);

        // Feasibility.
        prop_assert!(result.adversarial_colors.min().unwrap() >= 0.0);
        prop_assert!(result.adversarial_colors.max().unwrap() <= 1.0);
        prop_assert!(result.adversarial_colors.all_finite());
        // Mask discipline: unattacked points byte-identical.
        for (i, &m) in mask.iter().enumerate() {
            if !m {
                for c in 0..3 {
                    prop_assert_eq!(result.adversarial_colors[(i, c)], t.colors[(i, c)]);
                }
            }
        }
        // Reported L2 consistent with the returned colors.
        let recomputed = result
            .adversarial_colors
            .sub(&t.colors)
            .unwrap()
            .frobenius_sq();
        prop_assert!((recomputed - result.l2_sq).abs() <= 1e-3 * (1.0 + result.l2_sq));
        // Metric bounds.
        prop_assert!((0.0..=1.0).contains(&result.success_metric));
        prop_assert_eq!(result.attacked_points, mask.iter().filter(|&&m| m).count());
        prop_assert!(result.steps_run >= 1 && result.steps_run <= 5);
        prop_assert_eq!(result.gain_history.len(), result.steps_run);
    }

    /// Matched-L2 noise must hit its budget (within clamping slack) and
    /// never leave the unit box.
    #[test]
    fn noise_baseline_budget(
        seed in 0u64..1000,
        budget in 0.01f32..20.0,
    ) {
        let t = scene_tensors(seed, 128);
        let mut rng = StdRng::seed_from_u64(seed);
        let mask = vec![true; t.len()];
        let noisy = random_color_noise(&t.colors, &mask, budget, &mut rng);
        prop_assert!(noisy.min().unwrap() >= 0.0 && noisy.max().unwrap() <= 1.0);
        let achieved = noisy.sub(&t.colors).unwrap().frobenius_sq();
        // Large budgets saturate against the box; small budgets must be
        // matched tightly.
        if budget < 5.0 {
            prop_assert!((achieved - budget).abs() / budget < 0.15,
                "budget {budget}, achieved {achieved}");
        } else {
            prop_assert!(achieved <= budget * 1.05);
        }
    }

    /// tanh reparameterization: any box, any w — features inside the
    /// box; round-trip accurate away from the boundary.
    #[test]
    fn reparam_box_respected(
        lo in -3.0f32..0.9,
        width in 0.2f32..4.0,
        values in proptest::collection::vec(-6.0f32..6.0, 12),
    ) {
        let rp = TanhReparam::new(lo, lo + width);
        let w = Matrix::from_vec(4, 3, values).unwrap();
        let feats = rp.to_features(&w);
        prop_assert!(feats.min().unwrap() >= lo - 1e-5);
        prop_assert!(feats.max().unwrap() <= lo + width + 1e-5);
        // Round trip through w-space.
        let w2 = rp.to_w(&feats);
        let feats2 = rp.to_features(&w2);
        prop_assert!(feats.max_abs_diff(&feats2) < 1e-2);
    }

    /// Convergence thresholds: auto threshold is the paper's random-guess
    /// rate for non-targeted attacks, independent of other settings.
    #[test]
    fn auto_threshold_is_random_guessing(classes in 2usize..40) {
        let cfg = AttackConfig::non_targeted(10);
        prop_assert!((cfg.threshold(classes) - 1.0 / classes as f32).abs() < 1e-6);
        let t = AttackConfig::targeted(10, 0);
        prop_assert!((t.threshold(classes) - 0.95).abs() < 1e-6);
        match t.goal {
            AttackGoal::Targeted { target } => prop_assert_eq!(target, 0),
            AttackGoal::NonTargeted => prop_assert!(false),
        }
    }
}
