//! Tape-based reverse-mode automatic differentiation for the COLPER
//! reproduction.
//!
//! COLPER is a gradient-based, white-box, test-time attack: every iteration
//! needs the exact gradient of a composite objective
//! `D(r) + λ1·L(X', Y) + λ2·S(X')` with respect to the *input color
//! channels* of a point cloud. This crate provides exactly that: a [`Tape`]
//! records a computation over [`colper_tensor::Matrix`] values as a DAG of
//! primitive operations, [`Tape::backward`] replays it in reverse, and
//! [`Tape::grad`] exposes the accumulated gradient of any leaf — whether it
//! is a network weight (training) or the adversarial color variable `w`
//! (attacking).
//!
//! The op set is tailored to point-cloud segmentation networks: dense
//! matmul and batch-norm for the shared MLPs, gather / grouped max-pool /
//! grouped softmax for neighborhood aggregation (PointNet++ set
//! abstraction, DeepGCN edge convolution, RandLA-Net attentive pooling),
//! interpolation for feature propagation, and fused losses (softmax
//! cross-entropy for training, the paper's CW-style hinges Eq. 7/8 and the
//! smoothness penalty Eq. 6 for attacking).
//!
//! # Example
//!
//! ```
//! use colper_tensor::Matrix;
//! use colper_autodiff::Tape;
//!
//! let mut t = Tape::new();
//! let x = t.leaf(Matrix::from_rows(&[&[0.5_f32, -1.0]]).unwrap());
//! let y = t.tanh(x);
//! let loss = t.sum(y);
//! t.backward(loss);
//! let g = t.grad(x).unwrap();
//! // d tanh(x)/dx = 1 - tanh(x)^2
//! assert!((g[(0, 0)] - (1.0 - 0.5_f32.tanh().powi(2))).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod grad_check;
mod ops_basic;
mod ops_nn;
mod ops_struct;
mod schedule;
mod tape;

pub use grad_check::{check_gradient, GradCheckReport};
pub use schedule::{
    schedule_enabled, set_schedule_enabled, CompileSpec, HingeSpec, ScheduleError, TapeSchedule,
};
pub use tape::{Tape, Var};
