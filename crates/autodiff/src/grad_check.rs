//! Numerical gradient checking.
//!
//! Every differentiable op in this crate is validated against central
//! finite differences. The checker rebuilds the computation from scratch
//! for every probe, so it works with fused ops that capture forward-pass
//! state (batch norm, softmax, hinges).

use crate::{Tape, Var};
use colper_tensor::Matrix;

/// The outcome of a [`check_gradient`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct GradCheckReport {
    /// Largest absolute difference between analytic and numeric gradient.
    pub max_abs_err: f32,
    /// Largest relative difference (`|a - n| / max(1, |a|, |n|)`).
    pub max_rel_err: f32,
    /// The analytic gradient.
    pub analytic: Matrix,
    /// The numeric (central finite difference) gradient.
    pub numeric: Matrix,
}

/// Compares the tape's analytic gradient with central finite differences.
///
/// `build` receives a fresh [`Tape`] and a leaf holding the current probe
/// value of `x0`, and must return a scalar output. The probe step is
/// `5e-3`, chosen for `f32` precision; tolerances in callers should be
/// around `1e-2`.
///
/// # Panics
///
/// Panics when `build` returns a non-scalar.
pub fn check_gradient(
    x0: &Matrix,
    mut build: impl FnMut(&mut Tape, Var) -> Var,
) -> GradCheckReport {
    // Analytic pass.
    let mut tape = Tape::new();
    let x = tape.leaf(x0.clone());
    let out = build(&mut tape, x);
    tape.backward(out);
    let analytic = tape.grad(x).cloned().unwrap_or_else(|| Matrix::zeros(x0.rows(), x0.cols()));

    // Numeric pass.
    const H: f32 = 5e-3;
    let mut numeric = Matrix::zeros(x0.rows(), x0.cols());
    for r in 0..x0.rows() {
        for c in 0..x0.cols() {
            let mut plus = x0.clone();
            plus[(r, c)] += H;
            let mut minus = x0.clone();
            minus[(r, c)] -= H;
            let fp = eval_scalar(&plus, &mut build);
            let fm = eval_scalar(&minus, &mut build);
            numeric[(r, c)] = (fp - fm) / (2.0 * H);
        }
    }

    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    for r in 0..x0.rows() {
        for c in 0..x0.cols() {
            let a = analytic[(r, c)];
            let n = numeric[(r, c)];
            let abs = (a - n).abs();
            let rel = abs / 1.0f32.max(a.abs()).max(n.abs());
            max_abs = max_abs.max(abs);
            max_rel = max_rel.max(rel);
        }
    }

    GradCheckReport { max_abs_err: max_abs, max_rel_err: max_rel, analytic, numeric }
}

fn eval_scalar(x0: &Matrix, build: &mut impl FnMut(&mut Tape, Var) -> Var) -> f32 {
    let mut tape = Tape::new();
    let x = tape.leaf(x0.clone());
    let out = build(&mut tape, x);
    let v = tape.value(out);
    assert_eq!(v.shape(), (1, 1), "check_gradient: build must return a scalar");
    v[(0, 0)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_gradient_catches_correct_gradient() {
        let x0 = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]).unwrap();
        let report = check_gradient(&x0, |t, x| {
            let y = t.square(x);
            t.sum(y)
        });
        assert!(report.max_abs_err < 1e-2, "{report:?}");
        // d/dx sum(x^2) = 2x
        assert!((report.analytic[(0, 1)] - 4.0).abs() < 1e-4);
    }

    #[test]
    fn report_carries_both_gradients() {
        let x0 = Matrix::ones(1, 2);
        let report = check_gradient(&x0, |t, x| t.sum(x));
        assert_eq!(report.analytic.shape(), (1, 2));
        assert_eq!(report.numeric.shape(), (1, 2));
        assert!(report.max_rel_err < 1e-2);
    }
}
