//! Static tape schedules: compile one recorded forward/backward pass into
//! a fixed replay program.
//!
//! For a fixed (model, plan, point-bucket) triple the attack records the
//! exact same op sequence every step — only the adversarial leaf changes.
//! [`TapeSchedule::compile`] runs once over a freshly recorded tape and
//! partitions it:
//!
//! - **Static nodes** — every node not (transitively) fed by the input
//!   leaf. Their captured values stay in the un-reset tape and are never
//!   recomputed: constant folding of the xyz geometry chains, eval-mode
//!   batch-norm scale/shift rows and plan gathers falls out for free.
//! - **Dynamic nodes** — recomputed on every [`TapeSchedule::replay`], in
//!   recorded order, writing into the same liveness-colored arena slots
//!   (each node's pooled value buffer, assigned once at capture). Peephole
//!   fusion collapses `matmul → add_row (→ activation)` chains and
//!   `gather_rows → sub` pairs into single steps and recycles the
//!   intermediate buffers; `weighted_gather` is the already-fused
//!   gather + weighted-sum op. Independent matmuls that share one weight
//!   operand and one input shape are additionally grouped into a single
//!   strided batched GEMM step (see [`TapeSchedule::batched_groups`]).
//!
//! The backward candidate list (reachability mark pass over `requires_grad
//! && live`) is also frozen at compile time, so replay skips graph
//! construction, the per-step reset walk, the mark pass, and every
//! dispatch decision. Replay reuses the tape's own `step_backward` in
//! compiled mode, which additionally prunes operand gradients flowing
//! into eval-mode constants (the dynamic reference computes then
//! discards them) and hands out dirty scratch to kernels that fully
//! overwrite their output. Neither can change a live value: replayed
//! values and gradients stay bit-identical to a dynamic rebuild on both
//! SIMD legs and at any thread count — and touch no allocator in steady
//! state.

use crate::tape::{step_backward, Node, Op, Tape, Value, Var};
use colper_tensor::{kernels, Matrix};
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

/// Process-global schedule gate, mirroring the obs trace gate: lazily
/// seeded from `COLPER_SCHEDULE`, overridable by [`set_schedule_enabled`].
static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);

fn detect() -> u8 {
    match std::env::var("COLPER_SCHEDULE") {
        Ok(v) if v.is_empty() || v == "0" || v.eq_ignore_ascii_case("off") => STATE_OFF,
        _ => STATE_ON,
    }
}

/// Whether attack loops should compile and replay static schedules.
///
/// Defaults to on; `COLPER_SCHEDULE=0` (or `off`, or empty) pins the
/// dynamic tape path. Schedules are a pure amortization — results are
/// bit-identical either way.
pub fn schedule_enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_UNINIT => {
            let s = detect();
            STATE.store(s, Ordering::Relaxed);
            s == STATE_ON
        }
        s => s == STATE_ON,
    }
}

/// Overrides the `COLPER_SCHEDULE` gate for this process (tests, benches).
pub fn set_schedule_enabled(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// Why a recorded graph could not be compiled into a [`TapeSchedule`].
///
/// Compilation failure is never an error condition for the attack — the
/// caller falls back to the dynamic tape, which computes the same thing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// The dynamic subgraph contains an op with no replay arm (training
    /// batch-norm, whose running-statistics outputs escape the tape).
    UnsupportedOp(&'static str),
    /// A dynamic node stores its value in shared (`Arc`) storage; replay
    /// needs exclusive arena slots.
    SharedDynamicValue(usize),
    /// The designated input is not a differentiable leaf.
    InputNotLeaf,
    /// The graph has a second differentiable leaf; replay only refreshes
    /// one input, so a second leaf would silently freeze.
    MultipleLeaves,
    /// The scheduled output is not a `1x1` scalar.
    NotScalarOutput,
    /// The output does not depend on the input leaf.
    NoGradPath,
    /// The dynamic subgraph contains a CW hinge but no [`HingeSpec`] was
    /// supplied (the op payload stores only the active set, not the
    /// labels/mask needed to recompute it).
    MissingHingeSpec,
    /// The supplied [`HingeSpec`] does not match the logits shape.
    HingeSpecMismatch,
    /// More than one dynamic CW hinge; a single [`HingeSpec`] cannot
    /// disambiguate them.
    MultipleHinges,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::UnsupportedOp(op) => {
                write!(f, "schedule: unsupported dynamic op {op}")
            }
            ScheduleError::SharedDynamicValue(i) => {
                write!(f, "schedule: dynamic node {i} has shared storage")
            }
            ScheduleError::InputNotLeaf => write!(f, "schedule: input is not a leaf"),
            ScheduleError::MultipleLeaves => {
                write!(f, "schedule: graph has more than one differentiable leaf")
            }
            ScheduleError::NotScalarOutput => {
                write!(f, "schedule: output is not a 1x1 scalar")
            }
            ScheduleError::NoGradPath => {
                write!(f, "schedule: output does not depend on the input leaf")
            }
            ScheduleError::MissingHingeSpec => {
                write!(f, "schedule: graph contains a CW hinge but no HingeSpec was given")
            }
            ScheduleError::HingeSpecMismatch => {
                write!(f, "schedule: HingeSpec does not match the logits shape")
            }
            ScheduleError::MultipleHinges => {
                write!(f, "schedule: more than one dynamic CW hinge")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// The recompute context for a scheduled CW hinge (Eq. 7/8).
///
/// The recorded `CwHinge` op saves only the active set; replay needs the
/// labels, point mask and direction to rebuild it. Must describe the same
/// loss the captured graph recorded — the attack passes the exact
/// arguments it gave `cw_targeted`/`cw_nontargeted`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HingeSpec {
    /// Per-row class labels (ground truth or attack target).
    pub labels: Vec<usize>,
    /// Per-row attack mask; unmasked rows contribute no loss.
    pub mask: Vec<bool>,
    /// `true` for the targeted hinge (Eq. 7), `false` for non-targeted
    /// (Eq. 8).
    pub targeted: bool,
}

/// What to compile out of a freshly recorded tape.
pub struct CompileSpec<'a> {
    /// The differentiable leaf replay refreshes each step.
    pub input: Var,
    /// The scalar loss the backward pass seeds.
    pub output: Var,
    /// Node values the caller reads after each replay (logits, loss
    /// terms, the reparameterized colors). Fusion never recycles these
    /// buffers.
    pub keep: &'a [Var],
    /// Recompute context for the CW hinge, when the graph has one.
    pub hinge: Option<HingeSpec>,
}

/// One forward replay step: a dynamic node, or a peephole-fused group.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Recompute node `i` with the standard op arm.
    Node(u32),
    /// `matmul → add_row (→ activation)`: the matmul writes straight into
    /// the bias node's slot (its own buffer was recycled at compile), the
    /// bias row is added in place, and the optional activation fills its
    /// own slot.
    FusedLinear { mm: u32, add: u32, act: Option<u32> },
    /// `gather_rows → sub`: the subtraction reads gathered rows straight
    /// from the source (the gather's buffer was recycled at compile).
    FusedGatherSub { gather: u32, sub: u32 },
    /// A compile-time group of independent matmuls sharing one B operand,
    /// executed as a single strided batched GEMM (`mm_groups[group]`
    /// holds the member node indices in execution order).
    BatchedMatmul { group: u32 },
}

/// A compiled, replayable attack step: the frozen op program for one
/// (model, plan, point-bucket) graph.
///
/// Built once by [`TapeSchedule::compile`] over a tape that just ran a
/// recording forward + backward pass; [`TapeSchedule::replay`] then reruns
/// the dynamic subgraph and the backward pass against the same tape with
/// zero graph construction and zero allocations.
#[derive(Debug)]
pub struct TapeSchedule {
    input: u32,
    output: u32,
    n_nodes: u32,
    steps: Vec<Step>,
    bwd_order: Vec<u32>,
    /// Member node indices per batched-matmul step, in execution order.
    mm_groups: Vec<Vec<u32>>,
    hinge: Option<HingeSpec>,
    fused_groups: u64,
    arena_bytes: u64,
}

impl TapeSchedule {
    /// Compiles the tape's recorded graph into a static schedule.
    ///
    /// The tape must have just recorded the pass to freeze (forward and
    /// backward), and must not be reset afterwards — the schedule replays
    /// over the captured node storage. Fused-away intermediate buffers are
    /// recycled into the tape's pool here, which is the one-time "liveness
    /// coloring": every surviving dynamic node keeps its slot for good.
    ///
    /// On error the tape is left fully usable by the dynamic path (at most
    /// some hinge capacity was pre-reserved).
    #[allow(clippy::too_many_lines)]
    pub fn compile(tape: &mut Tape, spec: &CompileSpec<'_>) -> Result<Self, ScheduleError> {
        let n = tape.nodes.len();
        let input = spec.input.0;
        let output = spec.output.0;
        assert!(input < n && output < n, "compile: vars do not belong to this tape");

        if !matches!(tape.nodes[input].op, Op::Leaf) {
            return Err(ScheduleError::InputNotLeaf);
        }
        if !matches!(tape.nodes[input].value, Value::Owned(_)) {
            return Err(ScheduleError::SharedDynamicValue(input));
        }
        if tape.nodes[output].value.shape() != (1, 1) {
            return Err(ScheduleError::NotScalarOutput);
        }
        if !tape.nodes[output].requires_grad {
            return Err(ScheduleError::NoGradPath);
        }

        // Mark the dynamic set: everything transitively fed by the input.
        let mut dynamic = vec![false; n];
        dynamic[input] = true;
        for i in 0..n {
            if dynamic[i] {
                continue;
            }
            let mut d = false;
            tape.nodes[i].op.for_each_operand(|v| d |= dynamic[v.0]);
            dynamic[i] = d;
        }
        if !dynamic[output] {
            return Err(ScheduleError::NoGradPath);
        }

        // Validate the dynamic subgraph and locate the hinge.
        let mut hinge_node = None;
        for (i, node) in tape.nodes.iter().enumerate() {
            if matches!(node.op, Op::Leaf) && node.requires_grad && i != input {
                // A second differentiable leaf would be frozen at its
                // captured value on replay — reject rather than drift.
                return Err(ScheduleError::MultipleLeaves);
            }
            if !dynamic[i] || i == input {
                continue;
            }
            match &node.op {
                Op::BatchNorm { .. } => {
                    // Training-mode BN emits running-statistic matrices
                    // that escape the tape; eval-mode BN records as a
                    // constant scale/shift chain and schedules fine.
                    return Err(ScheduleError::UnsupportedOp("batch_norm_train"));
                }
                Op::Leaf | Op::Constant => {
                    unreachable!("leaves and constants have no operands")
                }
                Op::CwHinge { logits, .. } => {
                    if hinge_node.replace(i).is_some() {
                        return Err(ScheduleError::MultipleHinges);
                    }
                    let spec_h = spec.hinge.as_ref().ok_or(ScheduleError::MissingHingeSpec)?;
                    let (rows, cols) = tape.nodes[logits.0].value.shape();
                    let labels_ok = spec_h.labels.len() == rows
                        && spec_h.mask.len() == rows
                        && cols >= 2
                        && spec_h.labels.iter().all(|&y| y < cols);
                    if !labels_ok {
                        return Err(ScheduleError::HingeSpecMismatch);
                    }
                }
                _ => {}
            }
            if !matches!(node.value, Value::Owned(_)) {
                return Err(ScheduleError::SharedDynamicValue(i));
            }
        }
        let hinge = hinge_node.and_then(|_| spec.hinge.clone());

        // Freeze the backward candidate list: the same reachability mark
        // pass `Tape::backward` runs per step, done once here.
        let mut live = vec![false; n];
        live[output] = true;
        for i in (0..n).rev() {
            if !live[i] || !tape.nodes[i].requires_grad {
                continue;
            }
            tape.nodes[i].op.for_each_operand(|v| live[v.0] = true);
        }
        let bwd_order: Vec<u32> = (0..n)
            .rev()
            .filter(|&i| tape.nodes[i].requires_grad && live[i])
            .map(|i| i as u32)
            .collect();

        // Count each dynamic node's dynamic consumers: fusion may only
        // recycle a buffer its sole consumer reads, and only when neither
        // the caller (`keep`) nor any backward arm reads it afterwards.
        let mut consumers = vec![0u32; n];
        for i in 0..n {
            if !dynamic[i] || i == input {
                continue;
            }
            tape.nodes[i].op.for_each_operand(|v| {
                if dynamic[v.0] {
                    consumers[v.0] += 1;
                }
            });
        }
        let mut keep = vec![false; n];
        keep[input] = true;
        keep[output] = true;
        for v in spec.keep {
            assert!(v.0 < n, "compile: keep var does not belong to this tape");
            keep[v.0] = true;
        }

        // Strided batched-matmul grouping: dynamic matmuls that share one
        // B operand and one A shape can run as a single batched GEMM
        // (`Matrix::matmul_batched_with`), which is bit-identical to the
        // per-node loop by construction. Members must be mutually
        // independent (the filter below), and the replay order is then
        // re-sorted so members become adjacent: a priority topological
        // sort that sinks every member to its group's anchor (the last
        // member's recorded position). Groups are re-derived from actual
        // adjacency afterwards — a consumer forced between members splits
        // the run, degrading gracefully to smaller runs or plain nodes.
        // Single-branch production graphs have one matmul per weight and
        // compile exactly as before (the pass is a no-op without groups).
        let mut by_key: std::collections::HashMap<(usize, (usize, usize)), Vec<u32>> =
            std::collections::HashMap::new();
        for (i, &is_dynamic) in dynamic.iter().enumerate() {
            if !is_dynamic || i == input {
                continue;
            }
            if let Op::Matmul(a, b) = &tape.nodes[i].op {
                by_key.entry((b.0, tape.nodes[a.0].value.shape())).or_default().push(i as u32);
            }
        }
        let mut groups_pre: Vec<Vec<u32>> = Vec::new();
        for members in by_key.into_values() {
            if members.len() < 2 {
                continue;
            }
            // Independence filter: drop a member whose operands
            // transitively depend on an already-accepted member.
            let mut dep = vec![false; n];
            let mut kept_members: Vec<u32> = Vec::new();
            let mut mi = 0;
            for i in 0..n {
                let mut d = false;
                tape.nodes[i].op.for_each_operand(|v| d |= dep[v.0]);
                if mi < members.len() && members[mi] as usize == i {
                    mi += 1;
                    if d {
                        continue;
                    }
                    kept_members.push(i as u32);
                    dep[i] = true;
                } else {
                    dep[i] = d;
                }
            }
            if kept_members.len() >= 2 {
                groups_pre.push(kept_members);
            }
        }
        // HashMap iteration order is arbitrary; anchor keys must not be.
        groups_pre.sort_by_key(|g| g[0]);

        let mut order: Vec<u32> =
            (0..n).filter(|&i| dynamic[i] && i != input).map(|i| i as u32).collect();
        let mut member_of: Vec<Option<u32>> = vec![None; n];
        let mut mm_groups: Vec<Vec<u32>> = Vec::new();
        if !groups_pre.is_empty() {
            let mut key: Vec<u32> = (0..n as u32).collect();
            let mut pre_of: Vec<Option<u32>> = vec![None; n];
            for (g, members) in groups_pre.iter().enumerate() {
                let anchor = *members.last().expect("group is non-empty");
                for &m in members {
                    key[m as usize] = anchor;
                    pre_of[m as usize] = Some(g as u32);
                }
            }
            // Priority topological sort (Kahn): among ready nodes, run the
            // smallest (key, index). Non-members keep their own index as
            // key, so without groups this reproduces the recorded order.
            let mut indeg = vec![0u32; n];
            let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
            for &i in &order {
                tape.nodes[i as usize].op.for_each_operand(|v| {
                    if dynamic[v.0] && v.0 != input {
                        indeg[i as usize] += 1;
                        succs[v.0].push(i);
                    }
                });
            }
            let mut heap = std::collections::BinaryHeap::new();
            for &i in &order {
                if indeg[i as usize] == 0 {
                    heap.push(std::cmp::Reverse((key[i as usize], i)));
                }
            }
            let mut sorted: Vec<u32> = Vec::with_capacity(order.len());
            while let Some(std::cmp::Reverse((_, i))) = heap.pop() {
                sorted.push(i);
                for &s in &succs[i as usize] {
                    indeg[s as usize] -= 1;
                    if indeg[s as usize] == 0 {
                        heap.push(std::cmp::Reverse((key[s as usize], s)));
                    }
                }
            }
            debug_assert_eq!(sorted.len(), order.len(), "dynamic subgraph must be acyclic");
            order = sorted;

            // Re-derive groups from adjacency in the sorted order: only
            // maximal runs of two or more same-group members batch.
            let mut flush = |run: &mut Vec<u32>, member_of: &mut Vec<Option<u32>>| {
                if run.len() >= 2 {
                    let gid = mm_groups.len() as u32;
                    for &m in run.iter() {
                        member_of[m as usize] = Some(gid);
                    }
                    mm_groups.push(std::mem::take(run));
                } else {
                    run.clear();
                }
            };
            let mut run: Vec<u32> = Vec::new();
            let mut run_g: Option<u32> = None;
            for &i in &order {
                let g = pre_of[i as usize];
                if g != run_g {
                    flush(&mut run, &mut member_of);
                    run_g = g;
                }
                if g.is_some() {
                    run.push(i);
                }
            }
            flush(&mut run, &mut member_of);
        }

        // Peephole fusion over the recorded order. Soundness of stealing a
        // node's buffer: the Matmul and GatherRows backward arms read only
        // their *operand* values (and the gather's index payload), never
        // their own output, and their sole consumers (AddRow / Sub)
        // propagate gradients without reading any forward value.
        let mut sole: Vec<Option<usize>> = vec![None; n];
        for i in 0..n {
            if !dynamic[i] || i == input {
                continue;
            }
            tape.nodes[i].op.for_each_operand(|v| {
                if dynamic[v.0] && consumers[v.0] == 1 {
                    sole[v.0] = Some(i);
                }
            });
        }

        // Each fused group is anchored at its *second* op (the AddRow /
        // Sub), not its first: other operands of that op may be recorded
        // between the pair — ResGcn gathers x_j, then x_i, then subtracts
        // — and running the group at the first op's slot would read them
        // one replay stale. The first op (and any trailing activation)
        // is marked `fused` so the scan skips it; the group is emitted
        // when the scan reaches the anchor, where every operand of every
        // member is already recomputed. The activation runs one slot
        // early (at the anchor instead of its own position), which is
        // safe: its sole operand is the anchor and its consumers all
        // come later.
        let mut steps = Vec::new();
        let mut fused = vec![false; n];
        let mut pending: Vec<Option<Step>> = vec![None; n];
        let mut stolen: Vec<usize> = Vec::new();
        let mut fused_groups = 0u64;
        let mut emitted_group = vec![false; mm_groups.len()];
        for &i in &order {
            let i = i as usize;
            if fused[i] {
                continue;
            }
            // Batched members run together at the run's first slot; their
            // buffers are never stolen, so `keep` members are allowed.
            if let Some(g) = member_of[i] {
                if !emitted_group[g as usize] {
                    emitted_group[g as usize] = true;
                    steps.push(Step::BatchedMatmul { group: g });
                }
                continue;
            }
            if let Some(step) = pending[i].take() {
                steps.push(step);
                continue;
            }
            match &tape.nodes[i].op {
                Op::Matmul(..) if !keep[i] => {
                    if let Some(j) = sole[i] {
                        if let Op::AddRow(x, r) = tape.nodes[j].op {
                            if x.0 == i && r.0 != i {
                                let act = sole[j].filter(|&k2| {
                                    matches!(
                                        tape.nodes[k2].op,
                                        Op::Relu(v) | Op::LeakyRelu(v, _)
                                            | Op::Tanh(v) | Op::Sigmoid(v)
                                        if v.0 == j
                                    )
                                });
                                fused[i] = true;
                                if let Some(k2) = act {
                                    fused[k2] = true;
                                }
                                stolen.push(i);
                                fused_groups += 1;
                                pending[j] = Some(Step::FusedLinear {
                                    mm: i as u32,
                                    add: j as u32,
                                    act: act.map(|k2| k2 as u32),
                                });
                                continue;
                            }
                        }
                    }
                }
                Op::GatherRows(..) if !keep[i] => {
                    if let Some(j) = sole[i] {
                        if let Op::Sub(a, b) = tape.nodes[j].op {
                            if a.0 == i && b.0 != i {
                                fused[i] = true;
                                stolen.push(i);
                                fused_groups += 1;
                                pending[j] =
                                    Some(Step::FusedGatherSub { gather: i as u32, sub: j as u32 });
                                continue;
                            }
                        }
                    }
                }
                _ => {}
            }
            steps.push(Step::Node(i as u32));
        }

        // Recycle the fused-away buffers (the one-shot slot coloring) and
        // account the surviving replay arena.
        let mut stolen_mark = vec![false; n];
        for &i in &stolen {
            stolen_mark[i] = true;
            if let Value::Owned(m) = &mut tape.nodes[i].value {
                let buf = std::mem::replace(m, Matrix::zeros(0, 0));
                tape.pool.recycle(buf);
            }
        }
        let mut arena_bytes = 0u64;
        for (i, node) in tape.nodes.iter().enumerate() {
            if dynamic[i] && !stolen_mark[i] {
                arena_bytes += (node.value.len() * std::mem::size_of::<f32>()) as u64;
            }
        }

        // Pre-size the hinge's active list so replay never grows it: at
        // most every masked row goes active.
        if let (Some(i), Some(spec_h)) = (hinge_node, hinge.as_ref()) {
            if let Op::CwHinge { active, .. } = &mut tape.nodes[i].op {
                let masked = spec_h.mask.iter().filter(|&&m| m).count();
                if active.capacity() < masked {
                    active.reserve(masked - active.len());
                }
            }
        }

        colper_obs::counters::SCHED_CAPTURES.incr();
        colper_obs::counters::SCHED_FUSED_OPS.add(fused_groups);
        colper_obs::counters::SCHED_BATCHED_MMS.add(mm_groups.iter().map(|g| g.len() as u64).sum());
        colper_obs::gauges::SCHED_ARENA_BYTES.record(arena_bytes);

        Ok(TapeSchedule {
            input: input as u32,
            output: output as u32,
            n_nodes: n as u32,
            steps,
            bwd_order,
            mm_groups,
            hinge,
            fused_groups,
            arena_bytes,
        })
    }

    /// Replays the schedule: writes `input_value` into the input leaf's
    /// slot, recomputes every dynamic node (static nodes keep their
    /// captured values — the constant folding), then reruns the frozen
    /// backward order. Afterwards the tape serves values and gradients
    /// exactly as if the graph had been rebuilt dynamically.
    ///
    /// # Panics
    ///
    /// Panics when `tape` is not the tape (or a structurally identical
    /// successor) this schedule was compiled from, or when the input shape
    /// changed.
    pub fn replay(&self, tape: &mut Tape, input_value: &Matrix) {
        assert_eq!(
            tape.nodes.len(),
            self.n_nodes as usize,
            "replay: schedule was compiled for a different graph"
        );
        colper_obs::counters::SCHED_REPLAYS.incr();

        tape.nodes[self.input as usize].value.owned_mut().fill_from(input_value);
        for step in &self.steps {
            match *step {
                Step::Node(i) => exec_node(&mut tape.nodes, i as usize, self.hinge.as_ref()),
                Step::FusedLinear { mm, add, act } => {
                    exec_fused_linear(&mut tape.nodes, mm as usize, add as usize);
                    if let Some(act) = act {
                        exec_node(&mut tape.nodes, act as usize, None);
                    }
                }
                Step::FusedGatherSub { gather, sub } => {
                    exec_fused_gather_sub(&mut tape.nodes, gather as usize, sub as usize);
                }
                Step::BatchedMatmul { group } => {
                    exec_batched_matmul(tape, &self.mm_groups[group as usize]);
                }
            }
        }
        self.replay_backward(tape);
    }

    /// The frozen twin of `Tape::backward`: identical seed, traversal and
    /// accumulation (it calls the same `step_backward`), minus the mark
    /// pass — the candidate list was cached at compile time — and with
    /// dead-gradient pruning on: gradients flowing into eval-mode
    /// constants (frozen weights) are skipped instead of computed and
    /// discarded. Pruning cannot change any live gradient, so replayed
    /// gradients stay bit-identical to the dynamic rebuild.
    fn replay_backward(&self, tape: &mut Tape) {
        let _span = colper_obs::span!(TAPE_BACKWARD);
        let n = tape.nodes.len();
        colper_obs::counters::TAPE_BACKWARDS.incr();
        colper_obs::gauges::TAPE_NODES.record(n as u64);

        for g in tape.grads.drain(..).flatten() {
            tape.pool.recycle(g);
        }
        tape.grads.resize_with(n, || None);
        tape.visited = 0;

        let seed = {
            let mut o = tape.pool.zeros(1, 1);
            o[(0, 0)] = 1.0;
            o
        };
        tape.grads[self.output as usize] = Some(seed);

        for &i in &self.bwd_order {
            let i = i as usize;
            let Some(gy) = tape.grads[i].take() else { continue };
            tape.visited += 1;
            step_backward(&tape.nodes, &mut tape.grads, &mut tape.pool, i, &gy, true);
            tape.grads[i] = Some(gy);
        }
    }

    /// Forward replay steps (fused groups count as one).
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Peephole groups fused at compile time.
    pub fn fused_groups(&self) -> u64 {
        self.fused_groups
    }

    /// Batched-matmul groups discovered at compile time: runs of two or
    /// more independent matmuls sharing a B operand that replay as one
    /// strided batched GEMM each.
    pub fn batched_groups(&self) -> usize {
        self.mm_groups.len()
    }

    /// Bytes of value storage the replay writes per step (after fusion
    /// recycled the eliminated slots).
    pub fn arena_bytes(&self) -> u64 {
        self.arena_bytes
    }
}

/// Recomputes node `i` in place with the exact scalar recipe of its
/// recording constructor. Zero-accumulating ops (`group_mean`,
/// `weighted_gather`) clear their slot first — every other op fully
/// overwrites it (`matmul_into` self-zeroes).
#[allow(clippy::too_many_lines)]
fn exec_node(nodes: &mut [Node], i: usize, hinge: Option<&HingeSpec>) {
    // Operands precede their consumer in topological order, so split at
    // `i`: `head` holds every operand immutably, `tail[0]` is the node
    // being written.
    let (head, tail) = nodes.split_at_mut(i);
    let Node { value, op, .. } = &mut tail[0];
    match op {
        Op::Leaf | Op::Constant | Op::BatchNorm { .. } => {
            unreachable!("unschedulable op survived compilation")
        }
        Op::Add(a, b) => {
            let (a, b) = (*a, *b);
            head[a.0].value.add_into(&head[b.0].value, value.owned_mut()).expect("replay add");
        }
        Op::Sub(a, b) => {
            let (a, b) = (*a, *b);
            head[a.0].value.sub_into(&head[b.0].value, value.owned_mut()).expect("replay sub");
        }
        Op::Mul(a, b) => {
            let (a, b) = (*a, *b);
            head[a.0].value.mul_into(&head[b.0].value, value.owned_mut()).expect("replay mul");
        }
        Op::AddRow(x, r) => row_broadcast(head, *x, *r, value.owned_mut(), kernels::add),
        Op::SubRow(x, r) => row_broadcast(head, *x, *r, value.owned_mut(), kernels::sub),
        Op::MulRow(x, r) => row_broadcast(head, *x, *r, value.owned_mut(), kernels::mul),
        Op::DivRow(x, r) => row_broadcast(head, *x, *r, value.owned_mut(), kernels::div),
        Op::Scale(x, s) => {
            let (x, s) = (*x, *s);
            head[x.0].value.scale_into(s, value.owned_mut());
        }
        Op::AddScalar(x, s) => {
            let (x, s) = (*x, *s);
            head[x.0].value.map_into(value.owned_mut(), |t| t + s);
        }
        Op::Matmul(a, b) => {
            let (a, b) = (*a, *b);
            head[a.0]
                .value
                .matmul_into(&head[b.0].value, value.owned_mut())
                .expect("replay matmul");
        }
        Op::Relu(x) => head[x.0].value.map_into(value.owned_mut(), |t| t.max(0.0)),
        Op::LeakyRelu(x, alpha) => {
            let (x, alpha) = (*x, *alpha);
            head[x.0]
                .value
                .map_into(value.owned_mut(), move |t| if t > 0.0 { t } else { alpha * t });
        }
        Op::Tanh(x) => head[x.0].value.tanh_into(value.owned_mut()),
        Op::Sigmoid(x) => {
            head[x.0].value.map_into(value.owned_mut(), |t| 1.0 / (1.0 + (-t).exp()));
        }
        Op::Exp(x) => head[x.0].value.map_into(value.owned_mut(), f32::exp),
        Op::Ln(x) => head[x.0].value.map_into(value.owned_mut(), f32::ln),
        Op::Sqrt(x) => head[x.0].value.map_into(value.owned_mut(), f32::sqrt),
        Op::Square(x) => head[x.0].value.map_into(value.owned_mut(), |t| t * t),
        Op::MulConst(x, mask) => {
            let x = *x;
            head[x.0].value.mul_into(mask, value.owned_mut()).expect("replay mul_const");
        }
        Op::Sum(x) => {
            let s = head[x.0].value.sum();
            value.owned_mut()[(0, 0)] = s;
        }
        Op::Mean(x) => {
            let s = head[x.0].value.mean();
            value.owned_mut()[(0, 0)] = s;
        }
        Op::SumRows(x) => head[x.0].value.sum_rows_into(value.owned_mut()),
        Op::MeanRows(x) => head[x.0].value.mean_rows_into(value.owned_mut()),
        Op::SumCols(x) => head[x.0].value.sum_cols_into(value.owned_mut()),
        Op::GatherRows(x, idx) => {
            let x = *x;
            head[x.0].value.select_rows_into(idx, value.owned_mut());
        }
        Op::GroupMax { x, argmax } => {
            let x = *x;
            let xv: &Matrix = &head[x.0].value;
            let out = value.owned_mut();
            let (rows, cols) = xv.shape();
            let groups = out.rows();
            if groups == 0 {
                return;
            }
            let k = rows / groups;
            for g in 0..groups {
                for c in 0..cols {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_row = g * k;
                    for j in 0..k {
                        let r = g * k + j;
                        let v = xv[(r, c)];
                        if v > best {
                            best = v;
                            best_row = r;
                        }
                    }
                    out[(g, c)] = best;
                    argmax[g * cols + c] = best_row;
                }
            }
        }
        Op::GroupMean(x, k) => {
            let (x, k) = (*x, *k);
            let out = value.owned_mut();
            out.as_mut_slice().fill(0.0);
            let xv: &Matrix = &head[x.0].value;
            kernels::count_dispatch(xv.rows());
            for g in 0..out.rows() {
                for j in 0..k {
                    kernels::add_assign(out.row_mut(g), xv.row(g * k + j));
                }
            }
            out.map_inplace(|v| v / k as f32);
        }
        Op::GroupSoftmax { x, k, softmax } => {
            let (x, k) = (*x, *k);
            let xv: &Matrix = &head[x.0].value;
            let out = value.owned_mut();
            let (rows, cols) = xv.shape();
            let groups = rows / k;
            for g in 0..groups {
                for c in 0..cols {
                    let mut maxv = f32::NEG_INFINITY;
                    for j in 0..k {
                        maxv = maxv.max(xv[(g * k + j, c)]);
                    }
                    let mut denom = 0.0f32;
                    for j in 0..k {
                        let e = (xv[(g * k + j, c)] - maxv).exp();
                        out[(g * k + j, c)] = e;
                        denom += e;
                    }
                    for j in 0..k {
                        out[(g * k + j, c)] /= denom;
                    }
                }
            }
            softmax.as_mut_slice().copy_from_slice(out.as_slice());
        }
        Op::WeightedGather { x, idx, w, k } => {
            let (x, k) = (*x, *k);
            let out = value.owned_mut();
            out.as_mut_slice().fill(0.0);
            let xv: &Matrix = &head[x.0].value;
            kernels::count_dispatch(idx.len());
            for r in 0..out.rows() {
                for j in 0..k {
                    let flat = r * k + j;
                    kernels::axpy(out.row_mut(r), w[flat], xv.row(idx[flat]));
                }
            }
        }
        Op::ConcatCols(a, b) => {
            let (a, b) = (*a, *b);
            head[a.0]
                .value
                .hstack_into(&head[b.0].value, value.owned_mut())
                .expect("replay concat_cols");
        }
        Op::SliceCols(x, c0, c1) => {
            let (x, c0, c1) = (*x, *c0, *c1);
            let rows = head[x.0].value.rows();
            head[x.0].value.block_into(0, rows, c0, c1, value.owned_mut());
        }
        Op::SoftmaxCrossEntropy { logits, labels, softmax } => {
            let lg = *logits;
            let z: &Matrix = &head[lg.0].value;
            let (n, c) = z.shape();
            let mut loss = 0.0f32;
            for r in 0..n {
                let row = z.row(r);
                let maxv = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let mut denom = 0.0f32;
                for (cc, &v) in row.iter().enumerate() {
                    let e = (v - maxv).exp();
                    softmax[(r, cc)] = e;
                    denom += e;
                }
                for cc in 0..c {
                    softmax[(r, cc)] /= denom;
                }
                loss -= softmax[(r, labels[r])].max(1e-12).ln();
            }
            loss /= n.max(1) as f32;
            value.owned_mut()[(0, 0)] = loss;
        }
        Op::CwHinge { logits, active } => {
            let spec = hinge.expect("scheduled CwHinge requires a HingeSpec");
            let lg = *logits;
            let z: &Matrix = &head[lg.0].value;
            active.clear();
            let mut loss = 0.0f32;
            for r in 0..z.rows() {
                if !spec.mask[r] {
                    continue;
                }
                let y = spec.labels[r];
                let row = z.row(r);
                let (jmax, zmax) = row.iter().enumerate().filter(|&(j, _)| j != y).fold(
                    (usize::MAX, f32::NEG_INFINITY),
                    |(bj, bv), (j, &v)| {
                        if v > bv {
                            (j, v)
                        } else {
                            (bj, bv)
                        }
                    },
                );
                let zy = row[y];
                let (v, plus, minus) =
                    if spec.targeted { (zmax - zy, jmax, y) } else { (zy - zmax, y, jmax) };
                if v > 0.0 {
                    loss += v;
                    active.push((r, plus, minus));
                }
            }
            value.owned_mut()[(0, 0)] = loss;
        }
        Op::Smoothness { colors, coords, neighbors, k } => {
            let (colors, k) = (*colors, *k);
            let cv: &Matrix = &head[colors.0].value;
            let coords: &Matrix = coords;
            let mut total = 0.0f32;
            for i2 in 0..cv.rows() {
                for j in 0..k {
                    let nb = neighbors[i2 * k + j];
                    let mut d2 = 0.0f32;
                    for d in 0..coords.cols() {
                        let dd = coords[(i2, d)] - coords[(nb, d)];
                        d2 += dd * dd;
                    }
                    for d in 0..cv.cols() {
                        let dd = cv[(i2, d)] - cv[(nb, d)];
                        d2 += dd * dd;
                    }
                    total += d2.sqrt();
                }
            }
            value.owned_mut()[(0, 0)] = total;
        }
    }
}

/// Shared body of the row-broadcast replay arms, executing the same
/// per-row kernel calls as the recording `row_broadcast`.
fn row_broadcast(
    head: &[Node],
    x: Var,
    row: Var,
    out: &mut Matrix,
    k: fn(&[f32], &[f32], &mut [f32]),
) {
    let xv: &Matrix = &head[x.0].value;
    let rrow = head[row.0].value.row(0);
    kernels::count_dispatch(xv.rows());
    for r in 0..xv.rows() {
        k(xv.row(r), rrow, out.row_mut(r));
    }
}

/// Fused `matmul → add_row`: the product lands directly in the bias
/// node's slot, then the bias row is added in place. `x + b` in the same
/// operand order as the dynamic `kernels::add(x_row, bias, out)`, so the
/// result is bit-identical lanewise.
fn exec_fused_linear(nodes: &mut [Node], mm: usize, add: usize) {
    let (head, tail) = nodes.split_at_mut(add);
    let Node { value, op, .. } = &mut tail[0];
    let bias = match op {
        Op::AddRow(_, r) => *r,
        _ => unreachable!("fused linear without an AddRow"),
    };
    let (a, b) = match &head[mm].op {
        Op::Matmul(a, b) => (*a, *b),
        _ => unreachable!("fused linear without a Matmul"),
    };
    let out = value.owned_mut();
    head[a.0].value.matmul_into(&head[b.0].value, out).expect("replay fused matmul");
    let brow = head[bias.0].value.row(0);
    kernels::count_dispatch(out.rows());
    for r in 0..out.rows() {
        kernels::add_assign(out.row_mut(r), brow);
    }
}

/// Fused `gather_rows → sub`: subtracts row-for-row while reading the
/// gathered rows straight out of the source matrix.
fn exec_fused_gather_sub(nodes: &mut [Node], gather: usize, sub: usize) {
    let (head, tail) = nodes.split_at_mut(sub);
    let Node { value, op, .. } = &mut tail[0];
    let b = match op {
        Op::Sub(_, b) => *b,
        _ => unreachable!("fused gather without a Sub"),
    };
    let (x, idx) = match &head[gather].op {
        Op::GatherRows(x, idx) => (*x, &**idx),
        _ => unreachable!("fused gather without a GatherRows"),
    };
    let out = value.owned_mut();
    let xv: &Matrix = &head[x.0].value;
    let yv: &Matrix = &head[b.0].value;
    kernels::count_dispatch(out.rows());
    for (r, &src) in idx.iter().enumerate().take(out.rows()) {
        kernels::sub(xv.row(src), yv.row(r), out.row_mut(r));
    }
}

/// One strided batched GEMM over a compile-time group of independent
/// matmul nodes sharing a B operand: the member output buffers are moved
/// into the tape's `batch_vals` scratch, overwritten by
/// [`Matrix::matmul_batched_with`] (bit-identical to the per-node loop by
/// construction), and moved back. Both moves are `mem::replace` with
/// empty placeholders and the `Vec` keeps its capacity, so steady-state
/// replays stay allocation-free.
fn exec_batched_matmul(tape: &mut Tape, members: &[u32]) {
    tape.batch_vals.clear();
    let mut b_idx = usize::MAX;
    for &gi in members {
        let gi = gi as usize;
        let out = std::mem::replace(tape.nodes[gi].value.owned_mut(), Matrix::zeros(0, 0));
        tape.batch_vals.push(out);
        if let Op::Matmul(_, b) = &tape.nodes[gi].op {
            b_idx = b.0;
        }
    }
    let nodes = &tape.nodes;
    let a_of = |j: usize| -> &Matrix {
        match &nodes[members[j] as usize].op {
            Op::Matmul(a, _) => &nodes[a.0].value,
            _ => unreachable!("batched group member is not a matmul"),
        }
    };
    Matrix::matmul_batched_with(members.len(), a_of, &nodes[b_idx].value, &mut tape.batch_vals)
        .expect("replay batched matmul");
    for (j, &gi) in members.iter().enumerate() {
        let out = std::mem::replace(&mut tape.batch_vals[j], Matrix::zeros(0, 0));
        *tape.nodes[gi as usize].value.owned_mut() = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: &[&[f32]]) -> Matrix {
        Matrix::from_rows(rows).unwrap()
    }

    /// A graph exercising every schedulable op class, including the two
    /// fusion peepholes and both zero-accumulating ops. Returns the loss
    /// plus the vars a caller would extract.
    fn build(t: &mut Tape, w0: &Matrix) -> (Var, Var, Var) {
        let w = t.leaf_from(w0);
        let weight = t.constant(mat(&[&[0.4, -0.2, 0.1], &[0.3, 0.9, -0.5]]));
        let bias = t.constant(mat(&[&[0.05, -0.1, 0.2]]));
        let scale_row = t.constant(mat(&[&[1.5, 0.5, 2.0]]));

        // matmul -> add_row -> tanh: the FusedLinear peephole.
        let h0 = t.matmul(w, weight);
        let h1 = t.add_row(h0, bias);
        let h2 = t.tanh(h1);
        let h3 = t.mul_row(h2, scale_row);
        let h4 = t.leaky_relu(h3, 0.1);

        // gather -> sub: the FusedGatherSub peephole.
        let g = t.gather_rows(h4, &[3, 2, 1, 0]);
        let edge = t.sub(g, h4);

        let cat = t.concat_cols(h4, edge);
        let sm = t.group_softmax(cat, 2);
        let att = t.mul(cat, sm);
        let pooled = t.group_mean(att, 2);
        let up = t.weighted_gather(
            pooled,
            &[0, 1, 1, 0, 0, 1, 1, 0],
            &[0.7, 0.3, 0.6, 0.4, 0.2, 0.8, 0.5, 0.5],
            2,
        );
        let gm = t.group_max(up, 2);
        let wide = t.concat_cols(up, up);
        let logits = t.slice_cols(wide, 0, 6);

        let hinge = t.cw_nontargeted(logits, &[0, 1, 2, 3], &[true, true, false, true]);
        let coords = mat(&[&[0.0, 0.0], &[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let smooth = t.smoothness(w, &coords, &[1, 0, 3, 2], 1);
        let sq = t.square(gm);
        let dist = t.sum(sq);
        let s1 = t.scale(hinge, 0.8);
        let s2 = t.scale(smooth, 0.05);
        let partial = t.add(dist, s1);
        let shifted = t.add_scalar(partial, 0.0);
        let loss = t.add(shifted, s2);
        t.backward(loss);
        (loss, w, logits)
    }

    fn spec_for(loss: Var, w: Var, logits: Var) -> (Vec<Var>, HingeSpec) {
        let keep = vec![logits];
        let hinge = HingeSpec {
            labels: vec![0, 1, 2, 3],
            mask: vec![true, true, false, true],
            targeted: false,
        };
        let _ = (loss, w);
        (keep, hinge)
    }

    #[test]
    fn replay_is_bit_identical_to_dynamic_rebuild() {
        let w0 = mat(&[&[0.1, -0.3], &[0.7, 0.2], &[-0.5, 0.4], &[0.9, -0.8]]);
        let w1 = mat(&[&[-0.2, 0.6], &[0.1, -0.9], &[0.3, 0.3], &[-0.4, 0.5]]);
        let w2 = mat(&[&[1.1, 0.0], &[-0.6, 0.25], &[0.05, -0.15], &[0.45, 0.85]]);

        let mut sched_tape = Tape::new();
        let (loss, w, logits) = build(&mut sched_tape, &w0);
        let (keep, hinge) = spec_for(loss, w, logits);
        let schedule = TapeSchedule::compile(
            &mut sched_tape,
            &CompileSpec { input: w, output: loss, keep: &keep, hinge: Some(hinge) },
        )
        .expect("graph must compile");
        assert!(schedule.fused_groups() >= 2, "both peepholes must fire");
        assert!(schedule.arena_bytes() > 0);

        // Replay twice per input: the second replay runs over dirty
        // buffers, which is what catches missing zero-fills.
        for wi in [&w1, &w2, &w1] {
            schedule.replay(&mut sched_tape, wi);
            schedule.replay(&mut sched_tape, wi);

            let mut fresh = Tape::new();
            let (f_loss, f_w, f_logits) = build(&mut fresh, wi);
            assert_eq!(
                sched_tape.value(loss).as_slice(),
                fresh.value(f_loss).as_slice(),
                "replayed loss diverged"
            );
            assert_eq!(
                sched_tape.value(logits).as_slice(),
                fresh.value(f_logits).as_slice(),
                "replayed logits diverged"
            );
            assert_eq!(
                sched_tape.grad(w).unwrap().as_slice(),
                fresh.grad(f_w).unwrap().as_slice(),
                "replayed gradient diverged"
            );
            assert_eq!(sched_tape.backward_visited(), fresh.backward_visited());
        }
    }

    #[test]
    fn static_subgraphs_are_not_recomputed() {
        let mut t = Tape::new();
        let w = t.leaf(mat(&[&[1.0, 2.0]]));
        let c = t.constant(mat(&[&[3.0, 4.0]]));
        let c2 = t.square(c); // static: must fold, not replay
        let y = t.mul(w, c2);
        let loss = t.sum(y);
        t.backward(loss);
        let schedule = TapeSchedule::compile(
            &mut t,
            &CompileSpec { input: w, output: loss, keep: &[], hinge: None },
        )
        .unwrap();
        // Only mul + sum are dynamic.
        assert_eq!(schedule.num_steps(), 2);
        schedule.replay(&mut t, &mat(&[&[-1.0, 0.5]]));
        assert_eq!(t.value(loss)[(0, 0)], -(1.0 * 9.0) + 0.5 * 16.0);
        assert_eq!(t.grad(w).unwrap().as_slice(), &[9.0, 16.0]);
    }

    #[test]
    fn training_batch_norm_is_rejected() {
        let mut t = Tape::new();
        let w = t.leaf(mat(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let gamma = t.constant(mat(&[&[1.0, 1.0]]));
        let beta = t.constant(mat(&[&[0.0, 0.0]]));
        let (y, _mean, _var) = t.batch_norm_train(w, gamma, beta, 1e-5);
        let loss = t.sum(y);
        t.backward(loss);
        let err = TapeSchedule::compile(
            &mut t,
            &CompileSpec { input: w, output: loss, keep: &[], hinge: None },
        )
        .unwrap_err();
        assert_eq!(err, ScheduleError::UnsupportedOp("batch_norm_train"));
    }

    #[test]
    fn second_differentiable_leaf_is_rejected() {
        let mut t = Tape::new();
        let w = t.leaf(mat(&[&[1.0]]));
        let other = t.leaf(mat(&[&[2.0]]));
        let y = t.mul(w, other);
        let loss = t.sum(y);
        t.backward(loss);
        let err = TapeSchedule::compile(
            &mut t,
            &CompileSpec { input: w, output: loss, keep: &[], hinge: None },
        )
        .unwrap_err();
        assert_eq!(err, ScheduleError::MultipleLeaves);
    }

    #[test]
    fn hinge_without_spec_is_rejected() {
        let mut t = Tape::new();
        let w = t.leaf(mat(&[&[1.0, -1.0], &[0.5, 2.0]]));
        let hinge = t.cw_nontargeted(w, &[0, 1], &[true, true]);
        t.backward(hinge);
        let err = TapeSchedule::compile(
            &mut t,
            &CompileSpec { input: w, output: hinge, keep: &[], hinge: None },
        )
        .unwrap_err();
        assert_eq!(err, ScheduleError::MissingHingeSpec);
    }

    #[test]
    fn keep_vars_are_protected_from_fusion() {
        let build_small = |t: &mut Tape, w0: &Matrix| {
            let w = t.leaf_from(w0);
            let weight = t.constant(mat(&[&[0.4], &[-0.3]]));
            let bias = t.constant(mat(&[&[0.1]]));
            let h0 = t.matmul(w, weight);
            let h1 = t.add_row(h0, bias);
            let loss = t.sum(h1);
            t.backward(loss);
            (loss, w, h0)
        };
        let w0 = mat(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut t = Tape::new();
        let (loss, w, h0) = build_small(&mut t, &w0);
        let keep = [h0];
        let schedule = TapeSchedule::compile(
            &mut t,
            &CompileSpec { input: w, output: loss, keep: &keep, hinge: None },
        )
        .unwrap();
        assert_eq!(schedule.fused_groups(), 0, "kept matmul must not be fused away");
        let w1 = mat(&[&[-1.0, 0.5], &[2.0, -2.0]]);
        schedule.replay(&mut t, &w1);
        let mut fresh = Tape::new();
        let (f_loss, _f_w, f_h0) = build_small(&mut fresh, &w1);
        assert_eq!(t.value(loss).as_slice(), fresh.value(f_loss).as_slice());
        assert_eq!(t.value(h0).as_slice(), fresh.value(f_h0).as_slice());
    }

    #[test]
    fn independent_same_weight_matmuls_batch_into_one_gemm() {
        // Two branches multiply by the same weight with the same input
        // shape and are mutually independent — exactly the shape-bucket
        // condition, so compile must group them into one batched GEMM
        // step and replay must stay bit-identical to a dynamic rebuild.
        let build_two = |t: &mut Tape, w0: &Matrix| {
            let w = t.leaf_from(w0);
            let b = t.constant(mat(&[&[0.4, -0.2], &[0.3, 0.9]]));
            let mm1 = t.matmul(w, b);
            let a2 = t.square(w);
            let mm2 = t.matmul(a2, b);
            let s1 = t.sum(mm1);
            let s2 = t.sum(mm2);
            let loss = t.add(s1, s2);
            t.backward(loss);
            (loss, w, mm1)
        };
        let w0 = mat(&[&[0.1, -0.3], &[0.7, 0.2]]);
        let mut t = Tape::new();
        let (loss, w, mm1) = build_two(&mut t, &w0);
        let keep = [mm1]; // batched members keep their buffers: `keep` is allowed
        let schedule = TapeSchedule::compile(
            &mut t,
            &CompileSpec { input: w, output: loss, keep: &keep, hinge: None },
        )
        .unwrap();
        assert_eq!(schedule.batched_groups(), 1, "the two independent matmuls must batch");
        let w1 = mat(&[&[-1.0, 0.5], &[2.0, -2.0]]);
        for wi in [&w1, &w0, &w1] {
            // Twice per input: the second replay runs over dirty buffers.
            schedule.replay(&mut t, wi);
            schedule.replay(&mut t, wi);
            let mut fresh = Tape::new();
            let (f_loss, f_w, f_mm1) = build_two(&mut fresh, wi);
            assert_eq!(t.value(loss).as_slice(), fresh.value(f_loss).as_slice());
            assert_eq!(t.value(mm1).as_slice(), fresh.value(f_mm1).as_slice());
            assert_eq!(
                t.grad(w).unwrap().as_slice(),
                fresh.grad(f_w).unwrap().as_slice(),
                "batched replay gradient diverged"
            );
        }
    }

    #[test]
    fn dependent_matmuls_do_not_batch() {
        // mm2 consumes mm1's output: same B operand, same A shape, but
        // serial — the independence filter must reject the pair.
        let build_chain = |t: &mut Tape, w0: &Matrix| {
            let w = t.leaf_from(w0);
            let b = t.constant(mat(&[&[0.5, 0.3], &[-0.2, 0.8]]));
            let mm1 = t.matmul(w, b);
            let mm2 = t.matmul(mm1, b);
            let loss = t.sum(mm2);
            t.backward(loss);
            (loss, w)
        };
        let w0 = mat(&[&[0.2, -0.4], &[0.6, 0.1]]);
        let mut t = Tape::new();
        let (loss, w) = build_chain(&mut t, &w0);
        let schedule = TapeSchedule::compile(
            &mut t,
            &CompileSpec { input: w, output: loss, keep: &[], hinge: None },
        )
        .unwrap();
        assert_eq!(schedule.batched_groups(), 0, "serial matmuls must not batch");
        let w1 = mat(&[&[1.0, 0.5], &[-0.7, 2.0]]);
        schedule.replay(&mut t, &w1);
        let mut fresh = Tape::new();
        let (f_loss, f_w) = build_chain(&mut fresh, &w1);
        assert_eq!(t.value(loss).as_slice(), fresh.value(f_loss).as_slice());
        assert_eq!(t.grad(w).unwrap().as_slice(), fresh.grad(f_w).unwrap().as_slice());
    }

    #[test]
    fn gate_override_round_trips() {
        let before = schedule_enabled();
        set_schedule_enabled(false);
        assert!(!schedule_enabled());
        set_schedule_enabled(true);
        assert!(schedule_enabled());
        set_schedule_enabled(before);
    }
}
