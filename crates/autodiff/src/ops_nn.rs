//! Fused neural-network operations: batch normalization, training loss,
//! and the paper's attack objectives (Eq. 6, 7, 8).

use crate::tape::{Ix, Op, Tape, Value, Var};
use colper_tensor::{kernels, Matrix};
use std::sync::Arc;

impl Tape {
    /// Batch normalization in training mode over the row (batch) axis.
    ///
    /// `x` is `[N,C]`, `gamma` and `beta` are `[1,C]`. Returns the
    /// normalized, scaled and shifted activations along with the batch mean
    /// and variance (so the caller can update running statistics).
    ///
    /// Gradients flow to `x`, `gamma` and `beta`.
    ///
    /// # Panics
    ///
    /// Panics when shapes are inconsistent or `x` has no rows.
    pub fn batch_norm_train(
        &mut self,
        x: Var,
        gamma: Var,
        beta: Var,
        eps: f32,
    ) -> (Var, Matrix, Matrix) {
        let (n, c) = self.value(x).shape();
        assert!(n > 0, "batch_norm_train: empty batch");
        assert_eq!(self.value(gamma).shape(), (1, c), "batch_norm_train: gamma shape");
        assert_eq!(self.value(beta).shape(), (1, c), "batch_norm_train: beta shape");

        // Mean and variance escape the tape (the caller folds them into
        // running statistics), so they are plain allocations, not pooled.
        let mut var = Matrix::zeros(1, c);
        let mut diff = Matrix::zeros(1, c);
        let mean = {
            let xv = self.value(x);
            let mean = xv.mean_rows();
            kernels::count_dispatch(2 * n);
            for r in 0..n {
                kernels::sub(xv.row(r), mean.row(0), diff.row_mut(0));
                kernels::add_prod_assign(var.row_mut(0), diff.row(0), diff.row(0));
            }
            mean
        };
        var.map_inplace(|v| v / n as f32);
        let mut inv_std = self.alloc(1, c);
        var.map_into(&mut inv_std, |v| 1.0 / (v + eps).sqrt());

        let mut xhat = self.alloc(n, c);
        {
            let xv = self.value(x);
            kernels::count_dispatch(2 * n);
            for r in 0..n {
                let row = xhat.row_mut(r);
                kernels::sub(xv.row(r), mean.row(0), row);
                kernels::mul_assign(row, inv_std.row(0));
            }
        }
        let mut out = self.alloc(n, c);
        {
            let gammav = self.value(gamma);
            let betav = self.value(beta);
            kernels::count_dispatch(n);
            for r in 0..n {
                kernels::mul_add(xhat.row(r), gammav.row(0), betav.row(0), out.row_mut(r));
            }
        }
        let rg = self.any_requires_grad(&[x, gamma, beta]);
        let v = self.push(out, Op::BatchNorm { x, gamma, beta, xhat, inv_std }, rg);
        (v, mean, var)
    }

    /// Mean softmax cross-entropy over rows: `logits` is `[N,C]`, `labels`
    /// holds one class index per row. Returns a `1x1` scalar.
    ///
    /// # Panics
    ///
    /// Panics when `labels.len() != N` or a label is out of range.
    pub fn softmax_cross_entropy(&mut self, logits: Var, labels: &[usize]) -> Var {
        let (n, c) = self.value(logits).shape();
        assert_eq!(labels.len(), n, "softmax_cross_entropy: {n} rows vs {} labels", labels.len());
        assert!(labels.iter().all(|&y| y < c), "softmax_cross_entropy: label out of range");

        let mut softmax = self.alloc(n, c);
        let mut loss = 0.0f32;
        {
            let z = self.value(logits);
            for r in 0..n {
                let row = z.row(r);
                let maxv = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let mut denom = 0.0f32;
                for (cc, &v) in row.iter().enumerate() {
                    let e = (v - maxv).exp();
                    softmax[(r, cc)] = e;
                    denom += e;
                }
                for cc in 0..c {
                    softmax[(r, cc)] /= denom;
                }
                loss -= softmax[(r, labels[r])].max(1e-12).ln();
            }
        }
        loss /= n.max(1) as f32;
        let labels = self.pooled_idx_copy(labels);
        let rg = self.node(logits).requires_grad;
        let mut lv = self.alloc(1, 1);
        lv[(0, 0)] = loss;
        self.push(lv, Op::SoftmaxCrossEntropy { logits, labels, softmax }, rg)
    }

    /// The paper's targeted adversarial loss (Eq. 7):
    /// `sum_i max(max_{j != y_i} Z_j - Z_{y_i}, 0)` over the rows where
    /// `mask` is true. Minimizing drives each masked point's prediction
    /// *toward* its target label `labels[i]`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches or out-of-range labels.
    pub fn cw_targeted(&mut self, logits: Var, labels: &[usize], mask: &[bool]) -> Var {
        self.cw_hinge(logits, labels, mask, true)
    }

    /// The paper's non-targeted adversarial loss (Eq. 8):
    /// `sum_i max(Z_{y_i} - max_{j != y_i} Z_j, 0)` over the rows where
    /// `mask` is true. Minimizing drives each masked point's prediction
    /// *away from* its ground-truth label `labels[i]`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches or out-of-range labels.
    pub fn cw_nontargeted(&mut self, logits: Var, labels: &[usize], mask: &[bool]) -> Var {
        self.cw_hinge(logits, labels, mask, false)
    }

    fn cw_hinge(&mut self, logits: Var, labels: &[usize], mask: &[bool], targeted: bool) -> Var {
        let (n, c) = self.value(logits).shape();
        assert_eq!(labels.len(), n, "cw_hinge: {n} rows vs {} labels", labels.len());
        assert_eq!(mask.len(), n, "cw_hinge: {n} rows vs {} mask entries", mask.len());
        assert!(labels.iter().all(|&y| y < c), "cw_hinge: label out of range");
        assert!(c >= 2, "cw_hinge: needs at least two classes");

        let mut active = self.take_tri();
        let mut loss = 0.0f32;
        {
            let z = self.value(logits);
            for r in 0..n {
                if !mask[r] {
                    continue;
                }
                let y = labels[r];
                let row = z.row(r);
                let (jmax, zmax) = row.iter().enumerate().filter(|&(j, _)| j != y).fold(
                    (usize::MAX, f32::NEG_INFINITY),
                    |(bj, bv), (j, &v)| {
                        if v > bv {
                            (j, v)
                        } else {
                            (bj, bv)
                        }
                    },
                );
                let zy = row[y];
                // targeted: want z_y to win -> penalize (zmax - zy)_+, grads +jmax, -y
                // non-targeted: want z_y to lose -> penalize (zy - zmax)_+, grads +y, -jmax
                let (v, plus, minus) =
                    if targeted { (zmax - zy, jmax, y) } else { (zy - zmax, y, jmax) };
                if v > 0.0 {
                    loss += v;
                    active.push((r, plus, minus));
                }
            }
        }
        let rg = self.node(logits).requires_grad;
        let mut lv = self.alloc(1, 1);
        lv[(0, 0)] = loss;
        self.push(lv, Op::CwHinge { logits, active }, rg)
    }

    /// The paper's smoothness penalty (Eq. 6):
    /// `S(X') = sum_i sum_{j in NB(i, alpha)} ||x'_i - x'_j||_2`
    /// where each `x'` is the concatenation of its (fixed) coordinates and
    /// its (perturbed) colors. `neighbors` is a flattened `[N*k]` index
    /// list from a fixed k-NN graph over the coordinates; gradients flow to
    /// `colors` only.
    ///
    /// # Panics
    ///
    /// Panics when `coords.rows() != colors.rows()` or `neighbors.len() !=
    /// N*k`.
    pub fn smoothness(
        &mut self,
        colors: Var,
        coords: &Matrix,
        neighbors: &[usize],
        k: usize,
    ) -> Var {
        let total = self.smoothness_value(colors, coords, neighbors, k);
        let coords = Value::Owned(self.alloc_copy(coords));
        let neighbors = Ix::Owned(self.pooled_idx_copy(neighbors));
        let rg = self.node(colors).requires_grad;
        let mut lv = self.alloc(1, 1);
        lv[(0, 0)] = total;
        self.push(lv, Op::Smoothness { colors, coords, neighbors, k }, rg)
    }

    /// [`Tape::smoothness`] with interned (`Arc`-shared) coordinates and
    /// neighbor list, as recorded once per cloud by an attack plan.
    ///
    /// # Panics
    ///
    /// Panics when `coords.rows() != colors.rows()` or `neighbors.len() !=
    /// N*k`.
    pub fn smoothness_shared(
        &mut self,
        colors: Var,
        coords: Arc<Matrix>,
        neighbors: Arc<[usize]>,
        k: usize,
    ) -> Var {
        let total = self.smoothness_value(colors, &coords, &neighbors, k);
        let rg = self.node(colors).requires_grad;
        let mut lv = self.alloc(1, 1);
        lv[(0, 0)] = total;
        self.push(
            lv,
            Op::Smoothness {
                colors,
                coords: Value::Shared(coords),
                neighbors: Ix::Shared(neighbors),
                k,
            },
            rg,
        )
    }

    fn smoothness_value(&self, colors: Var, coords: &Matrix, neighbors: &[usize], k: usize) -> f32 {
        assert!(k > 0, "smoothness: k must be positive");
        let cv = self.value(colors);
        let n = cv.rows();
        assert_eq!(coords.rows(), n, "smoothness: coords/colors row mismatch");
        assert_eq!(neighbors.len(), n * k, "smoothness: neighbor list must be N*k");
        assert!(neighbors.iter().all(|&i| i < n), "smoothness: neighbor index out of bounds");

        let mut total = 0.0f32;
        for i in 0..n {
            for j in 0..k {
                let nb = neighbors[i * k + j];
                let mut d2 = 0.0f32;
                for d in 0..coords.cols() {
                    let dd = coords[(i, d)] - coords[(nb, d)];
                    d2 += dd * dd;
                }
                for d in 0..cv.cols() {
                    let dd = cv[(i, d)] - cv[(nb, d)];
                    d2 += dd * dd;
                }
                total += d2.sqrt();
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_gradient;

    fn mat(rows: &[&[f32]]) -> Matrix {
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn batch_norm_normalizes() {
        let mut t = Tape::new();
        let x = t.leaf(mat(&[&[1.0, 10.0], &[3.0, 20.0], &[5.0, 30.0]]));
        let g = t.leaf(Matrix::ones(1, 2));
        let b = t.leaf(Matrix::zeros(1, 2));
        let (y, mean, var) = t.batch_norm_train(x, g, b, 1e-5);
        assert!((mean[(0, 0)] - 3.0).abs() < 1e-5);
        assert!((var[(0, 1)] - 200.0 / 3.0).abs() < 1e-3);
        let out = t.value(y);
        // Output is zero-mean, unit-variance per column.
        let m0 = (out[(0, 0)] + out[(1, 0)] + out[(2, 0)]) / 3.0;
        assert!(m0.abs() < 1e-5);
    }

    #[test]
    fn batch_norm_input_gradient_matches_numeric() {
        let x0 = mat(&[&[1.0, -2.0], &[0.5, 3.0], &[-1.5, 0.0], &[2.0, 1.0]]);
        let report = check_gradient(&x0, |t, x| {
            let g = t.constant(mat(&[&[1.5, 0.5]]));
            let b = t.constant(mat(&[&[0.1, -0.2]]));
            let (y, _, _) = t.batch_norm_train(x, g, b, 1e-5);
            let z = t.square(y);
            t.sum(z)
        });
        assert!(report.max_abs_err < 5e-2, "{report:?}");
    }

    #[test]
    fn batch_norm_gamma_beta_gradients_match_numeric() {
        let g0 = mat(&[&[1.5, 0.5]]);
        let report = check_gradient(&g0, |t, g| {
            let x = t.constant(mat(&[&[1.0, -2.0], &[0.5, 3.0], &[-1.5, 0.0]]));
            let b = t.constant(mat(&[&[0.1, -0.2]]));
            let (y, _, _) = t.batch_norm_train(x, g, b, 1e-5);
            let z = t.square(y);
            t.sum(z)
        });
        assert!(report.max_abs_err < 5e-2, "gamma: {report:?}");
    }

    #[test]
    fn cross_entropy_decreases_with_correct_logits() {
        let mut t = Tape::new();
        let good = t.leaf(mat(&[&[5.0, 0.0], &[0.0, 5.0]]));
        let l_good = t.softmax_cross_entropy(good, &[0, 1]);
        let bad = t.leaf(mat(&[&[0.0, 5.0], &[5.0, 0.0]]));
        let l_bad = t.softmax_cross_entropy(bad, &[0, 1]);
        assert!(t.value(l_good)[(0, 0)] < t.value(l_bad)[(0, 0)]);
    }

    #[test]
    fn cross_entropy_gradient_matches_numeric() {
        let x0 = mat(&[&[0.5, -1.0, 0.2], &[2.0, 0.0, -0.5]]);
        let report = check_gradient(&x0, |t, x| t.softmax_cross_entropy(x, &[2, 0]));
        assert!(report.max_abs_err < 2e-2, "{report:?}");
    }

    #[test]
    fn cw_targeted_zero_when_target_wins() {
        let mut t = Tape::new();
        let z = t.leaf(mat(&[&[5.0, 0.0, 0.0]]));
        let loss = t.cw_targeted(z, &[0], &[true]);
        assert_eq!(t.value(loss)[(0, 0)], 0.0);
    }

    #[test]
    fn cw_targeted_positive_and_decreasing_toward_target() {
        let mut t = Tape::new();
        let z = t.leaf(mat(&[&[0.0, 3.0, 1.0]]));
        let loss = t.cw_targeted(z, &[0], &[true]);
        assert_eq!(t.value(loss)[(0, 0)], 3.0);
        t.backward(loss);
        let g = t.grad(z).unwrap();
        // Gradient descent lowers the runner-up (col 1) and raises target (col 0).
        assert_eq!(g[(0, 1)], 1.0);
        assert_eq!(g[(0, 0)], -1.0);
        assert_eq!(g[(0, 2)], 0.0);
    }

    #[test]
    fn cw_nontargeted_pushes_away_from_truth() {
        let mut t = Tape::new();
        let z = t.leaf(mat(&[&[4.0, 1.0, 0.0]]));
        let loss = t.cw_nontargeted(z, &[0], &[true]);
        assert_eq!(t.value(loss)[(0, 0)], 3.0);
        t.backward(loss);
        let g = t.grad(z).unwrap();
        assert_eq!(g[(0, 0)], 1.0); // lower the true class
        assert_eq!(g[(0, 1)], -1.0); // raise the runner-up
    }

    #[test]
    fn cw_mask_excludes_rows() {
        let mut t = Tape::new();
        let z = t.leaf(mat(&[&[4.0, 0.0], &[4.0, 0.0]]));
        let loss = t.cw_nontargeted(z, &[0, 0], &[true, false]);
        assert_eq!(t.value(loss)[(0, 0)], 4.0);
    }

    #[test]
    fn smoothness_zero_for_identical_points_colors() {
        let mut t = Tape::new();
        let colors = t.leaf(mat(&[&[0.5, 0.5, 0.5], &[0.5, 0.5, 0.5]]));
        let coords = mat(&[&[0.0, 0.0, 0.0], &[0.0, 0.0, 0.0]]);
        let s = t.smoothness(colors, &coords, &[1, 0], 1);
        assert_eq!(t.value(s)[(0, 0)], 0.0);
    }

    #[test]
    fn smoothness_gradient_matches_numeric() {
        let c0 = mat(&[&[0.2, 0.4, 0.9], &[0.8, 0.1, 0.3], &[0.5, 0.5, 0.5]]);
        let coords = mat(&[&[0.0, 0.0, 0.0], &[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]]);
        let neighbors = vec![1, 2, 0, 2, 0, 1]; // k = 2
        let report = check_gradient(&c0, |t, c| t.smoothness(c, &coords, &neighbors, 2));
        assert!(report.max_abs_err < 2e-2, "{report:?}");
    }

    #[test]
    fn smoothness_shared_matches_slice_variant() {
        let coords = mat(&[&[0.0, 0.0, 0.0], &[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]]);
        let neighbors = vec![1, 2, 0, 2, 0, 1];
        let colors = mat(&[&[0.2, 0.4, 0.9], &[0.8, 0.1, 0.3], &[0.5, 0.5, 0.5]]);

        let mut t1 = Tape::new();
        let c1 = t1.leaf(colors.clone());
        let s1 = t1.smoothness(c1, &coords, &neighbors, 2);
        t1.backward(s1);

        let mut t2 = Tape::new();
        let c2 = t2.leaf(colors);
        let s2 = t2.smoothness_shared(c2, Arc::new(coords), Arc::from(&neighbors[..]), 2);
        t2.backward(s2);

        assert_eq!(t1.value(s1), t2.value(s2));
        assert_eq!(t1.grad(c1), t2.grad(c2));
    }

    #[test]
    fn smoothness_grows_with_color_contrast() {
        let coords = mat(&[&[0.0, 0.0, 0.0], &[0.1, 0.0, 0.0]]);
        let nb = vec![1, 0];
        let mut t1 = Tape::new();
        let c_same = t1.leaf(mat(&[&[0.5, 0.5, 0.5], &[0.5, 0.5, 0.5]]));
        let s_same = t1.smoothness(c_same, &coords, &nb, 1);
        let mut t2 = Tape::new();
        let c_diff = t2.leaf(mat(&[&[0.0, 0.0, 0.0], &[1.0, 1.0, 1.0]]));
        let s_diff = t2.smoothness(c_diff, &coords, &nb, 1);
        assert!(t2.value(s_diff)[(0, 0)] > t1.value(s_same)[(0, 0)]);
    }
}
