//! Structural operations: gathers, grouped pooling, interpolation and
//! concatenation.
//!
//! These ops carry the neighborhood structure of point-cloud networks:
//! `gather_rows` pulls each point's neighbors into consecutive rows,
//! `group_max` / `group_mean` / `group_softmax` pool over each group of `k`
//! consecutive rows, and `weighted_gather` performs the inverse-distance
//! interpolation of PointNet++ feature propagation.
//!
//! Index payloads come in two flavors: slice arguments are copied into
//! pooled vectors (recycled on [`Tape::reset`]), while the `_shared`
//! variants take `Arc` payloads interned once per (model, cloud) plan and
//! shared across steps with no copy at all.

use crate::tape::{Ix, Op, Tape, Var, Wts};
use colper_tensor::{kernels, Matrix};
use std::sync::Arc;

impl Tape {
    /// Gathers rows: `out[i] = x[idx[i]]`. Indices may repeat.
    ///
    /// # Panics
    ///
    /// Panics when any index is out of bounds.
    pub fn gather_rows(&mut self, x: Var, idx: &[usize]) -> Var {
        let out = self.gather_rows_value(x, idx);
        let payload = self.pooled_idx_copy(idx);
        let rg = self.node(x).requires_grad;
        self.push(out, Op::GatherRows(x, Ix::Owned(payload)), rg)
    }

    /// [`Tape::gather_rows`] with an interned (`Arc`-shared) index list.
    ///
    /// # Panics
    ///
    /// Panics when any index is out of bounds.
    pub fn gather_rows_shared(&mut self, x: Var, idx: Arc<[usize]>) -> Var {
        let out = self.gather_rows_value(x, &idx);
        let rg = self.node(x).requires_grad;
        self.push(out, Op::GatherRows(x, Ix::Shared(idx)), rg)
    }

    fn gather_rows_value(&mut self, x: Var, idx: &[usize]) -> Matrix {
        let (bound, cols) = self.value(x).shape();
        assert!(idx.iter().all(|&i| i < bound), "gather_rows: index out of bounds (rows={bound})");
        let mut out = self.alloc(idx.len(), cols);
        self.value(x).select_rows_into(idx, &mut out);
        out
    }

    /// Max-pool over consecutive groups of `k` rows: `[G*k, C] -> [G, C]`.
    ///
    /// This is the symmetric aggregation of PointNet++ set abstraction and
    /// DeepGCN edge convolution.
    ///
    /// # Panics
    ///
    /// Panics when the row count is not a multiple of `k` or `k == 0`.
    pub fn group_max(&mut self, x: Var, k: usize) -> Var {
        assert!(k > 0, "group_max: k must be positive");
        let (rows, cols) = self.value(x).shape();
        assert_eq!(rows % k, 0, "group_max: {rows} rows not divisible by k={k}");
        let groups = rows / k;
        let mut out = self.alloc(groups, cols);
        let mut argmax = self.take_idx();
        argmax.resize(groups * cols, 0);
        let xv = self.value(x);
        for g in 0..groups {
            for c in 0..cols {
                let mut best = f32::NEG_INFINITY;
                let mut best_row = g * k;
                for j in 0..k {
                    let r = g * k + j;
                    let v = xv[(r, c)];
                    if v > best {
                        best = v;
                        best_row = r;
                    }
                }
                out[(g, c)] = best;
                argmax[g * cols + c] = best_row;
            }
        }
        let rg = self.node(x).requires_grad;
        self.push(out, Op::GroupMax { x, argmax }, rg)
    }

    /// Mean-pool over consecutive groups of `k` rows: `[G*k, C] -> [G, C]`.
    ///
    /// # Panics
    ///
    /// Panics when the row count is not a multiple of `k` or `k == 0`.
    pub fn group_mean(&mut self, x: Var, k: usize) -> Var {
        assert!(k > 0, "group_mean: k must be positive");
        let (rows, cols) = self.value(x).shape();
        assert_eq!(rows % k, 0, "group_mean: {rows} rows not divisible by k={k}");
        let groups = rows / k;
        let mut out = self.alloc(groups, cols);
        let xv = self.value(x);
        kernels::count_dispatch(rows);
        for g in 0..groups {
            for j in 0..k {
                kernels::add_assign(out.row_mut(g), xv.row(g * k + j));
            }
        }
        out.map_inplace(|v| v / k as f32);
        let rg = self.node(x).requires_grad;
        self.push(out, Op::GroupMean(x, k), rg)
    }

    /// Softmax over each consecutive group of `k` rows, computed per
    /// column: `[G*k, C] -> [G*k, C]`.
    ///
    /// This is RandLA-Net's attentive-pooling score normalization.
    ///
    /// # Panics
    ///
    /// Panics when the row count is not a multiple of `k` or `k == 0`.
    pub fn group_softmax(&mut self, x: Var, k: usize) -> Var {
        assert!(k > 0, "group_softmax: k must be positive");
        let (rows, cols) = self.value(x).shape();
        assert_eq!(rows % k, 0, "group_softmax: {rows} rows not divisible by k={k}");
        let groups = rows / k;
        let mut out = self.alloc(rows, cols);
        let xv = self.value(x);
        for g in 0..groups {
            for c in 0..cols {
                let mut maxv = f32::NEG_INFINITY;
                for j in 0..k {
                    maxv = maxv.max(xv[(g * k + j, c)]);
                }
                let mut denom = 0.0f32;
                for j in 0..k {
                    let e = (xv[(g * k + j, c)] - maxv).exp();
                    out[(g * k + j, c)] = e;
                    denom += e;
                }
                for j in 0..k {
                    out[(g * k + j, c)] /= denom;
                }
            }
        }
        let rg = self.node(x).requires_grad;
        let softmax = self.alloc_copy(&out);
        self.push(out, Op::GroupSoftmax { x, k, softmax }, rg)
    }

    /// Weighted interpolation: `out[i] = sum_{j<k} w[i*k+j] * x[idx[i*k+j]]`.
    ///
    /// Used for PointNet++ feature propagation (3-NN inverse-distance
    /// interpolation) and RandLA-Net nearest-neighbor upsampling (`k == 1`).
    ///
    /// # Panics
    ///
    /// Panics when `idx.len() != w.len()`, the length is not a multiple of
    /// `k`, or any index is out of bounds.
    pub fn weighted_gather(&mut self, x: Var, idx: &[usize], w: &[f32], k: usize) -> Var {
        let out = self.weighted_gather_value(x, idx, w, k);
        let idx = self.pooled_idx_copy(idx);
        let w = self.pooled_w_copy(w);
        let rg = self.node(x).requires_grad;
        self.push(out, Op::WeightedGather { x, idx: Ix::Owned(idx), w: Wts::Owned(w), k }, rg)
    }

    /// [`Tape::weighted_gather`] with interned (`Arc`-shared) index and
    /// weight lists.
    ///
    /// # Panics
    ///
    /// Panics when `idx.len() != w.len()`, the length is not a multiple of
    /// `k`, or any index is out of bounds.
    pub fn weighted_gather_shared(
        &mut self,
        x: Var,
        idx: Arc<[usize]>,
        w: Arc<[f32]>,
        k: usize,
    ) -> Var {
        let out = self.weighted_gather_value(x, &idx, &w, k);
        let rg = self.node(x).requires_grad;
        self.push(out, Op::WeightedGather { x, idx: Ix::Shared(idx), w: Wts::Shared(w), k }, rg)
    }

    fn weighted_gather_value(&mut self, x: Var, idx: &[usize], w: &[f32], k: usize) -> Matrix {
        assert!(k > 0, "weighted_gather: k must be positive");
        assert_eq!(idx.len(), w.len(), "weighted_gather: idx and w must have equal length");
        assert_eq!(idx.len() % k, 0, "weighted_gather: length not divisible by k");
        let (bound, cols) = self.value(x).shape();
        assert!(idx.iter().all(|&i| i < bound), "weighted_gather: index out of bounds");
        let out_rows = idx.len() / k;
        let mut out = self.alloc(out_rows, cols);
        let xv = self.value(x);
        kernels::count_dispatch(idx.len());
        for i in 0..out_rows {
            for j in 0..k {
                let flat = i * k + j;
                kernels::axpy(out.row_mut(i), w[flat], xv.row(idx[flat]));
            }
        }
        out
    }

    /// Concatenates columns: `[N,C1] ++ [N,C2] -> [N,C1+C2]`.
    ///
    /// # Panics
    ///
    /// Panics when the row counts differ.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let rows = self.value(a).rows();
        let cols = self.value(a).cols() + self.value(b).cols();
        let mut out = self.alloc(rows, cols);
        self.value(a)
            .hstack_into(self.value(b), &mut out)
            .expect("concat_cols: row count mismatch");
        let rg = self.any_requires_grad(&[a, b]);
        self.push(out, Op::ConcatCols(a, b), rg)
    }

    /// Concatenates several column blocks left to right.
    ///
    /// # Panics
    ///
    /// Panics when `parts` is empty or row counts differ.
    pub fn concat_cols_all(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols_all: needs at least one part");
        let mut acc = parts[0];
        for &p in &parts[1..] {
            acc = self.concat_cols(acc, p);
        }
        acc
    }

    /// Extracts columns `[c0, c1)`: `[N,C] -> [N, c1-c0]`.
    ///
    /// # Panics
    ///
    /// Panics when the bounds are invalid.
    pub fn slice_cols(&mut self, x: Var, c0: usize, c1: usize) -> Var {
        let (rows, cols) = self.value(x).shape();
        assert!(c0 <= c1 && c1 <= cols, "slice_cols: range {c0}..{c1} invalid for {cols} cols");
        let mut out = self.alloc(rows, c1 - c0);
        self.value(x).block_into(0, rows, c0, c1, &mut out);
        let rg = self.node(x).requires_grad;
        self.push(out, Op::SliceCols(x, c0, c1), rg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_gradient;

    fn mat(rows: &[&[f32]]) -> Matrix {
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn gather_rows_forward() {
        let mut t = Tape::new();
        let x = t.leaf(mat(&[&[1.0], &[2.0], &[3.0]]));
        let y = t.gather_rows(x, &[2, 2, 0]);
        assert_eq!(t.value(y).as_slice(), &[3.0, 3.0, 1.0]);
    }

    #[test]
    fn gather_rows_backward_scatter_adds() {
        let mut t = Tape::new();
        let x = t.leaf(mat(&[&[1.0], &[2.0], &[3.0]]));
        let y = t.gather_rows(x, &[2, 2, 0]);
        let loss = t.sum(y);
        t.backward(loss);
        assert_eq!(t.grad(x).unwrap().as_slice(), &[1.0, 0.0, 2.0]);
    }

    #[test]
    fn gather_rows_shared_matches_slice_variant() {
        let idx: Arc<[usize]> = Arc::from(&[2usize, 2, 0][..]);
        let mut t1 = Tape::new();
        let x1 = t1.leaf(mat(&[&[1.0], &[2.0], &[3.0]]));
        let y1 = t1.gather_rows(x1, &idx);
        let l1 = t1.sum(y1);
        t1.backward(l1);

        let mut t2 = Tape::new();
        let x2 = t2.leaf(mat(&[&[1.0], &[2.0], &[3.0]]));
        let y2 = t2.gather_rows_shared(x2, idx);
        let l2 = t2.sum(y2);
        t2.backward(l2);

        assert_eq!(t1.value(y1), t2.value(y2));
        assert_eq!(t1.grad(x1), t2.grad(x2));
    }

    #[test]
    fn group_max_forward_and_backward() {
        let mut t = Tape::new();
        let x = t.leaf(mat(&[&[1.0, 5.0], &[3.0, 2.0], &[0.0, 0.0], &[4.0, 1.0]]));
        let y = t.group_max(x, 2);
        assert_eq!(t.value(y).as_slice(), &[3.0, 5.0, 4.0, 1.0]);
        let loss = t.sum(y);
        t.backward(loss);
        // Gradients flow only to the max entries.
        assert_eq!(t.grad(x).unwrap().as_slice(), &[0.0, 1.0, 1.0, 0.0, 0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn group_mean_matches_numeric() {
        let x0 = mat(&[&[1.0, 5.0], &[3.0, 2.0], &[0.5, -1.0], &[4.0, 1.0]]);
        let report = check_gradient(&x0, |t, x| {
            let y = t.group_mean(x, 2);
            let z = t.square(y);
            t.sum(z)
        });
        assert!(report.max_abs_err < 2e-2, "{report:?}");
    }

    #[test]
    fn group_softmax_rows_sum_to_one() {
        let mut t = Tape::new();
        let x = t.leaf(mat(&[&[1.0], &[2.0], &[3.0], &[-1.0]]));
        let y = t.group_softmax(x, 2);
        let v = t.value(y);
        assert!((v[(0, 0)] + v[(1, 0)] - 1.0).abs() < 1e-6);
        assert!((v[(2, 0)] + v[(3, 0)] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn group_softmax_matches_numeric() {
        let x0 = mat(&[&[1.0, 0.5], &[2.0, -0.5], &[0.2, 0.1], &[-1.0, 1.5]]);
        let report = check_gradient(&x0, |t, x| {
            let s = t.group_softmax(x, 2);
            let c = t.constant(mat(&[&[1.0, -1.0], &[0.5, 2.0], &[2.0, 0.0], &[0.0, 1.0]]));
            let y = t.mul(s, c);
            t.sum(y)
        });
        assert!(report.max_abs_err < 2e-2, "{report:?}");
    }

    #[test]
    fn weighted_gather_forward_and_backward() {
        let mut t = Tape::new();
        let x = t.leaf(mat(&[&[1.0], &[10.0], &[100.0]]));
        // out[0] = 0.5*x0 + 0.5*x1; out[1] = 1.0*x2 + 0.0*x0
        let y = t.weighted_gather(x, &[0, 1, 2, 0], &[0.5, 0.5, 1.0, 0.0], 2);
        assert_eq!(t.value(y).as_slice(), &[5.5, 100.0]);
        let loss = t.sum(y);
        t.backward(loss);
        assert_eq!(t.grad(x).unwrap().as_slice(), &[0.5, 0.5, 1.0]);
    }

    #[test]
    fn weighted_gather_matches_numeric() {
        let x0 = mat(&[&[1.0, 2.0], &[3.0, -1.0], &[0.5, 0.5]]);
        let report = check_gradient(&x0, |t, x| {
            let y = t.weighted_gather(x, &[0, 2, 1, 1], &[0.3, 0.7, 0.9, 0.1], 2);
            let z = t.square(y);
            t.sum(z)
        });
        assert!(report.max_abs_err < 2e-2, "{report:?}");
    }

    #[test]
    fn weighted_gather_shared_matches_slice_variant() {
        let idx: Arc<[usize]> = Arc::from(&[0usize, 1, 2, 0][..]);
        let w: Arc<[f32]> = Arc::from(&[0.5f32, 0.5, 1.0, 0.0][..]);
        let mut t1 = Tape::new();
        let x1 = t1.leaf(mat(&[&[1.0], &[10.0], &[100.0]]));
        let y1 = t1.weighted_gather(x1, &idx, &w, 2);
        let l1 = t1.sum(y1);
        t1.backward(l1);

        let mut t2 = Tape::new();
        let x2 = t2.leaf(mat(&[&[1.0], &[10.0], &[100.0]]));
        let y2 = t2.weighted_gather_shared(x2, idx, w, 2);
        let l2 = t2.sum(y2);
        t2.backward(l2);

        assert_eq!(t1.value(y1), t2.value(y2));
        assert_eq!(t1.grad(x1), t2.grad(x2));
    }

    #[test]
    fn concat_and_slice_round_trip_gradients() {
        let mut t = Tape::new();
        let a = t.leaf(mat(&[&[1.0, 2.0]]));
        let b = t.leaf(mat(&[&[3.0]]));
        let y = t.concat_cols(a, b);
        assert_eq!(t.value(y).as_slice(), &[1.0, 2.0, 3.0]);
        let s = t.slice_cols(y, 1, 3);
        let loss = t.sum(s);
        t.backward(loss);
        assert_eq!(t.grad(a).unwrap().as_slice(), &[0.0, 1.0]);
        assert_eq!(t.grad(b).unwrap().as_slice(), &[1.0]);
    }

    #[test]
    fn concat_cols_all_chains() {
        let mut t = Tape::new();
        let a = t.leaf(mat(&[&[1.0]]));
        let b = t.leaf(mat(&[&[2.0]]));
        let c = t.leaf(mat(&[&[3.0]]));
        let y = t.concat_cols_all(&[a, b, c]);
        assert_eq!(t.value(y).as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn gather_rows_rejects_bad_index() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::zeros(2, 1));
        let _ = t.gather_rows(x, &[2]);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn group_max_rejects_ragged_groups() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::zeros(3, 1));
        let _ = t.group_max(x, 2);
    }
}
