//! Arithmetic, activation and reduction operations on the [`Tape`].
//!
//! Every op writes its output into storage drawn from the tape's buffer
//! pool ([`Tape::reset`] recycles it), so a reused tape allocates nothing
//! in steady state.

use crate::tape::{Op, Tape, Value, Var};
use colper_tensor::{kernels, Matrix};
use std::sync::Arc;

impl Tape {
    /// Elementwise `a + b` (equal shapes).
    ///
    /// # Panics
    ///
    /// Panics when the shapes differ.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let (r, c) = self.value(a).shape();
        let mut out = self.alloc(r, c);
        self.value(a).add_into(self.value(b), &mut out).expect("add: shape mismatch");
        let rg = self.any_requires_grad(&[a, b]);
        self.push(out, Op::Add(a, b), rg)
    }

    /// Elementwise `a - b` (equal shapes).
    ///
    /// # Panics
    ///
    /// Panics when the shapes differ.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let (r, c) = self.value(a).shape();
        let mut out = self.alloc(r, c);
        self.value(a).sub_into(self.value(b), &mut out).expect("sub: shape mismatch");
        let rg = self.any_requires_grad(&[a, b]);
        self.push(out, Op::Sub(a, b), rg)
    }

    /// Elementwise `a * b` (equal shapes).
    ///
    /// # Panics
    ///
    /// Panics when the shapes differ.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let (r, c) = self.value(a).shape();
        let mut out = self.alloc(r, c);
        self.value(a).mul_into(self.value(b), &mut out).expect("mul: shape mismatch");
        let rg = self.any_requires_grad(&[a, b]);
        self.push(out, Op::Mul(a, b), rg)
    }

    /// Row-broadcast `x + row` where `x` is `[N,C]` and `row` is `[1,C]`.
    ///
    /// # Panics
    ///
    /// Panics when `row` is not a single row of matching width.
    pub fn add_row(&mut self, x: Var, row: Var) -> Var {
        self.row_broadcast("add_row", x, row, kernels::add, Op::AddRow(x, row))
    }

    /// Row-broadcast `x - row`.
    ///
    /// # Panics
    ///
    /// Panics when `row` is not a single row of matching width.
    pub fn sub_row(&mut self, x: Var, row: Var) -> Var {
        self.row_broadcast("sub_row", x, row, kernels::sub, Op::SubRow(x, row))
    }

    /// Row-broadcast `x * row`.
    ///
    /// # Panics
    ///
    /// Panics when `row` is not a single row of matching width.
    pub fn mul_row(&mut self, x: Var, row: Var) -> Var {
        self.row_broadcast("mul_row", x, row, kernels::mul, Op::MulRow(x, row))
    }

    /// Row-broadcast `x / row`.
    ///
    /// # Panics
    ///
    /// Panics when `row` is not a single row of matching width.
    pub fn div_row(&mut self, x: Var, row: Var) -> Var {
        self.row_broadcast("div_row", x, row, kernels::div, Op::DivRow(x, row))
    }

    fn row_broadcast(
        &mut self,
        name: &str,
        x: Var,
        row: Var,
        k: fn(&[f32], &[f32], &mut [f32]),
        op: Op,
    ) -> Var {
        let (xr, xc) = self.value(x).shape();
        {
            let rv = self.value(row);
            assert_eq!(rv.rows(), 1, "{name}: broadcast operand must have one row");
            assert_eq!(xc, rv.cols(), "{name}: column mismatch {} vs {}", xc, rv.cols());
        }
        let mut out = self.alloc(xr, xc);
        let xv = self.value(x);
        let rrow = self.value(row).row(0);
        kernels::count_dispatch(xr);
        for r in 0..xr {
            k(xv.row(r), rrow, out.row_mut(r));
        }
        let rg = self.any_requires_grad(&[x, row]);
        self.push(out, op, rg)
    }

    /// `x * s` for a scalar `s`.
    pub fn scale(&mut self, x: Var, s: f32) -> Var {
        let (r, c) = self.value(x).shape();
        let mut out = self.alloc(r, c);
        self.value(x).scale_into(s, &mut out);
        let rg = self.node(x).requires_grad;
        self.push(out, Op::Scale(x, s), rg)
    }

    /// `x + s` for a scalar `s`.
    pub fn add_scalar(&mut self, x: Var, s: f32) -> Var {
        let v = self.unary_map(x, |t| t + s);
        let rg = self.node(x).requires_grad;
        self.push(v, Op::AddScalar(x, s), rg)
    }

    /// `-x`.
    pub fn neg(&mut self, x: Var) -> Var {
        self.scale(x, -1.0)
    }

    /// Matrix product `a[m,k] * b[k,n]`.
    ///
    /// # Panics
    ///
    /// Panics when the inner dimensions disagree.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let m = self.value(a).rows();
        let n = self.value(b).cols();
        let mut out = self.alloc(m, n);
        self.value(a)
            .matmul_into(self.value(b), &mut out)
            .expect("matmul: inner dimension mismatch");
        let rg = self.any_requires_grad(&[a, b]);
        self.push(out, Op::Matmul(a, b), rg)
    }

    /// Rectified linear unit, `max(x, 0)`.
    pub fn relu(&mut self, x: Var) -> Var {
        let v = self.unary_map(x, |t| t.max(0.0));
        let rg = self.node(x).requires_grad;
        self.push(v, Op::Relu(x), rg)
    }

    /// Leaky ReLU with negative slope `alpha`.
    pub fn leaky_relu(&mut self, x: Var, alpha: f32) -> Var {
        let v = self.unary_map(x, |t| if t > 0.0 { t } else { alpha * t });
        let rg = self.node(x).requires_grad;
        self.push(v, Op::LeakyRelu(x, alpha), rg)
    }

    /// Hyperbolic tangent (the reparameterization of Eq. 5 in the paper).
    ///
    /// Routed through the dispatched [`Matrix::tanh_into`] kernel, whose
    /// scalar and SIMD paths are bit-identical.
    pub fn tanh(&mut self, x: Var) -> Var {
        let (r, c) = self.value(x).shape();
        let mut out = self.alloc(r, c);
        self.value(x).tanh_into(&mut out);
        let rg = self.node(x).requires_grad;
        self.push(out, Op::Tanh(x), rg)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, x: Var) -> Var {
        let v = self.unary_map(x, |t| 1.0 / (1.0 + (-t).exp()));
        let rg = self.node(x).requires_grad;
        self.push(v, Op::Sigmoid(x), rg)
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, x: Var) -> Var {
        let v = self.unary_map(x, f32::exp);
        let rg = self.node(x).requires_grad;
        self.push(v, Op::Exp(x), rg)
    }

    /// Elementwise natural logarithm.
    ///
    /// The caller is responsible for keeping inputs positive.
    pub fn ln(&mut self, x: Var) -> Var {
        let v = self.unary_map(x, f32::ln);
        let rg = self.node(x).requires_grad;
        self.push(v, Op::Ln(x), rg)
    }

    /// Elementwise square root.
    pub fn sqrt(&mut self, x: Var) -> Var {
        let v = self.unary_map(x, f32::sqrt);
        let rg = self.node(x).requires_grad;
        self.push(v, Op::Sqrt(x), rg)
    }

    /// Elementwise square.
    pub fn square(&mut self, x: Var) -> Var {
        let v = self.unary_map(x, |t| t * t);
        let rg = self.node(x).requires_grad;
        self.push(v, Op::Square(x), rg)
    }

    /// `map(x, f)` in pooled storage: the shared body of the elementwise
    /// unary ops.
    fn unary_map(&mut self, x: Var, f: impl Fn(f32) -> f32 + Sync) -> Matrix {
        let (r, c) = self.value(x).shape();
        let mut out = self.alloc(r, c);
        self.value(x).map_into(&mut out, f);
        out
    }

    /// Elementwise product with a constant mask (dropout, fixed masks).
    ///
    /// # Panics
    ///
    /// Panics when the mask shape differs from `x`.
    pub fn mul_const(&mut self, x: Var, mask: Matrix) -> Var {
        let (r, c) = self.value(x).shape();
        let mut out = self.alloc(r, c);
        self.value(x).mul_into(&mask, &mut out).expect("mul_const: shape mismatch");
        let rg = self.node(x).requires_grad;
        self.push(out, Op::MulConst(x, Value::Owned(mask)), rg)
    }

    /// [`Tape::mul_const`] with an interned (`Arc`-shared) mask — the mask
    /// is neither copied per step nor recycled on reset.
    ///
    /// # Panics
    ///
    /// Panics when the mask shape differs from `x`.
    pub fn mul_const_shared(&mut self, x: Var, mask: Arc<Matrix>) -> Var {
        let (r, c) = self.value(x).shape();
        let mut out = self.alloc(r, c);
        self.value(x).mul_into(&mask, &mut out).expect("mul_const: shape mismatch");
        let rg = self.node(x).requires_grad;
        self.push(out, Op::MulConst(x, Value::Shared(mask)), rg)
    }

    /// Sum of all elements, producing a `1x1` scalar.
    pub fn sum(&mut self, x: Var) -> Var {
        let s = self.value(x).sum();
        let mut v = self.alloc(1, 1);
        v[(0, 0)] = s;
        let rg = self.node(x).requires_grad;
        self.push(v, Op::Sum(x), rg)
    }

    /// Mean of all elements, producing a `1x1` scalar.
    pub fn mean(&mut self, x: Var) -> Var {
        let s = self.value(x).mean();
        let mut v = self.alloc(1, 1);
        v[(0, 0)] = s;
        let rg = self.node(x).requires_grad;
        self.push(v, Op::Mean(x), rg)
    }

    /// Column-wise sums: `[N,C] -> [1,C]`.
    pub fn sum_rows(&mut self, x: Var) -> Var {
        let c = self.value(x).cols();
        let mut out = self.alloc(1, c);
        self.value(x).sum_rows_into(&mut out);
        let rg = self.node(x).requires_grad;
        self.push(out, Op::SumRows(x), rg)
    }

    /// Column-wise means: `[N,C] -> [1,C]`.
    pub fn mean_rows(&mut self, x: Var) -> Var {
        let c = self.value(x).cols();
        let mut out = self.alloc(1, c);
        self.value(x).mean_rows_into(&mut out);
        let rg = self.node(x).requires_grad;
        self.push(out, Op::MeanRows(x), rg)
    }

    /// Row-wise sums: `[N,C] -> [N,1]`.
    pub fn sum_cols(&mut self, x: Var) -> Var {
        let r = self.value(x).rows();
        let mut out = self.alloc(r, 1);
        self.value(x).sum_cols_into(&mut out);
        let rg = self.node(x).requires_grad;
        self.push(out, Op::SumCols(x), rg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_gradient;
    use colper_tensor::Matrix;

    fn mat(rows: &[&[f32]]) -> Matrix {
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn add_forward_and_backward() {
        let mut t = Tape::new();
        let a = t.leaf(mat(&[&[1.0, 2.0]]));
        let b = t.leaf(mat(&[&[3.0, 4.0]]));
        let y = t.add(a, b);
        assert_eq!(t.value(y).as_slice(), &[4.0, 6.0]);
        let loss = t.sum(y);
        t.backward(loss);
        assert_eq!(t.grad(a).unwrap().as_slice(), &[1.0, 1.0]);
        assert_eq!(t.grad(b).unwrap().as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn mul_backward_matches_numeric() {
        let x0 = mat(&[&[0.5, -1.5], &[2.0, 0.25]]);
        let report = check_gradient(&x0, |t, x| {
            let c = t.constant(mat(&[&[2.0, 3.0], &[-1.0, 0.5]]));
            let y = t.mul(x, c);
            t.sum(y)
        });
        assert!(report.max_abs_err < 1e-2, "{report:?}");
    }

    #[test]
    fn matmul_backward_matches_numeric() {
        let x0 = mat(&[&[0.5, -1.5, 0.2], &[2.0, 0.25, -0.7]]);
        let report = check_gradient(&x0, |t, x| {
            let w = t.constant(mat(&[&[1.0, 0.0], &[0.5, -0.5], &[0.25, 2.0]]));
            let y = t.matmul(x, w);
            let z = t.square(y);
            t.sum(z)
        });
        assert!(report.max_abs_err < 1e-1, "{report:?}");
    }

    #[test]
    fn activation_gradients_match_numeric() {
        let x0 = mat(&[&[0.5, -1.5, 0.2, 2.0]]);
        for op in ["relu", "leaky", "tanh", "sigmoid", "exp", "square"] {
            let report = check_gradient(&x0, |t, x| {
                let y = match op {
                    "relu" => t.relu(x),
                    "leaky" => t.leaky_relu(x, 0.2),
                    "tanh" => t.tanh(x),
                    "sigmoid" => t.sigmoid(x),
                    "exp" => t.exp(x),
                    _ => t.square(x),
                };
                t.sum(y)
            });
            assert!(report.max_abs_err < 2e-2, "{op}: {report:?}");
        }
    }

    #[test]
    fn ln_sqrt_gradients_on_positive_domain() {
        let x0 = mat(&[&[0.5, 1.5, 3.0]]);
        for op in ["ln", "sqrt"] {
            let report = check_gradient(&x0, |t, x| {
                let y = if op == "ln" { t.ln(x) } else { t.sqrt(x) };
                t.sum(y)
            });
            assert!(report.max_abs_err < 2e-2, "{op}: {report:?}");
        }
    }

    #[test]
    fn row_broadcast_ops_match_numeric() {
        let x0 = mat(&[&[0.5, -1.5], &[2.0, 0.25], &[1.0, 1.0]]);
        for op in ["add", "sub", "mul", "div"] {
            let report = check_gradient(&x0, |t, x| {
                let row = t.constant(mat(&[&[2.0, 0.5]]));
                let y = match op {
                    "add" => t.add_row(x, row),
                    "sub" => t.sub_row(x, row),
                    "mul" => t.mul_row(x, row),
                    _ => t.div_row(x, row),
                };
                t.sum(y)
            });
            assert!(report.max_abs_err < 2e-2, "{op}: {report:?}");
        }
    }

    #[test]
    fn row_broadcast_gradient_for_row_operand() {
        // Check the gradient flowing into the broadcast row itself.
        let row0 = mat(&[&[2.0, 0.5]]);
        let report = check_gradient(&row0, |t, row| {
            let x = t.constant(mat(&[&[0.5, -1.5], &[2.0, 0.25]]));
            let y = t.mul_row(x, row);
            let z = t.square(y);
            t.sum(z)
        });
        assert!(report.max_abs_err < 2e-2, "{report:?}");
    }

    #[test]
    fn reductions_match_numeric() {
        let x0 = mat(&[&[0.5, -1.5], &[2.0, 0.25]]);
        for op in ["sum", "mean", "sum_rows", "mean_rows", "sum_cols"] {
            let report = check_gradient(&x0, |t, x| {
                let y = match op {
                    "sum" => t.sum(x),
                    "mean" => t.mean(x),
                    "sum_rows" => t.sum_rows(x),
                    "mean_rows" => t.mean_rows(x),
                    _ => t.sum_cols(x),
                };
                let sq = t.square(y);
                t.sum(sq)
            });
            assert!(report.max_abs_err < 5e-2, "{op}: {report:?}");
        }
    }

    #[test]
    fn mul_const_masks_gradient() {
        let mut t = Tape::new();
        let x = t.leaf(mat(&[&[1.0, 2.0]]));
        let y = t.mul_const(x, mat(&[&[0.0, 2.0]]));
        let loss = t.sum(y);
        t.backward(loss);
        assert_eq!(t.grad(x).unwrap().as_slice(), &[0.0, 2.0]);
    }

    #[test]
    fn mul_const_shared_matches_owned() {
        let mask = mat(&[&[0.0, 2.0]]);
        let mut t1 = Tape::new();
        let x1 = t1.leaf(mat(&[&[1.0, 2.0]]));
        let y1 = t1.mul_const(x1, mask.clone());
        let l1 = t1.sum(y1);
        t1.backward(l1);

        let shared = Arc::new(mask);
        let mut t2 = Tape::new();
        let x2 = t2.leaf(mat(&[&[1.0, 2.0]]));
        let y2 = t2.mul_const_shared(x2, shared);
        let l2 = t2.sum(y2);
        t2.backward(l2);

        assert_eq!(t1.value(y1), t2.value(y2));
        assert_eq!(t1.grad(x1), t2.grad(x2));
    }

    #[test]
    fn neg_is_scale_minus_one() {
        let mut t = Tape::new();
        let x = t.leaf(mat(&[&[3.0]]));
        let y = t.neg(x);
        assert_eq!(t.value(y)[(0, 0)], -3.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_panics_on_shape_mismatch() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::zeros(1, 2));
        let b = t.leaf(Matrix::zeros(2, 1));
        let _ = t.add(a, b);
    }
}
