//! The [`Tape`]: a linear record of primitive operations and its reverse
//! (backward) pass.

use colper_tensor::Matrix;

/// A handle to a value recorded on a [`Tape`].
///
/// `Var` is a cheap copyable index; all state lives on the tape. A `Var`
/// must only be used with the tape that created it — using it with another
/// tape is a logic error that the tape detects by bounds checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

/// The primitive operations the tape can record.
///
/// Each variant stores the operand handles plus whatever forward-pass
/// context the backward pass needs (e.g. argmax indices for grouped max
/// pooling, the saved softmax for cross-entropy).
#[derive(Debug, Clone)]
pub(crate) enum Op {
    /// A differentiable input (weights, adversarial variables).
    Leaf,
    /// A non-differentiable input (coordinates, masks, labels as floats).
    Constant,
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    /// `[N,C] + [1,C]` row broadcast (bias add).
    AddRow(Var, Var),
    /// `[N,C] - [1,C]` row broadcast.
    SubRow(Var, Var),
    /// `[N,C] * [1,C]` row broadcast.
    MulRow(Var, Var),
    /// `[N,C] / [1,C]` row broadcast.
    DivRow(Var, Var),
    Scale(Var, f32),
    // The scalar is only needed in the forward pass, but is kept for
    // debug output.
    AddScalar(Var, #[allow(dead_code)] f32),
    Matmul(Var, Var),
    Relu(Var),
    LeakyRelu(Var, f32),
    Tanh(Var),
    Sigmoid(Var),
    Exp(Var),
    Ln(Var),
    Sqrt(Var),
    Square(Var),
    /// Elementwise product with a constant matrix (dropout masks etc.).
    MulConst(Var, Matrix),
    Sum(Var),
    Mean(Var),
    SumRows(Var),
    MeanRows(Var),
    SumCols(Var),
    /// Row gather: `out[i] = x[idx[i]]`.
    GatherRows(Var, Vec<usize>),
    /// Max over consecutive groups of `k` rows; saves per-output-element
    /// source rows for the backward scatter.
    GroupMax {
        x: Var,
        argmax: Vec<usize>,
    },
    /// Mean over consecutive groups of `k` rows.
    GroupMean(Var, usize),
    /// Softmax over each consecutive group of `k` rows, per column; saves
    /// the softmax output.
    GroupSoftmax {
        x: Var,
        k: usize,
        softmax: Matrix,
    },
    /// Inverse-distance-weighted interpolation:
    /// `out[i] = sum_j w[i*k+j] * x[idx[i*k+j]]`.
    WeightedGather {
        x: Var,
        idx: Vec<usize>,
        w: Vec<f32>,
        k: usize,
    },
    ConcatCols(Var, Var),
    SliceCols(Var, usize, usize),
    /// Fused batch normalization (training mode): saves normalized
    /// activations and the inverse standard deviation.
    BatchNorm {
        x: Var,
        gamma: Var,
        beta: Var,
        xhat: Matrix,
        inv_std: Matrix,
    },
    /// Fused softmax + mean cross-entropy; saves the softmax.
    SoftmaxCrossEntropy {
        logits: Var,
        labels: Vec<usize>,
        softmax: Matrix,
    },
    /// The paper's CW-style hinge (Eq. 7 targeted / Eq. 8 non-targeted).
    /// Saves, for every active (hinge > 0) row, the logit index that
    /// receives +1 and the one that receives -1.
    CwHinge {
        logits: Var,
        active: Vec<(usize, usize, usize)>, // (row, plus_col, minus_col)
    },
    /// The paper's smoothness penalty (Eq. 6) over a fixed neighbor graph,
    /// differentiable in the color block only.
    Smoothness {
        colors: Var,
        coords: Matrix,
        neighbors: Vec<usize>,
        k: usize,
    },
}

#[derive(Debug)]
pub(crate) struct Node {
    pub value: Matrix,
    pub op: Op,
    pub requires_grad: bool,
}

/// A tape recording a computation graph over [`Matrix`] values.
///
/// Build values with [`Tape::leaf`] / [`Tape::constant`], combine them with
/// the op methods (see the `ops_*` modules), call [`Tape::backward`] on a
/// scalar output, then read gradients with [`Tape::grad`].
///
/// Tapes are single-use per forward/backward cycle: re-running a model
/// means building a fresh tape, which keeps lifetimes trivial and matches
/// how the attack loop re-evaluates the network every iteration.
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
    grads: Vec<Option<Matrix>>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty tape with room for `capacity` nodes.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { nodes: Vec::with_capacity(capacity), grads: Vec::new() }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Records a differentiable leaf (a gradient will be available after
    /// [`Tape::backward`]).
    pub fn leaf(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf, true)
    }

    /// Records a constant (no gradient is tracked through it).
    pub fn constant(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Constant, false)
    }

    /// Records a scalar constant as a `1x1` matrix.
    pub fn scalar(&mut self, value: f32) -> Var {
        self.constant(Matrix::filled(1, 1, value))
    }

    /// The forward value of `v`.
    ///
    /// # Panics
    ///
    /// Panics when `v` does not belong to this tape.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.node(v).value
    }

    /// The gradient of the last [`Tape::backward`] output with respect to
    /// `v`, or `None` when `v` is a constant / received no gradient.
    ///
    /// # Panics
    ///
    /// Panics when `v` does not belong to this tape.
    pub fn grad(&self, v: Var) -> Option<&Matrix> {
        assert!(v.0 < self.nodes.len(), "Var {} does not belong to this tape", v.0);
        self.grads.get(v.0).and_then(|g| g.as_ref())
    }

    pub(crate) fn node(&self, v: Var) -> &Node {
        assert!(v.0 < self.nodes.len(), "Var {} does not belong to this tape", v.0);
        &self.nodes[v.0]
    }

    pub(crate) fn push(&mut self, value: Matrix, op: Op, requires_grad: bool) -> Var {
        debug_assert!(
            value.all_finite() || matches!(op, Op::Leaf | Op::Constant),
            "non-finite value produced by {op:?}"
        );
        self.nodes.push(Node { value, op, requires_grad });
        Var(self.nodes.len() - 1)
    }

    /// Convenience: whether any of `vars` requires a gradient.
    pub(crate) fn any_requires_grad(&self, vars: &[Var]) -> bool {
        vars.iter().any(|&v| self.node(v).requires_grad)
    }

    /// Runs the reverse pass from the scalar output `out`, accumulating
    /// gradients for every node that `out` (transitively) depends on.
    ///
    /// Calling `backward` again replaces the previous gradients.
    ///
    /// # Panics
    ///
    /// Panics when `out` is not a `1x1` scalar or does not require grad.
    pub fn backward(&mut self, out: Var) {
        let n = self.nodes.len();
        assert_eq!(self.node(out).value.shape(), (1, 1), "backward requires a scalar output");
        assert!(self.node(out).requires_grad, "backward output does not depend on any leaf");
        self.grads = vec![None; n];
        self.grads[out.0] = Some(Matrix::ones(1, 1));

        for i in (0..n).rev() {
            if !self.nodes[i].requires_grad {
                continue;
            }
            let Some(gy) = self.grads[i].take() else { continue };
            self.step_backward(i, &gy);
            self.grads[i] = Some(gy);
        }
    }

    fn accumulate(&mut self, v: Var, g: Matrix) {
        if !self.nodes[v.0].requires_grad {
            return;
        }
        match &mut self.grads[v.0] {
            Some(acc) => acc.add_assign(&g),
            slot @ None => *slot = Some(g),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn step_backward(&mut self, i: usize, gy: &Matrix) {
        // Clone the op descriptor (cheap except for saved matrices, which
        // are only cloned when the op actually fires in the backward pass).
        let op = self.nodes[i].op.clone();
        match op {
            Op::Leaf | Op::Constant => {}
            Op::Add(a, b) => {
                self.accumulate(a, gy.clone());
                self.accumulate(b, gy.clone());
            }
            Op::Sub(a, b) => {
                self.accumulate(a, gy.clone());
                self.accumulate(b, gy.scale(-1.0));
            }
            Op::Mul(a, b) => {
                let ga = gy.mul(&self.nodes[b.0].value).expect("shape");
                let gb = gy.mul(&self.nodes[a.0].value).expect("shape");
                self.accumulate(a, ga);
                self.accumulate(b, gb);
            }
            Op::AddRow(x, r) => {
                self.accumulate(x, gy.clone());
                self.accumulate(r, gy.sum_rows());
            }
            Op::SubRow(x, r) => {
                self.accumulate(x, gy.clone());
                self.accumulate(r, gy.sum_rows().scale(-1.0));
            }
            Op::MulRow(x, r) => {
                let rv = self.nodes[r.0].value.clone();
                let xv = self.nodes[x.0].value.clone();
                let gx = broadcast_mul(gy, &rv);
                let gr = gy.mul(&xv).expect("shape").sum_rows();
                self.accumulate(x, gx);
                self.accumulate(r, gr);
            }
            Op::DivRow(x, r) => {
                let rv = self.nodes[r.0].value.clone();
                let xv = self.nodes[x.0].value.clone();
                let inv = rv.map(|v| 1.0 / v);
                let gx = broadcast_mul(gy, &inv);
                // d/dr (x/r) = -x / r^2
                let inv2 = rv.map(|v| -1.0 / (v * v));
                let gr = broadcast_mul(&gy.mul(&xv).expect("shape"), &inv2).sum_rows();
                self.accumulate(x, gx);
                self.accumulate(r, gr);
            }
            Op::Scale(x, s) => self.accumulate(x, gy.scale(s)),
            Op::AddScalar(x, _) => self.accumulate(x, gy.clone()),
            Op::Matmul(a, b) => {
                let bv = &self.nodes[b.0].value;
                let av = &self.nodes[a.0].value;
                let ga = gy.matmul_nt(bv).expect("shape");
                let gb = av.matmul_tn(gy).expect("shape");
                self.accumulate(a, ga);
                self.accumulate(b, gb);
            }
            Op::Relu(x) => {
                let g = gy
                    .mul(&self.nodes[x.0].value.map(|v| if v > 0.0 { 1.0 } else { 0.0 }))
                    .expect("shape");
                self.accumulate(x, g);
            }
            Op::LeakyRelu(x, alpha) => {
                let g = gy
                    .mul(&self.nodes[x.0].value.map(|v| if v > 0.0 { 1.0 } else { alpha }))
                    .expect("shape");
                self.accumulate(x, g);
            }
            Op::Tanh(x) => {
                // y = tanh(x); dy/dx = 1 - y^2 (read from the output node).
                let y = &self.nodes[i].value;
                let g = gy.mul(&y.map(|t| 1.0 - t * t)).expect("shape");
                self.accumulate(x, g);
            }
            Op::Sigmoid(x) => {
                let y = &self.nodes[i].value;
                let g = gy.mul(&y.map(|s| s * (1.0 - s))).expect("shape");
                self.accumulate(x, g);
            }
            Op::Exp(x) => {
                let y = self.nodes[i].value.clone();
                self.accumulate(x, gy.mul(&y).expect("shape"));
            }
            Op::Ln(x) => {
                let g = gy.mul(&self.nodes[x.0].value.map(|v| 1.0 / v)).expect("shape");
                self.accumulate(x, g);
            }
            Op::Sqrt(x) => {
                let y = &self.nodes[i].value;
                let g = gy.mul(&y.map(|s| 0.5 / s.max(1e-12))).expect("shape");
                self.accumulate(x, g);
            }
            Op::Square(x) => {
                let g = gy.mul(&self.nodes[x.0].value.scale(2.0)).expect("shape");
                self.accumulate(x, g);
            }
            Op::MulConst(x, m) => {
                self.accumulate(x, gy.mul(&m).expect("shape"));
            }
            Op::Sum(x) => {
                let (r, c) = self.nodes[x.0].value.shape();
                self.accumulate(x, Matrix::filled(r, c, gy[(0, 0)]));
            }
            Op::Mean(x) => {
                let (r, c) = self.nodes[x.0].value.shape();
                let denom = (r * c).max(1) as f32;
                self.accumulate(x, Matrix::filled(r, c, gy[(0, 0)] / denom));
            }
            Op::SumRows(x) => {
                let (r, c) = self.nodes[x.0].value.shape();
                let g = Matrix::from_fn(r, c, |_, cc| gy[(0, cc)]);
                self.accumulate(x, g);
            }
            Op::MeanRows(x) => {
                let (r, c) = self.nodes[x.0].value.shape();
                let inv = 1.0 / r.max(1) as f32;
                let g = Matrix::from_fn(r, c, |_, cc| gy[(0, cc)] * inv);
                self.accumulate(x, g);
            }
            Op::SumCols(x) => {
                let (r, c) = self.nodes[x.0].value.shape();
                let g = Matrix::from_fn(r, c, |rr, _| gy[(rr, 0)]);
                self.accumulate(x, g);
            }
            Op::GatherRows(x, idx) => {
                let (r, c) = self.nodes[x.0].value.shape();
                let mut g = Matrix::zeros(r, c);
                for (dst, &src) in idx.iter().enumerate() {
                    let row = gy.row(dst);
                    for (acc, &v) in g.row_mut(src).iter_mut().zip(row) {
                        *acc += v;
                    }
                }
                self.accumulate(x, g);
            }
            Op::GroupMax { x, argmax } => {
                let (r, c) = self.nodes[x.0].value.shape();
                let mut g = Matrix::zeros(r, c);
                for out_row in 0..gy.rows() {
                    for col in 0..c {
                        let src = argmax[out_row * c + col];
                        g[(src, col)] += gy[(out_row, col)];
                    }
                }
                self.accumulate(x, g);
            }
            Op::GroupMean(x, k) => {
                let (r, c) = self.nodes[x.0].value.shape();
                let inv = 1.0 / k as f32;
                let g = Matrix::from_fn(r, c, |rr, cc| gy[(rr / k, cc)] * inv);
                self.accumulate(x, g);
            }
            Op::GroupSoftmax { x, k, softmax } => {
                // For each group g and column c:
                // dx = s * (dy - sum_group(dy * s)).
                let (r, c) = softmax.shape();
                let groups = r / k;
                let mut g = Matrix::zeros(r, c);
                for gi in 0..groups {
                    for cc in 0..c {
                        let mut dot = 0.0f32;
                        for j in 0..k {
                            let rr = gi * k + j;
                            dot += gy[(rr, cc)] * softmax[(rr, cc)];
                        }
                        for j in 0..k {
                            let rr = gi * k + j;
                            g[(rr, cc)] = softmax[(rr, cc)] * (gy[(rr, cc)] - dot);
                        }
                    }
                }
                self.accumulate(x, g);
            }
            Op::WeightedGather { x, idx, w, k } => {
                let (r, c) = self.nodes[x.0].value.shape();
                let mut g = Matrix::zeros(r, c);
                for out_row in 0..gy.rows() {
                    for j in 0..k {
                        let flat = out_row * k + j;
                        let src = idx[flat];
                        let weight = w[flat];
                        let row = gy.row(out_row);
                        for (acc, &v) in g.row_mut(src).iter_mut().zip(row) {
                            *acc += weight * v;
                        }
                    }
                }
                self.accumulate(x, g);
            }
            Op::ConcatCols(a, b) => {
                let ca = self.nodes[a.0].value.cols();
                let cb = self.nodes[b.0].value.cols();
                let ga = gy.block(0, gy.rows(), 0, ca);
                let gb = gy.block(0, gy.rows(), ca, ca + cb);
                self.accumulate(a, ga);
                self.accumulate(b, gb);
            }
            Op::SliceCols(x, c0, _c1) => {
                let (r, c) = self.nodes[x.0].value.shape();
                let mut g = Matrix::zeros(r, c);
                for rr in 0..gy.rows() {
                    for cc in 0..gy.cols() {
                        g[(rr, c0 + cc)] = gy[(rr, cc)];
                    }
                }
                self.accumulate(x, g);
            }
            Op::BatchNorm { x, gamma, beta, xhat, inv_std } => {
                let n = xhat.rows() as f32;
                let gammav = self.nodes[gamma.0].value.clone();
                // gbeta = sum_rows(gy); ggamma = sum_rows(gy * xhat)
                let gbeta = gy.sum_rows();
                let ggamma = gy.mul(&xhat).expect("shape").sum_rows();
                // gxhat = gy * gamma (row broadcast)
                let gxhat = broadcast_mul(gy, &gammav);
                // gx = inv_std/N * (N*gxhat - sum_rows(gxhat) - xhat * sum_rows(gxhat*xhat))
                let s1 = gxhat.sum_rows();
                let s2 = gxhat.mul(&xhat).expect("shape").sum_rows();
                let mut gx = Matrix::zeros(xhat.rows(), xhat.cols());
                for rr in 0..xhat.rows() {
                    for cc in 0..xhat.cols() {
                        let v = inv_std[(0, cc)] / n
                            * (n * gxhat[(rr, cc)] - s1[(0, cc)] - xhat[(rr, cc)] * s2[(0, cc)]);
                        gx[(rr, cc)] = v;
                    }
                }
                self.accumulate(x, gx);
                self.accumulate(gamma, ggamma);
                self.accumulate(beta, gbeta);
            }
            Op::SoftmaxCrossEntropy { logits, labels, softmax } => {
                let n = labels.len().max(1) as f32;
                let scale = gy[(0, 0)] / n;
                let mut g = softmax.clone();
                for (r, &y) in labels.iter().enumerate() {
                    g[(r, y)] -= 1.0;
                }
                self.accumulate(logits, g.scale(scale));
            }
            Op::CwHinge { logits, active } => {
                let (r, c) = self.nodes[logits.0].value.shape();
                let s = gy[(0, 0)];
                let mut g = Matrix::zeros(r, c);
                for &(row, plus, minus) in &active {
                    g[(row, plus)] += s;
                    g[(row, minus)] -= s;
                }
                self.accumulate(logits, g);
            }
            Op::Smoothness { colors, coords, neighbors, k } => {
                let cv = self.nodes[colors.0].value.clone();
                let n = cv.rows();
                let cdim = cv.cols();
                let s = gy[(0, 0)];
                let mut g = Matrix::zeros(n, cdim);
                for i_pt in 0..n {
                    for j in 0..k {
                        let nb = neighbors[i_pt * k + j];
                        let mut d2 = 0.0f32;
                        for d in 0..coords.cols() {
                            let dd = coords[(i_pt, d)] - coords[(nb, d)];
                            d2 += dd * dd;
                        }
                        for d in 0..cdim {
                            let dd = cv[(i_pt, d)] - cv[(nb, d)];
                            d2 += dd * dd;
                        }
                        let dist = d2.sqrt().max(1e-8);
                        for d in 0..cdim {
                            let dd = (cv[(i_pt, d)] - cv[(nb, d)]) / dist;
                            g[(i_pt, d)] += s * dd;
                            g[(nb, d)] -= s * dd;
                        }
                    }
                }
                self.accumulate(colors, g);
            }
        }
    }
}

/// Multiplies `[N,C]` by a `[1,C]` row, broadcasting over rows.
pub(crate) fn broadcast_mul(x: &Matrix, row: &Matrix) -> Matrix {
    debug_assert_eq!(row.rows(), 1);
    debug_assert_eq!(x.cols(), row.cols());
    Matrix::from_fn(x.rows(), x.cols(), |r, c| x[(r, c)] * row[(0, c)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_and_constant_flags() {
        let mut t = Tape::new();
        let l = t.leaf(Matrix::ones(1, 1));
        let c = t.constant(Matrix::ones(1, 1));
        assert!(t.node(l).requires_grad);
        assert!(!t.node(c).requires_grad);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn backward_on_simple_chain() {
        // loss = sum(3 * x) -> dloss/dx = 3
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_rows(&[&[1.0, 2.0]]).unwrap());
        let y = t.scale(x, 3.0);
        let loss = t.sum(y);
        t.backward(loss);
        assert_eq!(t.grad(x).unwrap().as_slice(), &[3.0, 3.0]);
    }

    #[test]
    fn constants_receive_no_gradient() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::ones(1, 2));
        let c = t.constant(Matrix::ones(1, 2));
        let y = t.add(x, c);
        let loss = t.sum(y);
        t.backward(loss);
        assert!(t.grad(c).is_none());
        assert!(t.grad(x).is_some());
    }

    #[test]
    fn gradient_accumulates_on_reuse() {
        // loss = sum(x + x) -> dloss/dx = 2
        let mut t = Tape::new();
        let x = t.leaf(Matrix::ones(1, 2));
        let y = t.add(x, x);
        let loss = t.sum(y);
        t.backward(loss);
        assert_eq!(t.grad(x).unwrap().as_slice(), &[2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "scalar")]
    fn backward_rejects_non_scalar() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::ones(2, 2));
        let y = t.scale(x, 1.0);
        t.backward(y);
    }

    #[test]
    fn second_backward_replaces_gradients() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::ones(1, 1));
        let y = t.scale(x, 2.0);
        let loss = t.sum(y);
        t.backward(loss);
        t.backward(loss);
        assert_eq!(t.grad(x).unwrap()[(0, 0)], 2.0);
    }
}
