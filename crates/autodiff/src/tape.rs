//! The [`Tape`]: a linear record of primitive operations and its reverse
//! (backward) pass.

use colper_tensor::{kernels, BufferPool, Matrix};
use std::collections::VecDeque;
use std::ops::Deref;
use std::sync::Arc;

/// A handle to a value recorded on a [`Tape`].
///
/// `Var` is a cheap copyable index; all state lives on the tape. A `Var`
/// must only be used with the tape that created it — using it with another
/// tape is a logic error that the tape detects by bounds checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

/// A matrix either owned by the tape (recycled into the buffer pool on
/// [`Tape::reset`]) or shared across tapes/steps via `Arc` (interned
/// constants: coordinates, masks, dropout-off masks).
#[derive(Debug)]
pub(crate) enum Value {
    Owned(Matrix),
    Shared(Arc<Matrix>),
}

impl Value {
    /// Mutable access to an owned value — the schedule replay writes node
    /// outputs in place.
    ///
    /// # Panics
    ///
    /// Panics on a shared value; the schedule compiler verifies every
    /// dynamic node owns its storage before a schedule is built.
    pub(crate) fn owned_mut(&mut self) -> &mut Matrix {
        match self {
            Value::Owned(m) => m,
            Value::Shared(_) => panic!("owned_mut on a shared tape value"),
        }
    }
}

impl Deref for Value {
    type Target = Matrix;
    fn deref(&self) -> &Matrix {
        match self {
            Value::Owned(m) => m,
            Value::Shared(m) => m,
        }
    }
}

/// An index payload either owned by the tape (recycled on reset) or shared
/// via `Arc` (plan-interned gather indices).
#[derive(Debug)]
pub(crate) enum Ix {
    Owned(Vec<usize>),
    Shared(Arc<[usize]>),
}

impl Deref for Ix {
    type Target = [usize];
    fn deref(&self) -> &[usize] {
        match self {
            Ix::Owned(v) => v,
            Ix::Shared(v) => v,
        }
    }
}

/// A weight payload either owned by the tape or shared via `Arc`.
#[derive(Debug)]
pub(crate) enum Wts {
    Owned(Vec<f32>),
    Shared(Arc<[f32]>),
}

impl Deref for Wts {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        match self {
            Wts::Owned(v) => v,
            Wts::Shared(v) => v,
        }
    }
}

/// The primitive operations the tape can record.
///
/// Each variant stores the operand handles plus whatever forward-pass
/// context the backward pass needs (e.g. argmax indices for grouped max
/// pooling, the saved softmax for cross-entropy).
#[derive(Debug)]
pub(crate) enum Op {
    /// A differentiable input (weights, adversarial variables).
    Leaf,
    /// A non-differentiable input (coordinates, masks, labels as floats).
    Constant,
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    /// `[N,C] + [1,C]` row broadcast (bias add).
    AddRow(Var, Var),
    /// `[N,C] - [1,C]` row broadcast.
    SubRow(Var, Var),
    /// `[N,C] * [1,C]` row broadcast.
    MulRow(Var, Var),
    /// `[N,C] / [1,C]` row broadcast.
    DivRow(Var, Var),
    Scale(Var, f32),
    // The scalar is only needed in the forward pass (the schedule replay
    // re-applies it); the backward pass ignores it.
    AddScalar(Var, f32),
    Matmul(Var, Var),
    Relu(Var),
    LeakyRelu(Var, f32),
    Tanh(Var),
    Sigmoid(Var),
    Exp(Var),
    Ln(Var),
    Sqrt(Var),
    Square(Var),
    /// Elementwise product with a constant matrix (dropout masks etc.).
    MulConst(Var, Value),
    Sum(Var),
    Mean(Var),
    SumRows(Var),
    MeanRows(Var),
    SumCols(Var),
    /// Row gather: `out[i] = x[idx[i]]`.
    GatherRows(Var, Ix),
    /// Max over consecutive groups of `k` rows; saves per-output-element
    /// source rows for the backward scatter.
    GroupMax {
        x: Var,
        argmax: Vec<usize>,
    },
    /// Mean over consecutive groups of `k` rows.
    GroupMean(Var, usize),
    /// Softmax over each consecutive group of `k` rows, per column; saves
    /// the softmax output.
    GroupSoftmax {
        x: Var,
        k: usize,
        softmax: Matrix,
    },
    /// Inverse-distance-weighted interpolation:
    /// `out[i] = sum_j w[i*k+j] * x[idx[i*k+j]]`.
    WeightedGather {
        x: Var,
        idx: Ix,
        w: Wts,
        k: usize,
    },
    ConcatCols(Var, Var),
    SliceCols(Var, usize, usize),
    /// Fused batch normalization (training mode): saves normalized
    /// activations and the inverse standard deviation.
    BatchNorm {
        x: Var,
        gamma: Var,
        beta: Var,
        xhat: Matrix,
        inv_std: Matrix,
    },
    /// Fused softmax + mean cross-entropy; saves the softmax.
    SoftmaxCrossEntropy {
        logits: Var,
        labels: Vec<usize>,
        softmax: Matrix,
    },
    /// The paper's CW-style hinge (Eq. 7 targeted / Eq. 8 non-targeted).
    /// Saves, for every active (hinge > 0) row, the logit index that
    /// receives +1 and the one that receives -1.
    CwHinge {
        logits: Var,
        active: Vec<(usize, usize, usize)>, // (row, plus_col, minus_col)
    },
    /// The paper's smoothness penalty (Eq. 6) over a fixed neighbor graph,
    /// differentiable in the color block only.
    Smoothness {
        colors: Var,
        coords: Value,
        neighbors: Ix,
        k: usize,
    },
}

impl Op {
    /// Calls `f` for every operand `Var` of this op (forward-pass inputs
    /// only, not saved context). Drives the backward reachability pass and
    /// the schedule compiler's dynamic-set marking.
    pub(crate) fn for_each_operand(&self, mut f: impl FnMut(Var)) {
        match self {
            Op::Leaf | Op::Constant => {}
            Op::Add(a, b)
            | Op::Sub(a, b)
            | Op::Mul(a, b)
            | Op::AddRow(a, b)
            | Op::SubRow(a, b)
            | Op::MulRow(a, b)
            | Op::DivRow(a, b)
            | Op::Matmul(a, b)
            | Op::ConcatCols(a, b) => {
                f(*a);
                f(*b);
            }
            Op::Scale(x, _)
            | Op::AddScalar(x, _)
            | Op::LeakyRelu(x, _)
            | Op::Relu(x)
            | Op::Tanh(x)
            | Op::Sigmoid(x)
            | Op::Exp(x)
            | Op::Ln(x)
            | Op::Sqrt(x)
            | Op::Square(x)
            | Op::Sum(x)
            | Op::Mean(x)
            | Op::SumRows(x)
            | Op::MeanRows(x)
            | Op::SumCols(x)
            | Op::GroupMean(x, _)
            | Op::SliceCols(x, _, _)
            | Op::MulConst(x, _)
            | Op::GatherRows(x, _)
            | Op::GroupMax { x, .. }
            | Op::GroupSoftmax { x, .. }
            | Op::WeightedGather { x, .. } => f(*x),
            Op::BatchNorm { x, gamma, beta, .. } => {
                f(*x);
                f(*gamma);
                f(*beta);
            }
            Op::SoftmaxCrossEntropy { logits, .. } | Op::CwHinge { logits, .. } => f(*logits),
            Op::Smoothness { colors, .. } => f(*colors),
        }
    }
}

#[derive(Debug)]
pub(crate) struct Node {
    pub value: Value,
    pub op: Op,
    pub requires_grad: bool,
}

/// A tape recording a computation graph over [`Matrix`] values.
///
/// Build values with [`Tape::leaf`] / [`Tape::constant`], combine them with
/// the op methods (see the `ops_*` modules), call [`Tape::backward`] on a
/// scalar output, then read gradients with [`Tape::grad`].
///
/// Tapes are reusable: [`Tape::reset`] clears the recorded graph but keeps
/// every value/gradient buffer in an internal [`BufferPool`], so a loop that
/// rebuilds the same graph shape every iteration (the attack's steady
/// state) performs no heap allocation for tape storage. Constants that are
/// identical across iterations can additionally be interned once and shared
/// via [`Tape::constant_shared`] instead of being copied per step.
#[derive(Debug, Default)]
pub struct Tape {
    pub(crate) nodes: Vec<Node>,
    pub(crate) grads: Vec<Option<Matrix>>,
    pub(crate) pool: BufferPool,
    idx_pool: VecDeque<Vec<usize>>,
    w_pool: VecDeque<Vec<f32>>,
    tri_pool: VecDeque<Vec<(usize, usize, usize)>>,
    live: Vec<bool>,
    pub(crate) visited: usize,
    /// Scratch used by the schedule replay's batched-matmul step: member
    /// node values are moved here, overwritten by one strided batched GEMM,
    /// and moved back. Holds empty placeholder matrices between replays;
    /// the `Vec` keeps its capacity, so steady-state replays do not
    /// allocate for it.
    pub(crate) batch_vals: Vec<Matrix>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty tape with room for `capacity` nodes.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { nodes: Vec::with_capacity(capacity), ..Self::default() }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Clears the recorded graph while retaining all storage.
    ///
    /// Every owned value, gradient and op payload (index vectors, saved
    /// softmax matrices, …) is shelved in the tape's pools; the next
    /// forward pass refills the recycled buffers in place. Shared (`Arc`)
    /// payloads are dropped without touching the pools.
    pub fn reset(&mut self) {
        colper_obs::counters::TAPE_RESETS.incr();
        for node in self.nodes.drain(..) {
            if let Value::Owned(m) = node.value {
                self.pool.recycle(m);
            }
            match node.op {
                Op::MulConst(_, Value::Owned(m)) => self.pool.recycle(m),
                Op::GatherRows(_, Ix::Owned(idx)) => self.idx_pool.push_back(idx),
                Op::GroupMax { argmax, .. } => self.idx_pool.push_back(argmax),
                Op::GroupSoftmax { softmax, .. } => self.pool.recycle(softmax),
                Op::WeightedGather { idx, w, .. } => {
                    if let Ix::Owned(idx) = idx {
                        self.idx_pool.push_back(idx);
                    }
                    if let Wts::Owned(w) = w {
                        self.w_pool.push_back(w);
                    }
                }
                Op::BatchNorm { xhat, inv_std, .. } => {
                    self.pool.recycle(xhat);
                    self.pool.recycle(inv_std);
                }
                Op::SoftmaxCrossEntropy { labels, softmax, .. } => {
                    self.idx_pool.push_back(labels);
                    self.pool.recycle(softmax);
                }
                Op::CwHinge { active, .. } => self.tri_pool.push_back(active),
                Op::Smoothness { coords, neighbors, .. } => {
                    if let Value::Owned(m) = coords {
                        self.pool.recycle(m);
                    }
                    if let Ix::Owned(n) = neighbors {
                        self.idx_pool.push_back(n);
                    }
                }
                _ => {}
            }
        }
        for g in self.grads.drain(..).flatten() {
            self.pool.recycle(g);
        }
        self.live.clear();
        self.visited = 0;
    }

    /// `(hits, misses)` of the internal buffer pool. A reused tape whose
    /// `misses` count stops growing performs no heap allocation for value
    /// or gradient storage.
    pub fn pool_stats(&self) -> (u64, u64) {
        self.pool.stats()
    }

    /// Number of nodes the last [`Tape::backward`] actually processed
    /// (nodes reachable from the loss root that received a gradient).
    pub fn backward_visited(&self) -> usize {
        self.visited
    }

    /// Records a differentiable leaf (a gradient will be available after
    /// [`Tape::backward`]).
    pub fn leaf(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf, true)
    }

    /// Records a differentiable leaf by copying `value` into recycled
    /// storage (the allocation-free variant of [`Tape::leaf`]).
    pub fn leaf_from(&mut self, value: &Matrix) -> Var {
        let m = self.pool.copy_of(value);
        self.push(m, Op::Leaf, true)
    }

    /// Records a constant (no gradient is tracked through it).
    pub fn constant(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Constant, false)
    }

    /// Records a constant by copying `value` into recycled storage.
    pub fn constant_from(&mut self, value: &Matrix) -> Var {
        let m = self.pool.copy_of(value);
        self.push(m, Op::Constant, false)
    }

    /// Records an interned constant shared via `Arc` — no copy at all.
    /// The backing matrix can be shared across steps (and tapes), which is
    /// how attack plans intern coordinates, masks and frozen channels.
    pub fn constant_shared(&mut self, value: Arc<Matrix>) -> Var {
        self.push_value(Value::Shared(value), Op::Constant, false)
    }

    /// Records a constant computed elementwise from `src` into recycled
    /// storage (e.g. the inverse-std row of an eval-mode batch norm).
    pub fn constant_map(&mut self, src: &Matrix, f: impl Fn(f32) -> f32 + Sync) -> Var {
        let mut m = self.pool.zeros_like(src);
        src.map_into(&mut m, f);
        self.push(m, Op::Constant, false)
    }

    /// Records a scalar constant as a `1x1` matrix.
    pub fn scalar(&mut self, value: f32) -> Var {
        self.constant(Matrix::filled(1, 1, value))
    }

    /// The forward value of `v`.
    ///
    /// # Panics
    ///
    /// Panics when `v` does not belong to this tape.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.node(v).value
    }

    /// The gradient of the last [`Tape::backward`] output with respect to
    /// `v`, or `None` when `v` is a constant / received no gradient.
    ///
    /// # Panics
    ///
    /// Panics when `v` does not belong to this tape.
    pub fn grad(&self, v: Var) -> Option<&Matrix> {
        assert!(v.0 < self.nodes.len(), "Var {} does not belong to this tape", v.0);
        self.grads.get(v.0).and_then(|g| g.as_ref())
    }

    pub(crate) fn node(&self, v: Var) -> &Node {
        assert!(v.0 < self.nodes.len(), "Var {} does not belong to this tape", v.0);
        &self.nodes[v.0]
    }

    /// A zero-filled matrix from the tape's buffer pool. Forward ops write
    /// node values into these so that [`Tape::reset`] can recycle them.
    pub(crate) fn alloc(&mut self, rows: usize, cols: usize) -> Matrix {
        self.pool.zeros(rows, cols)
    }

    /// A pooled copy of `src`.
    pub(crate) fn alloc_copy(&mut self, src: &Matrix) -> Matrix {
        self.pool.copy_of(src)
    }

    /// An empty (cleared) index vector from the index pool.
    pub(crate) fn take_idx(&mut self) -> Vec<usize> {
        let mut v = self.idx_pool.pop_front().unwrap_or_default();
        v.clear();
        v
    }

    /// A pooled copy of an index slice.
    pub(crate) fn pooled_idx_copy(&mut self, src: &[usize]) -> Vec<usize> {
        let mut v = self.take_idx();
        v.extend_from_slice(src);
        v
    }

    /// An empty (cleared) weight vector from the weight pool.
    pub(crate) fn take_w(&mut self) -> Vec<f32> {
        let mut v = self.w_pool.pop_front().unwrap_or_default();
        v.clear();
        v
    }

    /// A pooled copy of a weight slice.
    pub(crate) fn pooled_w_copy(&mut self, src: &[f32]) -> Vec<f32> {
        let mut v = self.take_w();
        v.extend_from_slice(src);
        v
    }

    /// An empty (cleared) hinge-triple vector from its pool.
    pub(crate) fn take_tri(&mut self) -> Vec<(usize, usize, usize)> {
        let mut v = self.tri_pool.pop_front().unwrap_or_default();
        v.clear();
        v
    }

    pub(crate) fn push(&mut self, value: Matrix, op: Op, requires_grad: bool) -> Var {
        self.push_value(Value::Owned(value), op, requires_grad)
    }

    pub(crate) fn push_value(&mut self, value: Value, op: Op, requires_grad: bool) -> Var {
        debug_assert!(
            value.all_finite() || matches!(op, Op::Leaf | Op::Constant),
            "non-finite value produced by {op:?}"
        );
        self.nodes.push(Node { value, op, requires_grad });
        Var(self.nodes.len() - 1)
    }

    /// Convenience: whether any of `vars` requires a gradient.
    pub(crate) fn any_requires_grad(&self, vars: &[Var]) -> bool {
        vars.iter().any(|&v| self.node(v).requires_grad)
    }

    /// Runs the reverse pass from the scalar output `out`, accumulating
    /// gradients for every node that `out` (transitively) depends on.
    ///
    /// A reachability mark pass first restricts the walk to ancestors of
    /// `out`, so recorded-but-unused subgraphs cost nothing. Calling
    /// `backward` again replaces the previous gradients.
    ///
    /// # Panics
    ///
    /// Panics when `out` is not a `1x1` scalar or does not require grad.
    pub fn backward(&mut self, out: Var) {
        let _span = colper_obs::span!(TAPE_BACKWARD);
        let n = self.nodes.len();
        colper_obs::counters::TAPE_BACKWARDS.incr();
        colper_obs::gauges::TAPE_NODES.record(n as u64);
        assert_eq!(self.node(out).value.shape(), (1, 1), "backward requires a scalar output");
        assert!(self.node(out).requires_grad, "backward output does not depend on any leaf");

        // Mark pass: which nodes are ancestors of `out` through
        // gradient-requiring edges?
        self.live.clear();
        self.live.resize(n, false);
        self.live[out.0] = true;
        {
            let (nodes, live) = (&self.nodes, &mut self.live);
            for i in (0..n).rev() {
                if !live[i] || !nodes[i].requires_grad {
                    continue;
                }
                nodes[i].op.for_each_operand(|v| live[v.0] = true);
            }
        }

        for g in self.grads.drain(..).flatten() {
            self.pool.recycle(g);
        }
        self.grads.resize_with(n, || None);
        self.visited = 0;
        let seed = {
            let mut o = self.pool.zeros(1, 1);
            o[(0, 0)] = 1.0;
            o
        };
        self.grads[out.0] = Some(seed);

        for i in (0..n).rev() {
            if !self.nodes[i].requires_grad || !self.live[i] {
                continue;
            }
            let Some(gy) = self.grads[i].take() else { continue };
            self.visited += 1;
            step_backward(&self.nodes, &mut self.grads, &mut self.pool, i, &gy, false);
            self.grads[i] = Some(gy);
        }
    }
}

/// Adds an owned gradient contribution to `grads[v]`, recycling `g`
/// whenever its storage is not moved into the slot.
fn accumulate(
    nodes: &[Node],
    grads: &mut [Option<Matrix>],
    pool: &mut BufferPool,
    v: Var,
    g: Matrix,
) {
    if !nodes[v.0].requires_grad {
        pool.recycle(g);
        return;
    }
    match &mut grads[v.0] {
        Some(acc) => {
            acc.add_assign(&g);
            pool.recycle(g);
        }
        slot @ None => *slot = Some(g),
    }
}

/// Adds a borrowed gradient contribution to `grads[v]`: add-assign in place
/// when a slot exists, else a pooled copy (the identity-Jacobian fast path
/// for `Add`/`AddRow`/`AddScalar`, which previously cloned `gy`).
fn accumulate_copy(
    nodes: &[Node],
    grads: &mut [Option<Matrix>],
    pool: &mut BufferPool,
    v: Var,
    gy: &Matrix,
) {
    if !nodes[v.0].requires_grad {
        return;
    }
    match &mut grads[v.0] {
        Some(acc) => acc.add_assign(gy),
        slot @ None => *slot = Some(pool.copy_of(gy)),
    }
}

/// One backward step for node `i`. Dispatches on a borrowed `&Op` — no op
/// payload is cloned — and builds every produced gradient in pooled
/// storage. All arithmetic keeps the exact scalar expressions and
/// accumulation order of the original allocating implementation, so
/// gradients are bit-identical. The schedule replay reuses this verbatim,
/// which is what makes replayed gradients bit-identical by construction.
///
/// `compiled` selects the schedule replay's compile-time optimizations,
/// neither of which can change a live gradient:
///
/// - **Dead-gradient pruning** — operand gradients flowing into
///   `!requires_grad` nodes (eval-mode weights bound as constants) are
///   never computed. The dynamic reference computes then discards them
///   (`accumulate` recycles the buffer), so a pruned gradient never fed
///   any surviving value to begin with.
/// - **Dirty scratch buffers** — gradient storage whose kernel fully
///   overwrites every element (see [`grad_buf`]) skips the `zeros`
///   memset. Buffers that are accumulated into (`GatherRows`,
///   `Smoothness`, …) or partially written (`SliceCols`) keep `zeros`.
///
/// The dynamic tape passes `false` and keeps the simple eager reference
/// semantics unchanged.
#[allow(clippy::too_many_lines)]
pub(crate) fn step_backward(
    nodes: &[Node],
    grads: &mut [Option<Matrix>],
    pool: &mut BufferPool,
    i: usize,
    gy: &Matrix,
    compiled: bool,
) {
    // "Should the gradient for operand `v` be materialized at all?"
    let wants = |v: Var| !compiled || nodes[v.0].requires_grad;
    match &nodes[i].op {
        Op::Leaf | Op::Constant => {}
        Op::Add(a, b) => {
            accumulate_copy(nodes, grads, pool, *a, gy);
            accumulate_copy(nodes, grads, pool, *b, gy);
        }
        Op::Sub(a, b) => {
            accumulate_copy(nodes, grads, pool, *a, gy);
            if wants(*b) {
                let mut gb = grad_buf(pool, compiled, gy.rows(), gy.cols());
                gy.map_into(&mut gb, |v| -v);
                accumulate(nodes, grads, pool, *b, gb);
            }
        }
        Op::Mul(a, b) => {
            if wants(*a) {
                let mut ga = grad_buf(pool, compiled, gy.rows(), gy.cols());
                gy.mul_into(&nodes[b.0].value, &mut ga).expect("shape");
                accumulate(nodes, grads, pool, *a, ga);
            }
            if wants(*b) {
                let mut gb = grad_buf(pool, compiled, gy.rows(), gy.cols());
                gy.mul_into(&nodes[a.0].value, &mut gb).expect("shape");
                accumulate(nodes, grads, pool, *b, gb);
            }
        }
        Op::AddRow(x, r) => {
            accumulate_copy(nodes, grads, pool, *x, gy);
            if wants(*r) {
                let mut gr = grad_buf(pool, compiled, 1, gy.cols());
                gy.sum_rows_into(&mut gr);
                accumulate(nodes, grads, pool, *r, gr);
            }
        }
        Op::SubRow(x, r) => {
            accumulate_copy(nodes, grads, pool, *x, gy);
            if wants(*r) {
                let mut gr = grad_buf(pool, compiled, 1, gy.cols());
                gy.sum_rows_into(&mut gr);
                gr.map_inplace(|v| -v);
                accumulate(nodes, grads, pool, *r, gr);
            }
        }
        Op::MulRow(x, r) => {
            let rv: &Matrix = &nodes[r.0].value;
            let xv: &Matrix = &nodes[x.0].value;
            if wants(*x) {
                let mut gx = grad_buf(pool, compiled, gy.rows(), gy.cols());
                broadcast_mul_into(gy, rv, &mut gx);
                accumulate(nodes, grads, pool, *x, gx);
            }
            if wants(*r) {
                let mut tmp = grad_buf(pool, compiled, gy.rows(), gy.cols());
                gy.mul_into(xv, &mut tmp).expect("shape");
                let mut gr = grad_buf(pool, compiled, 1, gy.cols());
                tmp.sum_rows_into(&mut gr);
                pool.recycle(tmp);
                accumulate(nodes, grads, pool, *r, gr);
            }
        }
        Op::DivRow(x, r) => {
            let rv: &Matrix = &nodes[r.0].value;
            let xv: &Matrix = &nodes[x.0].value;
            let mut inv = grad_buf(pool, compiled, rv.rows(), rv.cols());
            if wants(*x) {
                rv.map_into(&mut inv, |v| 1.0 / v);
                let mut gx = grad_buf(pool, compiled, gy.rows(), gy.cols());
                broadcast_mul_into(gy, &inv, &mut gx);
                accumulate(nodes, grads, pool, *x, gx);
            }
            if wants(*r) {
                // d/dr (x/r) = -x / r^2
                rv.map_into(&mut inv, |v| -1.0 / (v * v));
                let mut tmp = grad_buf(pool, compiled, gy.rows(), gy.cols());
                gy.mul_into(xv, &mut tmp).expect("shape");
                let mut bm = grad_buf(pool, compiled, gy.rows(), gy.cols());
                broadcast_mul_into(&tmp, &inv, &mut bm);
                let mut gr = grad_buf(pool, compiled, 1, gy.cols());
                bm.sum_rows_into(&mut gr);
                pool.recycle(tmp);
                pool.recycle(bm);
                accumulate(nodes, grads, pool, *r, gr);
            }
            pool.recycle(inv);
        }
        Op::Scale(x, s) => {
            let mut g = grad_buf(pool, compiled, gy.rows(), gy.cols());
            gy.scale_into(*s, &mut g);
            accumulate(nodes, grads, pool, *x, g);
        }
        Op::AddScalar(x, _) => accumulate_copy(nodes, grads, pool, *x, gy),
        Op::Matmul(a, b) => {
            let av: &Matrix = &nodes[a.0].value;
            let bv: &Matrix = &nodes[b.0].value;
            if wants(*a) {
                let mut ga = grad_buf(pool, compiled, gy.rows(), bv.rows());
                gy.matmul_nt_into(bv, &mut ga).expect("shape");
                accumulate(nodes, grads, pool, *a, ga);
            }
            if wants(*b) {
                let mut gb = grad_buf(pool, compiled, av.cols(), gy.cols());
                av.matmul_tn_into(gy, &mut gb).expect("shape");
                accumulate(nodes, grads, pool, *b, gb);
            }
        }
        Op::Relu(x) => {
            let g = elementwise_grad(pool, compiled, gy, &nodes[x.0].value, |v| {
                if v > 0.0 {
                    1.0
                } else {
                    0.0
                }
            });
            accumulate(nodes, grads, pool, *x, g);
        }
        Op::LeakyRelu(x, alpha) => {
            let alpha = *alpha;
            let g = elementwise_grad(pool, compiled, gy, &nodes[x.0].value, move |v| {
                if v > 0.0 {
                    1.0
                } else {
                    alpha
                }
            });
            accumulate(nodes, grads, pool, *x, g);
        }
        Op::Tanh(x) => {
            // y = tanh(x); dy/dx = 1 - y^2 (read from the output node).
            let g = elementwise_grad(pool, compiled, gy, &nodes[i].value, |t| 1.0 - t * t);
            accumulate(nodes, grads, pool, *x, g);
        }
        Op::Sigmoid(x) => {
            let g = elementwise_grad(pool, compiled, gy, &nodes[i].value, |s| s * (1.0 - s));
            accumulate(nodes, grads, pool, *x, g);
        }
        Op::Exp(x) => {
            let mut g = grad_buf(pool, compiled, gy.rows(), gy.cols());
            gy.mul_into(&nodes[i].value, &mut g).expect("shape");
            accumulate(nodes, grads, pool, *x, g);
        }
        Op::Ln(x) => {
            let g = elementwise_grad(pool, compiled, gy, &nodes[x.0].value, |v| 1.0 / v);
            accumulate(nodes, grads, pool, *x, g);
        }
        Op::Sqrt(x) => {
            let g = elementwise_grad(pool, compiled, gy, &nodes[i].value, |s| 0.5 / s.max(1e-12));
            accumulate(nodes, grads, pool, *x, g);
        }
        Op::Square(x) => {
            let g = elementwise_grad(pool, compiled, gy, &nodes[x.0].value, |v| v * 2.0);
            accumulate(nodes, grads, pool, *x, g);
        }
        Op::MulConst(x, m) => {
            let mut g = grad_buf(pool, compiled, gy.rows(), gy.cols());
            gy.mul_into(m, &mut g).expect("shape");
            accumulate(nodes, grads, pool, *x, g);
        }
        Op::Sum(x) => {
            let (r, c) = nodes[x.0].value.shape();
            let mut g = grad_buf(pool, compiled, r, c);
            g.as_mut_slice().fill(gy[(0, 0)]);
            accumulate(nodes, grads, pool, *x, g);
        }
        Op::Mean(x) => {
            let (r, c) = nodes[x.0].value.shape();
            let denom = (r * c).max(1) as f32;
            let mut g = grad_buf(pool, compiled, r, c);
            g.as_mut_slice().fill(gy[(0, 0)] / denom);
            accumulate(nodes, grads, pool, *x, g);
        }
        Op::SumRows(x) => {
            let (r, c) = nodes[x.0].value.shape();
            let mut g = grad_buf(pool, compiled, r, c);
            for rr in 0..r {
                g.row_mut(rr).copy_from_slice(gy.row(0));
            }
            debug_assert_eq!(gy.cols(), c);
            accumulate(nodes, grads, pool, *x, g);
        }
        Op::MeanRows(x) => {
            let (r, c) = nodes[x.0].value.shape();
            let inv = 1.0 / r.max(1) as f32;
            let mut g = grad_buf(pool, compiled, r, c);
            kernels::count_dispatch(r);
            for rr in 0..r {
                kernels::scale(gy.row(0), inv, g.row_mut(rr));
            }
            accumulate(nodes, grads, pool, *x, g);
        }
        Op::SumCols(x) => {
            let (r, c) = nodes[x.0].value.shape();
            let mut g = grad_buf(pool, compiled, r, c);
            for rr in 0..r {
                for cc in 0..c {
                    g[(rr, cc)] = gy[(rr, 0)];
                }
            }
            accumulate(nodes, grads, pool, *x, g);
        }
        Op::GatherRows(x, idx) => {
            let (r, c) = nodes[x.0].value.shape();
            let mut g = pool.zeros(r, c);
            kernels::count_dispatch(idx.len());
            for (dst, &src) in idx.iter().enumerate() {
                kernels::add_assign(g.row_mut(src), gy.row(dst));
            }
            accumulate(nodes, grads, pool, *x, g);
        }
        Op::GroupMax { x, argmax } => {
            let (r, c) = nodes[x.0].value.shape();
            let mut g = pool.zeros(r, c);
            for out_row in 0..gy.rows() {
                for col in 0..c {
                    let src = argmax[out_row * c + col];
                    g[(src, col)] += gy[(out_row, col)];
                }
            }
            accumulate(nodes, grads, pool, *x, g);
        }
        Op::GroupMean(x, k) => {
            let k = *k;
            let (r, c) = nodes[x.0].value.shape();
            let inv = 1.0 / k as f32;
            let mut g = grad_buf(pool, compiled, r, c);
            kernels::count_dispatch(r);
            for rr in 0..r {
                kernels::scale(gy.row(rr / k), inv, g.row_mut(rr));
            }
            accumulate(nodes, grads, pool, *x, g);
        }
        Op::GroupSoftmax { x, k, softmax } => {
            // For each group g and column c:
            // dx = s * (dy - sum_group(dy * s)).
            let k = *k;
            let (r, c) = softmax.shape();
            let groups = r / k;
            let mut g = grad_buf(pool, compiled, r, c);
            for gi in 0..groups {
                for cc in 0..c {
                    let mut dot = 0.0f32;
                    for j in 0..k {
                        let rr = gi * k + j;
                        dot += gy[(rr, cc)] * softmax[(rr, cc)];
                    }
                    for j in 0..k {
                        let rr = gi * k + j;
                        g[(rr, cc)] = softmax[(rr, cc)] * (gy[(rr, cc)] - dot);
                    }
                }
            }
            accumulate(nodes, grads, pool, *x, g);
        }
        Op::WeightedGather { x, idx, w, k } => {
            let k = *k;
            let (r, c) = nodes[x.0].value.shape();
            let mut g = pool.zeros(r, c);
            kernels::count_dispatch(gy.rows() * k);
            for out_row in 0..gy.rows() {
                for j in 0..k {
                    let flat = out_row * k + j;
                    kernels::axpy(g.row_mut(idx[flat]), w[flat], gy.row(out_row));
                }
            }
            accumulate(nodes, grads, pool, *x, g);
        }
        Op::ConcatCols(a, b) => {
            let ca = nodes[a.0].value.cols();
            let cb = nodes[b.0].value.cols();
            if wants(*a) {
                let mut ga = grad_buf(pool, compiled, gy.rows(), ca);
                gy.block_into(0, gy.rows(), 0, ca, &mut ga);
                accumulate(nodes, grads, pool, *a, ga);
            }
            if wants(*b) {
                let mut gb = grad_buf(pool, compiled, gy.rows(), cb);
                gy.block_into(0, gy.rows(), ca, ca + cb, &mut gb);
                accumulate(nodes, grads, pool, *b, gb);
            }
        }
        Op::SliceCols(x, c0, _c1) => {
            let c0 = *c0;
            let (r, c) = nodes[x.0].value.shape();
            let mut g = pool.zeros(r, c);
            for rr in 0..gy.rows() {
                for cc in 0..gy.cols() {
                    g[(rr, c0 + cc)] = gy[(rr, cc)];
                }
            }
            accumulate(nodes, grads, pool, *x, g);
        }
        Op::BatchNorm { x, gamma, beta, xhat, inv_std } => {
            let n = xhat.rows() as f32;
            let gammav: &Matrix = &nodes[gamma.0].value;
            // gbeta = sum_rows(gy); ggamma = sum_rows(gy * xhat)
            let mut gbeta = pool.zeros(1, gy.cols());
            gy.sum_rows_into(&mut gbeta);
            let mut tmp = pool.zeros_like(gy);
            gy.mul_into(xhat, &mut tmp).expect("shape");
            let mut ggamma = pool.zeros(1, gy.cols());
            tmp.sum_rows_into(&mut ggamma);
            // gxhat = gy * gamma (row broadcast)
            let mut gxhat = pool.zeros_like(gy);
            broadcast_mul_into(gy, gammav, &mut gxhat);
            // gx = inv_std/N * (N*gxhat - sum_rows(gxhat) - xhat * sum_rows(gxhat*xhat))
            let mut s1 = pool.zeros(1, gy.cols());
            gxhat.sum_rows_into(&mut s1);
            gxhat.mul_into(xhat, &mut tmp).expect("shape");
            let mut s2 = pool.zeros(1, gy.cols());
            tmp.sum_rows_into(&mut s2);
            // gx row-by-row via kernels: gx = n*gxhat; gx -= s1; gx -= xhat*s2;
            // gx *= inv_std/n (all [1,C] rows broadcast over rows).
            let mut inv_n = pool.zeros(1, gy.cols());
            for cc in 0..gy.cols() {
                inv_n[(0, cc)] = inv_std[(0, cc)] / n;
            }
            let mut gx = pool.zeros(xhat.rows(), xhat.cols());
            kernels::count_dispatch(4 * xhat.rows());
            for rr in 0..xhat.rows() {
                let row = gx.row_mut(rr);
                kernels::scale(gxhat.row(rr), n, row);
                kernels::sub_assign(row, s1.row(0));
                kernels::sub_prod_assign(row, xhat.row(rr), s2.row(0));
                kernels::mul_assign(row, inv_n.row(0));
            }
            pool.recycle(inv_n);
            pool.recycle(tmp);
            pool.recycle(gxhat);
            pool.recycle(s1);
            pool.recycle(s2);
            accumulate(nodes, grads, pool, *x, gx);
            accumulate(nodes, grads, pool, *gamma, ggamma);
            accumulate(nodes, grads, pool, *beta, gbeta);
        }
        Op::SoftmaxCrossEntropy { logits, labels, softmax } => {
            let n = labels.len().max(1) as f32;
            let scale = gy[(0, 0)] / n;
            let mut g = pool.copy_of(softmax);
            for (r, &y) in labels.iter().enumerate() {
                g[(r, y)] -= 1.0;
            }
            g.map_inplace(|v| v * scale);
            accumulate(nodes, grads, pool, *logits, g);
        }
        Op::CwHinge { logits, active } => {
            let (r, c) = nodes[logits.0].value.shape();
            let s = gy[(0, 0)];
            let mut g = pool.zeros(r, c);
            for &(row, plus, minus) in active.iter() {
                g[(row, plus)] += s;
                g[(row, minus)] -= s;
            }
            accumulate(nodes, grads, pool, *logits, g);
        }
        Op::Smoothness { colors, coords, neighbors, k } => {
            let k = *k;
            let cv: &Matrix = &nodes[colors.0].value;
            let n = cv.rows();
            let cdim = cv.cols();
            let s = gy[(0, 0)];
            let mut g = pool.zeros(n, cdim);
            for i_pt in 0..n {
                for j in 0..k {
                    let nb = neighbors[i_pt * k + j];
                    let mut d2 = 0.0f32;
                    for d in 0..coords.cols() {
                        let dd = coords[(i_pt, d)] - coords[(nb, d)];
                        d2 += dd * dd;
                    }
                    for d in 0..cdim {
                        let dd = cv[(i_pt, d)] - cv[(nb, d)];
                        d2 += dd * dd;
                    }
                    let dist = d2.sqrt().max(1e-8);
                    for d in 0..cdim {
                        let dd = (cv[(i_pt, d)] - cv[(nb, d)]) / dist;
                        g[(i_pt, d)] += s * dd;
                        g[(nb, d)] -= s * dd;
                    }
                }
            }
            accumulate(nodes, grads, pool, *colors, g);
        }
    }
}

/// Fresh gradient storage for a kernel that fully overwrites every
/// element of its output. The compiled replay takes dirty scratch (no
/// memset); the dynamic reference keeps its zeroing allocation pattern.
/// Bit-identical because the caller's kernel writes every element before
/// any is read.
fn grad_buf(pool: &mut BufferPool, compiled: bool, rows: usize, cols: usize) -> Matrix {
    if compiled {
        pool.scratch(rows, cols)
    } else {
        pool.zeros(rows, cols)
    }
}

/// `gy * map(src, deriv)` in pooled storage — the shared shape of every
/// elementwise activation backward. Same `map` + `mul` expressions as the
/// old allocating code, so results are bit-identical.
fn elementwise_grad(
    pool: &mut BufferPool,
    compiled: bool,
    gy: &Matrix,
    src: &Matrix,
    deriv: impl Fn(f32) -> f32 + Sync,
) -> Matrix {
    let mut tmp = grad_buf(pool, compiled, src.rows(), src.cols());
    src.map_into(&mut tmp, deriv);
    let mut g = grad_buf(pool, compiled, gy.rows(), gy.cols());
    gy.mul_into(&tmp, &mut g).expect("shape");
    pool.recycle(tmp);
    g
}

/// Multiplies `[N,C]` by a `[1,C]` row, broadcasting over rows, into `out`.
pub(crate) fn broadcast_mul_into(x: &Matrix, row: &Matrix, out: &mut Matrix) {
    debug_assert_eq!(row.rows(), 1);
    debug_assert_eq!(x.cols(), row.cols());
    debug_assert_eq!(out.shape(), x.shape());
    let rrow = row.row(0);
    kernels::count_dispatch(x.rows());
    for r in 0..x.rows() {
        kernels::mul(x.row(r), rrow, out.row_mut(r));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_and_constant_flags() {
        let mut t = Tape::new();
        let l = t.leaf(Matrix::ones(1, 1));
        let c = t.constant(Matrix::ones(1, 1));
        assert!(t.node(l).requires_grad);
        assert!(!t.node(c).requires_grad);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn backward_on_simple_chain() {
        // loss = sum(3 * x) -> dloss/dx = 3
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_rows(&[&[1.0, 2.0]]).unwrap());
        let y = t.scale(x, 3.0);
        let loss = t.sum(y);
        t.backward(loss);
        assert_eq!(t.grad(x).unwrap().as_slice(), &[3.0, 3.0]);
    }

    #[test]
    fn constants_receive_no_gradient() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::ones(1, 2));
        let c = t.constant(Matrix::ones(1, 2));
        let y = t.add(x, c);
        let loss = t.sum(y);
        t.backward(loss);
        assert!(t.grad(c).is_none());
        assert!(t.grad(x).is_some());
    }

    #[test]
    fn gradient_accumulates_on_reuse() {
        // loss = sum(x + x) -> dloss/dx = 2
        let mut t = Tape::new();
        let x = t.leaf(Matrix::ones(1, 2));
        let y = t.add(x, x);
        let loss = t.sum(y);
        t.backward(loss);
        assert_eq!(t.grad(x).unwrap().as_slice(), &[2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "scalar")]
    fn backward_rejects_non_scalar() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::ones(2, 2));
        let y = t.scale(x, 1.0);
        t.backward(y);
    }

    #[test]
    fn second_backward_replaces_gradients() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::ones(1, 1));
        let y = t.scale(x, 2.0);
        let loss = t.sum(y);
        t.backward(loss);
        t.backward(loss);
        assert_eq!(t.grad(x).unwrap()[(0, 0)], 2.0);
    }

    #[test]
    fn shared_constants_are_not_copied() {
        let m = Arc::new(Matrix::filled(2, 2, 3.0));
        let mut t = Tape::new();
        let c = t.constant_shared(Arc::clone(&m));
        assert_eq!(t.value(c), &*m);
        assert_eq!(Arc::strong_count(&m), 2);
        t.reset();
        assert_eq!(Arc::strong_count(&m), 1, "reset drops the shared ref");
        assert_eq!(t.pool_stats(), (0, 0), "no pooled storage involved");
    }

    #[test]
    fn reset_tape_reaches_zero_allocation_steady_state() {
        let xv = Matrix::from_fn(6, 4, |r, c| (r * 4 + c) as f32 * 0.1 - 1.0);
        let idx = [0usize, 2, 4, 5];
        let mut t = Tape::new();
        let run = |t: &mut Tape| {
            t.reset();
            let x = t.leaf_from(&xv);
            let y = t.tanh(x);
            let z = t.gather_rows(y, &idx);
            let q = t.square(z);
            let loss = t.sum(q);
            t.backward(loss);
            t.grad(x).unwrap().clone()
        };
        let g1 = run(&mut t);
        let misses_warm = t.pool_stats().1;
        let g2 = run(&mut t);
        let g3 = run(&mut t);
        assert_eq!(g1, g2, "reused tape must be bit-identical to the first pass");
        assert_eq!(g2, g3);
        assert_eq!(
            t.pool_stats().1,
            misses_warm,
            "steady-state steps must not allocate tape value/grad storage"
        );
    }

    #[test]
    fn backward_skips_subgraphs_unreachable_from_the_loss() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::ones(1, 2));
        let y = t.tanh(x);
        let loss = t.sum(y);
        // A gradient-requiring subgraph that the loss does not depend on:
        // without the reachability pass it would still be walked.
        let dead = t.square(y);
        let _dead_sum = t.sum(dead);
        t.backward(loss);
        assert_eq!(t.backward_visited(), 3, "only loss, tanh and leaf are visited");
        assert!(t.grad(dead).is_none());
        assert!(t.grad(x).is_some());
    }
}
