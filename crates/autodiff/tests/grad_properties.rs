//! Property-based gradient checking: random values through composed op
//! chains must match central finite differences.

use colper_autodiff::{check_gradient, Tape, Var};
use colper_tensor::Matrix;
use proptest::prelude::*;

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn chained_elementwise_ops(x0 in arb_matrix(3, 4)) {
        let report = check_gradient(&x0, |t, x| {
            let a = t.tanh(x);
            let b = t.scale(a, 1.5);
            let c = t.square(b);
            let d = t.add_scalar(c, 0.3);
            let e = t.sigmoid(d);
            t.sum(e)
        });
        prop_assert!(report.max_abs_err < 5e-2, "{report:?}");
    }

    #[test]
    fn matmul_then_reduction(x0 in arb_matrix(4, 3)) {
        let report = check_gradient(&x0, |t, x| {
            let w = t.constant(Matrix::from_fn(3, 5, |r, c| ((r + 2 * c) as f32).sin() * 0.5));
            let h = t.matmul(x, w);
            let r = t.relu(h);
            let m = t.mean_rows(r);
            let s = t.square(m);
            t.sum(s)
        });
        prop_assert!(report.max_abs_err < 5e-2, "{report:?}");
    }

    #[test]
    fn gather_and_pool_pipeline(x0 in arb_matrix(6, 2)) {
        // Mean pooling keeps the objective smooth for arbitrary inputs;
        // max pooling's subgradient-at-ties behaviour is covered by
        // deterministic unit tests in `ops_struct`.
        let idx = vec![0, 1, 2, 3, 4, 5, 5, 4, 3, 2, 1, 0];
        let report = check_gradient(&x0, |t, x| {
            let g = t.gather_rows(x, &idx);
            let m = t.group_mean(g, 3);
            let sq = t.square(m);
            t.sum(sq)
        });
        prop_assert!(report.max_abs_err < 5e-2, "{report:?}");
    }

    #[test]
    fn softmax_attention_pipeline(x0 in arb_matrix(4, 3)) {
        let report = check_gradient(&x0, |t, x| {
            let s = t.group_softmax(x, 2);
            let w = t.mul(s, x);
            let m = t.group_mean(w, 2);
            t.sum(m)
        });
        prop_assert!(report.max_abs_err < 5e-2, "{report:?}");
    }

    #[test]
    fn concat_slice_roundtrip_grads(x0 in arb_matrix(3, 3)) {
        let report = check_gradient(&x0, |t, x| {
            let doubled = t.concat_cols(x, x);
            let right = t.slice_cols(doubled, 2, 5);
            let sq = t.square(right);
            t.sum(sq)
        });
        prop_assert!(report.max_abs_err < 5e-2, "{report:?}");
    }

    #[test]
    fn cross_entropy_any_labels(x0 in arb_matrix(5, 4), labels in proptest::collection::vec(0usize..4, 5)) {
        let report = check_gradient(&x0, |t, x| t.softmax_cross_entropy(x, &labels));
        prop_assert!(report.max_abs_err < 5e-2, "{report:?}");
    }

    #[test]
    fn row_broadcast_chain(x0 in arb_matrix(4, 3)) {
        let report = check_gradient(&x0, |t, x| {
            let row = t.constant(Matrix::from_rows(&[&[0.5, 2.0, -1.0]]).unwrap());
            let a = t.mul_row(x, row);
            let b = t.add_row(a, row);
            let c = t.tanh(b);
            t.sum(c)
        });
        prop_assert!(report.max_abs_err < 5e-2, "{report:?}");
    }

    #[test]
    fn weighted_gather_pipeline(x0 in arb_matrix(5, 2)) {
        let idx = vec![0, 1, 2, 3, 4, 0];
        let w = vec![0.2, 0.8, 0.5, 0.5, 0.9, 0.1];
        let report = check_gradient(&x0, |t, x| {
            let up = t.weighted_gather(x, &idx, &w, 2);
            let sq = t.square(up);
            t.sum(sq)
        });
        prop_assert!(report.max_abs_err < 5e-2, "{report:?}");
    }

    #[test]
    fn backward_twice_is_stable(x0 in arb_matrix(3, 3)) {
        let mut tape = Tape::new();
        let x = tape.leaf(x0.clone());
        let y = tape.square(x);
        let loss: Var = tape.sum(y);
        tape.backward(loss);
        let g1 = tape.grad(x).unwrap().clone();
        tape.backward(loss);
        let g2 = tape.grad(x).unwrap().clone();
        prop_assert_eq!(g1, g2);
    }

    #[test]
    fn gradients_are_finite_for_extreme_inputs(scale in 1.0f32..50.0) {
        let x0 = Matrix::from_fn(3, 3, |r, c| (r as f32 - c as f32) * scale);
        let report = check_gradient(&x0, |t, x| {
            let a = t.tanh(x);
            let b = t.sigmoid(a);
            t.sum(b)
        });
        prop_assert!(report.analytic.all_finite());
    }
}
