//! Property-based tests for layers and optimizers.

use colper_nn::{
    Activation, Adam, AdamState, BatchNorm, Dropout, Forward, Linear, ParamSet, SharedMlp,
};
use colper_tensor::Matrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Linear layers are affine: f(ax + by) = a f(x) + b f(y) for
    /// bias-free layers.
    #[test]
    fn linear_without_bias_is_linear(
        x in arb_matrix(4, 3),
        y in arb_matrix(4, 3),
        a in -2.0f32..2.0,
        b in -2.0f32..2.0,
    ) {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ps = ParamSet::new();
        let lin = Linear::new(&mut ps, "l", 3, 5, false, &mut rng);
        let eval = |input: &Matrix| -> Matrix {
            let mut f = Forward::new(&ps, false);
            let v = f.tape.constant(input.clone());
            let out = lin.forward(&mut f, v);
            f.tape.value(out).clone()
        };
        let lhs = eval(&x.scale(a).add(&y.scale(b)).unwrap());
        let rhs = eval(&x).scale(a).add(&eval(&y).scale(b)).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    /// Batch norm in training mode: output columns have ~zero mean and
    /// ~unit variance when gamma = 1, beta = 0.
    #[test]
    fn batchnorm_normalizes_any_batch(x in arb_matrix(16, 3)) {
        let mut ps = ParamSet::new();
        let bn = BatchNorm::new(&mut ps, "bn", 3);
        let mut f = Forward::new(&ps, true);
        let v = f.tape.constant(x);
        let out = bn.forward(&mut f, v);
        let y = f.tape.value(out);
        let means = y.mean_rows();
        for c in 0..3 {
            prop_assert!(means[(0, c)].abs() < 1e-3, "col {c} mean {}", means[(0, c)]);
        }
    }

    /// Dropout preserves expectation: the mean activation stays close to
    /// the input mean.
    #[test]
    fn dropout_preserves_expectation(p in 0.0f32..0.8, seed in 0u64..100) {
        let ps = ParamSet::new();
        let mut f = Forward::new(&ps, true);
        let x = f.tape.constant(Matrix::ones(64, 64));
        let d = Dropout::new(p);
        let y = d.forward(&mut f, x, &mut StdRng::seed_from_u64(seed));
        let mean = f.tape.value(y).mean();
        prop_assert!((mean - 1.0).abs() < 0.12, "p={p}, mean={mean}");
    }

    /// Adam converges on any smooth strongly-convex quadratic.
    #[test]
    fn adam_converges_on_quadratic(target in -5.0f32..5.0) {
        let mut x = Matrix::zeros(1, 4);
        let mut adam = AdamState::new(1, 4);
        for _ in 0..800 {
            let g = x.map(|v| 2.0 * (v - target));
            adam.update(&mut x, &g, 0.05);
        }
        prop_assert!(x.as_slice().iter().all(|&v| (v - target).abs() < 0.1), "{x:?}");
    }

    /// Training an MLP never produces NaN weights on bounded data.
    #[test]
    fn training_stays_finite(seed in 0u64..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ps = ParamSet::new();
        let mlp = SharedMlp::new(&mut ps, "m", &[4, 8, 3], Activation::Relu, true, &mut rng);
        let mut adam = Adam::with_lr(0.05);
        let x = Matrix::from_fn(12, 4, |r, c| ((r * 3 + c) as f32 * 0.7).sin());
        let labels: Vec<usize> = (0..12).map(|i| i % 3).collect();
        for _ in 0..30 {
            let step = colper_nn::train_step(&mut ps, &mut adam, &labels, |f| {
                let xv = f.tape.constant(x.clone());
                mlp.forward(f, xv)
            });
            prop_assert!(step.loss.is_finite());
        }
        for id in ps.param_ids() {
            prop_assert!(ps.param(id).all_finite());
        }
    }

    /// Checkpoint round trip is exact for arbitrary parameter contents.
    #[test]
    fn serialization_round_trip(w in arb_matrix(5, 7), b in arb_matrix(1, 7)) {
        let mut ps = ParamSet::new();
        let wid = ps.add_param("w", w);
        let bid = ps.add_param("b", b);
        ps.add_buffer("rm", Matrix::filled(1, 7, 0.25));
        let mut buf = Vec::new();
        colper_nn::save_params(&ps, &mut buf).unwrap();
        let loaded = colper_nn::load_params(buf.as_slice()).unwrap();
        prop_assert_eq!(loaded.param(wid), ps.param(wid));
        prop_assert_eq!(loaded.param(bid), ps.param(bid));
    }
}
