//! Neural-network layers, optimizers and training utilities over the
//! COLPER autodiff tape.
//!
//! The crate is organized around two types:
//!
//! * [`ParamSet`] — owns every trainable matrix (weights, batch-norm
//!   scales) and non-trainable buffer (running statistics) of a model;
//! * [`Forward`] — a single forward/backward session that binds
//!   parameters onto a fresh [`colper_autodiff::Tape`]. In training mode
//!   parameters become differentiable leaves and batch-norm uses batch
//!   statistics; in evaluation mode parameters are constants (so the only
//!   gradients computed are the attack's input gradients) and batch-norm
//!   uses its running statistics.
//!
//! Layers ([`Linear`], [`BatchNorm`], [`SharedMlp`], [`Dropout`]) store
//! only `ParamId` handles, so they are `Copy`-cheap and borrow-free; the
//! actual numbers live in the `ParamSet`.
//!
//! # Example: fit a tiny MLP
//!
//! ```
//! use colper_nn::{Activation, Adam, Forward, ParamSet, SharedMlp, train_step};
//! use colper_tensor::Matrix;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut params = ParamSet::new();
//! let mlp = SharedMlp::new(&mut params, "mlp", &[2, 16, 2], Activation::Relu, true, &mut rng);
//! let mut adam = Adam::with_lr(0.01);
//! // XOR-ish toy data.
//! let x = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0], &[0.0, 1.0], &[1.0, 0.0]]).unwrap();
//! let labels = [0usize, 0, 1, 1];
//! let mut last = f32::INFINITY;
//! for _ in 0..300 {
//!     let step = train_step(&mut params, &mut adam, &labels, |f| {
//!         let xv = f.tape.constant(x.clone());
//!         mlp.forward(f, xv)
//!     });
//!     last = step.loss;
//! }
//! assert!(last < 0.5, "loss {last}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batchnorm;
mod dropout;
mod linear;
mod mlp;
mod optim;
mod param;
mod serialize;
mod trainer;

pub use batchnorm::BatchNorm;
pub use dropout::Dropout;
pub use linear::Linear;
pub use mlp::{Activation, SharedMlp};
pub use optim::{Adam, AdamState, Sgd};
pub use param::{BnUpdate, BufferId, Forward, ParamId, ParamSet};
pub use serialize::{load_params, save_params, SerializeError};
pub use trainer::{evaluate_accuracy, train_step, TrainStep};
